// Reproduces Table 2: classification accuracy of the deep map models vs
// their corresponding graph kernels (GK vs DEEPMAP-GK, SP vs DEEPMAP-SP,
// WL vs DEEPMAP-WL), k-fold cross-validated, with the paper's reference
// numbers printed alongside.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"
#include "eval/paper_reference.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Table 2: deep map models vs their graph kernels");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR",
                                                  "IMDB-BINARY"};
  const auto selected = options.SelectedDatasets(default_datasets);

  const kernels::FeatureMapKind kinds[] = {
      kernels::FeatureMapKind::kGraphlet,
      kernels::FeatureMapKind::kShortestPath,
      kernels::FeatureMapKind::kWlSubtree};

  Table table({"Dataset", "Method", "Measured", "Paper"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    for (kernels::FeatureMapKind kind : kinds) {
      const std::string kernel_name = kernels::FeatureMapKindName(kind);
      std::fprintf(stderr, "[table2] %s / %s ...\n", name.c_str(),
                   kernel_name.c_str());
      eval::MethodRun kernel_run =
          eval::RunGraphKernel(ds.value(), kind, options);
      table.AddRow({name, kernel_name,
                    FormatAccuracy(kernel_run.cv.mean_accuracy,
                                   kernel_run.cv.stddev),
                    eval::FormatPaperAccuracy(
                        eval::PaperTable2(name, kernel_name))});
      eval::MethodRun deep_run = eval::RunDeepMap(ds.value(), kind, options);
      const std::string deep_name = "DEEPMAP-" + kernel_name;
      table.AddRow({name, deep_name,
                    FormatAccuracy(deep_run.cv.mean_accuracy,
                                   deep_run.cv.stddev),
                    eval::FormatPaperAccuracy(
                        eval::PaperTable2(name, deep_name))});
    }
  }
  table.Print(std::cout);
  std::printf("\nShape check: DEEPMAP-<K> should beat <K> on most rows "
              "(paper: deep maps win on 12+/15 datasets per kernel).\n");
  return 0;
}
