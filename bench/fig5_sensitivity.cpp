// Reproduces Figure 5: parameter sensitivity of the deep map models to the
// receptive-field size r on SYNTHIE, against their (r-independent) graph
// kernels.
//
// Paper shape to check: accuracy is poor at r = 1 (~27%, no neighborhood),
// all deep maps beat their kernels once r >= 2, DEEPMAP-SP/WL degrade for
// large r ("six degrees of separation"), DEEPMAP-GK keeps improving.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  if (!options.full) {
    options.folds = 2;
    options.epochs = 16;
    options.max_dense_dim = 64;
  }
  options.PrintBanner("Figure 5: sensitivity to receptive-field size r "
                      "(SYNTHIE)");

  auto ds = datasets::MakeDataset("SYNTHIE", options.dataset_options());
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  const std::vector<int> r_values =
      options.full ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
                   : std::vector<int>{1, 3, 5, 8};
  const kernels::FeatureMapKind kinds[] = {
      kernels::FeatureMapKind::kGraphlet,
      kernels::FeatureMapKind::kShortestPath,
      kernels::FeatureMapKind::kWlSubtree};

  std::vector<std::string> header{"Method"};
  for (int r : r_values) header.push_back("r=" + std::to_string(r));
  Table table(header);

  for (kernels::FeatureMapKind kind : kinds) {
    const std::string kernel_name = kernels::FeatureMapKindName(kind);
    // Kernel baselines do not depend on r: one flat row.
    std::fprintf(stderr, "[fig5] kernel %s ...\n", kernel_name.c_str());
    eval::MethodRun kernel_run =
        eval::RunGraphKernel(ds.value(), kind, options);
    std::vector<std::string> kernel_row{kernel_name};
    for (size_t i = 0; i < r_values.size(); ++i) {
      kernel_row.push_back(FormatDouble(kernel_run.cv.mean_accuracy, 2));
    }
    table.AddRow(kernel_row);

    std::vector<std::string> deep_row{"DEEPMAP-" + kernel_name};
    for (int r : r_values) {
      std::fprintf(stderr, "[fig5] DEEPMAP-%s r=%d ...\n",
                   kernel_name.c_str(), r);
      core::DeepMapConfig config = eval::DefaultDeepMapConfig(kind, options);
      config.receptive_field_size = r;
      eval::MethodRun run = eval::RunDeepMap(ds.value(), config, options);
      deep_row.push_back(FormatDouble(run.cv.mean_accuracy, 2));
    }
    table.AddRow(deep_row);
  }
  table.Print(std::cout);
  std::printf("\nPaper shape: deep maps ~27%% at r=1; above the kernels for "
              "r>=2; SP/WL dip at large r; GK keeps rising.\n");
  return 0;
}
