// Observability overhead proof: the always-on instrumentation (registry
// counters/histograms + disabled trace spans) must cost < 2% of serve-path
// request latency while tracing is off.
//
//   $ ./build/bench/obs_overhead [--requests=N] [--epochs=N] [--full]
//                                [--out=BENCH_obs_overhead.json]
//
// Method:
//   1. Microbenchmark the three primitives on the hot path: counter
//      increment, histogram observe, and a disabled trace span (one relaxed
//      atomic load + branch). Report ns/op.
//   2. Train a small DEEPMAP-WL model and serve a request stream with
//      tracing off. Scrape the engine registry and the process-wide default
//      registry before/after to count exactly how many instrument updates
//      the stream caused, including pool/GEMM/fail-point instrumentation.
//   3. Budget check: updates_per_request x worst primitive cost must stay
//      under 2% of the measured per-request latency. This bounds the
//      instrumentation overhead from measured quantities instead of
//      comparing two noisy end-to-end runs on a loaded machine.
//   4. Serve the same stream again with tracing ON and report the relative
//      slowdown (informational; the <2% acceptance gate is the budget in 3).
//
// Exit status: 0 when the budget holds, 1 when instrumentation exceeds 2%.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/engine.h"

using namespace deepmap;

namespace {

struct BenchArgs {
  int requests = 384;
  int epochs = 2;
  std::string dataset = "KKI";
  std::string out = "BENCH_obs_overhead.json";
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  const char* env_full = std::getenv("DEEPMAP_BENCH_FULL");
  bool full = env_full != nullptr && std::strcmp(env_full, "1") == 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      args.out = arg.substr(6);
    } else if (arg.rfind("--requests=", 0) == 0) {
      args.requests = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      args.epochs = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--dataset=", 0) == 0) {
      args.dataset = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (full) {
    args.requests = 4096;
    args.epochs = 6;
  }
  return args;
}

// ---------------------------------------------------------------------------
// Primitive microbenchmarks

double NsPerOp(double seconds, int64_t ops) {
  return seconds / static_cast<double>(ops) * 1e9;
}

struct PrimitiveCosts {
  double counter_ns = 0.0;
  double histogram_ns = 0.0;
  double disabled_span_ns = 0.0;

  double worst_ns() const {
    return std::max(counter_ns, std::max(histogram_ns, disabled_span_ns));
  }
};

PrimitiveCosts MeasurePrimitives() {
  constexpr int64_t kOps = 4'000'000;
  PrimitiveCosts costs;
  obs::MetricsRegistry registry;

  obs::Counter& counter = registry.GetCounter("deepmap_bench_ops_total");
  Stopwatch counter_timer;
  for (int64_t i = 0; i < kOps; ++i) counter.Increment();
  costs.counter_ns = NsPerOp(counter_timer.ElapsedSeconds(), kOps);

  obs::Histogram& histogram =
      registry.GetHistogram("deepmap_bench_op_seconds");
  Stopwatch histogram_timer;
  for (int64_t i = 0; i < kOps; ++i) {
    // Vary the value so the bucket search is not a single predicted branch.
    histogram.Observe(1e-6 * static_cast<double>(i & 1023));
  }
  costs.histogram_ns = NsPerOp(histogram_timer.ElapsedSeconds(), kOps);

  obs::Tracer tracer;  // never enabled: the permanent-instrumentation state
  Stopwatch span_timer;
  for (int64_t i = 0; i < kOps; ++i) {
    obs::Tracer::Span span(tracer, "bench.noop", "bench");
  }
  costs.disabled_span_ns = NsPerOp(span_timer.ElapsedSeconds(), kOps);
  return costs;
}

// ---------------------------------------------------------------------------
// Instrument-update accounting

/// Total "updates" recorded in a registry: counter values plus histogram
/// observation counts (each Observe is one shard update chain). Gauges are
/// folded into the counter term via their paired sample counters.
int64_t RegistryUpdates(obs::MetricsRegistry& registry) {
  int64_t updates = 0;
  for (const std::string& name : registry.Names()) {
    // Names() has no kind info; counters and histograms are distinguishable
    // by suffix thanks to the enforced naming convention.
    if (name.size() > 6 && name.rfind("_total") == name.size() - 6) {
      updates += registry.GetCounter(name).Value();
    } else if (name.size() > 8 && name.rfind("_seconds") == name.size() - 8) {
      updates += registry.GetHistogram(name).Snapshot().count;
    }
  }
  return updates;
}

struct ServeRun {
  double seconds = 0.0;
  double per_request_us = 0.0;
  int64_t instrument_updates = 0;  // engine registry + default registry delta
};

ServeRun ServeStream(const std::shared_ptr<serve::ServableModel>& servable,
                     const std::vector<const graph::Graph*>& requests) {
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = 16;
  options.batcher.max_wait_us = 500;
  options.batcher.queue_capacity = requests.size() + 16;
  options.cache_capacity = 0;  // full pipeline per request
  serve::InferenceEngine engine(servable, options);

  const int64_t default_before =
      RegistryUpdates(obs::MetricsRegistry::Default());
  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) futures.push_back(engine.Submit(*g));
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  ServeRun run;
  run.seconds = timer.ElapsedSeconds();
  run.per_request_us =
      run.seconds / static_cast<double>(requests.size()) * 1e6;
  run.instrument_updates =
      RegistryUpdates(const_cast<serve::ServeMetrics&>(engine.metrics())
                          .registry()) +
      (RegistryUpdates(obs::MetricsRegistry::Default()) - default_before);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);

  PrimitiveCosts costs = MeasurePrimitives();
  std::printf("primitive costs (tracing off):\n");
  std::printf("  counter increment   %6.1f ns\n", costs.counter_ns);
  std::printf("  histogram observe   %6.1f ns\n", costs.histogram_ns);
  std::printf("  disabled span       %6.1f ns\n", costs.disabled_span_ns);

  datasets::DatasetOptions options;
  options.min_graphs = 24;
  auto dataset_or = datasets::MakeDataset(args.dataset, options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 32;
  config.train.epochs = args.epochs;
  config.train.batch_size = 8;

  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  nn::TrainClassifier(model, pipeline.inputs(), dataset.labels(),
                      config.train);

  serve::ModelRegistry registry;
  if (Status s = registry.Adopt("bench", dataset, config, model); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::shared_ptr<serve::ServableModel> servable = registry.Get("bench");

  std::vector<const graph::Graph*> requests;
  requests.reserve(static_cast<size_t>(args.requests));
  for (int i = 0; i < args.requests; ++i) {
    requests.push_back(&dataset.graph(i % dataset.size()));
  }

  // Tracing-off pass: the acceptance configuration.
  obs::Tracer::Global().Disable();
  ServeRun off = ServeStream(servable, requests);
  const double updates_per_request =
      static_cast<double>(off.instrument_updates) /
      static_cast<double>(args.requests);
  // Charge every update at the WORST primitive cost and every update with
  // one disabled-span probe on top — a deliberate overestimate.
  const double overhead_us_per_request =
      updates_per_request * (costs.worst_ns() + costs.disabled_span_ns) * 1e-3;
  const double overhead_fraction = overhead_us_per_request / off.per_request_us;

  std::printf(
      "\nserve pass (tracing off): %d requests, %.1f us/request, "
      "%.1f instrument updates/request\n",
      args.requests, off.per_request_us, updates_per_request);
  std::printf(
      "instrumentation budget: %.3f us/request = %.3f%% of request latency "
      "(budget 2%%)\n",
      overhead_us_per_request, 100.0 * overhead_fraction);

  // Tracing-on pass: informational A/B on the same stream.
  obs::Tracer::Global().Enable();
  ServeRun on = ServeStream(servable, requests);
  obs::Tracer::Global().Disable();
  const double tracing_slowdown =
      (on.per_request_us - off.per_request_us) / off.per_request_us;
  std::printf(
      "serve pass (tracing on):  %.1f us/request (%+.1f%% vs off; "
      "informational — single-run wall clock is noisy)\n",
      on.per_request_us, 100.0 * tracing_slowdown);

  const bool pass = overhead_fraction < 0.02;
  std::ofstream out(args.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"obs_overhead\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"requests\": %d,\n"
      "  \"counter_ns\": %.2f,\n"
      "  \"histogram_ns\": %.2f,\n"
      "  \"disabled_span_ns\": %.2f,\n"
      "  \"per_request_us_tracing_off\": %.2f,\n"
      "  \"per_request_us_tracing_on\": %.2f,\n"
      "  \"instrument_updates_per_request\": %.2f,\n"
      "  \"overhead_us_per_request\": %.4f,\n"
      "  \"overhead_fraction\": %.5f,\n"
      "  \"budget_fraction\": 0.02,\n"
      "  \"pass\": %s\n"
      "}\n",
      args.dataset.c_str(), args.requests, costs.counter_ns,
      costs.histogram_ns, costs.disabled_span_ns, off.per_request_us,
      on.per_request_us, updates_per_request, overhead_us_per_request,
      overhead_fraction, pass ? "true" : "false");
  out << buf;
  std::printf("\nwrote %s\n", args.out.c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: instrumentation overhead %.3f%% exceeds the 2%% "
                 "budget\n",
                 100.0 * overhead_fraction);
    return 1;
  }
  std::printf("PASS: instrumentation overhead %.3f%% < 2%%\n",
              100.0 * overhead_fraction);
  return 0;
}
