// Ablation (DESIGN.md §4): how much does the vertex-alignment measure
// matter? Compares DEEPMAP-WL with eigenvector (the paper's choice),
// degree, PageRank, and random vertex orderings.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Ablation: vertex-alignment measure (DEEPMAP-WL)");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Alignment", "Accuracy"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    for (auto measure :
         {core::AlignmentMeasure::kEigenvector, core::AlignmentMeasure::kDegree,
          core::AlignmentMeasure::kPageRank,
          core::AlignmentMeasure::kBetweenness,
          core::AlignmentMeasure::kRandom}) {
      std::fprintf(stderr, "[ablation] %s / %s ...\n", name.c_str(),
                   core::AlignmentMeasureName(measure).c_str());
      core::DeepMapConfig config = eval::DefaultDeepMapConfig(
          kernels::FeatureMapKind::kWlSubtree, options);
      config.alignment = measure;
      eval::MethodRun run = eval::RunDeepMap(ds.value(), config, options);
      table.AddRow({name, core::AlignmentMeasureName(measure),
                    FormatAccuracy(run.cv.mean_accuracy, run.cv.stddev)});
    }
  }
  table.Print(std::cout);
  std::printf("\nExpected shape: centrality-based orderings (eigenvector / "
              "degree / pagerank) beat random alignment.\n");
  return 0;
}
