// Reproduces Figure 7: representational power (training accuracy vs epoch)
// of DEEPMAP vs the GNN baselines plus the strongest graph kernel on
// SYNTHIE.
//
// Paper shape to check: DEEPMAP converges faster and higher than all GNNs
// and clears the best kernel's flat line by a large margin.
#include <cstdio>
#include <iostream>

#include "baselines/dcnn.h"
#include "baselines/dgcnn.h"
#include "baselines/gin.h"
#include "baselines/kernel_svm.h"
#include "baselines/patchysan.h"
#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

namespace {

using namespace deepmap;

std::vector<double> ToCurve(const nn::TrainHistory& history) {
  std::vector<double> curve;
  for (const auto& e : history.epochs) curve.push_back(100.0 * e.accuracy);
  return curve;
}

std::vector<double> DeepMapCurve(const graph::GraphDataset& ds,
                                 const eval::BenchOptions& options) {
  core::DeepMapConfig config = eval::DefaultDeepMapConfig(
      kernels::FeatureMapKind::kWlSubtree, options);
  core::DeepMapPipeline pipeline(ds, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  return ToCurve(
      nn::TrainClassifier(model, pipeline.inputs(), ds.labels(), config.train));
}

std::vector<double> GnnCurve(const graph::GraphDataset& ds,
                             eval::GnnKind kind,
                             const eval::BenchOptions& options) {
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  nn::TrainConfig train;
  train.epochs = options.epochs;
  train.batch_size = options.batch_size;
  const int classes = ds.NumClasses();
  switch (kind) {
    case eval::GnnKind::kDgcnn: {
      auto samples = baselines::BuildDgcnnSamples(ds, provider);
      baselines::DgcnnConfig config;
      config.sortpool_k =
          std::max(2, static_cast<int>(ds.Stats().avg_vertices * 0.6));
      baselines::DgcnnModel model(provider.dim, classes, config);
      return ToCurve(nn::TrainClassifier(model, samples, ds.labels(), train));
    }
    case eval::GnnKind::kGin: {
      auto samples = baselines::BuildGinSamples(ds, provider);
      baselines::GinModel model(provider.dim, classes, baselines::GinConfig{});
      return ToCurve(nn::TrainClassifier(model, samples, ds.labels(), train));
    }
    case eval::GnnKind::kDcnn: {
      auto samples = baselines::BuildDcnnSamples(ds, provider, 3);
      baselines::DcnnModel model(provider.dim, 3, classes,
                                 baselines::DcnnConfig{});
      return ToCurve(nn::TrainClassifier(model, samples, ds.labels(), train));
    }
    case eval::GnnKind::kPatchySan: {
      baselines::PatchySanConfig config;
      config.sequence_length = baselines::DefaultPatchySanSequenceLength(ds);
      config.field_size = 5;
      auto samples = baselines::BuildPatchySanInputs(ds, provider, config);
      baselines::PatchySanModel model(provider.dim, classes, config);
      return ToCurve(nn::TrainClassifier(model, samples, ds.labels(), train));
    }
  }
  return {};
}

double BestKernelTrainAccuracy(const graph::GraphDataset& ds,
                               const eval::BenchOptions& options) {
  double best = 0;
  for (auto kind : {kernels::FeatureMapKind::kGraphlet,
                    kernels::FeatureMapKind::kShortestPath,
                    kernels::FeatureMapKind::kWlSubtree}) {
    auto maps = kernels::ComputeGraphFeatureMaps(
        ds, eval::DefaultFeatureConfig(kind, options));
    auto gram = kernels::GramMatrix(maps, true);
    std::vector<int> all(ds.size());
    for (int i = 0; i < ds.size(); ++i) all[i] = i;
    baselines::KernelSvm svm;
    baselines::SvmConfig svm_config;
    svm_config.c = 10.0;
    svm.Train(gram, ds.labels(), all, svm_config);
    best = std::max(best, 100.0 * svm.Evaluate(gram, ds.labels(), all));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  if (!options.full) {
    options.epochs = 15;
    options.max_dense_dim = 64;
  }
  options.PrintBanner(
      "Figure 7: representational power, DEEPMAP vs GNN baselines (SYNTHIE)");

  auto ds = datasets::MakeDataset("SYNTHIE", options.dataset_options());
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr, "[fig7] DEEPMAP ...\n");
  std::vector<std::vector<double>> curves{DeepMapCurve(ds.value(), options)};
  std::vector<std::string> header{"Epoch", "DEEPMAP"};
  for (auto kind : {eval::GnnKind::kDgcnn, eval::GnnKind::kGin,
                    eval::GnnKind::kDcnn, eval::GnnKind::kPatchySan}) {
    std::fprintf(stderr, "[fig7] %s ...\n", eval::GnnKindName(kind).c_str());
    header.push_back(eval::GnnKindName(kind));
    curves.push_back(GnnCurve(ds.value(), kind, options));
  }
  std::fprintf(stderr, "[fig7] best kernel ...\n");
  header.push_back("BestKernel");
  double best_kernel = BestKernelTrainAccuracy(ds.value(), options);

  Table table(header);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::string> row{std::to_string(epoch + 1)};
    for (const auto& curve : curves) {
      row.push_back(FormatDouble(
          epoch < static_cast<int>(curve.size()) ? curve[epoch] : 0, 2));
    }
    row.push_back(FormatDouble(best_kernel, 2));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("\nPaper shape: DEEPMAP converges fastest/highest; all curves "
              "should end above DCNN; best kernel stays flat.\n");
  return 0;
}
