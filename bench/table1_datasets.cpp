// Reproduces Table 1: statistics of the benchmark datasets.
//
// Prints the generated (synthetic stand-in) statistics next to the paper's
// reference values. Run with --full to generate paper-sized datasets; the
// default generates scaled-down counts (per-graph statistics are unaffected
// by the count).
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "datasets/registry.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Table 1: dataset statistics (measured vs paper)");

  Table table({"Dataset", "Size", "Size*", "Class#", "Class#*", "AvgNode",
               "AvgNode*", "AvgEdge", "AvgEdge*", "Label#", "Label#*"});
  for (const auto& spec : datasets::PaperDatasets()) {
    datasets::DatasetOptions ds_options = options.dataset_options();
    ds_options.degrees_as_labels = false;  // report N/A like the paper
    auto ds = datasets::MakeDataset(spec.name, ds_options);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    graph::DatasetStats stats = ds.value().Stats();
    table.AddRow({spec.name, std::to_string(stats.size),
                  std::to_string(spec.size), std::to_string(stats.num_classes),
                  std::to_string(spec.num_classes),
                  FormatDouble(stats.avg_vertices, 2),
                  FormatDouble(spec.avg_vertices, 2),
                  FormatDouble(stats.avg_edges, 2),
                  FormatDouble(spec.avg_edges, 2),
                  stats.has_vertex_labels
                      ? std::to_string(stats.num_vertex_labels)
                      : "N/A",
                  spec.label_count < 0 ? "N/A"
                                       : std::to_string(spec.label_count)});
  }
  std::printf("(columns marked * are the paper's Table 1 values; generated "
              "Size is scaled unless --full)\n\n");
  table.Print(std::cout);
  return 0;
}
