// Benchmarks dynamic-graph serving (graph/dynamic_graph.h + the sharded
// streaming corpus) and writes the results as JSON (default:
// BENCH_dynamic_serve.json in the working directory; argv[1] overrides).
//
// Two sections, each with an acceptance gate (same contract style as spmm):
//
//   incremental: per-delta cost of the DynamicGraph path vs a from-scratch
//     recomputation on the identically mutated 10^4-vertex R-MAT graph,
//     split into the two maintained quantities. Every step cross-checks the
//     fingerprints byte-for-byte. Gates:
//       fingerprint (the ClassifyDelta serving path): Apply + repaired WL
//         fingerprint vs full WlHashFingerprint, median speedup >= 10x;
//       centrality: warm-started vs cold EigenvectorCentrality on the same
//         graph, median speedup >= 2x (power iteration still has to sweep
//         the whole graph; the warm start only cuts the round count).
//
//   streaming: a multi-shard TU corpus is written and re-read through
//     ShardedTuCorpus; the resident set is one shard by construction, and
//     the gate pins it — the largest materialized batch must stay within
//     2x of total_bytes / num_shards (the factor absorbs shard-size
//     rounding), i.e. peak memory is bounded by one shard, not the corpus.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "datasets/random_graphs.h"
#include "datasets/sharded_tu_corpus.h"
#include "graph/centrality.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/isomorphism.h"

namespace {

using namespace deepmap;
using Clock = std::chrono::steady_clock;

double MedianMs(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

/// Approximate heap footprint of one graph: labels plus both directions of
/// every adjacency entry. Good enough to compare a batch against the corpus.
size_t ApproxGraphBytes(const graph::Graph& g) {
  return sizeof(graph::Graph) +
         static_cast<size_t>(g.NumVertices()) *
             (sizeof(graph::Label) + sizeof(std::vector<graph::Vertex>)) +
         2 * static_cast<size_t>(g.NumEdges()) * sizeof(graph::Vertex);
}

graph::Graph RandomSmallGraph(Rng& rng) {
  const int n = 6 + static_cast<int>(rng.Index(20));
  graph::Graph g;
  for (int v = 0; v < n; ++v) {
    g.AddVertex(static_cast<graph::Label>(rng.Index(3)));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(0.2)) g.AddEdge(u, v);
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_dynamic_serve.json";
  const bool full = (argc > 2 && std::strcmp(argv[2], "--full") == 0) ||
                    (std::getenv("DEEPMAP_BENCH_FULL") != nullptr);

  const int n = 10000;
  const int edges_per_vertex = 8;
  const int num_deltas = full ? 400 : 120;
  const int wl_iterations = 2;

  bench::JsonValue doc = bench::BenchDoc("dynamic_serve");
  doc.Obj("flags")
      .Set("n", n)
      .Set("edges_per_vertex", edges_per_vertex)
      .Set("num_deltas", num_deltas)
      .Set("wl_iterations", wl_iterations)
      .Set("full", full);
  doc.Obj("seeds").Set("graph", int64_t{0xD19A});

  // ---- incremental vs full recompute ---------------------------------------
  Rng rng(0xD19A);
  graph::Graph base = datasets::RMat(n, edges_per_vertex, rng);
  graph::DynamicGraphOptions options;
  options.wl_iterations = wl_iterations;
  graph::DynamicGraph dyn(base, options);
  (void)dyn.Fingerprint();  // prime the maintained state
  (void)dyn.Centrality();

  graph::Graph shadow = base;  // mutated in lockstep, recomputed from scratch

  std::vector<double> incr_fp_ms, full_fp_ms, warm_cent_ms, cold_cent_ms;
  incr_fp_ms.reserve(num_deltas);
  full_fp_ms.reserve(num_deltas);
  warm_cent_ms.reserve(num_deltas);
  cold_cent_ms.reserve(num_deltas);
  int mismatches = 0;
  int warm_iterations_total = 0, cold_iterations_total = 0;

  for (int d = 0; d < num_deltas; ++d) {
    // Toggle a random pair (retry until valid) so inserts and deletes mix.
    graph::Vertex u = 0, v = 0;
    do {
      u = static_cast<graph::Vertex>(rng.Index(n));
      v = static_cast<graph::Vertex>(rng.Index(n));
    } while (u == v);
    const bool insert = !dyn.graph().HasEdge(u, v);
    const graph::EdgeUpdate update =
        insert ? graph::EdgeUpdate::Insert(u, v)
               : graph::EdgeUpdate::Remove(u, v);

    // Serving path: delta -> repaired fingerprint (what ClassifyDelta runs).
    auto start = Clock::now();
    if (!dyn.Apply(update).ok()) std::abort();
    const std::string& incr_fp = dyn.Fingerprint();
    auto end = Clock::now();
    incr_fp_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());

    start = Clock::now();
    (void)dyn.Centrality();
    end = Clock::now();
    warm_cent_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    warm_iterations_total += dyn.last_centrality_iterations();

    if (insert) {
      if (!shadow.AddEdge(u, v)) std::abort();
    } else {
      if (!shadow.RemoveEdge(u, v)) std::abort();
    }
    start = Clock::now();
    const std::string full_fp = graph::WlHashFingerprint(shadow, wl_iterations);
    end = Clock::now();
    full_fp_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());

    int cold_iterations = 0;
    graph::CentralityOptions cold;
    cold.iterations_used = &cold_iterations;
    start = Clock::now();
    (void)graph::EigenvectorCentrality(shadow, cold);
    end = Clock::now();
    cold_cent_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    cold_iterations_total += cold_iterations;

    if (incr_fp != full_fp) ++mismatches;
  }

  const double fp_incr_median = MedianMs(incr_fp_ms);
  const double fp_full_median = MedianMs(full_fp_ms);
  const double fp_speedup =
      fp_incr_median > 0 ? fp_full_median / fp_incr_median : 0.0;
  const double cent_warm_median = MedianMs(warm_cent_ms);
  const double cent_cold_median = MedianMs(cold_cent_ms);
  const double cent_speedup =
      cent_warm_median > 0 ? cent_cold_median / cent_warm_median : 0.0;
  const bool incremental_pass =
      mismatches == 0 && fp_speedup >= 10.0 && cent_speedup >= 2.0;

  bench::JsonValue& incr = doc.Obj("incremental");
  incr.Set("graph_vertices", n)
      .Set("graph_edges", base.NumEdges())
      .Set("deltas", num_deltas)
      .Set("fingerprint_mismatches", mismatches);
  incr.Obj("fingerprint")
      .Set("incremental_median_ms", bench::JsonValue::Fixed(fp_incr_median, 4))
      .Set("full_median_ms", bench::JsonValue::Fixed(fp_full_median, 4))
      .Set("speedup", bench::JsonValue::Fixed(fp_speedup, 2))
      .Set("gate", "speedup >= 10");
  incr.Obj("centrality")
      .Set("warm_median_ms", bench::JsonValue::Fixed(cent_warm_median, 4))
      .Set("cold_median_ms", bench::JsonValue::Fixed(cent_cold_median, 4))
      .Set("speedup", bench::JsonValue::Fixed(cent_speedup, 2))
      .Set("warm_iterations_mean",
           bench::JsonValue::Fixed(
               static_cast<double>(warm_iterations_total) / num_deltas, 2))
      .Set("cold_iterations_mean",
           bench::JsonValue::Fixed(
               static_cast<double>(cold_iterations_total) / num_deltas, 2))
      .Set("gate", "speedup >= 2");
  incr.Set("pass", incremental_pass);

  // ---- streaming corpus ----------------------------------------------------
  const int corpus_graphs = full ? 4000 : 1200;
  const int shard_size = corpus_graphs / 8;  // 8 equal shards
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("deepmap_bench_corpus_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  size_t total_bytes = 0;
  {
    datasets::ShardedTuCorpusWriter::Options wopts;
    wopts.shard_size = shard_size;
    datasets::ShardedTuCorpusWriter writer(dir.string(), "STREAM", wopts);
    Rng corpus_rng(0xC0FFEE);
    for (int i = 0; i < corpus_graphs; ++i) {
      graph::Graph g = RandomSmallGraph(corpus_rng);
      total_bytes += ApproxGraphBytes(g);
      if (!writer.Append(std::move(g), static_cast<int>(corpus_rng.Index(2)))
               .ok()) {
        std::abort();
      }
    }
    if (!writer.Finalize().ok()) std::abort();
  }

  size_t peak_batch_bytes = 0;
  int64_t streamed = 0;
  int num_shards = 0;
  double stream_ms = 0.0;
  {
    auto corpus = datasets::ShardedTuCorpus::Open(dir.string(), "STREAM");
    if (!corpus.ok()) std::abort();
    num_shards = corpus.value().num_shards();
    auto start = Clock::now();
    while (!corpus.value().Done()) {
      auto batch = corpus.value().NextBatch();
      if (!batch.ok()) std::abort();
      size_t batch_bytes = 0;
      for (int i = 0; i < batch.value().size(); ++i) {
        batch_bytes += ApproxGraphBytes(batch.value().graph(i));
      }
      peak_batch_bytes = std::max(peak_batch_bytes, batch_bytes);
      streamed += batch.value().size();
    }  // the batch (one shard) dies here: resident set is one shard
    stream_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
  }
  std::filesystem::remove_all(dir);

  const double shard_budget_bytes =
      2.0 * static_cast<double>(total_bytes) / num_shards;
  const bool streaming_pass =
      streamed == corpus_graphs && num_shards >= 4 &&
      static_cast<double>(peak_batch_bytes) <= shard_budget_bytes;

  bench::JsonValue& stream = doc.Obj("streaming");
  stream.Set("corpus_graphs", corpus_graphs)
      .Set("num_shards", num_shards)
      .Set("shard_size", shard_size)
      .Set("corpus_bytes", total_bytes)
      .Set("peak_batch_bytes", peak_batch_bytes)
      .Set("shard_budget_bytes",
           bench::JsonValue::Fixed(shard_budget_bytes, 0))
      .Set("stream_ms", bench::JsonValue::Fixed(stream_ms, 2))
      .Set("pass", streaming_pass);

  doc.Set("pass", incremental_pass && streaming_pass);
  bench::WriteBenchFile(out_path, doc);

  std::printf(
      "dynamic_serve: fingerprint %.4f ms vs %.4f ms (%.1fx), centrality "
      "%.4f ms vs %.4f ms (%.1fx), %d mismatches -> %s\n",
      fp_incr_median, fp_full_median, fp_speedup, cent_warm_median,
      cent_cold_median, cent_speedup, mismatches,
      incremental_pass ? "PASS" : "FAIL");
  std::printf(
      "dynamic_serve: streamed %lld graphs over %d shards, peak batch "
      "%zu bytes vs one-shard budget %.0f -> %s\n",
      static_cast<long long>(streamed), num_shards, peak_batch_bytes,
      shard_budget_bytes, streaming_pass ? "PASS" : "FAIL");
  return (incremental_pass && streaming_pass) ? 0 : 1;
}
