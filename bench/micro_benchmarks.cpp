// Google-benchmark microbenchmarks of the substrates DEEPMAP is built on:
// centrality, WL refinement, SP feature maps, graphlet sampling, receptive
// fields, Gram matrices, and the CNN forward/backward passes. These back the
// complexity claims in the paper's Section 4.2.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/deepmap.h"
#include "core/receptive_field.h"
#include "datasets/random_graphs.h"
#include "graph/algorithms.h"
#include "graph/centrality.h"
#include "kernels/graphlet.h"
#include "kernels/kernel_matrix.h"
#include "kernels/shortest_path.h"
#include "kernels/wl.h"
#include "nn/conv1d.h"
#include "nn/gemm.h"
#include "nn/softmax_xent.h"
#include "nn/tensor.h"

namespace {

using namespace deepmap;

graph::Graph MakeGraph(int n, double avg_degree, uint64_t seed) {
  Rng rng(seed);
  double p = avg_degree / std::max(1, n - 1);
  return datasets::ErdosRenyi(n, p, rng);
}

void BM_EigenvectorCentrality(benchmark::State& state) {
  graph::Graph g = MakeGraph(static_cast<int>(state.range(0)), 4.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::EigenvectorCentrality(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EigenvectorCentrality)->Range(16, 256)->Complexity();

void BM_AllPairsShortestPaths(benchmark::State& state) {
  graph::Graph g = MakeGraph(static_cast<int>(state.range(0)), 4.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::AllPairsShortestPaths(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairsShortestPaths)->Range(16, 128)->Complexity();

void BM_WlRefinement(benchmark::State& state) {
  graph::Graph g = MakeGraph(static_cast<int>(state.range(0)), 4.0, 3);
  for (auto _ : state) {
    kernels::WlRefinement refinery(kernels::WlConfig{3});
    benchmark::DoNotOptimize(kernels::VertexWlFeatureMaps(g, refinery));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WlRefinement)->Range(16, 256)->Complexity();

void BM_SpVertexFeatureMaps(benchmark::State& state) {
  graph::Graph g = MakeGraph(static_cast<int>(state.range(0)), 4.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::VertexSpFeatureMaps(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpVertexFeatureMaps)->Range(16, 128)->Complexity();

void BM_GraphletSampling(benchmark::State& state) {
  graph::Graph g = MakeGraph(64, 6.0, 5);
  kernels::GraphletConfig config;
  config.k = static_cast<int>(state.range(0));
  config.samples_per_vertex = 20;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::VertexGraphletFeatureMaps(g, config, rng));
  }
}
BENCHMARK(BM_GraphletSampling)->Arg(3)->Arg(4)->Arg(5);

void BM_ReceptiveField(benchmark::State& state) {
  graph::Graph g = MakeGraph(128, 6.0, 7);
  auto centrality = graph::EigenvectorCentrality(g);
  int r = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildAllReceptiveFields(g, r, centrality));
  }
}
BENCHMARK(BM_ReceptiveField)->Arg(3)->Arg(5)->Arg(10);

void BM_GramMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<kernels::SparseFeatureMap> maps(n);
  for (auto& m : maps) {
    for (int f = 0; f < 50; ++f) m.Add(rng.Index(500), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::GramMatrix(maps, true));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GramMatrix)->Range(16, 128)->Complexity();

nn::Tensor RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t({rows, cols});
  for (int i = 0; i < t.NumElements(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// Reference triple loop (the seed implementation of MatMul) for comparison
// against the blocked GEMM core.
void BM_GemmNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a = RandomMatrix(n, n, 11);
  nn::Tensor b = RandomMatrix(n, n, 12);
  for (auto _ : state) {
    nn::Tensor out({n, n});
    for (int i = 0; i < n; ++i) {
      for (int t = 0; t < n; ++t) {
        const float av = a.at(i, t);
        for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(t, j);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmNaive)->Range(32, 256)->Complexity();

void BM_GemmBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  nn::Tensor a = RandomMatrix(n, n, 11);
  nn::Tensor b = RandomMatrix(n, n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b).data());
  }
  state.SetComplexityN(n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmBlocked)->Range(32, 256)->Complexity();

void BM_Conv1DForward(benchmark::State& state) {
  Rng rng(9);
  const int length = static_cast<int>(state.range(0));
  nn::Conv1D conv(64, 32, 5, 5, rng);
  nn::Tensor x({length * 5, 64});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  state.SetComplexityN(length);
}
BENCHMARK(BM_Conv1DForward)->Range(8, 128)->Complexity();

// Backward pass through the im2col-lowered convolution (dW and dX GEMMs).
void BM_Conv1DBackward(benchmark::State& state) {
  Rng rng(9);
  const int length = static_cast<int>(state.range(0));
  nn::Conv1D conv(64, 32, 5, 5, rng);
  nn::Tensor x({length * 5, 64});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal());
  }
  nn::Tensor out = conv.Forward(x, true);
  nn::Tensor grad(out.shape());
  for (int i = 0; i < grad.NumElements(); ++i) {
    grad.data()[i] = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(grad).data());
  }
  state.SetComplexityN(length);
}
BENCHMARK(BM_Conv1DBackward)->Range(8, 128)->Complexity();

void BM_DeepMapForwardBackward(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  core::DeepMapConfig config;
  config.receptive_field_size = 5;
  core::DeepMapModel model(64, w, 2, config);
  Rng rng(10);
  nn::Tensor input({w * 5, 64});
  for (int i = 0; i < input.NumElements(); ++i) {
    input.data()[i] = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    nn::Tensor logits = model.Forward(input, true);
    nn::LossAndGrad lg = nn::SoftmaxCrossEntropy(logits, 0);
    model.Backward(lg.grad_logits);
    benchmark::DoNotOptimize(lg.loss);
  }
  state.SetComplexityN(w);
}
BENCHMARK(BM_DeepMapForwardBackward)->Range(8, 64)->Complexity();

}  // namespace

BENCHMARK_MAIN();
