// Extension bench (beyond the paper's tables): the Section 6 future-work
// proposal — random walks on HIGH-ORDER transition structure — against the
// classic first-order random-walk kernel, plus the WL optimal-assignment
// kernel (the paper's OA reference [21]) against plain WL.
#include <cstdio>
#include <iostream>

#include "baselines/kernel_svm.h"
#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"
#include "kernels/random_walk.h"
#include "kernels/wl_oa.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner(
      "Extensions: high-order random walks (paper Sec. 6) and WL-OA");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Method", "Accuracy"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    auto run_kernel = [&](const std::string& method,
                          const kernels::Matrix& gram) {
      auto cv = baselines::KernelSvmCrossValidate(gram, ds.value().labels(),
                                                  options.folds, options.seed);
      table.AddRow({name, method,
                    FormatAccuracy(cv.mean_accuracy, cv.stddev)});
    };
    for (int order : {1, 2, 3}) {
      std::fprintf(stderr, "[ext] %s / RW order %d ...\n", name.c_str(),
                   order);
      kernels::RandomWalkConfig config;
      config.order = order;
      run_kernel("RW-order" + std::to_string(order),
                 kernels::RandomWalkKernelMatrix(ds.value(), config));
    }
    std::fprintf(stderr, "[ext] %s / WL + WL-OA ...\n", name.c_str());
    {
      kernels::VertexFeatureConfig wl = eval::DefaultFeatureConfig(
          kernels::FeatureMapKind::kWlSubtree, options);
      auto maps = kernels::ComputeGraphFeatureMaps(ds.value(), wl);
      run_kernel("WL", kernels::GramMatrix(maps, true));
      run_kernel("WL-OA", kernels::WlOptimalAssignmentKernelMatrix(
                              ds.value(), wl.wl));
    }
  }
  table.Print(std::cout);
  std::printf("\nShape check: higher-order walks add long-range interaction "
              "information (the paper's Sec. 6 conjecture); WL-OA typically "
              "tracks or beats plain WL.\n");
  return 0;
}
