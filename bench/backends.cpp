// Roofline-style comparison of the pluggable inference backends.
//
//   $ ./build/bench/backends [--out=BENCH_backends.json] [--dataset=PTC_MM]
//                            [--requests=N] [--epochs=N] [--reps=N]
//
// Trains one DEEPMAP model, registers it twice — once per backend ("fp32"
// exact reference, "int8" quantized AVX2) — through the registry's
// calibration guardrail, then drives each servable through an
// InferenceEngine (cache off, so every request runs the full forward) at
// batch sizes {1, 8, 32, 128}. Reports wall graphs/sec, forward-stage
// graphs/sec (total requests over the summed forward-stage time), and the
// nominal GFLOP/s each backend sustains on the forward pass.
//
// Gates (exit nonzero on failure):
//   - the int8 servable must survive the calibration guardrail (argmax
//     disagreement within the configured budget, no fp32 fallback), and
//   - int8 must reach >= 2x fp32 forward-stage graphs/sec at every batch
//     size >= 32.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/int8_backend.h"
#include "nn/model.h"
#include "serve/engine.h"

namespace {

using namespace deepmap;

struct BenchArgs {
  std::string dataset = "PTC_MM";
  std::string out = "BENCH_backends.json";
  int requests = 256;
  int epochs = 2;
  int reps = 5;
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--dataset=")) {
      args.dataset = v;
    } else if (const char* v = value("--out=")) {
      args.out = v;
    } else if (const char* v = value("--requests=")) {
      args.requests = std::atoi(v);
    } else if (const char* v = value("--epochs=")) {
      args.epochs = std::atoi(v);
    } else if (const char* v = value("--reps=")) {
      args.reps = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Nominal forward-pass FLOPs for one graph: every multiply-add in the conv
/// stack + dense head at full sequence length (the zero-row skip makes real
/// work smaller; nominal keeps the roofline comparable across backends).
double ForwardFlopsPerGraph(const core::DeepMapConfig& config, int m, int w,
                            int num_classes) {
  const double r = config.receptive_field_size;
  const double c1 = config.conv1_channels;
  const double c2 = config.conv2_channels;
  const double c3 = config.conv3_channels;
  const double dense = config.dense_units;
  const double readout_dim = config.readout == core::ReadoutKind::kConcat
                                 ? c3 * w
                                 : c3;
  return 2.0 * (w * (r * m * c1 + c1 * c2 + c2 * c3) + readout_dim * dense +
                dense * num_classes);
}

struct BackendRun {
  int batch = 0;
  double wall_graphs_per_sec = 0.0;
  double forward_graphs_per_sec = 0.0;
  double forward_gflops = 0.0;
};

BackendRun RunBatchOnce(const std::shared_ptr<serve::ServableModel>& servable,
                        const std::vector<const graph::Graph*>& requests,
                        int max_batch, double flops_per_graph) {
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = max_batch;
  options.batcher.max_wait_us = 2000;
  options.batcher.queue_capacity = requests.size() + 16;
  options.cache_capacity = 0;  // every request must run the forward stage
  serve::InferenceEngine engine(servable, options);

  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) futures.push_back(engine.Submit(*g));
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  BackendRun run;
  run.batch = max_batch;
  run.wall_graphs_per_sec = static_cast<double>(requests.size()) / elapsed;
  // Forward-stage throughput: the stage latency series records one sample
  // per executed batch, so count * mean is the total time spent inside
  // CompiledModel forwards (in us).
  const serve::LatencySummary forward = engine.metrics().Latency("forward");
  const double forward_total_s =
      static_cast<double>(forward.count) * forward.mean / 1e6;
  if (forward_total_s > 0.0) {
    run.forward_graphs_per_sec =
        static_cast<double>(requests.size()) / forward_total_s;
    run.forward_gflops = run.forward_graphs_per_sec * flops_per_graph / 1e9;
  }
  return run;
}

/// Best-of-N, same policy as bench/spmm.cpp: a single-core box shares the CPU
/// with whatever else the OS schedules, so one shot can be off by 2-3x; the
/// fastest repetition is the closest estimate of the kernel's real cost.
BackendRun RunBatch(const std::shared_ptr<serve::ServableModel>& servable,
                    const std::vector<const graph::Graph*>& requests,
                    int max_batch, double flops_per_graph, int reps) {
  BackendRun best;
  for (int r = 0; r < reps; ++r) {
    BackendRun run = RunBatchOnce(servable, requests, max_batch,
                                  flops_per_graph);
    if (run.forward_graphs_per_sec > best.forward_graphs_per_sec) {
      best.forward_graphs_per_sec = run.forward_graphs_per_sec;
      best.forward_gflops = run.forward_gflops;
      best.batch = run.batch;
    }
    if (run.wall_graphs_per_sec > best.wall_graphs_per_sec) {
      best.wall_graphs_per_sec = run.wall_graphs_per_sec;
    }
  }
  return best;
}

std::string Fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);

  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset(args.dataset, options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.train.epochs = args.epochs;
  config.train.batch_size = 8;

  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  nn::TrainClassifier(model, pipeline.inputs(), dataset.labels(),
                      config.train);
  const double flops_per_graph = ForwardFlopsPerGraph(
      config, pipeline.feature_dim(), pipeline.sequence_length(),
      pipeline.num_classes());
  std::printf("%s: %d graphs, m=%d, w=%d, %.0f nominal flops/graph, avx2=%s\n\n",
              dataset.name().c_str(), dataset.size(), pipeline.feature_dim(),
              pipeline.sequence_length(), flops_per_graph,
              nn::Int8Backend::CpuHasAvx2() ? "yes" : "no");

  const std::vector<int> batches = {1, 8, 32, 128};
  std::vector<const graph::Graph*> requests;
  requests.reserve(static_cast<size_t>(args.requests));
  for (int i = 0; i < args.requests; ++i) {
    requests.push_back(&dataset.graph(i % dataset.size()));
  }

  serve::ModelRegistry registry;
  serve::ModelRegistry::Options load_options;
  load_options.calibration_graphs = 32;
  load_options.max_argmax_disagreement = 0.05;
  struct BackendResult {
    std::string name;
    std::shared_ptr<serve::ServableModel> servable;
    std::vector<BackendRun> runs;
  };
  std::vector<BackendResult> results;
  for (const std::string& backend : {std::string("fp32"), std::string("int8")}) {
    load_options.backend = backend;
    if (Status s = registry.Adopt(backend, dataset, config, model, load_options);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    results.push_back({backend, registry.Get(backend), {}});
  }

  const serve::BackendReport& int8_report =
      results[1].servable->backend_report();
  std::printf("int8 guardrail: %d/%d argmax disagreements on calibration, "
              "max |logit diff| %.4g, active backend '%s'\n\n",
              int8_report.argmax_disagreements, int8_report.calibration_size,
              int8_report.max_abs_logit_diff,
              results[1].servable->backend_name());
  if (int8_report.fell_back) {
    std::fprintf(stderr,
                 "gate failed: int8 backend fell back to fp32 "
                 "(argmax disagreement over budget)\n");
    return 1;
  }

  Table table({"backend", "batch", "wall graphs/sec", "forward graphs/sec",
               "forward GFLOP/s"});
  for (BackendResult& result : results) {
    for (int batch : batches) {
      BackendRun run = RunBatch(result.servable, requests, batch,
                                flops_per_graph, args.reps);
      table.AddRow({result.name, std::to_string(batch),
                    Fmt(run.wall_graphs_per_sec),
                    Fmt(run.forward_graphs_per_sec),
                    Fmt(run.forward_gflops, "%.2f")});
      result.runs.push_back(run);
    }
  }
  table.Print(std::cout);

  // Acceptance gate: quantized forward stage >= 2x fp32 at every batch >= 32.
  bool speedup_ok = true;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (batches[i] < 32) continue;
    const double fp32 = results[0].runs[i].forward_graphs_per_sec;
    const double int8 = results[1].runs[i].forward_graphs_per_sec;
    const double speedup = fp32 > 0.0 ? int8 / fp32 : 0.0;
    std::printf("batch=%d: int8 forward %.1f vs fp32 %.1f graphs/sec "
                "(%.2fx)\n",
                batches[i], int8, fp32, speedup);
    if (speedup < 2.0) speedup_ok = false;
  }

  using bench::JsonValue;
  JsonValue doc = bench::BenchDoc("backends");
  doc.Obj("flags")
      .Set("dataset", args.dataset)
      .Set("requests", args.requests)
      .Set("epochs", args.epochs)
      .Set("reps", args.reps);
  doc.Set("avx2", nn::Int8Backend::CpuHasAvx2());
  doc.Set("nominal_flops_per_graph", flops_per_graph);
  JsonValue& out_backends = doc.Arr("backends");
  for (const BackendResult& result : results) {
    const serve::BackendReport& report = result.servable->backend_report();
    JsonValue& entry = out_backends.Push(
        JsonValue::Object()
            .Set("backend", result.name)
            .Set("active_backend", result.servable->backend_name())
            .Set("packed_weight_bytes",
                 result.servable->compiled().PackedWeightBytes())
            .Set("calibration_graphs", report.calibration_size)
            .Set("argmax_disagreements", report.argmax_disagreements)
            .Set("max_abs_logit_diff", double{report.max_abs_logit_diff})
            .Set("fell_back", report.fell_back));
    JsonValue& rows = entry.Arr("runs");
    for (const BackendRun& run : result.runs) {
      rows.Push(JsonValue::Object()
                    .Set("batch", run.batch)
                    .Set("wall_graphs_per_sec",
                         JsonValue::Fixed(run.wall_graphs_per_sec, 1))
                    .Set("forward_graphs_per_sec",
                         JsonValue::Fixed(run.forward_graphs_per_sec, 1))
                    .Set("forward_gflops",
                         JsonValue::Fixed(run.forward_gflops, 3)));
    }
  }
  doc.Set("acceptance_int8_2x_forward_at_batch32", speedup_ok);
  if (!bench::WriteBenchFile(args.out, doc)) return 1;

  if (!speedup_ok) {
    std::fprintf(stderr,
                 "gate failed: int8 forward-stage speedup < 2x at batch >= 32\n");
    return 1;
  }
  return 0;
}
