// Reproduces Table 5: mean wall-clock runtime per training epoch of DEEPMAP
// and the GNN baselines. Absolute values differ from the paper (single CPU
// core here vs a 32-core server + RTX 2080 there); the shape to check is
// relative cost across methods and datasets.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"
#include "eval/paper_reference.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  // Runtime measurement needs few epochs; override unless --full.
  if (!options.full) {
    options.epochs = 3;
    options.folds = 2;
  }
  options.PrintBanner("Table 5: runtime per epoch (ms)");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Method", "Measured(ms)", "Paper(ms)"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    auto add = [&](const std::string& method, double ms) {
      auto paper = eval::PaperTable5Ms(name, method);
      table.AddRow({name, method, FormatDouble(ms, 1),
                    paper.has_value() ? FormatDouble(*paper, 1) : "N/A"});
    };
    std::fprintf(stderr, "[table5] %s ...\n", name.c_str());
    add("DEEPMAP",
        eval::RunDeepMap(ds.value(), kernels::FeatureMapKind::kWlSubtree,
                         options)
            .mean_epoch_ms);
    for (auto kind : {eval::GnnKind::kDgcnn, eval::GnnKind::kGin,
                      eval::GnnKind::kDcnn, eval::GnnKind::kPatchySan}) {
      add(eval::GnnKindName(kind),
          eval::RunGnn(ds.value(), kind, /*use_vertex_feature_maps=*/false,
                       options)
              .mean_epoch_ms);
    }
  }
  table.Print(std::cout);
  std::printf("\nNote: paper values measured on a 32-core Xeon + RTX 2080 "
              "with full-size datasets; compare ratios, not absolutes.\n");
  return 0;
}
