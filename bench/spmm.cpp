// Benchmarks the sparse graph substrate (CSR + SpMM, src/sparse/) against
// the legacy dense GraphOp backend, and writes the results as JSON
// (default: BENCH_spmm.json in the working directory; pass a path as
// argv[1] to override).
//
// One row per (generator, n, density): wall time of a GcnNorm propagation
// S X for X [n, 32] under the dense backend vs the sparse backend at 1 and
// 8 threads, propagations/sec, and operator bytes per graph (dense n^2
// doubles vs the CSR arrays incl. the cached transpose). Every sparse
// result is byte-compared against the dense reference before timing is
// reported ("bit_identical").
//
// The 10^4-vertex R-MAT row is the acceptance gate: the sparse path must
// beat dense by >= 10x in both wall clock and operator memory; the binary
// exits nonzero when either bound is violated (same contract style as
// obs_overhead).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "datasets/random_graphs.h"
#include "graph/graph.h"
#include "nn/graph_conv.h"
#include "nn/tensor.h"

namespace {

using namespace deepmap;
using Clock = std::chrono::steady_clock;

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    auto end = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

void PinThreads(const char* value) { setenv("DEEPMAP_NUM_THREADS", value, 1); }

bool SameBits(const nn::Tensor& a, const nn::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.NumElements())) == 0;
}

struct Row {
  std::string generator;
  int n = 0;
  int64_t edges = 0;
  int64_t nnz = 0;
  double dense_ms = 0, sparse_ms = 0, sparse8_ms = 0;
  size_t dense_bytes = 0, sparse_bytes = 0;
  bool identical = false;
  bool acceptance = false;  // the >= 10x gate applies to this row
};

Row BenchGraph(const std::string& generator, const graph::Graph& g,
               bool acceptance) {
  const int n = g.NumVertices();
  const int c = 32;
  Rng rng(0xFEA7u + static_cast<uint64_t>(n));
  nn::Tensor x({n, c});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal());
  }

  nn::GraphOp::SetDefaultBackend(nn::GraphOp::Backend::kDense);
  nn::GraphOp dense = nn::GraphOp::GcnNorm(g);
  nn::GraphOp::SetDefaultBackend(nn::GraphOp::Backend::kSparse);
  nn::GraphOp sparse = nn::GraphOp::GcnNorm(g);

  const int reps = n >= 10000 ? 3 : 10;
  Row row;
  row.generator = generator;
  row.n = n;
  row.edges = g.NumEdges();
  row.nnz = sparse.nnz();
  row.acceptance = acceptance;
  nn::Tensor dense_out, sparse_out, sparse8_out;
  PinThreads("1");
  row.dense_ms = TimeMs([&] { dense_out = dense.Apply(x); }, reps);
  row.sparse_ms = TimeMs([&] { sparse_out = sparse.Apply(x); }, reps);
  PinThreads("8");
  row.sparse8_ms = TimeMs([&] { sparse8_out = sparse.Apply(x); }, reps);
  PinThreads("1");
  row.identical =
      SameBits(dense_out, sparse_out) && SameBits(sparse_out, sparse8_out);
  row.dense_bytes = static_cast<size_t>(n) * static_cast<size_t>(n) *
                    sizeof(double);
  row.sparse_bytes = sparse.sparse().MemoryBytes();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_spmm.json";
  PinThreads("1");

  std::vector<Row> rows;
  Rng rng(907);
  // Density sweep at n = 10^2 and 10^3 (Erdos-Renyi), then the power-law
  // regime the substrate exists for: R-MAT at 10^3 and the 10^4 acceptance
  // graph (avg degree ~16, the web-graph shape from the R-MAT paper).
  {
    std::fprintf(stderr, "[spmm] n=100 sweep ...\n");
    rows.push_back(BenchGraph("erdos_renyi_p0.08",
                              datasets::ErdosRenyi(100, 0.08, rng), false));
    rows.push_back(BenchGraph("erdos_renyi_p0.30",
                              datasets::ErdosRenyi(100, 0.30, rng), false));
  }
  {
    std::fprintf(stderr, "[spmm] n=1000 sweep ...\n");
    rows.push_back(BenchGraph("erdos_renyi_p0.008",
                              datasets::ErdosRenyi(1000, 0.008, rng), false));
    rows.push_back(BenchGraph("erdos_renyi_p0.05",
                              datasets::ErdosRenyi(1000, 0.05, rng), false));
    rows.push_back(
        BenchGraph("rmat_epv8", datasets::RMat(1000, 8, rng), false));
  }
  {
    std::fprintf(stderr, "[spmm] n=10000 acceptance graph ...\n");
    rows.push_back(
        BenchGraph("rmat_epv8", datasets::RMat(10000, 8, rng), true));
  }

  bool all_identical = true;
  bool acceptance_ok = true;
  using bench::JsonValue;
  JsonValue doc = bench::BenchDoc("spmm");
  doc.Obj("seeds").Set("graph_sweep", 907).Set("features", int64_t{0xFEA7});
  JsonValue& spmm = doc.Arr("spmm");
  for (const Row& r : rows) {
    const double speedup = r.dense_ms / r.sparse_ms;
    const double mem_ratio = static_cast<double>(r.dense_bytes) /
                             static_cast<double>(r.sparse_bytes);
    all_identical = all_identical && r.identical;
    if (r.acceptance && (speedup < 10.0 || mem_ratio < 10.0)) {
      acceptance_ok = false;
    }
    spmm.Push(JsonValue::Object()
                  .Set("generator", r.generator)
                  .Set("n", r.n)
                  .Set("edges", r.edges)
                  .Set("nnz", r.nnz)
                  .Set("dense_ms", JsonValue::Fixed(r.dense_ms, 3))
                  .Set("sparse_serial_ms", JsonValue::Fixed(r.sparse_ms, 3))
                  .Set("sparse_8threads_ms", JsonValue::Fixed(r.sparse8_ms, 3))
                  .Set("speedup", JsonValue::Fixed(speedup, 2))
                  .Set("graphs_per_sec_dense",
                       JsonValue::Fixed(1000.0 / r.dense_ms, 1))
                  .Set("graphs_per_sec_sparse",
                       JsonValue::Fixed(1000.0 / r.sparse_ms, 1))
                  .Set("dense_bytes_per_graph", r.dense_bytes)
                  .Set("sparse_bytes_per_graph", r.sparse_bytes)
                  .Set("memory_ratio", JsonValue::Fixed(mem_ratio, 1))
                  .Set("bit_identical", r.identical)
                  .Set("acceptance_row", r.acceptance));
    std::fprintf(stderr,
                 "%s n=%d: dense %.3f ms, sparse %.3f ms (%.1fx), "
                 "mem %.1fx, identical=%d\n",
                 r.generator.c_str(), r.n, r.dense_ms, r.sparse_ms, speedup,
                 mem_ratio, r.identical ? 1 : 0);
  }
  doc.Set("all_bit_identical", all_identical);
  doc.Set("acceptance_10x_wall_and_memory", acceptance_ok);
  bench::WriteBenchFile(out_path, doc);

  if (!all_identical || !acceptance_ok) {
    std::fprintf(stderr,
                 "FAIL: identical=%d acceptance_10x=%d\n",
                 all_identical ? 1 : 0, acceptance_ok ? 1 : 0);
    return 1;
  }
  return 0;
}
