// Benchmarks the sparse graph substrate (CSR + SpMM, src/sparse/) against
// the legacy dense GraphOp backend, and writes the results as JSON
// (default: BENCH_spmm.json in the working directory; pass a path as
// argv[1] to override).
//
// One row per (generator, n, density): wall time of a GcnNorm propagation
// S X for X [n, 32] under the dense backend vs the sparse backend at 1 and
// 8 threads, propagations/sec, and operator bytes per graph (dense n^2
// doubles vs the CSR arrays incl. the cached transpose). Every sparse
// result is byte-compared against the dense reference before timing is
// reported ("bit_identical").
//
// The 10^4-vertex R-MAT row is the acceptance gate: the sparse path must
// beat dense by >= 10x in both wall clock and operator memory; the binary
// exits nonzero when either bound is violated (same contract style as
// obs_overhead).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/random_graphs.h"
#include "graph/graph.h"
#include "nn/graph_conv.h"
#include "nn/tensor.h"

namespace {

using namespace deepmap;
using Clock = std::chrono::steady_clock;

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    auto end = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

void PinThreads(const char* value) { setenv("DEEPMAP_NUM_THREADS", value, 1); }

bool SameBits(const nn::Tensor& a, const nn::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.NumElements())) == 0;
}

struct Row {
  std::string generator;
  int n = 0;
  int64_t edges = 0;
  int64_t nnz = 0;
  double dense_ms = 0, sparse_ms = 0, sparse8_ms = 0;
  size_t dense_bytes = 0, sparse_bytes = 0;
  bool identical = false;
  bool acceptance = false;  // the >= 10x gate applies to this row
};

Row BenchGraph(const std::string& generator, const graph::Graph& g,
               bool acceptance) {
  const int n = g.NumVertices();
  const int c = 32;
  Rng rng(0xFEA7u + static_cast<uint64_t>(n));
  nn::Tensor x({n, c});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal());
  }

  nn::GraphOp::SetDefaultBackend(nn::GraphOp::Backend::kDense);
  nn::GraphOp dense = nn::GraphOp::GcnNorm(g);
  nn::GraphOp::SetDefaultBackend(nn::GraphOp::Backend::kSparse);
  nn::GraphOp sparse = nn::GraphOp::GcnNorm(g);

  const int reps = n >= 10000 ? 3 : 10;
  Row row;
  row.generator = generator;
  row.n = n;
  row.edges = g.NumEdges();
  row.nnz = sparse.nnz();
  row.acceptance = acceptance;
  nn::Tensor dense_out, sparse_out, sparse8_out;
  PinThreads("1");
  row.dense_ms = TimeMs([&] { dense_out = dense.Apply(x); }, reps);
  row.sparse_ms = TimeMs([&] { sparse_out = sparse.Apply(x); }, reps);
  PinThreads("8");
  row.sparse8_ms = TimeMs([&] { sparse8_out = sparse.Apply(x); }, reps);
  PinThreads("1");
  row.identical =
      SameBits(dense_out, sparse_out) && SameBits(sparse_out, sparse8_out);
  row.dense_bytes = static_cast<size_t>(n) * static_cast<size_t>(n) *
                    sizeof(double);
  row.sparse_bytes = sparse.sparse().MemoryBytes();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_spmm.json";
  PinThreads("1");

  std::vector<Row> rows;
  Rng rng(907);
  // Density sweep at n = 10^2 and 10^3 (Erdos-Renyi), then the power-law
  // regime the substrate exists for: R-MAT at 10^3 and the 10^4 acceptance
  // graph (avg degree ~16, the web-graph shape from the R-MAT paper).
  {
    std::fprintf(stderr, "[spmm] n=100 sweep ...\n");
    rows.push_back(BenchGraph("erdos_renyi_p0.08",
                              datasets::ErdosRenyi(100, 0.08, rng), false));
    rows.push_back(BenchGraph("erdos_renyi_p0.30",
                              datasets::ErdosRenyi(100, 0.30, rng), false));
  }
  {
    std::fprintf(stderr, "[spmm] n=1000 sweep ...\n");
    rows.push_back(BenchGraph("erdos_renyi_p0.008",
                              datasets::ErdosRenyi(1000, 0.008, rng), false));
    rows.push_back(BenchGraph("erdos_renyi_p0.05",
                              datasets::ErdosRenyi(1000, 0.05, rng), false));
    rows.push_back(
        BenchGraph("rmat_epv8", datasets::RMat(1000, 8, rng), false));
  }
  {
    std::fprintf(stderr, "[spmm] n=10000 acceptance graph ...\n");
    rows.push_back(
        BenchGraph("rmat_epv8", datasets::RMat(10000, 8, rng), true));
  }

  bool all_identical = true;
  bool acceptance_ok = true;
  std::ofstream out(out_path);
  out << "{\n  \"spmm\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup = r.dense_ms / r.sparse_ms;
    const double mem_ratio = static_cast<double>(r.dense_bytes) /
                             static_cast<double>(r.sparse_bytes);
    all_identical = all_identical && r.identical;
    if (r.acceptance && (speedup < 10.0 || mem_ratio < 10.0)) {
      acceptance_ok = false;
    }
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"generator\": \"%s\", \"n\": %d, \"edges\": %lld, "
        "\"nnz\": %lld, \"dense_ms\": %.3f, \"sparse_serial_ms\": %.3f, "
        "\"sparse_8threads_ms\": %.3f, \"speedup\": %.2f, "
        "\"graphs_per_sec_dense\": %.1f, \"graphs_per_sec_sparse\": %.1f, "
        "\"dense_bytes_per_graph\": %zu, \"sparse_bytes_per_graph\": %zu, "
        "\"memory_ratio\": %.1f, \"bit_identical\": %s, "
        "\"acceptance_row\": %s}%s\n",
        r.generator.c_str(), r.n, static_cast<long long>(r.edges),
        static_cast<long long>(r.nnz), r.dense_ms, r.sparse_ms, r.sparse8_ms,
        speedup, 1000.0 / r.dense_ms, 1000.0 / r.sparse_ms, r.dense_bytes,
        r.sparse_bytes, mem_ratio, r.identical ? "true" : "false",
        r.acceptance ? "true" : "false", i + 1 < rows.size() ? "," : "");
    out << buf;
    std::fprintf(stderr,
                 "%s n=%d: dense %.3f ms, sparse %.3f ms (%.1fx), "
                 "mem %.1fx, identical=%d\n",
                 r.generator.c_str(), r.n, r.dense_ms, r.sparse_ms, speedup,
                 mem_ratio, r.identical ? 1 : 0);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"all_bit_identical\": %s,\n"
                "  \"acceptance_10x_wall_and_memory\": %s\n}\n",
                all_identical ? "true" : "false",
                acceptance_ok ? "true" : "false");
  out << buf;
  out.close();
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  if (!all_identical || !acceptance_ok) {
    std::fprintf(stderr,
                 "FAIL: identical=%d acceptance_10x=%d\n",
                 all_identical ? 1 : 0, acceptance_ok ? 1 : 0);
    return 1;
  }
  return 0;
}
