// Serving throughput: batched engine vs the unbatched single-request path.
//
//   $ ./build/bench/serve_throughput [--requests=N] [--epochs=N] [--full]
//
// Trains a small DEEPMAP-WL model, then serves the same request stream
//   (a) through the offline single-request path (BuildDeepMapInput +
//       DeepMapModel::Forward, one graph at a time),
//   (b) through the InferenceEngine at batch sizes {1, 8, 32, 128} with the
//       prediction cache disabled, and
//   (c) through the engine with a warm prediction cache.
// Reports graphs/sec and the speedup over (a). The acceptance target is
// >= 3x at batch >= 32; the warm-cache pass additionally shows preprocessing
// being skipped entirely (stage counts stop growing).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "serve/engine.h"

using namespace deepmap;

namespace {

struct BenchArgs {
  int requests = 512;
  int epochs = 3;
  std::string dataset = "PTC_MM";
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  const char* env_full = std::getenv("DEEPMAP_BENCH_FULL");
  bool full = env_full != nullptr && std::strcmp(env_full, "1") == 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      args.requests = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--epochs=", 0) == 0) {
      args.epochs = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--dataset=", 0) == 0) {
      args.dataset = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (full) {
    args.requests = 10000;
    args.epochs = 10;
  }
  return args;
}

std::string Fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

struct EngineRun {
  double graphs_per_sec = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t preprocess_count = 0;
  int64_t requests = 0;
  std::string latency_report;  // per-stage latency table (timed pass only)
};

EngineRun RunEngine(const std::shared_ptr<serve::ServableModel>& servable,
                    const std::vector<const graph::Graph*>& requests,
                    int max_batch, size_t cache_capacity) {
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = max_batch;
  options.batcher.max_wait_us = 2000;
  options.batcher.queue_capacity = requests.size() + 16;
  options.cache_capacity = cache_capacity;
  serve::InferenceEngine engine(servable, options);

  // Warm-cache mode: a first pass populates the cache, the timed pass hits.
  if (cache_capacity > 0) {
    std::vector<std::future<StatusOr<serve::Prediction>>> warmup;
    warmup.reserve(requests.size());
    for (const graph::Graph* g : requests) warmup.push_back(engine.Submit(*g));
    for (auto& f : warmup) f.get();
  }

  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) futures.push_back(engine.Submit(*g));
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  EngineRun run;
  run.graphs_per_sec = static_cast<double>(requests.size()) / elapsed;
  run.cache_hits = engine.metrics().cache_hits();
  run.cache_misses = engine.metrics().cache_misses();
  run.preprocess_count = engine.metrics().stage_count("preprocess");
  run.requests = engine.metrics().requests();
  std::ostringstream report;
  engine.metrics().Print(report);
  run.latency_report = report.str();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);

  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset(args.dataset, options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.train.epochs = args.epochs;
  config.train.batch_size = 8;

  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  nn::TrainClassifier(model, pipeline.inputs(), dataset.labels(),
                      config.train);
  std::printf("%s: %d graphs, m=%d, w=%d, serving %d requests\n\n",
              dataset.name().c_str(), dataset.size(), pipeline.feature_dim(),
              pipeline.sequence_length(), args.requests);

  serve::ModelRegistry registry;
  if (Status s = registry.Adopt("bench", dataset, config, model); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::shared_ptr<serve::ServableModel> servable = registry.Get("bench");

  // The request stream cycles over the dataset's graphs.
  std::vector<const graph::Graph*> requests;
  requests.reserve(static_cast<size_t>(args.requests));
  for (int i = 0; i < args.requests; ++i) {
    requests.push_back(&dataset.graph(i % dataset.size()));
  }

  // (a) Unbatched single-request baseline: the offline path, one graph at a
  // time (per-request input build + training-stack forward).
  Stopwatch baseline_timer;
  for (int i = 0; i < args.requests; ++i) {
    const int graph_index = i % dataset.size();
    nn::Tensor input = core::BuildDeepMapInput(
        dataset.graph(graph_index), pipeline.features(), graph_index,
        pipeline.sequence_length(), config.receptive_field_size,
        config.alignment, nullptr);
    nn::Tensor logits = model.Forward(input, false);
    (void)logits;
  }
  const double baseline =
      static_cast<double>(args.requests) / baseline_timer.ElapsedSeconds();

  Table table({"configuration", "graphs/sec", "speedup"});
  table.AddRow({"unbatched offline path", Fmt(baseline), "1.0x"});

  std::string batch32_report;
  for (int batch : {1, 8, 32, 128}) {
    EngineRun run = RunEngine(servable, requests, batch, /*cache_capacity=*/0);
    if (batch == 32) batch32_report = run.latency_report;
    table.AddRow({"engine, batch=" + std::to_string(batch),
                  Fmt(run.graphs_per_sec),
                  Fmt(run.graphs_per_sec / baseline, "%.1fx")});
  }

  EngineRun warm = RunEngine(servable, requests, 32, /*cache_capacity=*/4096);
  table.AddRow({"engine, batch=32, warm cache", Fmt(warm.graphs_per_sec),
                Fmt(warm.graphs_per_sec / baseline, "%.1fx")});
  table.Print(std::cout);

  std::printf("\nbatch=32 run:\n%s", batch32_report.c_str());
  std::printf(
      "\nwarm-cache run: %lld hits / %lld misses; preprocess ran %lld times "
      "for %lld requests (hits skip it)\n",
      static_cast<long long>(warm.cache_hits),
      static_cast<long long>(warm.cache_misses),
      static_cast<long long>(warm.preprocess_count),
      static_cast<long long>(warm.requests));
  return 0;
}
