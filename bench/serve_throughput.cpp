// Serving throughput: batched engine vs the unbatched single-request path.
//
//   $ ./build/bench/serve_throughput [--requests=N] [--epochs=N] [--full]
//   $ ./build/bench/serve_throughput --chaos [--out=BENCH_serve_chaos.json]
//   $ ./build/bench/serve_throughput --cluster [--out=BENCH_serve_cluster.json]
//
// Default mode trains a small DEEPMAP-WL model, then serves the same request
// stream
//   (a) through the offline single-request path (BuildDeepMapInput +
//       DeepMapModel::Forward, one graph at a time),
//   (b) through the InferenceEngine at batch sizes {1, 8, 32, 128} with the
//       prediction cache disabled, and
//   (c) through the engine with a warm prediction cache.
// Reports graphs/sec and the speedup over (a). The acceptance target is
// >= 3x at batch >= 32; the warm-cache pass additionally shows preprocessing
// being skipped entirely (stage counts stop growing).
//
// --chaos sweeps injected preprocessing-fault probabilities over a
// saturating producer with per-request deadlines, a small admission-
// controlled queue, and degraded mode on, reporting the outcome mix and
// latency percentiles per fault rate and writing BENCH_serve_chaos.json.
// The headline: every submitted request resolves, throughput degrades
// smoothly, and no outcome goes unaccounted.
//
// --cluster replays the overload burst that saturates one engine (256
// requests into a 64-slot queue with admission armed) through ServeClusters
// of 1, 2, and 4 replicas, reporting offered vs sustained QPS and the shed
// rate per configuration and writing BENCH_serve_cluster.json. Gates: the
// 4-replica cluster absorbs the burst (shed rate < 2%, p99 inside the 5 s
// deadline) and its predictions are byte-identical to the single engine's.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "serve/cluster.h"
#include "serve/engine.h"

using namespace deepmap;

namespace {

struct BenchArgs {
  int requests = 512;
  bool requests_set = false;
  int epochs = 3;
  std::string dataset = "PTC_MM";
  bool chaos = false;
  bool cluster = false;
  std::string out;
  bool out_set = false;
};

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  const char* env_full = std::getenv("DEEPMAP_BENCH_FULL");
  bool full = env_full != nullptr && std::strcmp(env_full, "1") == 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg == "--chaos") {
      args.chaos = true;
    } else if (arg == "--cluster") {
      args.cluster = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      args.out = arg.substr(6);
      args.out_set = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      args.requests = std::atoi(arg.c_str() + 11);
      args.requests_set = true;
    } else if (arg.rfind("--epochs=", 0) == 0) {
      args.epochs = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--dataset=", 0) == 0) {
      args.dataset = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (full) {
    args.requests = 10000;
    args.epochs = 10;
    args.requests_set = true;
  }
  // The cluster acceptance scenario is pinned at a 256-request burst (the
  // load where the overloaded single engine sheds most of the stream).
  if (args.cluster && !args.requests_set) args.requests = 256;
  if (!args.out_set) {
    args.out = args.cluster ? "BENCH_serve_cluster.json"
                            : "BENCH_serve_chaos.json";
  }
  return args;
}

std::string Fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

struct EngineRun {
  double graphs_per_sec = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t preprocess_count = 0;
  int64_t requests = 0;
  std::string latency_report;  // per-stage latency table (timed pass only)
};

EngineRun RunEngine(const std::shared_ptr<serve::ServableModel>& servable,
                    const std::vector<const graph::Graph*>& requests,
                    int max_batch, size_t cache_capacity) {
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = max_batch;
  options.batcher.max_wait_us = 2000;
  options.batcher.queue_capacity = requests.size() + 16;
  options.cache_capacity = cache_capacity;
  serve::InferenceEngine engine(servable, options);

  // Warm-cache mode: a first pass populates the cache, the timed pass hits.
  if (cache_capacity > 0) {
    std::vector<std::future<StatusOr<serve::Prediction>>> warmup;
    warmup.reserve(requests.size());
    for (const graph::Graph* g : requests) warmup.push_back(engine.Submit(*g));
    for (auto& f : warmup) f.get();
  }

  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) futures.push_back(engine.Submit(*g));
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "serve error: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  EngineRun run;
  run.graphs_per_sec = static_cast<double>(requests.size()) / elapsed;
  run.cache_hits = engine.metrics().cache_hits();
  run.cache_misses = engine.metrics().cache_misses();
  run.preprocess_count = engine.metrics().stage_count("preprocess");
  run.requests = engine.metrics().requests();
  std::ostringstream report;
  engine.metrics().Print(report);
  run.latency_report = report.str();
  return run;
}

// ---------------------------------------------------------------------------
// Chaos mode

struct ChaosRun {
  double fault_probability = 0.0;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected = 0;
  int64_t error = 0;
  int64_t faults_fired = 0;
  double graphs_per_sec = 0.0;
  /// Rate the producer pushed requests at (submissions / submit-loop time)
  /// vs the rate the engine actually resolved them end to end.
  double offered_qps = 0.0;
  double sustained_qps = 0.0;
  /// Fraction of submissions dropped at admission (shed + rejected).
  double shed_rate = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Deterministic seeds for the chaos/cluster sweeps: the fault-injection RNG
/// stream and the admission controller's shed-decision stream.
constexpr uint64_t kFaultSeed = 0xc4a05;
constexpr uint64_t kAdmissionSeed = 0x5eed;

ChaosRun RunChaos(const std::shared_ptr<serve::ServableModel>& servable,
                  const std::vector<const graph::Graph*>& requests,
                  double fault_probability) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisableAll();
  if (fault_probability > 0.0) {
    registry.Enable("serve.preprocess",
                    FailPointSpec::Probability(fault_probability, kFaultSeed));
  }

  // Overload-shaped configuration: a queue much smaller than the request
  // stream, admission control armed, per-request deadlines, degraded mode on.
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = 16;
  options.batcher.max_wait_us = 500;
  options.batcher.queue_capacity = 64;
  options.cache_capacity = 0;  // every request exercises the faulty stage
  options.admission.queue_shed_watermark = 0.75;
  options.admission.seed = kAdmissionSeed;
  options.enable_degraded = true;
  serve::InferenceEngine engine(servable, options);

  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) {
    // Saturating producer: submit as fast as possible, each request with a
    // generous-but-finite deadline.
    futures.push_back(engine.Submit(
        *g, serve::RequestOptions::WithDeadline(std::chrono::seconds(5))));
  }
  const double submit_elapsed = timer.ElapsedSeconds();
  int64_t resolved = 0;
  for (auto& f : futures) {
    (void)f.get();  // every future must resolve — ok or typed error
    ++resolved;
  }
  const double elapsed = timer.ElapsedSeconds();
  engine.Drain();
  // Counters die with the fail point, so snapshot before disarming.
  const int64_t faults_fired = registry.triggers("serve.preprocess");
  registry.DisableAll();

  const serve::ServeMetrics& m = engine.metrics();
  ChaosRun run;
  run.fault_probability = fault_probability;
  run.submitted = static_cast<int64_t>(requests.size());
  run.ok = m.outcome_count(serve::ServeOutcome::kOk);
  run.degraded = m.outcome_count(serve::ServeOutcome::kDegraded);
  run.shed = m.outcome_count(serve::ServeOutcome::kShed);
  run.deadline_exceeded =
      m.outcome_count(serve::ServeOutcome::kDeadlineExceeded);
  run.rejected = m.outcome_count(serve::ServeOutcome::kRejected);
  run.error = m.outcome_count(serve::ServeOutcome::kError);
  run.faults_fired = faults_fired;
  run.graphs_per_sec = static_cast<double>(resolved) / elapsed;
  run.offered_qps = static_cast<double>(run.submitted) / submit_elapsed;
  // Sustained = requests actually answered with a usable prediction.
  run.sustained_qps = static_cast<double>(run.ok + run.degraded) / elapsed;
  run.shed_rate = run.submitted > 0
                      ? static_cast<double>(run.shed + run.rejected) /
                            static_cast<double>(run.submitted)
                      : 0.0;
  serve::LatencySummary latency = m.Latency("total");
  run.p50_us = latency.p50;
  run.p95_us = latency.p95;
  run.p99_us = latency.p99;
  if (m.total_outcomes() != run.submitted) {
    std::fprintf(stderr,
                 "outcome accounting violated: %lld outcomes for %lld "
                 "submissions\n",
                 static_cast<long long>(m.total_outcomes()),
                 static_cast<long long>(run.submitted));
    std::exit(1);
  }
  return run;
}

// Supervision chaos: one replica of four hangs and another is killed
// mid-burst; the Supervisor must recover every in-flight request onto
// healthy siblings (zero lost, zero duplicate replies), restart both
// failed workers, and have them rejoin for a post-recovery wave.
struct SupervisionChaosRun {
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t rejected = 0;
  int64_t error = 0;
  int64_t hangs = 0;
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t redispatched = 0;
  int64_t quarantined = 0;
  int64_t recovery_wave_ok = 0;
  bool replicas_rejoined = false;
  double p99_us = 0.0;
};

SupervisionChaosRun RunSupervisionChaos(
    const std::shared_ptr<serve::ServableModel>& servable,
    const std::vector<const graph::Graph*>& requests) {
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisableAll();

  serve::ServeCluster::Options options;
  options.num_replicas = 4;
  options.replica.max_batch = 16;
  options.replica.queue_capacity = 128;
  options.replica.num_threads = 1;
  options.cache_capacity = 0;  // every request rides a replica queue
  options.supervision.check_interval = std::chrono::milliseconds(1);
  options.supervision.hang_timeout = std::chrono::milliseconds(50);
  options.supervision.restart_backoff_initial = std::chrono::milliseconds(5);
  serve::ServeCluster cluster(servable, options);

  // The first batch popped anywhere stalls its worker; the next pop (a
  // different worker — the first is stalled) kills its thread outright.
  // Both land mid-burst: the submit loop below outruns the pipeline.
  registry.Enable("serve.replica.hang", FailPointSpec::Once());
  registry.Enable("serve.replica.crash", FailPointSpec::Once());

  SupervisionChaosRun run;
  run.submitted = static_cast<int64_t>(requests.size());
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) {
    futures.push_back(cluster.Submit(
        *g, serve::RequestOptions::WithDeadline(std::chrono::seconds(5))));
  }
  // Zero lost replies: every future resolves despite two dead workers.
  for (auto& f : futures) (void)f.get();
  cluster.Drain();
  registry.DisableAll();

  // Both failed workers restart (backoff is ms-scale) and report healthy.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster.health_metrics().restarts() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  run.replicas_rejoined = cluster.health_metrics().restarts() >= 2;
  for (size_t i = 0; i < cluster.num_replicas(); ++i) {
    if (cluster.replica(i).health() != serve::ReplicaHealth::kHealthy) {
      run.replicas_rejoined = false;
    }
  }

  // Post-recovery wave: the restarted replicas serve traffic again.
  const size_t wave = std::min<size_t>(requests.size(), 64);
  std::vector<std::future<StatusOr<serve::Prediction>>> recovery;
  recovery.reserve(wave);
  for (size_t i = 0; i < wave; ++i) {
    recovery.push_back(cluster.Submit(*requests[i]));
  }
  for (auto& f : recovery) {
    auto r = f.get();
    if (r.ok()) ++run.recovery_wave_ok;
  }
  cluster.Drain();

  const serve::ServeMetrics& m = cluster.metrics();
  run.ok = m.outcome_count(serve::ServeOutcome::kOk);
  run.degraded = m.outcome_count(serve::ServeOutcome::kDegraded);
  run.rejected = m.outcome_count(serve::ServeOutcome::kRejected);
  run.error = m.outcome_count(serve::ServeOutcome::kError);
  run.hangs = cluster.health_metrics().hangs();
  run.crashes = cluster.health_metrics().crashes();
  run.restarts = cluster.health_metrics().restarts();
  run.redispatched = cluster.health_metrics().redispatched();
  run.quarantined = cluster.health_metrics().quarantined();
  run.p99_us = m.Latency("total").p99;

  // Zero duplicate replies: outcomes exactly account for every submission
  // (a double completion would abort on the promise before getting here).
  const int64_t total_submitted =
      run.submitted + static_cast<int64_t>(wave);
  if (m.total_outcomes() != total_submitted) {
    std::fprintf(stderr,
                 "supervision accounting violated: %lld outcomes for %lld "
                 "submissions\n",
                 static_cast<long long>(m.total_outcomes()),
                 static_cast<long long>(total_submitted));
    std::exit(1);
  }
  return run;
}

int RunChaosBench(const BenchArgs& args,
                  const std::shared_ptr<serve::ServableModel>& servable,
                  const std::vector<const graph::Graph*>& requests) {
  const std::vector<double> probabilities = {0.0, 0.05, 0.1, 0.2, 0.4};
  std::vector<ChaosRun> runs;
  Table table({"fault p", "ok", "degraded", "shed", "deadline", "rejected",
               "error", "graphs/sec", "p95 us"});
  for (double p : probabilities) {
    ChaosRun run = RunChaos(servable, requests, p);
    table.AddRow({Fmt(p, "%.2f"), std::to_string(run.ok),
                  std::to_string(run.degraded), std::to_string(run.shed),
                  std::to_string(run.deadline_exceeded),
                  std::to_string(run.rejected), std::to_string(run.error),
                  Fmt(run.graphs_per_sec), Fmt(run.p95_us)});
    runs.push_back(run);
  }
  std::printf("chaos sweep: %zu requests per fault rate, every future "
              "resolved, outcomes fully accounted\n\n",
              requests.size());
  table.Print(std::cout);

  // Supervision scenario: 1 of 4 replicas hung + 1 killed mid-burst.
  SupervisionChaosRun sup = RunSupervisionChaos(servable, requests);
  std::printf(
      "\nsupervision chaos (4 replicas, 1 hung + 1 killed mid-burst): "
      "%lld/%lld ok, %lld degraded, %lld re-dispatched, %lld quarantined, "
      "%lld restarts, recovery wave %lld ok, p99 %.1f us\n",
      static_cast<long long>(sup.ok),
      static_cast<long long>(sup.submitted + 64),
      static_cast<long long>(sup.degraded),
      static_cast<long long>(sup.redispatched),
      static_cast<long long>(sup.quarantined),
      static_cast<long long>(sup.restarts),
      static_cast<long long>(sup.recovery_wave_ok), sup.p99_us);

  // Acceptance gates: no reply lost to a dead replica (error == 0 — every
  // recovered request was answered, degraded at worst), both workers
  // restarted and rejoined, and recovery kept p99 inside the deadline.
  if (sup.error != 0) {
    std::fprintf(stderr, "gate failed: %lld requests surfaced errors\n",
                 static_cast<long long>(sup.error));
    return 1;
  }
  if (sup.hangs + sup.crashes < 2) {
    std::fprintf(stderr,
                 "gate failed: expected 1 hang + 1 crash, saw %lld + %lld\n",
                 static_cast<long long>(sup.hangs),
                 static_cast<long long>(sup.crashes));
    return 1;
  }
  if (!sup.replicas_rejoined) {
    std::fprintf(stderr, "gate failed: failed replicas did not rejoin\n");
    return 1;
  }
  if (sup.p99_us >= 5e6) {
    std::fprintf(stderr, "gate failed: supervision p99 %.1f us >= deadline\n",
                 sup.p99_us);
    return 1;
  }

  using bench::JsonValue;
  JsonValue doc = bench::BenchDoc("serve_chaos");
  doc.Obj("flags")
      .Set("dataset", args.dataset)
      .Set("requests_per_run", requests.size());
  doc.Obj("seeds")
      .Set("fault", int64_t{kFaultSeed})
      .Set("admission", int64_t{kAdmissionSeed});
  JsonValue& out_runs = doc.Arr("runs");
  for (const ChaosRun& r : runs) {
    out_runs.Push(JsonValue::Object()
                      .Set("fault_probability", r.fault_probability)
                      .Set("submitted", r.submitted)
                      .Set("ok", r.ok)
                      .Set("degraded", r.degraded)
                      .Set("shed", r.shed)
                      .Set("deadline_exceeded", r.deadline_exceeded)
                      .Set("rejected", r.rejected)
                      .Set("error", r.error)
                      .Set("faults_fired", r.faults_fired)
                      .Set("graphs_per_sec", JsonValue::Fixed(r.graphs_per_sec, 1))
                      .Set("offered_qps", JsonValue::Fixed(r.offered_qps, 1))
                      .Set("sustained_qps", JsonValue::Fixed(r.sustained_qps, 1))
                      .Set("shed_rate", JsonValue::Fixed(r.shed_rate, 4))
                      .Set("p50_us", JsonValue::Fixed(r.p50_us, 1))
                      .Set("p95_us", JsonValue::Fixed(r.p95_us, 1))
                      .Set("p99_us", JsonValue::Fixed(r.p99_us, 1)));
  }
  doc.Obj("supervision")
      .Set("replicas", 4)
      .Set("scenario", std::string("1 hung + 1 killed mid-burst"))
      .Set("submitted", sup.submitted)
      .Set("ok", sup.ok)
      .Set("degraded", sup.degraded)
      .Set("rejected", sup.rejected)
      .Set("error", sup.error)
      .Set("hangs", sup.hangs)
      .Set("crashes", sup.crashes)
      .Set("restarts", sup.restarts)
      .Set("redispatched", sup.redispatched)
      .Set("quarantined", sup.quarantined)
      .Set("recovery_wave_ok", sup.recovery_wave_ok)
      .Set("replicas_rejoined", sup.replicas_rejoined)
      .Set("p99_us", JsonValue::Fixed(sup.p99_us, 1));
  if (!bench::WriteBenchFile(args.out, doc)) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Cluster mode: the 256-request overload burst that saturates one engine,
// replayed through ServeClusters of 1, 2, and 4 replicas.

struct ClusterRun {
  std::string label;
  int replicas = 0;  // 0 = single InferenceEngine baseline
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t deadline_exceeded = 0;
  int64_t rejected = 0;
  int64_t error = 0;
  double offered_qps = 0.0;
  double sustained_qps = 0.0;
  double shed_rate = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  int64_t steals = 0;
  int64_t continuous_admits = 0;
};

void FinishClusterRun(ClusterRun* run, const serve::ServeMetrics& m,
                      double submit_elapsed, double elapsed) {
  run->ok = m.outcome_count(serve::ServeOutcome::kOk);
  run->degraded = m.outcome_count(serve::ServeOutcome::kDegraded);
  run->shed = m.outcome_count(serve::ServeOutcome::kShed);
  run->deadline_exceeded =
      m.outcome_count(serve::ServeOutcome::kDeadlineExceeded);
  run->rejected = m.outcome_count(serve::ServeOutcome::kRejected);
  run->error = m.outcome_count(serve::ServeOutcome::kError);
  run->offered_qps = static_cast<double>(run->submitted) / submit_elapsed;
  run->sustained_qps =
      static_cast<double>(run->ok + run->degraded) / elapsed;
  run->shed_rate = run->submitted > 0
                       ? static_cast<double>(run->shed + run->rejected) /
                             static_cast<double>(run->submitted)
                       : 0.0;
  serve::LatencySummary latency = m.Latency("total");
  run->p50_us = latency.p50;
  run->p95_us = latency.p95;
  run->p99_us = latency.p99;
  if (m.total_outcomes() != run->submitted) {
    std::fprintf(stderr,
                 "outcome accounting violated in %s: %lld outcomes for %lld "
                 "submissions\n",
                 run->label.c_str(),
                 static_cast<long long>(m.total_outcomes()),
                 static_cast<long long>(run->submitted));
    std::exit(1);
  }
}

/// The overloaded single-engine baseline: same configuration as the chaos
/// sweep at fault probability 0 (queue 64, admission armed, 5 s deadlines).
ClusterRun RunOverloadedEngine(
    const std::shared_ptr<serve::ServableModel>& servable,
    const std::vector<const graph::Graph*>& requests) {
  serve::InferenceEngine::Options options;
  options.batcher.max_batch = 16;
  options.batcher.max_wait_us = 500;
  options.batcher.queue_capacity = 64;
  options.cache_capacity = 0;
  options.admission.queue_shed_watermark = 0.75;
  options.admission.seed = kAdmissionSeed;
  serve::InferenceEngine engine(servable, options);

  ClusterRun run;
  run.label = "engine (queue 64)";
  run.submitted = static_cast<int64_t>(requests.size());
  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) {
    futures.push_back(engine.Submit(
        *g, serve::RequestOptions::WithDeadline(std::chrono::seconds(5))));
  }
  const double submit_elapsed = timer.ElapsedSeconds();
  for (auto& f : futures) (void)f.get();
  const double elapsed = timer.ElapsedSeconds();
  engine.Drain();
  FinishClusterRun(&run, engine.metrics(), submit_elapsed, elapsed);
  return run;
}

ClusterRun RunCluster(const std::shared_ptr<serve::ServableModel>& servable,
                      const std::vector<const graph::Graph*>& requests,
                      size_t replicas) {
  serve::ServeCluster::Options options;
  options.num_replicas = replicas;
  options.replica.max_batch = 16;
  options.replica.queue_capacity = 128;
  options.replica.num_threads = 1;
  options.cache_capacity = 0;  // every request exercises the full pipeline
  serve::ServeCluster cluster(servable, options);

  ClusterRun run;
  run.label = "cluster x " + std::to_string(replicas);
  run.replicas = static_cast<int>(replicas);
  run.submitted = static_cast<int64_t>(requests.size());
  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const graph::Graph* g : requests) {
    futures.push_back(cluster.Submit(
        *g, serve::RequestOptions::WithDeadline(std::chrono::seconds(5))));
  }
  const double submit_elapsed = timer.ElapsedSeconds();
  for (auto& f : futures) (void)f.get();
  const double elapsed = timer.ElapsedSeconds();
  cluster.Drain();
  FinishClusterRun(&run, cluster.metrics(), submit_elapsed, elapsed);
  run.steals = cluster.cluster_metrics().steals();
  run.continuous_admits = cluster.cluster_metrics().continuous_admits();
  return run;
}

/// Byte-compares per-class probabilities of an uncontended engine against a
/// 4-replica cluster over distinct dataset graphs (caches off on both).
bool ClusterLogitsMatchEngine(
    const std::shared_ptr<serve::ServableModel>& servable,
    const graph::GraphDataset& dataset) {
  serve::InferenceEngine::Options engine_options;
  engine_options.cache_capacity = 0;
  engine_options.batcher.queue_capacity =
      static_cast<size_t>(dataset.size()) + 16;
  serve::InferenceEngine engine(servable, engine_options);

  serve::ServeCluster::Options cluster_options;
  cluster_options.num_replicas = 4;
  cluster_options.replica.num_threads = 1;
  cluster_options.cache_capacity = 0;
  serve::ServeCluster cluster(servable, cluster_options);

  const int n = std::min(dataset.size(), 32);
  for (int i = 0; i < n; ++i) {
    auto from_engine = engine.Submit(dataset.graph(i)).get();
    auto from_cluster = cluster.Submit(dataset.graph(i)).get();
    if (!from_engine.ok() || !from_cluster.ok()) return false;
    const auto& pe = from_engine.value().probabilities;
    const auto& pc = from_cluster.value().probabilities;
    if (pe.size() != pc.size()) return false;
    if (!pe.empty() &&
        std::memcmp(pe.data(), pc.data(), pe.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

int RunClusterBench(const BenchArgs& args,
                    const std::shared_ptr<serve::ServableModel>& servable,
                    const graph::GraphDataset& dataset,
                    const std::vector<const graph::Graph*>& requests) {
  const bool logits_match = ClusterLogitsMatchEngine(servable, dataset);
  if (!logits_match) {
    std::fprintf(stderr,
                 "cluster predictions diverge from the single engine\n");
    return 1;
  }

  std::vector<ClusterRun> runs;
  runs.push_back(RunOverloadedEngine(servable, requests));
  for (size_t replicas : {size_t{1}, size_t{2}, size_t{4}}) {
    runs.push_back(RunCluster(servable, requests, replicas));
  }

  Table table({"configuration", "ok", "shed", "rejected", "deadline",
               "shed rate", "offered qps", "sustained qps", "p99 us"});
  for (const ClusterRun& r : runs) {
    table.AddRow({r.label, std::to_string(r.ok), std::to_string(r.shed),
                  std::to_string(r.rejected),
                  std::to_string(r.deadline_exceeded),
                  Fmt(r.shed_rate, "%.4f"), Fmt(r.offered_qps),
                  Fmt(r.sustained_qps), Fmt(r.p99_us)});
  }
  std::printf("cluster overload burst: %zu requests, logits bit-identical "
              "to the single engine\n\n",
              requests.size());
  table.Print(std::cout);

  // Acceptance gates: at 4 replicas the burst that saturates one engine is
  // absorbed — shed rate under 2% with p99 inside the 5 s deadline budget.
  const ClusterRun& four = runs.back();
  if (four.shed_rate >= 0.02) {
    std::fprintf(stderr, "gate failed: 4-replica shed rate %.4f >= 0.02\n",
                 four.shed_rate);
    return 1;
  }
  if (four.p99_us >= 5e6) {
    std::fprintf(stderr, "gate failed: 4-replica p99 %.1f us >= deadline\n",
                 four.p99_us);
    return 1;
  }

  using bench::JsonValue;
  JsonValue doc = bench::BenchDoc("serve_cluster");
  doc.Obj("flags")
      .Set("dataset", args.dataset)
      .Set("requests", requests.size())
      .Set("deadline_us", 5000000);
  doc.Obj("seeds").Set("admission", int64_t{kAdmissionSeed});
  doc.Set("logits_bit_identical", true);
  JsonValue& out_runs = doc.Arr("runs");
  for (const ClusterRun& r : runs) {
    out_runs.Push(JsonValue::Object()
                      .Set("config", r.label)
                      .Set("replicas", r.replicas)
                      .Set("submitted", r.submitted)
                      .Set("ok", r.ok)
                      .Set("degraded", r.degraded)
                      .Set("shed", r.shed)
                      .Set("deadline_exceeded", r.deadline_exceeded)
                      .Set("rejected", r.rejected)
                      .Set("error", r.error)
                      .Set("offered_qps", JsonValue::Fixed(r.offered_qps, 1))
                      .Set("sustained_qps", JsonValue::Fixed(r.sustained_qps, 1))
                      .Set("shed_rate", JsonValue::Fixed(r.shed_rate, 4))
                      .Set("p50_us", JsonValue::Fixed(r.p50_us, 1))
                      .Set("p95_us", JsonValue::Fixed(r.p95_us, 1))
                      .Set("p99_us", JsonValue::Fixed(r.p99_us, 1))
                      .Set("steals", r.steals)
                      .Set("continuous_admits", r.continuous_admits));
  }
  if (!bench::WriteBenchFile(args.out, doc)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);

  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset(args.dataset, options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.train.epochs = args.epochs;
  config.train.batch_size = 8;

  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  nn::TrainClassifier(model, pipeline.inputs(), dataset.labels(),
                      config.train);
  std::printf("%s: %d graphs, m=%d, w=%d, serving %d requests\n\n",
              dataset.name().c_str(), dataset.size(), pipeline.feature_dim(),
              pipeline.sequence_length(), args.requests);

  serve::ModelRegistry registry;
  if (Status s = registry.Adopt("bench", dataset, config, model); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::shared_ptr<serve::ServableModel> servable = registry.Get("bench");

  // The request stream cycles over the dataset's graphs.
  std::vector<const graph::Graph*> requests;
  requests.reserve(static_cast<size_t>(args.requests));
  for (int i = 0; i < args.requests; ++i) {
    requests.push_back(&dataset.graph(i % dataset.size()));
  }

  if (args.chaos) return RunChaosBench(args, servable, requests);
  if (args.cluster) return RunClusterBench(args, servable, dataset, requests);

  // (a) Unbatched single-request baseline: the offline path, one graph at a
  // time (per-request input build + training-stack forward).
  Stopwatch baseline_timer;
  for (int i = 0; i < args.requests; ++i) {
    const int graph_index = i % dataset.size();
    nn::Tensor input = core::BuildDeepMapInput(
        dataset.graph(graph_index), pipeline.features(), graph_index,
        pipeline.sequence_length(), config.receptive_field_size,
        config.alignment, nullptr);
    nn::Tensor logits = model.Forward(input, false);
    (void)logits;
  }
  const double baseline =
      static_cast<double>(args.requests) / baseline_timer.ElapsedSeconds();

  Table table({"configuration", "graphs/sec", "speedup"});
  table.AddRow({"unbatched offline path", Fmt(baseline), "1.0x"});

  std::string batch32_report;
  for (int batch : {1, 8, 32, 128}) {
    EngineRun run = RunEngine(servable, requests, batch, /*cache_capacity=*/0);
    if (batch == 32) batch32_report = run.latency_report;
    table.AddRow({"engine, batch=" + std::to_string(batch),
                  Fmt(run.graphs_per_sec),
                  Fmt(run.graphs_per_sec / baseline, "%.1fx")});
  }

  EngineRun warm = RunEngine(servable, requests, 32, /*cache_capacity=*/4096);
  table.AddRow({"engine, batch=32, warm cache", Fmt(warm.graphs_per_sec),
                Fmt(warm.graphs_per_sec / baseline, "%.1fx")});
  table.Print(std::cout);

  std::printf("\nbatch=32 run:\n%s", batch32_report.c_str());
  std::printf(
      "\nwarm-cache run: %lld hits / %lld misses; preprocess ran %lld times "
      "for %lld requests (hits skip it)\n",
      static_cast<long long>(warm.cache_hits),
      static_cast<long long>(warm.cache_misses),
      static_cast<long long>(warm.preprocess_count),
      static_cast<long long>(warm.requests));
  return 0;
}
