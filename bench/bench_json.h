// Shared JSON emitter for bench artifacts (BENCH_*.json).
//
// Every bench used to hand-roll its JSON with snprintf, which drifted: no
// two artifacts agreed on host metadata, flag echoing, or number formatting.
// This header gives them one insertion-ordered JSON tree with a common
// envelope:
//
//   JsonValue doc = BenchDoc("serve_throughput");   // bench/schema/host info
//   doc.Obj("flags").Set("requests", 512).Set("batch", 32);
//   doc.Obj("seeds").Set("fault", int64_t{0xc4a05});
//   JsonValue& rows = doc.Arr("results");
//   rows.Push(JsonValue::Object()
//                 .Set("batch", 32)
//                 .Set("wall_ms", JsonValue::Fixed(wall_ms, 3)));
//   WriteBenchFile(path, doc);
//
// Keys keep insertion order (artifacts stay diffable run-to-run), doubles
// default to %.6g with Fixed(v, decimals) for column-stable formatting, and
// non-finite doubles serialize as null so artifacts stay parseable JSON.
// Header-only; bench binaries only.
#ifndef DEEPMAP_BENCH_BENCH_JSON_H_
#define DEEPMAP_BENCH_BENCH_JSON_H_

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace deepmap::bench {

/// One node of an insertion-ordered JSON document.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}              // NOLINT
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}                 // NOLINT
  JsonValue(int64_t v) : kind_(Kind::kInt), int_(v) {}             // NOLINT
  JsonValue(size_t v)                                              // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}        // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}   // NOLINT
  JsonValue(std::string s)                                         // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}

  /// Double rendered with a fixed number of decimals ("%.3f" style) instead
  /// of the default %.6g — keeps artifact columns stable across runs.
  static JsonValue Fixed(double v, int decimals) {
    JsonValue j(v);
    j.decimals_ = decimals;
    return j;
  }
  static JsonValue Object() {
    JsonValue j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static JsonValue Array() {
    JsonValue j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Sets `key` in this object (appending; duplicate keys are a caller
  /// bug). Returns *this so scalar rows chain fluently.
  JsonValue& Set(const std::string& key, JsonValue value) {
    members_.emplace_back(key, std::move(value));
    return *this;
  }
  /// Child object under `key`, created on first use. Returned reference is
  /// stable until the next Set/Obj/Arr on this node.
  JsonValue& Obj(const std::string& key) { return Child(key, Kind::kObject); }
  /// Child array under `key`, created on first use.
  JsonValue& Arr(const std::string& key) { return Child(key, Kind::kArray); }
  /// Appends to this array; returns the stored element.
  JsonValue& Push(JsonValue value) {
    elements_.push_back(std::move(value));
    return elements_.back();
  }

  bool empty() const { return members_.empty() && elements_.empty(); }

  void Write(std::ostream& os, int indent = 0) const {
    switch (kind_) {
      case Kind::kNull:
        os << "null";
        return;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        return;
      case Kind::kInt:
        os << int_;
        return;
      case Kind::kDouble: {
        if (!std::isfinite(double_)) {
          os << "null";  // NaN/Inf are not JSON
          return;
        }
        char buf[64];
        if (decimals_ >= 0) {
          std::snprintf(buf, sizeof(buf), "%.*f", decimals_, double_);
        } else {
          std::snprintf(buf, sizeof(buf), "%.6g", double_);
        }
        os << buf;
        return;
      }
      case Kind::kString:
        WriteEscaped(os, string_);
        return;
      case Kind::kObject: {
        if (members_.empty()) {
          os << "{}";
          return;
        }
        os << "{\n";
        for (size_t i = 0; i < members_.size(); ++i) {
          Indent(os, indent + 1);
          WriteEscaped(os, members_[i].first);
          os << ": ";
          members_[i].second.Write(os, indent + 1);
          os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        Indent(os, indent);
        os << "}";
        return;
      }
      case Kind::kArray: {
        if (elements_.empty()) {
          os << "[]";
          return;
        }
        os << "[\n";
        for (size_t i = 0; i < elements_.size(); ++i) {
          Indent(os, indent + 1);
          elements_[i].Write(os, indent + 1);
          os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        Indent(os, indent);
        os << "]";
        return;
      }
    }
  }

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  JsonValue& Child(const std::string& key, Kind kind) {
    for (auto& [k, v] : members_) {
      if (k == key) return v;
    }
    JsonValue child;
    child.kind_ = kind;
    members_.emplace_back(key, std::move(child));
    return members_.back().second;
  }

  static void Indent(std::ostream& os, int depth) {
    for (int i = 0; i < depth; ++i) os << "  ";
  }

  static void WriteEscaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          os << "\\\"";
          break;
        case '\\':
          os << "\\\\";
          break;
        case '\n':
          os << "\\n";
          break;
        case '\t':
          os << "\\t";
          break;
        case '\r':
          os << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  int decimals_ = -1;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;  // object
  std::vector<JsonValue> elements_;                         // array
};

inline std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Root document with the common envelope every bench artifact carries:
/// bench name, schema version, and host info (hostname, core count,
/// compiler). Benches add "flags"/"seeds" objects and their result sections.
inline JsonValue BenchDoc(const std::string& bench_name) {
  JsonValue doc = JsonValue::Object();
  doc.Set("bench", bench_name);
  doc.Set("schema_version", 1);
  JsonValue& host = doc.Obj("host");
  char hostname[256] = {0};
  if (gethostname(hostname, sizeof(hostname) - 1) != 0) hostname[0] = '\0';
  host.Set("hostname", hostname);
  host.Set("hardware_concurrency",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  host.Set("compiler", CompilerString());
  return doc;
}

/// Writes `doc` to `path` (trailing newline included). Returns false and
/// logs to stderr when the file cannot be written.
inline bool WriteBenchFile(const std::string& path, const JsonValue& doc) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  doc.Write(out, 0);
  out << "\n";
  out.close();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace deepmap::bench

#endif  // DEEPMAP_BENCH_BENCH_JSON_H_
