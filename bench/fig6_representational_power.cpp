// Reproduces Figure 6: representational power (training accuracy vs epoch)
// of the deep map models vs their corresponding graph kernels on SYNTHIE.
//
// The kernels appear as flat lines (their SVM training accuracy has no
// epoch axis); the deep maps should climb well above them.
#include <cstdio>
#include <iostream>

#include "baselines/kernel_svm.h"
#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

namespace {

// Training-accuracy curve of one DEEPMAP variant fit on the whole dataset.
std::vector<double> DeepMapTrainCurve(const deepmap::graph::GraphDataset& ds,
                                      deepmap::kernels::FeatureMapKind kind,
                                      const deepmap::eval::BenchOptions& options) {
  using namespace deepmap;
  core::DeepMapConfig config = eval::DefaultDeepMapConfig(kind, options);
  core::DeepMapPipeline pipeline(ds, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  nn::TrainHistory history =
      nn::TrainClassifier(model, pipeline.inputs(), ds.labels(), config.train);
  std::vector<double> curve;
  for (const auto& e : history.epochs) curve.push_back(100.0 * e.accuracy);
  return curve;
}

// SVM training accuracy of one kernel (flat line).
double KernelTrainAccuracy(const deepmap::graph::GraphDataset& ds,
                           deepmap::kernels::FeatureMapKind kind,
                           const deepmap::eval::BenchOptions& options) {
  using namespace deepmap;
  auto maps = kernels::ComputeGraphFeatureMaps(
      ds, eval::DefaultFeatureConfig(kind, options));
  auto gram = kernels::GramMatrix(maps, true);
  std::vector<int> all(ds.size());
  for (int i = 0; i < ds.size(); ++i) all[i] = i;
  baselines::KernelSvm svm;
  baselines::SvmConfig svm_config;
  svm_config.c = 10.0;
  svm.Train(gram, ds.labels(), all, svm_config);
  return 100.0 * svm.Evaluate(gram, ds.labels(), all);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  if (!options.full) {
    options.epochs = 15;
    options.max_dense_dim = 64;
  }
  options.PrintBanner(
      "Figure 6: representational power, deep maps vs kernels (SYNTHIE)");

  auto ds = datasets::MakeDataset("SYNTHIE", options.dataset_options());
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> header{"Epoch"};
  std::vector<std::vector<double>> curves;
  std::vector<double> flats;
  for (auto kind : {kernels::FeatureMapKind::kGraphlet,
                    kernels::FeatureMapKind::kShortestPath,
                    kernels::FeatureMapKind::kWlSubtree}) {
    std::string kn = kernels::FeatureMapKindName(kind);
    std::fprintf(stderr, "[fig6] DEEPMAP-%s ...\n", kn.c_str());
    header.push_back("DEEPMAP-" + kn);
    curves.push_back(DeepMapTrainCurve(ds.value(), kind, options));
    std::fprintf(stderr, "[fig6] kernel %s ...\n", kn.c_str());
    header.push_back(kn);
    flats.push_back(KernelTrainAccuracy(ds.value(), kind, options));
  }

  Table table(header);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::string> row{std::to_string(epoch + 1)};
    for (size_t k = 0; k < curves.size(); ++k) {
      row.push_back(FormatDouble(
          epoch < static_cast<int>(curves[k].size()) ? curves[k][epoch] : 0,
          2));
      row.push_back(FormatDouble(flats[k], 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("\nPaper shape: deep map curves climb far above the flat "
              "kernel lines; DEEPMAP-WL/SP converge faster than -GK.\n");
  return 0;
}
