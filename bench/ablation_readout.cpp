// Ablation (DESIGN.md §4, paper §6): readout choice after the convolution
// stack — the paper's summation layer (Eq. 7) vs mean pooling vs the
// concatenation alternative discussed in the paper's Section 6.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Ablation: graph readout (DEEPMAP-WL)");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Readout", "Accuracy"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    for (auto readout : {core::ReadoutKind::kSum, core::ReadoutKind::kMean,
                         core::ReadoutKind::kConcat}) {
      std::fprintf(stderr, "[ablation] %s / %s ...\n", name.c_str(),
                   core::ReadoutKindName(readout).c_str());
      core::DeepMapConfig config = eval::DefaultDeepMapConfig(
          kernels::FeatureMapKind::kWlSubtree, options);
      config.readout = readout;
      eval::MethodRun run = eval::RunDeepMap(ds.value(), config, options);
      table.AddRow({name, core::ReadoutKindName(readout),
                    FormatAccuracy(run.cv.mean_accuracy, run.cv.stddev)});
    }
  }
  table.Print(std::cout);
  std::printf("\nPaper discussion (Sec. 6): sum loses local distribution "
              "information; concat is an alternative but is size-sensitive "
              "and costlier.\n");
  return 0;
}
