// Reproduces Table 3: DEEPMAP vs state-of-the-art graph kernels (DGK,
// RetGK, GNTK) and GNNs (DGCNN, GIN, DCNN, PATCHY-SAN with one-hot label
// inputs), k-fold cross-validated, with paper reference values.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"
#include "eval/paper_reference.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Table 3: DEEPMAP vs graph kernels and GNNs");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Method", "Measured", "Paper"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    auto add = [&](const std::string& method, const eval::MethodRun& run) {
      table.AddRow({name, method,
                    FormatAccuracy(run.cv.mean_accuracy, run.cv.stddev),
                    eval::FormatPaperAccuracy(eval::PaperTable3(name, method))});
    };
    std::fprintf(stderr, "[table3] %s / DEEPMAP ...\n", name.c_str());
    // DEEPMAP reports its best feature-map variant (the paper's protocol).
    eval::MethodRun best;
    best.cv.mean_accuracy = -1;
    for (auto kind : {kernels::FeatureMapKind::kGraphlet,
                      kernels::FeatureMapKind::kShortestPath,
                      kernels::FeatureMapKind::kWlSubtree}) {
      eval::MethodRun run = eval::RunDeepMap(ds.value(), kind, options);
      if (run.cv.mean_accuracy > best.cv.mean_accuracy) best = run;
    }
    add("DEEPMAP", best);
    for (auto kind : {eval::GnnKind::kDgcnn, eval::GnnKind::kGin,
                      eval::GnnKind::kDcnn, eval::GnnKind::kPatchySan}) {
      std::fprintf(stderr, "[table3] %s / %s ...\n", name.c_str(),
                   eval::GnnKindName(kind).c_str());
      add(eval::GnnKindName(kind),
          eval::RunGnn(ds.value(), kind, /*use_vertex_feature_maps=*/false,
                       options));
    }
    std::fprintf(stderr, "[table3] %s / kernel methods ...\n", name.c_str());
    add("DGK", eval::RunDgk(ds.value(), options));
    add("RETGK", eval::RunRetGk(ds.value(), options));
    add("GNTK", eval::RunGntk(ds.value(), options));
  }
  table.Print(std::cout);
  std::printf("\nShape check: DEEPMAP should rank first or near-first on "
              "most datasets (paper: best on 11/15).\n");
  return 0;
}
