// Reproduces Table 4: the GNN baselines fed the SAME vertex feature maps
// DEEPMAP consumes (WL subtree maps), isolating the architecture comparison.
#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"
#include "eval/paper_reference.h"

int main(int argc, char** argv) {
  using namespace deepmap;
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner(
      "Table 4: GNNs with the same vertex-feature-map input as DEEPMAP");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Method", "Measured", "Paper"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   ds.status().ToString().c_str());
      return 1;
    }
    auto add = [&](const std::string& method, const eval::MethodRun& run) {
      table.AddRow({name, method,
                    FormatAccuracy(run.cv.mean_accuracy, run.cv.stddev),
                    eval::FormatPaperAccuracy(eval::PaperTable4(name, method))});
    };
    std::fprintf(stderr, "[table4] %s / DEEPMAP ...\n", name.c_str());
    add("DEEPMAP",
        eval::RunDeepMap(ds.value(), kernels::FeatureMapKind::kWlSubtree,
                         options));
    for (auto kind : {eval::GnnKind::kDgcnn, eval::GnnKind::kGin,
                      eval::GnnKind::kDcnn, eval::GnnKind::kPatchySan}) {
      std::fprintf(stderr, "[table4] %s / %s ...\n", name.c_str(),
                   eval::GnnKindName(kind).c_str());
      add(eval::GnnKindName(kind),
          eval::RunGnn(ds.value(), kind, /*use_vertex_feature_maps=*/true,
                       options));
    }
  }
  table.Print(std::cout);
  std::printf("\nShape check: with identical inputs DEEPMAP should still "
              "lead on most datasets (paper: 12/15).\n");
  return 0;
}
