// Benchmarks the blocked GEMM core and the parallel DEEPMAP preprocessing
// pipeline against the seed implementations, and writes the results as JSON
// (default: BENCH_gemm_pipeline.json in the working directory; pass a path
// as argv[1] to override).
//
// Three sections:
//   gemm          — naive triple loop (the seed MatMul, zero-skip included)
//                   vs the blocked core at 1 and 8 threads, GFLOP/s.
//   preprocessing — legacy BuildDeepMapInputs (per-(slot,pos) DenseRow,
//                   sequential) and legacy GramMatrix (std::map-probe Dot)
//                   vs the current pipeline at 1 and 8 threads, wall ms.
//   epoch         — DEEPMAP training epoch time on the same dataset
//                   (trajectory metric).
// Every optimized result is checked for exact equality with its reference
// before timing is reported; "identical" records that check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "core/alignment.h"
#include "core/deepmap.h"
#include "core/receptive_field.h"
#include "datasets/registry.h"
#include "kernels/kernel_matrix.h"
#include "kernels/vertex_feature_map.h"
#include "nn/gemm.h"
#include "nn/model.h"
#include "nn/tensor.h"

namespace {

using namespace deepmap;
using Clock = std::chrono::steady_clock;

double TimeMs(const std::function<void()>& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    auto end = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(end - start).count());
  }
  return best;
}

void PinThreads(const char* value) { setenv("DEEPMAP_NUM_THREADS", value, 1); }

nn::Tensor RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  nn::Tensor t({rows, cols});
  for (int i = 0; i < t.NumElements(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// The seed implementation of MatMul: i-k-j triple loop including the
// original `av == 0.0f` skip.
nn::Tensor SeedMatMul(const nn::Tensor& a, const nn::Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  nn::Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int t = 0; t < k; ++t) {
      const float av = a.at(i, t);
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(t, j);
    }
  }
  return out;
}

bool SameBits(const nn::Tensor& a, const nn::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.NumElements())) == 0;
}

struct GemmRow {
  int m, k, n;
  double naive_ms, serial_ms, parallel_ms;
  bool identical;
};

GemmRow BenchGemmShape(int m, int k, int n) {
  nn::Tensor a = RandomMatrix(m, k, 21);
  nn::Tensor b = RandomMatrix(k, n, 22);
  const long long flops = 2LL * m * k * n;
  const int reps = flops > (1LL << 24) ? 3 : 10;

  GemmRow row{m, k, n, 0, 0, 0, false};
  nn::Tensor naive_out, serial_out, parallel_out;
  row.naive_ms = TimeMs([&] { naive_out = SeedMatMul(a, b); }, reps);
  PinThreads("1");
  row.serial_ms = TimeMs([&] { serial_out = nn::MatMul(a, b); }, reps);
  PinThreads("8");
  row.parallel_ms = TimeMs([&] { parallel_out = nn::MatMul(a, b); }, reps);
  PinThreads("1");
  row.identical =
      SameBits(naive_out, serial_out) && SameBits(serial_out, parallel_out);
  return row;
}

// Legacy BuildDeepMapInput: densifies per (slot, pos) instead of per vertex,
// sequentially over graphs with one shared RNG — the seed implementation.
nn::Tensor LegacyBuildInput(const graph::Graph& g,
                            const kernels::DatasetVertexFeatures& features,
                            int graph_index, int sequence_length, int r,
                            core::AlignmentMeasure alignment, Rng* rng) {
  const int m = features.dim();
  nn::Tensor input({sequence_length * r, m});
  const std::vector<double> centrality =
      core::ComputeCentrality(g, alignment, rng);
  const std::vector<graph::Vertex> sequence =
      core::GenerateVertexSequence(g, centrality, sequence_length);
  for (int slot = 0; slot < sequence_length; ++slot) {
    const graph::Vertex v = sequence[slot];
    if (v == core::kDummyVertex) continue;
    const std::vector<graph::Vertex> field =
        core::BuildReceptiveField(g, v, r, centrality);
    for (int pos = 0; pos < r; ++pos) {
      const graph::Vertex u = field[pos];
      if (u == core::kDummyVertex) continue;
      const std::vector<double> row = features.DenseRow(graph_index, u);
      float* dst = input.data() + (static_cast<size_t>(slot) * r + pos) * m;
      for (int c = 0; c < m; ++c) dst[c] = static_cast<float>(row[c]);
    }
  }
  return input;
}

std::vector<nn::Tensor> LegacyBuildInputs(
    const graph::GraphDataset& dataset,
    const kernels::DatasetVertexFeatures& features,
    const core::DeepMapConfig& config) {
  const int w = std::max(1, dataset.MaxVertices());
  Rng rng(config.seed + 0x5eed);
  std::vector<nn::Tensor> inputs;
  inputs.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    inputs.push_back(LegacyBuildInput(dataset.graph(g), features, g, w,
                                      config.receptive_field_size,
                                      config.alignment, &rng));
  }
  return inputs;
}

// Legacy GramMatrix: sequential upper triangle with std::map-probe Dot.
kernels::Matrix LegacyGram(const std::vector<kernels::SparseFeatureMap>& maps,
                           bool normalize) {
  const size_t n = maps.size();
  kernels::Matrix k(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double value = maps[i].Dot(maps[j]);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  if (normalize) kernels::NormalizeKernelMatrix(k);
  return k;
}

bool SameInputs(const std::vector<nn::Tensor>& a,
                const std::vector<nn::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameBits(a[i], b[i])) return false;
  }
  return true;
}

bool SameMatrix(const kernels::Matrix& a, const kernels::Matrix& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(a[i].data(), b[i].data(), sizeof(double) * a[i].size()) !=
        0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_gemm_pipeline.json";
  PinThreads("1");

  // --- GEMM ---------------------------------------------------------------
  std::vector<GemmRow> gemm_rows;
  // 256^3 is the acceptance shape; the others mirror the library's real
  // call sites (conv1 im2col, dense layers, tall-skinny activations).
  for (auto [m, k, n] : std::vector<std::array<int, 3>>{
           {256, 256, 256}, {128, 128, 128}, {64, 320, 32},
           {512, 128, 128}, {301, 13, 7}}) {
    std::fprintf(stderr, "[gemm] %dx%dx%d ...\n", m, k, n);
    gemm_rows.push_back(BenchGemmShape(m, k, n));
  }

  // --- Preprocessing on the largest synthetic dataset ---------------------
  // COLLAB is the largest Table 1 dataset by average graph size (74
  // vertices); the default registry scale keeps this single-core friendly.
  datasets::DatasetOptions dopts;
  dopts.scale = 0.05;
  dopts.min_graphs = 120;
  auto ds = datasets::MakeDataset("COLLAB", dopts);
  // COLLAB's WL vocabulary is huge (dense ego graphs, degrees as labels);
  // cap the dense dimension via feature hashing so the [w*r, m] inputs fit
  // in memory — the paper pipeline uses the same escape hatch.
  const int kDenseDimCap = 512;
  if (!ds.ok()) {
    std::fprintf(stderr, "COLLAB: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = ds.value();
  std::fprintf(stderr, "[prep] COLLAB stand-in: %d graphs, max |V| = %d\n",
               dataset.size(), dataset.MaxVertices());

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.max_dense_dim = kDenseDimCap;
  kernels::DatasetVertexFeatures features =
      kernels::ComputeDatasetVertexFeatures(dataset, config.features);

  std::vector<nn::Tensor> legacy_inputs, serial_inputs, parallel_inputs;
  const double build_legacy_ms =
      TimeMs([&] { legacy_inputs = LegacyBuildInputs(dataset, features, config); }, 3);
  PinThreads("1");
  const double build_serial_ms = TimeMs(
      [&] { serial_inputs = core::BuildDeepMapInputs(dataset, features, config); },
      3);
  PinThreads("8");
  const double build_parallel_ms = TimeMs(
      [&] { parallel_inputs = core::BuildDeepMapInputs(dataset, features, config); },
      3);
  PinThreads("1");
  const bool build_identical = SameInputs(legacy_inputs, serial_inputs) &&
                               SameInputs(serial_inputs, parallel_inputs);

  std::vector<kernels::SparseFeatureMap> maps;
  maps.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    maps.push_back(features.GraphFeatureMap(g));
  }
  kernels::Matrix legacy_gram, serial_gram, parallel_gram;
  const double gram_legacy_ms =
      TimeMs([&] { legacy_gram = LegacyGram(maps, true); }, 3);
  PinThreads("1");
  const double gram_serial_ms =
      TimeMs([&] { serial_gram = kernels::GramMatrix(maps, true); }, 3);
  PinThreads("8");
  const double gram_parallel_ms =
      TimeMs([&] { parallel_gram = kernels::GramMatrix(maps, true); }, 3);
  PinThreads("1");
  const bool gram_identical = SameMatrix(legacy_gram, serial_gram) &&
                              SameMatrix(serial_gram, parallel_gram);

  // --- Epoch time (trajectory metric) -------------------------------------
  std::fprintf(stderr, "[epoch] training 3 epochs ...\n");
  config.train.epochs = 3;
  core::DeepMapModel model(features.dim(), std::max(1, dataset.MaxVertices()),
                           dataset.NumClasses(), config);
  std::vector<int> labels;
  labels.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) labels.push_back(dataset.label(g));
  const auto train_start = Clock::now();
  nn::TrainClassifier(model, serial_inputs, labels, config.train);
  const double epoch_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - train_start)
          .count() /
      config.train.epochs;

  // --- JSON ----------------------------------------------------------------
  using bench::JsonValue;
  JsonValue doc = bench::BenchDoc("gemm_pipeline");
  JsonValue& gemm = doc.Arr("gemm");
  for (const GemmRow& r : gemm_rows) {
    const double gflop = 2.0 * r.m * r.k * r.n / 1e9;
    gemm.Push(JsonValue::Object()
                  .Set("m", r.m)
                  .Set("k", r.k)
                  .Set("n", r.n)
                  .Set("naive_ms", JsonValue::Fixed(r.naive_ms, 3))
                  .Set("blocked_serial_ms", JsonValue::Fixed(r.serial_ms, 3))
                  .Set("blocked_8threads_ms", JsonValue::Fixed(r.parallel_ms, 3))
                  .Set("naive_gflops", JsonValue::Fixed(gflop / (r.naive_ms / 1e3), 2))
                  .Set("blocked_serial_gflops",
                       JsonValue::Fixed(gflop / (r.serial_ms / 1e3), 2))
                  .Set("blocked_8threads_gflops",
                       JsonValue::Fixed(gflop / (r.parallel_ms / 1e3), 2))
                  .Set("speedup_serial", JsonValue::Fixed(r.naive_ms / r.serial_ms, 2))
                  .Set("bit_identical", r.identical));
  }
  doc.Obj("preprocessing")
      .Set("dataset", "COLLAB")
      .Set("num_graphs", dataset.size())
      .Set("max_vertices", dataset.MaxVertices())
      .Set("build_inputs_legacy_ms", JsonValue::Fixed(build_legacy_ms, 1))
      .Set("build_inputs_serial_ms", JsonValue::Fixed(build_serial_ms, 1))
      .Set("build_inputs_8threads_ms", JsonValue::Fixed(build_parallel_ms, 1))
      .Set("build_inputs_speedup",
           JsonValue::Fixed(
               build_legacy_ms / std::min(build_serial_ms, build_parallel_ms), 2))
      .Set("build_inputs_bit_identical", build_identical)
      .Set("gram_legacy_ms", JsonValue::Fixed(gram_legacy_ms, 1))
      .Set("gram_serial_ms", JsonValue::Fixed(gram_serial_ms, 1))
      .Set("gram_8threads_ms", JsonValue::Fixed(gram_parallel_ms, 1))
      .Set("gram_speedup",
           JsonValue::Fixed(
               gram_legacy_ms / std::min(gram_serial_ms, gram_parallel_ms), 2))
      .Set("gram_bit_identical", gram_identical);
  doc.Obj("epoch").Set("deepmap_epoch_ms", JsonValue::Fixed(epoch_ms, 1));
  bench::WriteBenchFile(out_path, doc);
  for (const GemmRow& r : gemm_rows) {
    std::fprintf(stderr,
                 "gemm %dx%dx%d: naive %.2f ms, blocked %.2f ms (%.2fx), "
                 "identical=%d\n",
                 r.m, r.k, r.n, r.naive_ms, r.serial_ms,
                 r.naive_ms / r.serial_ms, r.identical ? 1 : 0);
  }
  std::fprintf(stderr,
               "build inputs: legacy %.1f ms -> %.1f ms (%.2fx), identical=%d\n",
               build_legacy_ms, build_serial_ms,
               build_legacy_ms / build_serial_ms, build_identical ? 1 : 0);
  std::fprintf(stderr, "gram: legacy %.1f ms -> %.1f ms (%.2fx), identical=%d\n",
               gram_legacy_ms, gram_serial_ms, gram_legacy_ms / gram_serial_ms,
               gram_identical ? 1 : 0);
  std::fprintf(stderr, "epoch: %.1f ms\n", epoch_ms);
  return 0;
}
