// Extension bench: the related-work GNNs the paper discusses but does not
// benchmark (Sec. 2.2) — GCN, GAT, GraphSAGE — against DEEPMAP-WL on the
// default datasets. All use one-hot vertex-label inputs.
#include <cstdio>
#include <iostream>

#include "baselines/gat.h"
#include "baselines/gcn.h"
#include "baselines/graphsage.h"
#include "common/string_util.h"
#include "common/table.h"
#include "eval/experiment.h"

namespace {

using namespace deepmap;

// Generic fold runner over prebuilt samples.
template <typename Sample, typename MakeModel>
eval::CvResult RunFolds(const std::vector<Sample>& samples,
                        const std::vector<int>& labels,
                        const eval::BenchOptions& options,
                        MakeModel make_model) {
  nn::TrainConfig train;
  train.epochs = options.epochs;
  train.batch_size = options.batch_size;
  return eval::CrossValidate(
      labels, options.folds, options.seed,
      [&](const eval::FoldSplit& split, int fold) {
        auto model = make_model(options.seed + 500 + fold);
        std::vector<Sample> tr, te;
        std::vector<int> trl, tel;
        for (int i : split.train_indices) {
          tr.push_back(samples[i]);
          trl.push_back(labels[i]);
        }
        for (int i : split.test_indices) {
          te.push_back(samples[i]);
          tel.push_back(labels[i]);
        }
        nn::TrainConfig fold_train = train;
        fold_train.seed = options.seed + 900 + fold;
        nn::TrainClassifier(model, tr, trl, fold_train);
        return nn::EvaluateAccuracy(model, te, tel);
      });
}

}  // namespace

int main(int argc, char** argv) {
  eval::BenchOptions options = eval::BenchOptions::FromArgs(argc, argv);
  options.PrintBanner("Extensions: GCN / GAT / GraphSAGE vs DEEPMAP-WL");

  const std::vector<std::string> default_datasets{"KKI", "PTC_MR"};
  const auto selected = options.SelectedDatasets(default_datasets);

  Table table({"Dataset", "Method", "Accuracy"});
  for (const std::string& name : selected) {
    auto ds = datasets::MakeDataset(name, options.dataset_options());
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    const int classes = ds.value().NumClasses();
    auto add = [&](const std::string& method, const eval::CvResult& cv) {
      table.AddRow({name, method,
                    FormatAccuracy(cv.mean_accuracy, cv.stddev)});
    };
    std::fprintf(stderr, "[ext-gnn] %s / DEEPMAP-WL ...\n", name.c_str());
    add("DEEPMAP-WL",
        eval::RunDeepMap(ds.value(), kernels::FeatureMapKind::kWlSubtree,
                         options)
            .cv);
    baselines::VertexFeatureProvider provider =
        baselines::OneHotProvider(ds.value());
    {
      std::fprintf(stderr, "[ext-gnn] %s / GCN ...\n", name.c_str());
      auto samples = baselines::BuildGcnSamples(ds.value(), provider);
      add("GCN", RunFolds(samples, ds.value().labels(), options,
                          [&](uint64_t seed) {
                            baselines::GcnConfig config;
                            config.seed = seed;
                            return baselines::GcnModel(provider.dim, classes,
                                                       config);
                          }));
    }
    {
      std::fprintf(stderr, "[ext-gnn] %s / GAT ...\n", name.c_str());
      auto samples = baselines::BuildGatSamples(ds.value(), provider);
      add("GAT", RunFolds(samples, ds.value().labels(), options,
                          [&](uint64_t seed) {
                            baselines::GatConfig config;
                            config.seed = seed;
                            return baselines::GatModel(provider.dim, classes,
                                                       config);
                          }));
    }
    {
      std::fprintf(stderr, "[ext-gnn] %s / GraphSAGE ...\n", name.c_str());
      auto samples = baselines::BuildGraphSageSamples(ds.value(), provider);
      add("GraphSAGE",
          RunFolds(samples, ds.value().labels(), options,
                   [&](uint64_t seed) {
                     baselines::GraphSageConfig config;
                     config.seed = seed;
                     return baselines::GraphSageModel(provider.dim, classes,
                                                      config);
                   }));
    }
  }
  table.Print(std::cout);
  std::printf("\nContext: the paper notes GCN/GAT/GraphSAGE target vertex "
              "classification; with a mean-pool readout they are reasonable "
              "but not leading graph classifiers.\n");
  return 0;
}
