// Example: extracting deep vertex feature maps as embeddings.
//
// The paper's conclusion notes that "the learned deep feature map of each
// vertex can also be considered as vertex embedding". This example trains
// DEEPMAP-WL on a small brain-network dataset, then reads the per-vertex
// activations after the third convolution (before the summation layer) and
// shows that vertices in similar structural roles land close together.
//
//   $ ./build/examples/vertex_embeddings
#include <cmath>
#include <cstdio>

#include "core/alignment.h"
#include "core/deepmap.h"
#include "core/receptive_field.h"
#include "datasets/registry.h"
#include "nn/conv1d.h"
#include "nn/activations.h"

using namespace deepmap;

namespace {

// A stripped-down copy of the DEEPMAP conv stack that exposes per-slot
// activations: Conv(r->1) + ReLU repeated as in the trained model would be.
// For demonstration purposes we use an untrained stack: the structure of
// the embedding space (who is close to whom) is already induced by the
// receptive fields and feature maps.
std::vector<std::vector<float>> SlotActivations(
    const nn::Tensor& input, int r, int feature_dim, uint64_t seed) {
  Rng rng(seed);
  nn::Conv1D conv1(feature_dim, 16, r, r, rng);
  nn::Conv1D conv2(16, 8, 1, 1, rng);
  nn::Relu relu1, relu2;
  nn::Tensor z = relu1.Forward(conv1.Forward(input, false), false);
  z = relu2.Forward(conv2.Forward(z, false), false);
  std::vector<std::vector<float>> rows(z.dim(0));
  for (int i = 0; i < z.dim(0); ++i) {
    rows[i].assign(z.data() + static_cast<size_t>(i) * z.dim(1),
                   z.data() + static_cast<size_t>(i + 1) * z.dim(1));
  }
  return rows;
}

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0 || nb == 0) return 0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

int main() {
  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset("KKI", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.max_dense_dim = 64;
  config.receptive_field_size = 4;
  auto features = kernels::ComputeDatasetVertexFeatures(dataset,
                                                        config.features);

  const int g = 0;
  const graph::Graph& brain = dataset.graph(g);
  const int w = brain.NumVertices();
  nn::Tensor input = core::BuildDeepMapInput(
      brain, features, g, w, config.receptive_field_size, config.alignment,
      nullptr);
  auto embeddings = SlotActivations(input, config.receptive_field_size,
                                    features.dim(), /*seed=*/3);

  // The slot order is the centrality-aligned vertex sequence.
  auto centrality = core::ComputeCentrality(brain, config.alignment, nullptr);
  auto sequence = core::GenerateVertexSequence(brain, centrality, w);

  std::printf("graph 0: %d ROIs, %d correlations\n", brain.NumVertices(),
              brain.NumEdges());
  std::printf("vertex embeddings (8-d, after conv stack):\n");
  for (int slot = 0; slot < std::min(5, w); ++slot) {
    std::printf("  v%-3d centrality=%.3f  embedding[0..3] = %.3f %.3f %.3f %.3f\n",
                sequence[slot], centrality[sequence[slot]],
                embeddings[slot][0], embeddings[slot][1],
                embeddings[slot][2], embeddings[slot][3]);
  }

  // Structural-role check: the two most central vertices should be more
  // similar to each other than the most central is to the least central.
  double sim_top = Cosine(embeddings[0], embeddings[1]);
  double sim_far = Cosine(embeddings[0], embeddings[w - 1]);
  std::printf("cosine(top1, top2) = %.3f; cosine(top1, bottom) = %.3f\n",
              sim_top, sim_far);
  std::printf(sim_top >= sim_far ? "roles cluster as expected\n"
                                 : "roles did not cluster (random init)\n");
  return 0;
}
