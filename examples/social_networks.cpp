// Domain example: classifying ego networks (the paper's IMDB workloads).
//
// Unlabeled collaboration graphs get degree labels (the paper's rule), then
// three methods compete: the graphlet kernel, DEEPMAP-GK, and the GIN
// baseline. Also demonstrates the graphlet catalog API.
//
//   $ ./build/examples/social_networks
#include <cstdio>

#include "baselines/gin.h"
#include "baselines/kernel_svm.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "eval/cross_validation.h"
#include "kernels/graphlet.h"

using namespace deepmap;

int main() {
  // Graphlet catalog: the paper's Figure 1 shows the 4 size-3 graphlets.
  const kernels::GraphletCatalog& catalog = kernels::GetGraphletCatalog(3);
  std::printf("size-3 graphlet catalog (%d types):\n", catalog.size());
  for (int i = 0; i < catalog.size(); ++i) {
    std::printf("  G%d^(3): %d edges\n", i + 1,
                catalog.Exemplar(i).NumEdges());
  }

  datasets::DatasetOptions options;
  options.scale = 0.08;
  options.min_graphs = 80;
  auto dataset_or = datasets::MakeDataset("IMDB-BINARY", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();
  std::printf("\nIMDB-BINARY-like: %d ego networks (degrees as labels)\n",
              dataset.size());

  // Graphlet kernel + SVM.
  kernels::VertexFeatureConfig gk;
  gk.kind = kernels::FeatureMapKind::kGraphlet;
  gk.graphlet.k = 4;
  gk.graphlet.samples_per_vertex = 20;
  auto kernel_cv = baselines::GraphKernelBaseline(dataset, gk, 3, 42);
  std::printf("GK + SVM   : %.2f%% +- %.2f%%\n", kernel_cv.mean_accuracy,
              kernel_cv.stddev);

  // DEEPMAP-GK.
  core::DeepMapConfig config;
  config.features = gk;
  config.receptive_field_size = 5;
  config.train.epochs = 20;
  config.train.batch_size = 8;
  core::DeepMapPipeline pipeline(dataset, config);
  auto deep_cv = eval::CrossValidate(
      dataset.labels(), 3, 42,
      [&](const eval::FoldSplit& split, int fold) {
        return pipeline
            .RunFold(split.train_indices, split.test_indices, 100 + fold)
            .test_accuracy;
      });
  std::printf("DEEPMAP-GK : %.2f%% +- %.2f%%\n", deep_cv.mean_accuracy,
              deep_cv.stddev);

  // GIN baseline on one-hot degree labels.
  baselines::VertexFeatureProvider provider =
      baselines::OneHotProvider(dataset);
  auto samples = baselines::BuildGinSamples(dataset, provider);
  auto gin_cv = eval::CrossValidate(
      dataset.labels(), 3, 42,
      [&](const eval::FoldSplit& split, int fold) {
        baselines::GinConfig gin_config;
        gin_config.seed = 100 + fold;
        baselines::GinModel model(provider.dim, dataset.NumClasses(),
                                  gin_config);
        std::vector<baselines::GinSample> train_s, test_s;
        std::vector<int> train_y, test_y;
        for (int i : split.train_indices) {
          train_s.push_back(samples[i]);
          train_y.push_back(dataset.label(i));
        }
        for (int i : split.test_indices) {
          test_s.push_back(samples[i]);
          test_y.push_back(dataset.label(i));
        }
        nn::TrainConfig train;
        train.epochs = 20;
        train.batch_size = 8;
        train.seed = 200 + fold;
        nn::TrainClassifier(model, train_s, train_y, train);
        return nn::EvaluateAccuracy(model, test_s, test_y);
      });
  std::printf("GIN        : %.2f%% +- %.2f%%\n", gin_cv.mean_accuracy,
              gin_cv.stddev);
  return 0;
}
