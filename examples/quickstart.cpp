// Quickstart: build a small labeled graph dataset, train DEEPMAP-WL, and
// classify held-out graphs.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface: Graph construction, dataset
// assembly, DeepMapConfig, the pipeline, and cross-validation.
#include <cstdio>

#include "core/deepmap.h"
#include "eval/cross_validation.h"
#include "graph/dataset.h"
#include "graph/graph.h"

using deepmap::Rng;
using deepmap::core::DeepMapConfig;
using deepmap::core::DeepMapPipeline;
using deepmap::graph::Graph;
using deepmap::graph::GraphDataset;

namespace {

// Two easily distinguishable families: 6-rings ("aromatic") and 6-chains
// ("aliphatic"), with a couple of decorating atoms each.
Graph MakeRingMolecule(Rng& rng) {
  Graph g(6, /*label=*/0);  // carbon ring
  for (int i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6);
  int extras = rng.UniformInt(1, 3);
  for (int e = 0; e < extras; ++e) {
    auto v = g.AddVertex(/*label=*/1);  // substituent
    g.AddEdge(v, static_cast<deepmap::graph::Vertex>(rng.Index(6)));
  }
  return g;
}

Graph MakeChainMolecule(Rng& rng) {
  int n = rng.UniformInt(5, 8);
  Graph g(n, /*label=*/0);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  auto v = g.AddVertex(/*label=*/1);
  g.AddEdge(v, 0);
  return g;
}

}  // namespace

int main() {
  // 1. Assemble a dataset: 30 molecules per class.
  Rng rng(7);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    graphs.push_back(MakeRingMolecule(rng));
    labels.push_back(0);
    graphs.push_back(MakeChainMolecule(rng));
    labels.push_back(1);
  }
  GraphDataset dataset("molecules", std::move(graphs), std::move(labels));
  std::printf("dataset: %d graphs, %d classes, w=%d vertices max\n",
              dataset.size(), dataset.NumClasses(), dataset.MaxVertices());

  // 2. Configure DEEPMAP: WL subtree vertex feature maps, receptive field 4.
  DeepMapConfig config;
  config.features.kind = deepmap::kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.receptive_field_size = 4;
  config.train.epochs = 20;
  config.train.batch_size = 8;

  // 3. The pipeline computes feature maps and CNN inputs once.
  DeepMapPipeline pipeline(dataset, config);
  std::printf("vertex feature dimension m=%d (vocabulary %zu)\n",
              pipeline.feature_dim(), pipeline.features().vocabulary_size());

  // 4. 5-fold cross-validation.
  auto cv = deepmap::eval::CrossValidate(
      dataset.labels(), /*num_folds=*/5, /*seed=*/42,
      [&](const deepmap::eval::FoldSplit& split, int fold) {
        auto result = pipeline.RunFold(split.train_indices,
                                       split.test_indices, 100 + fold);
        std::printf("  fold %d: train acc %.1f%%, test acc %.1f%%\n", fold,
                    100.0 * result.history.final_accuracy(),
                    100.0 * result.test_accuracy);
        return result.test_accuracy;
      });
  std::printf("DEEPMAP-WL accuracy: %.2f%% +- %.2f%%\n", cv.mean_accuracy,
              cv.stddev);
  return cv.mean_accuracy > 80.0 ? 0 : 1;
}
