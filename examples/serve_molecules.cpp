// Example: deploy a trained DEEPMAP model behind the inference engine.
//
//   $ ./build/examples/serve_molecules [num_requests]
//
// Trains DEEPMAP-WL on a synthetic molecule dataset, persists the
// parameters, reloads them through the ModelRegistry (architecture and
// preprocessing state are validated against the reference dataset), and
// serves a request stream through the batched engine: requests coalesce
// into micro-batches, repeated molecules hit the WL-hash prediction cache,
// and per-stage latency metrics are printed at the end.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <vector>

#include "common/stopwatch.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/serialization.h"
#include "serve/engine.h"

using namespace deepmap;

int main(int argc, char** argv) {
  // 10k requests reproduces the deployment-scale run; the smoke-test
  // default stays small enough for CI on a single core.
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 2000;

  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset("PTC_MM", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.train.epochs = 8;
  config.train.batch_size = 8;

  // 1. Train on the full dataset (a deployment-style fit) and persist.
  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  auto history = nn::TrainClassifier(model, pipeline.inputs(),
                                     dataset.labels(), config.train);
  std::printf("trained DEEPMAP-WL on %s: train accuracy %.1f%%\n",
              dataset.name().c_str(), 100.0 * history.final_accuracy());

  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "deepmap_serve_molecules.bin";
  if (auto s = nn::SaveParameters(model.Params(), path.string()); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Reload through the registry, as a serving process would: the
  // persisted parameters are validated against the architecture implied by
  // (reference dataset, config), and the preprocessing state (WL color
  // dictionary, feature vocabulary, column scales) is rebuilt.
  serve::ModelRegistry registry;
  if (auto s = registry.Load("molecules", dataset, config, path.string());
      !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("registry serves: ");
  for (const std::string& name : registry.Names()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n");

  // 3. Serve a molecule screening stream. Screening workloads resubmit the
  // same compounds, so the stream cycles over the dataset and most requests
  // after the first pass are cache hits.
  serve::InferenceEngine::Options engine_options;
  engine_options.batcher.max_batch = 32;
  engine_options.batcher.max_wait_us = 2000;
  engine_options.batcher.queue_capacity =
      static_cast<size_t>(num_requests) + 16;
  engine_options.cache_capacity = 4096;
  serve::InferenceEngine engine(registry.Get("molecules"), engine_options);

  Stopwatch timer;
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  const int first_pass = std::min(static_cast<int>(dataset.size()),
                                  num_requests);
  for (int i = 0; i < first_pass; ++i) {
    futures.push_back(engine.Submit(dataset.graph(i % dataset.size())));
  }
  // Let the first pass finish so its predictions are cached; without this
  // the submitter outruns the servers and resubmissions miss the cache.
  engine.Drain();
  for (int i = first_pass; i < num_requests; ++i) {
    futures.push_back(engine.Submit(dataset.graph(i % dataset.size())));
  }
  std::vector<int64_t> class_counts(
      static_cast<size_t>(dataset.NumClasses()), 0);
  int errors = 0;
  for (auto& f : futures) {
    StatusOr<serve::Prediction> result = f.get();
    if (result.ok()) {
      ++class_counts[static_cast<size_t>(result.value().label)];
    } else {
      ++errors;
    }
  }
  const double elapsed = timer.ElapsedSeconds();

  std::printf("\nserved %d requests in %.3f s (%.1f graphs/sec)\n",
              num_requests, elapsed, num_requests / elapsed);
  for (size_t c = 0; c < class_counts.size(); ++c) {
    std::printf("  class %zu: %lld predictions\n", c,
                static_cast<long long>(class_counts[c]));
  }
  std::printf("\n");
  engine.metrics().Print(std::cout);

  std::filesystem::remove(path);
  return errors == 0 ? 0 : 1;
}
