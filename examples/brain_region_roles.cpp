// Example: vertex classification with deep vertex feature maps (the
// extension sketched in the paper's conclusion).
//
//   $ ./build/examples/brain_region_roles
//
// On KKI-like brain networks, classify each ROI's functional role (hub /
// connector / peripheral, derived from its structural position) from its
// receptive-field feature maps — training on some subjects, predicting on
// held-out subjects.
#include <algorithm>
#include <cstdio>

#include "core/vertex_classification.h"
#include "datasets/registry.h"
#include "graph/centrality.h"

using namespace deepmap;

int main() {
  datasets::DatasetOptions options;
  options.min_graphs = 30;
  options.scale = 0.0;
  auto dataset_or = datasets::MakeDataset("KKI", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  // Role labels per ROI: hub (>= 5 correlations), peripheral (<= 1),
  // connector (everything else) — structural roles recoverable from the
  // vertex's receptive-field feature maps.
  std::vector<std::vector<int>> roles;
  for (const graph::Graph& g : dataset.graphs()) {
    std::vector<int> role(g.NumVertices());
    for (graph::Vertex v = 0; v < g.NumVertices(); ++v) {
      if (g.Degree(v) >= 5) {
        role[v] = 0;  // hub
      } else if (g.Degree(v) <= 1) {
        role[v] = 2;  // peripheral
      } else {
        role[v] = 1;  // connector
      }
    }
    roles.push_back(std::move(role));
  }

  core::VertexClassifierConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.features.max_dense_dim = 64;
  config.receptive_field_size = 4;
  config.train.epochs = 20;
  config.train.batch_size = 32;

  core::VertexClassifierPipeline pipeline(dataset, roles, config);
  std::printf("KKI-like: %d subjects, %zu ROIs total, %d role classes, m=%d\n",
              dataset.size(), pipeline.vertices().size(),
              pipeline.num_classes(), pipeline.feature_dim());

  // Subject-level split: train on the first 2/3 of subjects.
  const int train_subjects = 2 * dataset.size() / 3;
  std::vector<int> train_refs, test_refs;
  for (size_t i = 0; i < pipeline.vertices().size(); ++i) {
    (pipeline.vertices()[i].graph < train_subjects ? train_refs : test_refs)
        .push_back(static_cast<int>(i));
  }
  double accuracy = pipeline.TrainAndEvaluate(train_refs, test_refs, 42);
  std::printf("held-out subject ROI-role accuracy: %.1f%% "
              "(%zu train ROIs, %zu test ROIs)\n",
              100.0 * accuracy, train_refs.size(), test_refs.size());
  return accuracy > 0.6 ? 0 : 1;
}
