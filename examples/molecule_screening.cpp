// Domain example: virtual screening on a synthetic chemical-compound
// benchmark (the paper's chemistry workloads, DESIGN.md substitution #1).
//
// Compares the classic WL-kernel + SVM pipeline against DEEPMAP-WL on the
// NCI1-like dataset, and shows how to persist the dataset in TU format so
// the real NCI1 files can be dropped in unchanged.
//
//   $ ./build/examples/molecule_screening
#include <cstdio>

#include <filesystem>

#include "baselines/kernel_svm.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "eval/cross_validation.h"
#include "graph/tu_format.h"

using namespace deepmap;

int main() {
  // 1. Generate the NCI1 stand-in (scaled down for the demo).
  datasets::DatasetOptions options;
  options.scale = 0.03;  // ~124 of 4110 graphs
  options.min_graphs = 100;
  auto dataset_or = datasets::MakeDataset("NCI1", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();
  auto stats = dataset.Stats();
  std::printf("NCI1-like screen: %d compounds, avg %.1f atoms, %d atom types\n",
              stats.size, stats.avg_vertices, stats.num_vertex_labels);

  // 2. Persist in TU format (round-trips through the standard loader).
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "deepmap_nci1_demo";
  std::filesystem::create_directories(dir);
  if (auto status = graph::WriteTuDataset(dataset, dir.string());
      !status.ok()) {
    std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
    return 1;
  }
  auto reloaded = graph::ReadTuDataset(dir.string(), "NCI1");
  std::printf("TU round-trip: %s -> %d graphs reloaded\n", dir.c_str(),
              reloaded.ok() ? reloaded.value().size() : -1);

  // 3. Baseline: WL subtree kernel + C-SVM (paper's WL column).
  kernels::VertexFeatureConfig wl;
  wl.kind = kernels::FeatureMapKind::kWlSubtree;
  wl.wl.iterations = 3;
  auto kernel_cv = baselines::GraphKernelBaseline(dataset, wl, /*folds=*/3,
                                                  /*seed=*/42);
  std::printf("WL kernel + SVM : %.2f%% +- %.2f%%\n",
              kernel_cv.mean_accuracy, kernel_cv.stddev);

  // 4. DEEPMAP-WL on the same feature maps.
  core::DeepMapConfig config;
  config.features = wl;
  config.features.max_dense_dim = 96;
  config.receptive_field_size = 5;
  config.train.epochs = 20;
  config.train.batch_size = 8;
  core::DeepMapPipeline pipeline(dataset, config);
  auto deep_cv = eval::CrossValidate(
      dataset.labels(), 3, 42,
      [&](const eval::FoldSplit& split, int fold) {
        return pipeline
            .RunFold(split.train_indices, split.test_indices, 100 + fold)
            .test_accuracy;
      });
  std::printf("DEEPMAP-WL      : %.2f%% +- %.2f%%\n", deep_cv.mean_accuracy,
              deep_cv.stddev);

  std::filesystem::remove_all(dir);
  return 0;
}
