// Example: train once, save the model, reload it elsewhere and classify.
//
//   $ ./build/examples/model_persistence
//
// Demonstrates nn::SaveParameters / nn::LoadParameters on a full DEEPMAP
// model: the reloaded model reproduces the trained model's predictions
// bit for bit.
#include <cstdio>

#include <filesystem>

#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/serialization.h"

using namespace deepmap;

int main() {
  datasets::DatasetOptions options;
  options.min_graphs = 40;
  auto dataset_or = datasets::MakeDataset("PTC_MR", options);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const graph::GraphDataset& dataset = dataset_or.value();

  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.max_dense_dim = 64;
  config.train.epochs = 15;
  config.train.batch_size = 8;

  // Train on everything (a deployment-style fit).
  core::DeepMapPipeline pipeline(dataset, config);
  core::DeepMapModel model(pipeline.feature_dim(), pipeline.sequence_length(),
                           pipeline.num_classes(), config);
  auto history = nn::TrainClassifier(model, pipeline.inputs(),
                                     dataset.labels(), config.train);
  std::printf("trained DEEPMAP-WL: final train accuracy %.1f%%\n",
              100.0 * history.final_accuracy());

  // Save.
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "deepmap_ptc_mr.bin";
  if (auto s = nn::SaveParameters(model.Params(), path.string()); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved model to %s (%ju bytes)\n", path.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(path)));

  // Reload into a FRESH model (different random init) and compare.
  core::DeepMapConfig fresh_config = config;
  fresh_config.seed = 12345;
  core::DeepMapModel restored(pipeline.feature_dim(),
                              pipeline.sequence_length(),
                              pipeline.num_classes(), fresh_config);
  if (auto s = nn::LoadParameters(restored.Params(), path.string()); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }
  int agreements = 0;
  for (int i = 0; i < dataset.size(); ++i) {
    int a = nn::Predict(model, pipeline.inputs()[i]);
    int b = nn::Predict(restored, pipeline.inputs()[i]);
    if (a == b) ++agreements;
  }
  std::printf("restored model agrees on %d/%d graphs\n", agreements,
              dataset.size());
  std::filesystem::remove(path);
  return agreements == dataset.size() ? 0 : 1;
}
