// Tests for the self-healing serving layer: watchdog hang/crash detection,
// exactly-once recovery and re-dispatch of a failed replica's requests,
// poison-pill quarantine, restart-with-backoff and rejoin, health-aware
// work stealing, the Drain-vs-Submit ordering contract, cache-counter
// continuity across a replica restart, and versioned hot model reload
// (shadow validation, atomic swap, rollback, circuit breaker).
//
// Failures are injected through fail points ("serve.replica.hang",
// "serve.replica.crash", "serve.registry.reload", "serve.reload.corrupt",
// "serve.registry.calibrate") and recovery is driven either by the
// background watchdog with millisecond knobs or synchronously via
// Supervisor::ScanOnce — no test depends on a sleep for correctness.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "nn/serialization.h"
#include "serve/cluster.h"
#include "serve/engine.h"
#include "serve/supervisor.h"

namespace deepmap {
namespace {

using serve::Prediction;
using serve::PredictionSource;
using serve::ReplicaHealth;
using serve::RequestOptions;
using serve::ServeCluster;
using serve::ServeOutcome;
using serve::Supervisor;

constexpr auto kWatchdog = std::chrono::seconds(20);

/// Leaves the process-wide fail-point registry clean no matter how a test
/// exits, so one test's faults can never leak into the next.
struct FailPointGuard {
  ~FailPointGuard() { FailPointRegistry::Instance().DisableAll(); }
};

/// A gate that a fail-point hook can park a replica worker on. Once opened
/// it stays open, so late evaluations (e.g. during shutdown drain) never
/// deadlock.
struct DispatchGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> parked{0};

  void Park() {
    ++parked;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitParked(int n = 1) {
    while (parked.load() < n) std::this_thread::yield();
  }
};

/// Blocks until `f` resolves or the watchdog fires; a timeout means a
/// promise was abandoned, which the serving stack must never do.
StatusOr<Prediction> MustResolve(std::future<StatusOr<Prediction>>& f) {
  EXPECT_EQ(f.wait_for(kWatchdog), std::future_status::ready)
      << "future abandoned";
  return f.get();
}

/// Spins (with a short sleep) until `pred` holds or kWatchdog elapses.
template <typename Pred>
bool PollUntil(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + kWatchdog;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::filesystem::path TempFile(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

// Shared trained bundle (training is the slow part; once per process).
struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();

    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 2;
    b->config.train.batch_size = 8;

    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);

    Status s = b->registry.Adopt("ptc_mm", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("ptc_mm");
    DEEPMAP_CHECK(b->servable != nullptr);
    return b;
  }();
  return *bundle;
}

/// Base options for supervision tests: caching off (every request travels
/// the full queue/pipeline path), one pool thread per replica.
ServeCluster::Options UncachedClusterOptions(size_t num_replicas) {
  ServeCluster::Options o;
  o.num_replicas = num_replicas;
  o.cache_capacity = 0;
  o.replica.num_threads = 1;
  return o;
}

/// Millisecond-scale watchdog knobs so detection and restart happen within
/// a few scan ticks instead of the production defaults.
Supervisor::Options FastSupervision() {
  Supervisor::Options s;
  s.check_interval = std::chrono::milliseconds(1);
  s.hang_timeout = std::chrono::milliseconds(20);
  s.restart_backoff_initial = std::chrono::milliseconds(1);
  return s;
}

// ---------------------------------------------------------------------------
// Watchdog: hang detection, re-dispatch, restart, rejoin

TEST(SupervisorTest, HungReplicaIsRecoveredRestartedAndRejoins) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(2);
  options.replica.enable_work_stealing = false;
  options.supervision = FastSupervision();
  ServeCluster cluster(b.servable, options);

  // The first batch popped anywhere stalls its worker; stealing is off and
  // every request below targets replica 0, so replica 0 hangs.
  FailPointRegistry::Instance().Enable("serve.replica.hang",
                                       FailPointSpec::Once());

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        cluster.SubmitToReplica(0, b.dataset.graph(i), RequestOptions{}));
  }

  // Every request resolves successfully despite the hang: the watchdog
  // confiscates the parked batch, drains the queue, and re-dispatches all
  // of it to replica 1. Exactly-once is structural — a double completion
  // would throw std::future_error inside the worker.
  for (auto& f : futures) {
    StatusOr<Prediction> r = MustResolve(f);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().source, PredictionSource::kModel);
  }
  EXPECT_EQ(cluster.health_metrics().hangs(), 1);
  EXPECT_EQ(cluster.health_metrics().crashes(), 0);
  EXPECT_EQ(cluster.health_metrics().redispatched(), 4);
  EXPECT_EQ(cluster.health_metrics().quarantined(), 0);

  // The hung worker is restarted after backoff and rejoins dispatch.
  ASSERT_TRUE(PollUntil(
      [&] { return cluster.health_metrics().restarts() >= 1; }));
  ASSERT_TRUE(PollUntil([&] {
    return cluster.replica(0).health() == ReplicaHealth::kHealthy;
  }));
  EXPECT_EQ(cluster.health_metrics().replica_restarts(0), 1);
  EXPECT_EQ(cluster.health_metrics().unhealthy_replicas(), 0);

  std::future<StatusOr<Prediction>> rejoin =
      cluster.SubmitToReplica(0, b.dataset.graph(5), RequestOptions{});
  ASSERT_TRUE(MustResolve(rejoin).ok());

  cluster.Drain();
  // 4 recovered + 1 rejoin, every submission accounted for exactly once.
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 5);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 5);
}

TEST(SupervisorTest, CrashedReplicaIsDetectedByBackgroundWatchdog) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(2);
  options.replica.enable_work_stealing = false;
  options.supervision = FastSupervision();
  ServeCluster cluster(b.servable, options);

  FailPointRegistry::Instance().Enable("serve.replica.crash",
                                       FailPointSpec::Once());

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        cluster.SubmitToReplica(0, b.dataset.graph(i), RequestOptions{}));
  }
  for (auto& f : futures) {
    StatusOr<Prediction> r = MustResolve(f);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(cluster.health_metrics().crashes(), 1);
  EXPECT_EQ(cluster.health_metrics().hangs(), 0);
  EXPECT_EQ(cluster.health_metrics().redispatched(), 3);

  ASSERT_TRUE(PollUntil(
      [&] { return cluster.health_metrics().restarts() >= 1; }));
  std::future<StatusOr<Prediction>> rejoin =
      cluster.SubmitToReplica(0, b.dataset.graph(4), RequestOptions{});
  ASSERT_TRUE(MustResolve(rejoin).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 4);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 4);
}

// ---------------------------------------------------------------------------
// Poison-pill quarantine

TEST(SupervisorTest, PoisonPillIsQuarantinedWithDegradedAnswer) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(2);
  options.replica.enable_work_stealing = false;
  options.supervision = FastSupervision();
  // Zero tolerated failures: the first recovery quarantines the request
  // instead of handing it to (and possibly killing) another replica.
  options.supervision.max_request_failures = 0;
  ServeCluster cluster(b.servable, options);

  FailPointRegistry::Instance().Enable("serve.replica.hang",
                                       FailPointSpec::Once());
  std::future<StatusOr<Prediction>> pill =
      cluster.SubmitToReplica(0, b.dataset.graph(0), RequestOptions{});

  // The pill resolves — degraded, not errored, and never re-dispatched.
  StatusOr<Prediction> r = MustResolve(pill);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().source, PredictionSource::kFallback);
  EXPECT_EQ(cluster.health_metrics().quarantined(), 1);
  EXPECT_EQ(cluster.health_metrics().redispatched(), 0);
  EXPECT_EQ(cluster.metrics().degraded_fallback(), 1);

  // The replica still heals: quarantine is per-request, not per-replica.
  ASSERT_TRUE(PollUntil(
      [&] { return cluster.health_metrics().restarts() >= 1; }));
  std::future<StatusOr<Prediction>> rejoin =
      cluster.SubmitToReplica(0, b.dataset.graph(1), RequestOptions{});
  ASSERT_TRUE(MustResolve(rejoin).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kDegraded), 1);
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 1);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 2);
}

// ---------------------------------------------------------------------------
// Health-aware work stealing (manual supervision via ScanOnce)

TEST(SupervisorTest, StealSkipsUnhealthySiblingAndScanOnceRecoversIt) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(2);
  options.replica.enable_work_stealing = true;
  // Continuous batching off: the gate below parks each worker inside its
  // batch, and an opened gate must not slurp the crash-bait request into
  // the in-flight batch (the crash fail point fires on a fresh pop).
  options.replica.continuous_batching = false;
  options.supervision.enabled = false;  // driven synchronously below
  options.supervision.restart_backoff_initial = std::chrono::milliseconds(1);
  ServeCluster cluster(b.servable, options);

  // Occupy BOTH workers: each parks mid-batch at the dispatch gate, so the
  // crash fail point armed below cannot be consumed by either current
  // batch.
  DispatchGate gate;
  FailPointSpec park = FailPointSpec::Always();
  park.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", park);
  std::future<StatusOr<Prediction>> bait0 = cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked(1);
  std::future<StatusOr<Prediction>> bait1 = cluster.Submit(b.dataset.graph(1));
  gate.AwaitParked(2);
  FailPointRegistry::Instance().Disable("serve.cluster.batch");

  // Replica 1 is marked unhealthy and will crash on its next pop. The
  // request queued on it must neither be stolen by the healthy sibling nor
  // be lost with the dead worker.
  cluster.mutable_replica(1)->set_health(ReplicaHealth::kUnhealthy);
  FailPointRegistry::Instance().Enable("serve.replica.crash",
                                       FailPointSpec::Once());
  std::future<StatusOr<Prediction>> stranded =
      cluster.SubmitToReplica(1, b.dataset.graph(2), RequestOptions{});

  gate.Open();
  ASSERT_TRUE(MustResolve(bait0).ok());
  ASSERT_TRUE(MustResolve(bait1).ok());
  // Only replica 1's worker can reach the queued request (the sibling must
  // skip an unhealthy victim), so it is the one that pops and crashes.
  ASSERT_TRUE(PollUntil([&] { return cluster.replica(1).worker_exited(); }));
  EXPECT_EQ(stranded.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout)
      << "request on an unhealthy replica was served by a steal";
  EXPECT_EQ(cluster.cluster_metrics().steals(), 0);
  EXPECT_EQ(cluster.cluster_metrics().stolen_requests(), 0);

  // One synchronous scan recovers the stranded request onto the healthy
  // sibling.
  cluster.supervisor().ScanOnce();
  EXPECT_EQ(cluster.health_metrics().crashes(), 1);
  EXPECT_EQ(cluster.health_metrics().redispatched(), 1);
  StatusOr<Prediction> r = MustResolve(stranded);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Further scans restart the worker once the backoff elapses; the replica
  // rejoins and serves again.
  ASSERT_TRUE(PollUntil([&] {
    cluster.supervisor().ScanOnce();
    return cluster.health_metrics().restarts() >= 1;
  }));
  EXPECT_EQ(cluster.replica(1).health(), ReplicaHealth::kHealthy);
  EXPECT_EQ(cluster.health_metrics().unhealthy_replicas(), 0);
  std::future<StatusOr<Prediction>> rejoin =
      cluster.SubmitToReplica(1, b.dataset.graph(3), RequestOptions{});
  ASSERT_TRUE(MustResolve(rejoin).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 4);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 4);
}

// ---------------------------------------------------------------------------
// Drain vs concurrent Submit

TEST(SupervisorTest, DrainRejectsConcurrentSubmitWithTypedStatus) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(1);
  options.supervision.enabled = false;
  ServeCluster cluster(b.servable, options);

  DispatchGate gate;
  FailPointSpec park = FailPointSpec::Once();
  park.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", park);
  std::future<StatusOr<Prediction>> bait = cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked();

  std::thread drainer([&cluster] { cluster.Drain(); });
  ASSERT_TRUE(PollUntil([&] { return cluster.draining() == 1; }));

  // While the drain is waiting on the in-flight bait, a new submission gets
  // a typed, retryable rejection instead of racing the drain accounting.
  std::future<StatusOr<Prediction>> during =
      cluster.Submit(b.dataset.graph(1));
  StatusOr<Prediction> rejected = MustResolve(during);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("draining"), std::string::npos)
      << rejected.status().ToString();

  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  drainer.join();
  EXPECT_EQ(cluster.draining(), 0);

  // After Drain returns, submissions are admitted again.
  std::future<StatusOr<Prediction>> after = cluster.Submit(b.dataset.graph(2));
  ASSERT_TRUE(MustResolve(after).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 2);
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kRejected), 1);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 3);
}

// ---------------------------------------------------------------------------
// Cache continuity across a replica restart

TEST(SupervisorTest, CacheShardCountersStayConsistentAcrossReplicaRestart) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options;  // cache ON
  options.num_replicas = 2;
  options.replica.num_threads = 1;
  options.replica.enable_work_stealing = false;
  options.supervision.enabled = false;
  options.supervision.restart_backoff_initial = std::chrono::milliseconds(1);
  ServeCluster cluster(b.servable, options);
  const size_t shards_before = cluster.cache().num_shards();

  // Replica 0 crashes holding the first (cache-missing) request; recovery
  // re-dispatches it to replica 1, whose completion warms the cache.
  FailPointRegistry::Instance().Enable("serve.replica.crash",
                                       FailPointSpec::Once());
  std::future<StatusOr<Prediction>> first =
      cluster.SubmitToReplica(0, b.dataset.graph(0), RequestOptions{});
  ASSERT_TRUE(PollUntil([&] { return cluster.replica(0).worker_exited(); }));
  cluster.supervisor().ScanOnce();
  ASSERT_TRUE(MustResolve(first).ok());
  EXPECT_EQ(cluster.metrics().cache_misses(), 1);
  EXPECT_EQ(cluster.metrics().cache_hits(), 0);
  EXPECT_EQ(cluster.cache().size(), 1u);

  ASSERT_TRUE(PollUntil([&] {
    cluster.supervisor().ScanOnce();
    return cluster.health_metrics().restarts() >= 1;
  }));

  // The restarted replica sees the same shared cache: same shard count, a
  // hit on the recovered request's key, counters continuing (not reset)
  // from their pre-restart values.
  EXPECT_EQ(cluster.cache().num_shards(), shards_before);
  std::future<StatusOr<Prediction>> second =
      cluster.SubmitToReplica(0, b.dataset.graph(0), RequestOptions{});
  ASSERT_TRUE(MustResolve(second).ok());
  EXPECT_EQ(cluster.metrics().cache_hits(), 1);
  EXPECT_EQ(cluster.metrics().cache_misses(), 1);

  std::future<StatusOr<Prediction>> novel =
      cluster.SubmitToReplica(0, b.dataset.graph(1), RequestOptions{});
  ASSERT_TRUE(MustResolve(novel).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().cache_misses(), 2);
  EXPECT_EQ(cluster.cache().size(), 2u);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 3);
}

// ---------------------------------------------------------------------------
// Versioned hot reload

TEST(HotReloadTest, ReloadSwapsAtomicallyAndNotifiesSubscribedCluster) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_reload_swap.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());
  std::shared_ptr<serve::ServableModel> v1 = registry.Get("m");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1);

  ServeCluster::Options options;
  options.num_replicas = 2;
  options.replica.num_threads = 1;
  ServeCluster cluster(v1, options);
  registry.Subscribe("m",
                     [&cluster](std::shared_ptr<serve::ServableModel> next) {
                       cluster.UpdateModel(std::move(next));
                     });

  // Warm the cache so the swap's invalidation is observable.
  std::future<StatusOr<Prediction>> warm = cluster.Submit(b.dataset.graph(0));
  ASSERT_TRUE(MustResolve(warm).ok());
  cluster.Drain();
  EXPECT_GE(cluster.cache().size(), 1u);

  serve::ModelRegistry::ReloadReport report;
  auto reloaded = registry.Reload("m", b.dataset, b.config, path.string(),
                                  serve::ModelRegistry::ReloadOptions{},
                                  &report);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value()->version(), 2);
  EXPECT_EQ(report.version, 2);
  EXPECT_GT(report.shadow_size, 0);
  // Identical weights: shadow validation must observe zero label flips.
  EXPECT_EQ(report.label_flips, 0);
  EXPECT_EQ(registry.reload_attempts(), 1);
  EXPECT_EQ(registry.reload_successes(), 1);
  EXPECT_EQ(registry.reload_rollbacks(), 0);

  // The subscriber fed the swap into the cluster: new batches serve v2, the
  // stale cache is gone, and the old servable handle stays valid for any
  // in-flight holder.
  EXPECT_EQ(registry.Get("m")->version(), 2);
  EXPECT_EQ(cluster.model()->version(), 2);
  EXPECT_EQ(cluster.health_metrics().model_swaps(), 1);
  EXPECT_EQ(cluster.cache().size(), 0u);
  EXPECT_EQ(v1->version(), 1);

  std::future<StatusOr<Prediction>> after = cluster.Submit(b.dataset.graph(0));
  ASSERT_TRUE(MustResolve(after).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().total_outcomes(), 2);
  std::filesystem::remove(path);
}

TEST(HotReloadTest, HotSwapUnderSustainedLoadDropsNoRequests) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_reload_load.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());
  std::shared_ptr<serve::ServableModel> v1 = registry.Get("m");
  ASSERT_NE(v1, nullptr);

  // Caching off: every request runs a batch on whichever servable its batch
  // pinned, so the swap lands genuinely under load.
  ServeCluster cluster(v1, UncachedClusterOptions(2));
  registry.Subscribe("m",
                     [&cluster](std::shared_ptr<serve::ServableModel> next) {
                       cluster.UpdateModel(std::move(next));
                     });

  const int n = b.dataset.size();
  std::vector<std::future<StatusOr<Prediction>>> futures;
  futures.reserve(60);
  for (int i = 0; i < 60; ++i) {
    futures.push_back(cluster.Submit(b.dataset.graph(i % n)));
    if (i == 30) {
      // Validated reload mid-burst; the subscriber swaps the cluster over
      // while earlier batches are still in flight on v1.
      auto reloaded =
          registry.Reload("m", b.dataset, b.config, path.string());
      ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    }
  }
  for (auto& f : futures) {
    StatusOr<Prediction> r = MustResolve(f);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 60);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 60);
  EXPECT_EQ(cluster.health_metrics().model_swaps(), 1);
  EXPECT_EQ(cluster.model()->version(), 2);
  EXPECT_EQ(v1->version(), 1);
  std::filesystem::remove(path);
}

TEST(HotReloadTest, ReloadRollsBackOnInjectedCorruption) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_reload_corrupt.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());

  FailPointRegistry::Instance().Enable("serve.reload.corrupt",
                                       FailPointSpec::Always());
  auto r = registry.Reload("m", b.dataset, b.config, path.string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_NE(r.status().message().find("corrupt"), std::string::npos)
      << r.status().ToString();

  // Rollback: the old version keeps serving, the rollback is counted, and
  // the breaker advanced but is not yet open (threshold default 3).
  EXPECT_EQ(registry.Get("m")->version(), 1);
  EXPECT_EQ(registry.reload_rollbacks(), 1);
  EXPECT_EQ(registry.reload_successes(), 0);
  EXPECT_FALSE(registry.breaker_open("m"));

  // With the corruption gone the next reload succeeds and resets the
  // breaker's failure streak.
  FailPointRegistry::Instance().DisableAll();
  auto healthy = registry.Reload("m", b.dataset, b.config, path.string());
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy.value()->version(), 2);
  std::filesystem::remove(path);
}

TEST(HotReloadTest, CircuitBreakerOpensFailsFastAndResets) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_reload_breaker.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());

  serve::ModelRegistry::ReloadOptions ro;
  ro.breaker_threshold = 2;
  FailPointRegistry::Instance().Enable("serve.registry.reload",
                                       FailPointSpec::Always());
  for (int i = 0; i < 2; ++i) {
    auto r = registry.Reload("m", b.dataset, b.config, path.string(), ro);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << i;
  }
  EXPECT_TRUE(registry.breaker_open("m"));
  EXPECT_EQ(registry.reload_rollbacks(), 2);

  // Open breaker fails fast — before touching the (now healthy) artifact.
  FailPointRegistry::Instance().DisableAll();
  auto fast = registry.Reload("m", b.dataset, b.config, path.string(), ro);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(fast.status().message().find("circuit breaker"),
            std::string::npos)
      << fast.status().ToString();
  EXPECT_EQ(registry.reload_breaker_rejections(), 1);
  EXPECT_EQ(registry.Get("m")->version(), 1);

  // Operator intervention: reset, then reload goes through.
  registry.ResetBreaker("m");
  EXPECT_FALSE(registry.breaker_open("m"));
  auto healthy = registry.Reload("m", b.dataset, b.config, path.string(), ro);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy.value()->version(), 2);
  std::filesystem::remove(path);
}

TEST(HotReloadTest, BreakerIgnoresCallerErrors) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_reload_notfound.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());
  // Reloading a name that was never registered is a caller error, not a
  // broken artifact: NotFound, no rollback counted, breaker untouched.
  auto r = registry.Reload("ghost", b.dataset, b.config, path.string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.reload_rollbacks(), 0);
  EXPECT_FALSE(registry.breaker_open("ghost"));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Calibration fail point through the int8 guardrail path

TEST(HotReloadTest, CalibrationFailPointForcesGuardrailFallback) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  auto path = TempFile("supervision_calibrate.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  // Every calibration comparison is forced to disagree, so the int8
  // guardrail must reject the backend and fall back to fp32 — a
  // deterministic stand-in for a genuinely mis-calibrated quantization.
  serve::ModelRegistry::Options lo;
  lo.backend = "int8";
  lo.calibration_graphs = 8;
  FailPointRegistry::Instance().Enable("serve.registry.calibrate",
                                       FailPointSpec::Always());
  serve::ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("q", b.dataset, b.config, path.string(), lo).ok());
  std::shared_ptr<serve::ServableModel> q = registry.Get("q");
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->backend_report().fell_back);
  EXPECT_EQ(q->backend_report().active, "fp32");
  EXPECT_EQ(q->backend_report().requested, "int8");
  EXPECT_EQ(q->backend_report().argmax_disagreements,
            q->backend_report().calibration_size);

  // Same fail point through the RELOAD path: the replacement compile also
  // falls back, and the reload still completes (fallback is a guardrail
  // decision, not a failure).
  serve::ModelRegistry::ReloadOptions ro;
  ro.load = lo;
  auto reloaded =
      registry.Reload("q", b.dataset, b.config, path.string(), ro);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value()->version(), 2);
  EXPECT_TRUE(reloaded.value()->backend_report().fell_back);
  EXPECT_EQ(reloaded.value()->backend_report().active, "fp32");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace deepmap
