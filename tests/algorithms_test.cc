#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::graph {
namespace {

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  Graph g = PathGraph(n);
  if (n >= 3) g.AddEdge(0, n - 1);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph RandomGraph(int n, double p, Rng& rng) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = PathGraph(5);
  auto dist = BfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, UnreachableMarked) {
  Graph g(4);
  g.AddEdge(0, 1);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, OrderVisitsNeighborsSorted) {
  // Star with center 2.
  Graph g(4);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  g.AddEdge(2, 1);
  auto order = BfsOrder(g, 2);
  std::vector<Vertex> expected{2, 0, 1, 3};
  EXPECT_EQ(order, expected);
}

TEST(ShortestPathsTest, BfsMatchesFloydWarshall) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = RandomGraph(rng.UniformInt(2, 15), rng.Uniform(0.1, 0.6), rng);
    EXPECT_EQ(AllPairsShortestPaths(g), FloydWarshallShortestPaths(g));
  }
}

TEST(ShortestPathsTest, CompleteGraphAllOnes) {
  Graph g = CompleteGraph(5);
  auto dist = AllPairsShortestPaths(g);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(dist[i][j], i == j ? 0 : 1);
    }
  }
}

TEST(ComponentsTest, CountsComponents) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_EQ(NumConnectedComponents(g), 3);  // {0,1},{2,3,4},{5}
  auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
}

TEST(DiameterTest, PathAndCycle) {
  EXPECT_EQ(Diameter(PathGraph(6)), 5);
  EXPECT_EQ(Diameter(CycleGraph(6)), 3);
  EXPECT_EQ(Diameter(CompleteGraph(7)), 1);
  EXPECT_EQ(Diameter(Graph(1)), 0);
}

TEST(DegreeSequenceTest, SortedDescending) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  std::vector<int> expected{3, 1, 1, 1};
  EXPECT_EQ(DegreeSequence(g), expected);
}

TEST(PredicatesTest, CompleteAndForest) {
  EXPECT_TRUE(IsCompleteGraph(CompleteGraph(4)));
  EXPECT_FALSE(IsCompleteGraph(PathGraph(4)));
  EXPECT_TRUE(IsForest(PathGraph(4)));
  EXPECT_FALSE(IsForest(CycleGraph(4)));
  EXPECT_TRUE(IsForest(Graph(3)));  // empty graph is a forest
}

TEST(TrianglesTest, CountsExactly) {
  EXPECT_EQ(CountTriangles(CompleteGraph(4)), 4);
  EXPECT_EQ(CountTriangles(CompleteGraph(5)), 10);
  EXPECT_EQ(CountTriangles(CycleGraph(5)), 0);
  EXPECT_EQ(CountTriangles(CycleGraph(3)), 1);
}

}  // namespace
}  // namespace deepmap::graph
