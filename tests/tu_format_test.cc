#include "graph/tu_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "graph/dataset.h"
#include "graph/graph.h"

namespace deepmap::graph {
namespace {

class TuFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("deepmap_tu_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

GraphDataset MakeToyDataset() {
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 1, 2});
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {1, 1, 0, 2});
  Graph single(1, 2);
  return GraphDataset("TOY", {triangle, path, single}, {0, 1, 0});
}

TEST_F(TuFormatTest, RoundTripLabeled) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const GraphDataset& ds = loaded.value();
  ASSERT_EQ(ds.size(), 3);
  EXPECT_EQ(ds.labels(), original.labels());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ds.graph(i).NumVertices(), original.graph(i).NumVertices());
    EXPECT_EQ(ds.graph(i).NumEdges(), original.graph(i).NumEdges());
    EXPECT_EQ(ds.graph(i).Labels(), original.graph(i).Labels());
    EXPECT_EQ(ds.graph(i).EdgeList(), original.graph(i).EdgeList());
  }
  EXPECT_TRUE(ds.has_vertex_labels());
}

TEST_F(TuFormatTest, RoundTripUnlabeled) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  GraphDataset original("UNL", {g, g}, {0, 1}, /*has_vertex_labels=*/false);
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  auto loaded = ReadTuDataset(dir(), "UNL");
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_vertex_labels());
}

TEST_F(TuFormatTest, MissingFilesReportIoError) {
  auto loaded = ReadTuDataset(dir(), "NOPE");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(TuFormatTest, CompactsGraphLabels) {
  // Graph labels 1/-1 (common in TU chemistry sets) must map to 0/1.
  Graph g(2);
  g.AddEdge(0, 1);
  GraphDataset original("SIGNED", {g, g, g}, {1, 0, 1});
  // Manually rewrite the labels file with -1/+1 after a normal write.
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/SIGNED_graph_labels.txt");
    f << "1\n-1\n1\n";
  }
  auto loaded = ReadTuDataset(dir(), "SIGNED");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumClasses(), 2);
  EXPECT_EQ(loaded.value().label(0), 1);
  EXPECT_EQ(loaded.value().label(1), 0);
}

}  // namespace
}  // namespace deepmap::graph
