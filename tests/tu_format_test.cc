#include "graph/tu_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "graph/dataset.h"
#include "graph/graph.h"

namespace deepmap::graph {
namespace {

class TuFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("deepmap_tu_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

GraphDataset MakeToyDataset() {
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 1, 2});
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {1, 1, 0, 2});
  Graph single(1, 2);
  return GraphDataset("TOY", {triangle, path, single}, {0, 1, 0});
}

TEST_F(TuFormatTest, RoundTripLabeled) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const GraphDataset& ds = loaded.value();
  ASSERT_EQ(ds.size(), 3);
  EXPECT_EQ(ds.labels(), original.labels());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ds.graph(i).NumVertices(), original.graph(i).NumVertices());
    EXPECT_EQ(ds.graph(i).NumEdges(), original.graph(i).NumEdges());
    EXPECT_EQ(ds.graph(i).Labels(), original.graph(i).Labels());
    EXPECT_EQ(ds.graph(i).EdgeList(), original.graph(i).EdgeList());
  }
  EXPECT_TRUE(ds.has_vertex_labels());
}

TEST_F(TuFormatTest, RoundTripUnlabeled) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  GraphDataset original("UNL", {g, g}, {0, 1}, /*has_vertex_labels=*/false);
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  auto loaded = ReadTuDataset(dir(), "UNL");
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_vertex_labels());
}

TEST_F(TuFormatTest, MissingFilesReportIoError) {
  auto loaded = ReadTuDataset(dir(), "NOPE");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(TuFormatTest, CompactsGraphLabels) {
  // Graph labels 1/-1 (common in TU chemistry sets) must map to 0/1.
  Graph g(2);
  g.AddEdge(0, 1);
  GraphDataset original("SIGNED", {g, g, g}, {1, 0, 1});
  // Manually rewrite the labels file with -1/+1 after a normal write.
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/SIGNED_graph_labels.txt");
    f << "1\n-1\n1\n";
  }
  auto loaded = ReadTuDataset(dir(), "SIGNED");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumClasses(), 2);
  EXPECT_EQ(loaded.value().label(0), 1);
  EXPECT_EQ(loaded.value().label(1), 0);
}

// --- strict-parse regressions -----------------------------------------------
// The reader previously used std::stoi, which accepts "12abc" (parses the
// prefix) and throws on overflow instead of returning a typed error. Every
// malformed token must now surface as InvalidArgument.

TEST_F(TuFormatTest, RejectsTrailingGarbageInLabels) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/TOY_graph_labels.txt");
    f << "0\n12abc\n0\n";  // stoi would read 12 and carry on
  }
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TuFormatTest, RejectsIntOverflowInLabels) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/TOY_graph_labels.txt");
    f << "0\n2147483648\n0\n";  // INT_MAX + 1: stoi threw std::out_of_range
  }
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TuFormatTest, RejectsMultiTokenIndicatorLines) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/TOY_graph_indicator.txt");
    f << "1 1\n";  // two tokens on one line; stoi silently took the first
    for (int i = 0; i < 7; ++i) f << "1\n";
  }
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TuFormatTest, RejectsGarbageInEdgeFields) {
  GraphDataset original = MakeToyDataset();
  ASSERT_TRUE(WriteTuDataset(original, dir()).ok());
  {
    std::ofstream f(dir() + "/TOY_A.txt");
    f << "1, 2x\n";
  }
  auto loaded = ReadTuDataset(dir(), "TOY");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseFullIntTest, AcceptsExactlyFullTokens) {
  int v = 0;
  EXPECT_TRUE(ParseFullInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseFullInt("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseFullInt("+3", &v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(ParseFullInt("  11  ", &v));  // surrounding whitespace is ok
  EXPECT_EQ(v, 11);
  EXPECT_TRUE(ParseFullInt("2147483647", &v));
  EXPECT_EQ(v, 2147483647);

  EXPECT_FALSE(ParseFullInt("", &v));
  EXPECT_FALSE(ParseFullInt("12abc", &v));
  EXPECT_FALSE(ParseFullInt("1 2", &v));
  EXPECT_FALSE(ParseFullInt("2147483648", &v));  // overflow
  EXPECT_FALSE(ParseFullInt("abc", &v));
  EXPECT_FALSE(ParseFullInt("1.5", &v));

  int64_t w = 0;
  EXPECT_TRUE(ParseFullInt64("2147483648", &w));  // fits int64
  EXPECT_EQ(w, int64_t{2147483648});
  EXPECT_FALSE(ParseFullInt64("9223372036854775808", &w));  // INT64_MAX + 1
}

// --- write-failure regressions ----------------------------------------------
// operator<< on a full disk fails silently (badbit at some later write or at
// flush); WriteTuDataset must turn that into IoError instead of leaving a
// truncated shard a later reader trips over.

TEST_F(TuFormatTest, WriteReportsIoErrorWhenStreamFails) {
  FailPointRegistry::Instance().Enable("graph.tu.write",
                                       FailPointSpec::Always());
  Status s = WriteTuDataset(MakeToyDataset(), dir());
  FailPointRegistry::Instance().Disable("graph.tu.write");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST_F(TuFormatTest, WriteToUnwritablePathReportsIoError) {
  Status s = WriteTuDataset(MakeToyDataset(), dir() + "/no_such_subdir");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace deepmap::graph
