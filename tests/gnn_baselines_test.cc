// Tests for the GNN baselines: DGCNN, GIN, DCNN, PATCHY-SAN.
#include <gtest/gtest.h>

#include "baselines/dcnn.h"
#include "baselines/dgcnn.h"
#include "baselines/gin.h"
#include "baselines/gnn_common.h"
#include "baselines/patchysan.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "nn/gradient_check.h"

namespace deepmap::baselines {
namespace {

using graph::Graph;
using graph::GraphDataset;

GraphDataset CyclesVsCompletes(int per_class, uint64_t seed = 3) {
  std::vector<Graph> graphs;
  std::vector<int> labels;
  Rng rng(seed);
  for (int i = 0; i < per_class; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    graphs.push_back(cycle);
    labels.push_back(0);
    Graph complete(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("cvk", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  return ds;
}

nn::TrainConfig QuickTrain(int epochs = 30) {
  nn::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 8;
  config.learning_rate = 0.01;
  return config;
}

TEST(VertexFeatureProviderTest, OneHotShapeAndContent) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  EXPECT_EQ(provider.dim, ds.NumVertexLabels());
  auto row = provider.row(0, 0);
  double sum = 0;
  for (double x : row) sum += x;
  EXPECT_DOUBLE_EQ(sum, 1.0);  // exactly one hot entry
}

TEST(VertexFeatureProviderTest, FeatureMapProviderMatchesDenseRow) {
  GraphDataset ds = CyclesVsCompletes(2);
  kernels::VertexFeatureConfig config;
  config.kind = kernels::FeatureMapKind::kWlSubtree;
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config);
  VertexFeatureProvider provider = FeatureMapProvider(features);
  EXPECT_EQ(provider.dim, features.dim());
  EXPECT_EQ(provider.row(1, 0), features.DenseRow(1, 0));
}

TEST(VertexFeatureTensorTest, ShapeIsNByDim) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  nn::Tensor t = VertexFeatureTensor(ds, provider, 0);
  EXPECT_EQ(t.dim(0), ds.graph(0).NumVertices());
  EXPECT_EQ(t.dim(1), provider.dim);
}

TEST(GraphConvLayerTest, GradientCheck) {
  Rng rng(5);
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  nn::GraphOp op = nn::GraphOp::RowNormAdj(g);
  GraphConvLayer layer(3, 2, GraphConvLayer::Activation::kTanh, rng);
  nn::Tensor x({4, 3});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal());
  }
  std::vector<nn::Param> params;
  layer.CollectParams(&params);
  auto scalar_loss = [&](const nn::Tensor& out) {
    double s = 0;
    for (int i = 0; i < out.NumElements(); ++i) {
      s += (0.1 * (i % 5) + 0.05) * out.data()[i];
    }
    return s;
  };
  auto loss = [&]() { return scalar_loss(layer.Forward(op, x)); };
  nn::Tensor input_grad;
  auto forward_backward = [&]() {
    nn::ZeroGrads(params);
    nn::Tensor out = layer.Forward(op, x);
    nn::Tensor g_out(out.shape());
    for (int i = 0; i < g_out.NumElements(); ++i) {
      g_out.data()[i] = static_cast<float>(0.1 * (i % 5) + 0.05);
    }
    input_grad = layer.Backward(g_out);
  };
  auto result = nn::CheckParameterGradients(params, loss, forward_backward);
  EXPECT_LT(result.max_rel_error, 5e-3);
  auto input_result = nn::CheckInputGradient(x, input_grad, loss);
  EXPECT_LT(input_result.max_rel_error, 5e-3);
}

TEST(DgcnnTest, ForwardShape) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildDgcnnSamples(ds, provider);
  DgcnnConfig config;
  config.sortpool_k = 5;
  DgcnnModel model(provider.dim, 2, config);
  nn::Tensor logits = model.Forward(samples[0], false);
  EXPECT_EQ(logits.NumElements(), 2);
}

TEST(DgcnnTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildDgcnnSamples(ds, provider);
  DgcnnConfig config;
  config.sortpool_k = 5;
  config.conv_channels = {16, 16, 1};
  DgcnnModel model(provider.dim, 2, config);
  auto history =
      nn::TrainClassifier(model, samples, ds.labels(), QuickTrain(40));
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(GinTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGinSamples(ds, provider);
  GinConfig config;
  config.num_layers = 2;
  config.hidden_units = 16;
  GinModel model(provider.dim, 2, config);
  auto history =
      nn::TrainClassifier(model, samples, ds.labels(), QuickTrain(40));
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(GinTest, SumAggregationUsesNeighborhoods) {
  GraphDataset ds = CyclesVsCompletes(1);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGinSamples(ds, provider);
  GinConfig config;
  config.num_layers = 1;
  config.hidden_units = 4;
  GinModel model(provider.dim, 2, config);
  // Two graphs with different structure must give different logits.
  nn::Tensor a = model.Forward(samples[0], false);
  nn::Tensor b = model.Forward(samples[1], false);
  bool different = false;
  for (int c = 0; c < 2; ++c) {
    if (std::abs(a.at(c) - b.at(c)) > 1e-6) different = true;
  }
  EXPECT_TRUE(different);
}

TEST(DcnnTest, DiffusedFeaturesShape) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildDcnnSamples(ds, provider, 3);
  ASSERT_EQ(samples.size(), static_cast<size_t>(ds.size()));
  EXPECT_EQ(samples[0].diffused.dim(0), 4);
  EXPECT_EQ(samples[0].diffused.dim(1), provider.dim);
}

TEST(DcnnTest, HopZeroIsFeatureMean) {
  GraphDataset ds = CyclesVsCompletes(1);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildDcnnSamples(ds, provider, 2);
  // Hop 0 of one-hot features = label distribution over vertices.
  double sum = 0;
  for (int c = 0; c < provider.dim; ++c) sum += samples[0].diffused.at(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(DcnnTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildDcnnSamples(ds, provider, 3);
  DcnnConfig config;
  DcnnModel model(provider.dim, 3, 2, config);
  auto history =
      nn::TrainClassifier(model, samples, ds.labels(), QuickTrain(40));
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(PatchySanTest, InputShape) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  PatchySanConfig config;
  config.sequence_length = 4;
  config.field_size = 3;
  auto inputs = BuildPatchySanInputs(ds, provider, config);
  EXPECT_EQ(inputs[0].dim(0), 12);
  EXPECT_EQ(inputs[0].dim(1), provider.dim);
}

TEST(PatchySanTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  PatchySanConfig config;
  config.sequence_length = DefaultPatchySanSequenceLength(ds);
  config.field_size = 4;
  auto inputs = BuildPatchySanInputs(ds, provider, config);
  PatchySanModel model(provider.dim, 2, config);
  auto history =
      nn::TrainClassifier(model, inputs, ds.labels(), QuickTrain(40));
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(DefaultPatchySanSequenceLengthTest, IsAverageVertexCount) {
  GraphDataset ds = CyclesVsCompletes(5);
  int w = DefaultPatchySanSequenceLength(ds);
  auto stats = ds.Stats();
  EXPECT_NEAR(w, stats.avg_vertices, 1.0);
}

}  // namespace
}  // namespace deepmap::baselines
