// Sparse substrate suite (ctest label: sparse).
//
// Three layers of guarantees:
//   1. CSR unit tests: builder semantics (duplicate summing, zero dropping,
//      sorting), At/Transpose/Multiply against naive dense references.
//   2. The 0-ULP sparse-vs-dense contract: GraphOp under the sparse backend
//      must produce byte-identical tensors to the legacy dense backend for
//      Apply/ApplyTranspose across all four constructions, on edge-case and
//      random graphs, under any tuning and any thread count. Compose/Power
//      must agree entry-for-entry.
//   3. GAT kernel primitives (Pattern / SpmmEdgeValues / Sddmm) against
//      their per-neighbor reference loops.
//
// The multi-thread byte-compare tests force tiny panel sizes and
// DEEPMAP_NUM_THREADS=8, so this suite belongs in the ThreadSanitizer sweep
// together with serve/perf_equiv (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datasets/random_graphs.h"
#include "graph/graph.h"
#include "nn/graph_conv.h"
#include "nn/tensor.h"
#include "sparse/csr.h"
#include "sparse/sparse_graph.h"
#include "sparse/spmm.h"

namespace deepmap::sparse {
namespace {

using graph::Graph;
using nn::GraphOp;
using nn::Tensor;

Tensor RandomTensor(std::vector<int> shape, Rng& rng, double zero_prob = 0.1) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.NumElements(); ++i) {
    t.data()[i] =
        rng.Bernoulli(zero_prob) ? 0.0f : static_cast<float>(rng.Normal());
  }
  return t;
}

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure()
           << a.ShapeString() << " vs " << b.ShapeString();
  }
  for (int i = 0; i < a.NumElements(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a.data()[i], sizeof(ba));
    std::memcpy(&bb, &b.data()[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a.data()[i] << " (0x" << std::hex
             << ba << ") vs " << b.data()[i] << " (0x" << bb << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Restores SpMM tuning, the GraphOp default backend, and thread pinning
// when a test exits.
class SparseGuard {
 public:
  SparseGuard()
      : saved_tuning_(GetSpmmTuning()), saved_backend_(GraphOp::DefaultBackend()) {
    const char* env = std::getenv("DEEPMAP_NUM_THREADS");
    if (env != nullptr) saved_env_ = env;
    had_env_ = env != nullptr;
  }
  ~SparseGuard() {
    SetSpmmTuning(saved_tuning_);
    GraphOp::SetDefaultBackend(saved_backend_);
    if (had_env_) {
      setenv("DEEPMAP_NUM_THREADS", saved_env_.c_str(), 1);
    } else {
      unsetenv("DEEPMAP_NUM_THREADS");
    }
  }

 private:
  SpmmTuning saved_tuning_;
  GraphOp::Backend saved_backend_;
  std::string saved_env_;
  bool had_env_ = false;
};

// --- CSR unit tests --------------------------------------------------------

TEST(SparseMatrixTest, IdentityStructure) {
  SparseMatrix eye = SparseMatrix::Identity(4);
  eye.CheckInvariants();
  EXPECT_EQ(eye.rows(), 4);
  EXPECT_EQ(eye.cols(), 4);
  EXPECT_EQ(eye.nnz(), 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(eye.At(i, j), i == j ? 1.0 : 0.0);
    }
  }
  EXPECT_TRUE(eye.Transpose() == eye);
}

TEST(SparseMatrixTest, FromTripletsSortsSumsAndDropsZeros) {
  // Unsorted input, a duplicate that sums, and a pair that cancels to zero.
  std::vector<Triplet> triplets = {
      {1, 2, 3.0}, {0, 1, 1.5}, {1, 0, -2.0}, {1, 2, 0.5},  // dup: 3.5
      {2, 2, 4.0}, {2, 2, -4.0},                            // cancels: drop
  };
  SparseMatrix m = SparseMatrix::FromTriplets(3, 3, triplets);
  m.CheckInvariants();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.At(0, 1), 1.5);
  EXPECT_EQ(m.At(1, 0), -2.0);
  EXPECT_EQ(m.At(1, 2), 3.5);
  EXPECT_EQ(m.At(2, 2), 0.0);
  EXPECT_EQ(m.At(0, 0), 0.0);
}

TEST(SparseMatrixTest, TransposeMatchesNaive) {
  Rng rng(21);
  std::vector<Triplet> triplets;
  for (int e = 0; e < 40; ++e) {
    triplets.push_back({static_cast<int32_t>(rng.Index(7)),
                        static_cast<int32_t>(rng.Index(5)),
                        rng.Normal()});
  }
  SparseMatrix m = SparseMatrix::FromTriplets(7, 5, triplets);
  SparseMatrix mt = m.Transpose();
  mt.CheckInvariants();
  EXPECT_EQ(mt.rows(), 5);
  EXPECT_EQ(mt.cols(), 7);
  EXPECT_EQ(mt.nnz(), m.nnz());
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_EQ(mt.At(j, i), m.At(i, j));
  }
  EXPECT_TRUE(mt.Transpose() == m);
}

TEST(SparseMatrixTest, MultiplyMatchesNaiveDense) {
  Rng rng(22);
  auto random_matrix = [&](int rows, int cols, int entries) {
    std::vector<Triplet> t;
    for (int e = 0; e < entries; ++e) {
      t.push_back({static_cast<int32_t>(rng.Index(rows)),
                   static_cast<int32_t>(rng.Index(cols)), rng.Normal()});
    }
    return SparseMatrix::FromTriplets(rows, cols, t);
  };
  SparseMatrix a = random_matrix(6, 8, 20);
  SparseMatrix b = random_matrix(8, 5, 20);
  SparseMatrix c = a.Multiply(b);
  c.CheckInvariants();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 5; ++j) {
      // Dense reference with the same ascending-k accumulation order.
      double sum = 0.0;
      for (int k = 0; k < 8; ++k) sum += a.At(i, k) * b.At(k, j);
      EXPECT_EQ(c.At(i, j), sum) << i << "," << j;
    }
  }
}

TEST(SparseMatrixTest, MemoryBytesTracksNnz) {
  SparseMatrix small = SparseMatrix::Identity(4);
  SparseMatrix large = SparseMatrix::Identity(4096);
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  // CSR identity: n doubles + n int32 cols + (n+1) int64 row_ptr.
  EXPECT_LT(large.MemoryBytes(), 4096u * (8 + 4 + 8) + 64);
}

// --- Construction equivalence (entry-for-entry) ----------------------------

// Edge-case corpus: n=1, all-isolated, disconnected components with
// isolated vertices, a ring (every vertex same degree), a star (hub), plus
// random graphs. Self-loop-like diagonals come from the +I constructions.
std::vector<Graph> EquivalenceCorpus() {
  std::vector<Graph> graphs;
  graphs.emplace_back(1);  // single isolated vertex
  graphs.emplace_back(5);  // all isolated
  {
    Graph two(2);
    two.AddEdge(0, 1);
    graphs.push_back(two);
  }
  {
    Graph ring(8);
    for (int i = 0; i < 8; ++i) ring.AddEdge(i, (i + 1) % 8);
    graphs.push_back(ring);
  }
  {
    Graph star(9);
    for (int i = 1; i < 9; ++i) star.AddEdge(0, i);
    graphs.push_back(star);
  }
  {
    // Two triangles + two isolated vertices: disconnected, mixed degrees.
    Graph pieces(8);
    pieces.AddEdge(0, 1);
    pieces.AddEdge(1, 2);
    pieces.AddEdge(0, 2);
    pieces.AddEdge(3, 4);
    pieces.AddEdge(4, 5);
    pieces.AddEdge(3, 5);
    graphs.push_back(pieces);
  }
  Rng rng(33);
  graphs.push_back(datasets::ErdosRenyi(30, 0.15, rng));
  graphs.push_back(datasets::ErdosRenyi(50, 0.04, rng));  // has isolated
  graphs.push_back(datasets::RMat(64, 4, rng));
  return graphs;
}

struct OpPair {
  GraphOp sparse_op;
  GraphOp dense_op;
  std::string name;
};

std::vector<OpPair> BuildAllConstructions(const Graph& g) {
  std::vector<OpPair> pairs;
  auto build = [&](auto factory, const std::string& name) {
    GraphOp::SetDefaultBackend(GraphOp::Backend::kSparse);
    GraphOp s = factory();
    GraphOp::SetDefaultBackend(GraphOp::Backend::kDense);
    GraphOp d = factory();
    EXPECT_TRUE(s.is_sparse());
    EXPECT_FALSE(d.is_sparse());
    pairs.push_back({s, d, name});
  };
  build([&] { return GraphOp::GcnNorm(g); }, "GcnNorm");
  build([&] { return GraphOp::RowNormAdj(g); }, "RowNormAdj");
  build([&] { return GraphOp::Transition(g); }, "Transition");
  build([&] { return GraphOp::SumAdj(g); }, "SumAdj");
  build([&] { return GraphOp::SumAdj(g, 0.37); }, "SumAdj+eps");
  build([&] { return GraphOp::Identity(g.NumVertices()); }, "Identity");
  return pairs;
}

void ExpectEntryIdentical(const GraphOp& a, const GraphOp& b,
                          const std::string& context) {
  ASSERT_EQ(a.n(), b.n());
  for (int i = 0; i < a.n(); ++i) {
    for (int j = 0; j < a.n(); ++j) {
      const double ea = a.entry(i, j);
      const double eb = b.entry(i, j);
      uint64_t ba, bb;
      std::memcpy(&ba, &ea, sizeof(ba));
      std::memcpy(&bb, &eb, sizeof(bb));
      ASSERT_EQ(ba, bb) << context << " entry (" << i << "," << j
                        << "): " << ea << " vs " << eb;
    }
  }
}

TEST(SparseDenseEquivalenceTest, ConstructionsMatchEntryForEntry) {
  SparseGuard guard;
  for (const Graph& g : EquivalenceCorpus()) {
    for (const OpPair& p : BuildAllConstructions(g)) {
      ExpectEntryIdentical(p.sparse_op, p.dense_op,
                           p.name + " n=" + std::to_string(g.NumVertices()));
    }
  }
}

TEST(SparseDenseEquivalenceTest, ApplyAndTransposeBitIdentical) {
  SparseGuard guard;
  Rng rng(44);
  for (const Graph& g : EquivalenceCorpus()) {
    const int n = g.NumVertices();
    for (int c : {1, 3, 16}) {
      Tensor x = RandomTensor({n, c}, rng);
      for (const OpPair& p : BuildAllConstructions(g)) {
        EXPECT_TRUE(BitIdentical(p.sparse_op.Apply(x), p.dense_op.Apply(x)))
            << p.name << " Apply n=" << n << " c=" << c;
        EXPECT_TRUE(BitIdentical(p.sparse_op.ApplyTranspose(x),
                                 p.dense_op.ApplyTranspose(x)))
            << p.name << " ApplyTranspose n=" << n << " c=" << c;
      }
    }
  }
}

TEST(SparseDenseEquivalenceTest, NanAndInfPropagateIdentically) {
  SparseGuard guard;
  Rng rng(45);
  Graph ring(10);
  for (int i = 0; i < 10; ++i) ring.AddEdge(i, (i + 1) % 10);
  Tensor x = RandomTensor({10, 4}, rng);
  x.at(3, 1) = std::numeric_limits<float>::quiet_NaN();
  x.at(7, 2) = std::numeric_limits<float>::infinity();
  x.at(0, 0) = -std::numeric_limits<float>::infinity();
  for (const OpPair& p : BuildAllConstructions(ring)) {
    EXPECT_TRUE(BitIdentical(p.sparse_op.Apply(x), p.dense_op.Apply(x)))
        << p.name;
  }
}

TEST(SparseDenseEquivalenceTest, ComposeAndPowerMatchEntryForEntry) {
  SparseGuard guard;
  for (const Graph& g : EquivalenceCorpus()) {
    if (g.NumVertices() > 40) continue;  // dense Compose is O(n^3)
    GraphOp::SetDefaultBackend(GraphOp::Backend::kSparse);
    GraphOp s_tran = GraphOp::Transition(g);
    GraphOp s_gcn = GraphOp::GcnNorm(g);
    GraphOp::SetDefaultBackend(GraphOp::Backend::kDense);
    GraphOp d_tran = GraphOp::Transition(g);
    GraphOp d_gcn = GraphOp::GcnNorm(g);
    const std::string n = " n=" + std::to_string(g.NumVertices());
    ExpectEntryIdentical(s_tran.Compose(s_gcn), d_tran.Compose(d_gcn),
                         "Transition*GcnNorm" + n);
    for (int h : {0, 1, 2, 3}) {
      ExpectEntryIdentical(s_tran.Power(h), d_tran.Power(h),
                           "Transition^" + std::to_string(h) + n);
    }
  }
}

// --- Tuning and thread invariance ------------------------------------------

TEST(SpmmDeterminismTest, TuningDoesNotChangeBits) {
  SparseGuard guard;
  Rng rng(55);
  Graph g = datasets::ErdosRenyi(120, 0.08, rng);
  Tensor x = RandomTensor({120, 33}, rng);
  SetSpmmTuning(SpmmTuning{});
  SparseGraph op = SparseGraph::GcnNorm(g);
  Tensor reference = op.Apply(x);
  const SpmmTuning variants[] = {
      {1, 1, 0},  // one row per panel, one feature per block, always parallel
      {2, 3, 0},
      {7, 5, 1LL << 40},  // never parallel
      {1024, 1024, 0},
  };
  for (const SpmmTuning& t : variants) {
    SetSpmmTuning(t);
    EXPECT_TRUE(BitIdentical(op.Apply(x), reference))
        << "row_block=" << t.row_block << " col_block=" << t.col_block;
  }
}

TEST(SpmmDeterminismTest, EightThreadsBitIdenticalToSerial) {
  SparseGuard guard;
  Rng rng(56);
  Graph g = datasets::RMat(300, 6, rng);
  Tensor x = RandomTensor({300, 20}, rng);
  SpmmTuning t;
  t.row_block = 2;           // many panels to spread across threads
  t.parallel_min_work = 0;   // parallelize everything
  SetSpmmTuning(t);
  SparseGraph op = SparseGraph::GcnNorm(g);
  setenv("DEEPMAP_NUM_THREADS", "1", 1);
  Tensor serial = op.Apply(x);
  Tensor serial_t = op.ApplyTranspose(x);
  setenv("DEEPMAP_NUM_THREADS", "8", 1);
  EXPECT_TRUE(BitIdentical(op.Apply(x), serial));
  EXPECT_TRUE(BitIdentical(op.ApplyTranspose(x), serial_t));
}

// --- GAT kernel primitives -------------------------------------------------

TEST(PatternTest, SelfFirstNeighborhoodLayout) {
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  Pattern p = Pattern::SelfFirstNeighborhood(g);
  EXPECT_EQ(p.rows, 4);
  EXPECT_EQ(p.cols, 4);
  EXPECT_EQ(p.nnz(), 4 + 2 * 3);
  for (int v = 0; v < 4; ++v) {
    ASSERT_EQ(p.row_ptr[v + 1] - p.row_ptr[v], 1 + g.Degree(v));
    // Slot 0 of each row is the vertex itself, then sorted neighbors.
    EXPECT_EQ(p.col[p.row_ptr[v]], v);
    const auto neighbors = g.Neighbors(v);
    for (size_t k = 0; k < neighbors.size(); ++k) {
      EXPECT_EQ(p.col[p.row_ptr[v] + 1 + static_cast<int64_t>(k)],
                neighbors[k]);
    }
  }
  EXPECT_GT(p.MemoryBytes(), 0u);
}

TEST(PatternTest, EdgeValueKernelsMatchNaiveLoops) {
  Rng rng(66);
  Graph g = datasets::ErdosRenyi(25, 0.2, rng);
  Pattern p = Pattern::SelfFirstNeighborhood(g);
  const int c = 7;
  Tensor x = RandomTensor({25, c}, rng);
  Tensor grad = RandomTensor({25, c}, rng);
  std::vector<float> edge_val(static_cast<size_t>(p.nnz()));
  for (auto& v : edge_val) v = static_cast<float>(rng.Normal());

  // SpmmEdgeValues vs the per-slot gather loop.
  Tensor out({25, c});
  SpmmEdgeValues(p, edge_val.data(), x, &out);
  Tensor naive({25, c});
  for (int v = 0; v < 25; ++v) {
    for (int64_t k = p.row_ptr[v]; k < p.row_ptr[v + 1]; ++k) {
      for (int t = 0; t < c; ++t) {
        naive.at(v, t) += edge_val[k] * x.at(p.col[k], t);
      }
    }
  }
  EXPECT_TRUE(BitIdentical(out, naive));

  // SpmmEdgeValuesTranspose vs the scatter loop.
  Tensor out_t({25, c});
  SpmmEdgeValuesTranspose(p, edge_val.data(), grad, &out_t);
  Tensor naive_t({25, c});
  for (int v = 0; v < 25; ++v) {
    for (int64_t k = p.row_ptr[v]; k < p.row_ptr[v + 1]; ++k) {
      for (int t = 0; t < c; ++t) {
        naive_t.at(p.col[k], t) += edge_val[k] * grad.at(v, t);
      }
    }
  }
  EXPECT_TRUE(BitIdentical(out_t, naive_t));

  // Sddmm vs the per-slot dot product.
  std::vector<double> dots = Sddmm(p, grad, x);
  ASSERT_EQ(dots.size(), edge_val.size());
  for (int v = 0; v < 25; ++v) {
    for (int64_t k = p.row_ptr[v]; k < p.row_ptr[v + 1]; ++k) {
      double expected = 0.0;
      for (int t = 0; t < c; ++t) {
        expected += static_cast<double>(grad.at(v, t)) * x.at(p.col[k], t);
      }
      EXPECT_EQ(dots[k], expected) << "slot " << k;
    }
  }
}

// --- Memory regressions ----------------------------------------------------

TEST(SparseMemoryTest, PowerAndComposeNeverMaterializeDense) {
  SparseGuard guard;
  GraphOp::SetDefaultBackend(GraphOp::Backend::kSparse);
  Graph ring(200);
  for (int i = 0; i < 200; ++i) ring.AddEdge(i, (i + 1) % 200);
  GraphOp::ResetDenseCellsAllocated();
  GraphOp p = GraphOp::Transition(ring).Power(3);
  GraphOp c = GraphOp::GcnNorm(ring).Compose(GraphOp::SumAdj(ring));
  EXPECT_EQ(GraphOp::DenseCellsAllocated(), 0);
  EXPECT_TRUE(p.is_sparse());
  EXPECT_TRUE(c.is_sparse());
  // The ring's h-hop diffusion reaches 2h+1 vertices per row, not n.
  EXPECT_LE(p.nnz(), 200 * 7);

  // Sanity check of the counter itself: the dense opt-out does allocate.
  GraphOp::SetDefaultBackend(GraphOp::Backend::kDense);
  GraphOp::ResetDenseCellsAllocated();
  GraphOp dense = GraphOp::Transition(ring);
  EXPECT_EQ(GraphOp::DenseCellsAllocated(), 200 * 200);
}

TEST(SparseMemoryTest, ApplyPerformsNoHiddenTensorCopies) {
  SparseGuard guard;
  GraphOp::SetDefaultBackend(GraphOp::Backend::kSparse);
  Rng rng(77);
  Graph g = datasets::ErdosRenyi(60, 0.1, rng);
  GraphOp op = GraphOp::GcnNorm(g);
  Tensor x = RandomTensor({60, 8}, rng);
  Tensor::ResetCopyCount();
  Tensor y = op.Apply(x);
  Tensor z = op.ApplyTranspose(y);
  EXPECT_EQ(Tensor::CopyCount(), 0);
}

TEST(SparseMemoryTest, SparseOperatorIsSmallerThanDense) {
  Rng rng(88);
  Graph g = datasets::RMat(2048, 8, rng);
  SparseGraph op = SparseGraph::GcnNorm(g);
  const size_t dense_bytes = 2048ull * 2048ull * sizeof(double);
  // Matrix + cached transpose together must still be far below one dense
  // matrix (the bench pins >= 10x on the 10^4-vertex R-MAT graph).
  EXPECT_LT(op.MemoryBytes(), dense_bytes / 10);
}

}  // namespace
}  // namespace deepmap::sparse
