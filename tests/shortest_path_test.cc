#include "kernels/shortest_path.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;

TEST(PackSpTripletTest, CanonicalizesLabelOrder) {
  EXPECT_EQ(PackSpTriplet(2, 4, 2), PackSpTriplet(4, 2, 2));
  EXPECT_NE(PackSpTriplet(2, 4, 2), PackSpTriplet(2, 4, 3));
  EXPECT_NE(PackSpTriplet(2, 4, 2), PackSpTriplet(2, 3, 2));
}

TEST(VertexSpTest, PathGraphTriplets) {
  // Path 0-1-2 with labels 5,6,7.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {5, 6, 7});
  auto features = VertexSpFeatureMaps(g);
  ASSERT_EQ(features.size(), 3u);
  // Vertex 0 reaches 1 at distance 1 and 2 at distance 2.
  EXPECT_DOUBLE_EQ(features[0].Get(PackSpTriplet(5, 6, 1)), 1.0);
  EXPECT_DOUBLE_EQ(features[0].Get(PackSpTriplet(5, 7, 2)), 1.0);
  EXPECT_DOUBLE_EQ(features[0].TotalCount(), 2.0);
  // Middle vertex has two distance-1 paths.
  EXPECT_DOUBLE_EQ(features[1].TotalCount(), 2.0);
}

TEST(VertexSpTest, DisconnectedPairsSkipped) {
  Graph g(4);
  g.AddEdge(0, 1);
  auto features = VertexSpFeatureMaps(g);
  EXPECT_DOUBLE_EQ(features[0].TotalCount(), 1.0);
  EXPECT_DOUBLE_EQ(features[2].TotalCount(), 0.0);
}

TEST(VertexSpTest, MaxLengthCap) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ShortestPathConfig config;
  config.max_length = 2;
  auto features = VertexSpFeatureMaps(g, config);
  // Vertex 0: distances 1,2,3 -> only two paths under the cap.
  EXPECT_DOUBLE_EQ(features[0].TotalCount(), 2.0);
}

TEST(SpFeatureMapTest, GraphMapCountsEachPathTwice) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {1, 1, 1});
  SparseFeatureMap map = SpFeatureMap(g);
  // 3 unordered pairs, each counted from both endpoints.
  EXPECT_DOUBLE_EQ(map.TotalCount(), 6.0);
  EXPECT_DOUBLE_EQ(map.Get(PackSpTriplet(1, 1, 1)), 4.0);
  EXPECT_DOUBLE_EQ(map.Get(PackSpTriplet(1, 1, 2)), 2.0);
}

TEST(SpFeatureMapTest, PermutationInvariant) {
  Rng rng(3);
  Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}}, {0, 1, 2, 0, 1, 2});
  SparseFeatureMap base = SpFeatureMap(g);
  std::vector<graph::Vertex> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 5; ++trial) {
    rng.Shuffle(perm);
    SparseFeatureMap permuted = SpFeatureMap(g.Permuted(perm));
    EXPECT_DOUBLE_EQ(base.Dot(base), permuted.Dot(permuted));
    EXPECT_DOUBLE_EQ(base.Dot(permuted), base.Dot(base));
  }
}

TEST(SpFeatureMapTest, CompleteGraphAllDistanceOne) {
  Graph g(5, /*label=*/2);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  SparseFeatureMap map = SpFeatureMap(g);
  EXPECT_EQ(map.NumNonZero(), 1u);
  EXPECT_DOUBLE_EQ(map.Get(PackSpTriplet(2, 2, 1)), 20.0);
}

}  // namespace
}  // namespace deepmap::kernels
