// Tests for the serving subsystem: prediction cache LRU behavior, micro
// batcher coalescing/backpressure, serialization robustness, tensor copy
// accounting, and served-vs-offline prediction equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "nn/serialization.h"
#include "serve/engine.h"

namespace deepmap {
namespace {

using serve::CompiledModel;
using serve::ForwardScratch;
using serve::InferenceEngine;
using serve::MicroBatcher;
using serve::Prediction;
using serve::PredictionCache;
using serve::ServeRequest;

Prediction MakePrediction(int label) {
  Prediction p;
  p.label = label;
  p.probabilities = {1.0f};
  return p;
}

// ---------------------------------------------------------------------------
// PredictionCache

TEST(PredictionCacheTest, LruEvictionOrder) {
  PredictionCache cache(2);
  cache.Insert("A", MakePrediction(0));
  cache.Insert("B", MakePrediction(1));
  // Touch A so B becomes the least recently used entry.
  ASSERT_TRUE(cache.Lookup("A").has_value());
  cache.Insert("C", MakePrediction(2));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Lookup("B").has_value());
  auto a = cache.Lookup("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->label, 0);
  std::vector<std::string> keys = cache.KeysByRecency();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "A");  // refreshed by the lookup above
  EXPECT_EQ(keys[1], "C");
}

TEST(PredictionCacheTest, InsertRefreshesExistingKey) {
  PredictionCache cache(2);
  cache.Insert("A", MakePrediction(0));
  cache.Insert("B", MakePrediction(1));
  cache.Insert("A", MakePrediction(7));  // refresh, not a new entry
  cache.Insert("C", MakePrediction(2));  // evicts B, not A

  EXPECT_FALSE(cache.Lookup("B").has_value());
  auto a = cache.Lookup("A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->label, 7);
}

TEST(PredictionCacheTest, ZeroCapacityDisablesCache) {
  PredictionCache cache(0);
  cache.Insert("A", MakePrediction(0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("A").has_value());
}

TEST(PredictionCacheTest, ShardCountClampsToCapacity) {
  // capacity < num_shards used to mint zero-slot shards whose key slice
  // silently never cached; the shard count now clamps so every shard owns
  // at least one slot and every key remains cacheable.
  PredictionCache cache(3, 8);
  EXPECT_EQ(cache.num_shards(), 3u);
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    EXPECT_GE(cache.shard_capacity(s), 1u) << "shard " << s;
  }
  for (int k = 0; k < 16; ++k) {
    const std::string key = "key" + std::to_string(k);
    cache.Insert(key, MakePrediction(k));
    auto hit = cache.Lookup(key);  // freshly inserted: must be cached
    ASSERT_TRUE(hit.has_value()) << key;
    EXPECT_EQ(hit->label, k);
  }
  EXPECT_LE(cache.size(), 3u);

  // Capacity 0 stays the documented "disabled" mode: one shard, no slots.
  PredictionCache disabled(0, 8);
  EXPECT_EQ(disabled.num_shards(), 1u);
  disabled.Insert("A", MakePrediction(0));
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(PredictionCacheTest, IsomorphicGraphsShareKey) {
  graph::Graph path = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  // The same path with vertices renamed.
  graph::Graph renamed = path.Permuted({3, 1, 0, 2});
  graph::Graph triangle =
      graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}});

  EXPECT_EQ(PredictionCache::KeyFor(path, 2),
            PredictionCache::KeyFor(renamed, 2));
  EXPECT_NE(PredictionCache::KeyFor(path, 2),
            PredictionCache::KeyFor(triangle, 2));
}

TEST(PredictionCacheTest, ShardedCacheRoutesKeysAndCountsPerShard) {
  PredictionCache cache(8, 4);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.shard_capacity(), 2u);

  // Each key lives on exactly one stable shard: a miss then a hit for the
  // same key must land on the same stripe's counters.
  for (int k = 0; k < 6; ++k) {
    const std::string key = "key" + std::to_string(k);
    const size_t shard = cache.ShardIndexFor(key);
    ASSERT_LT(shard, cache.num_shards());
    const int64_t misses_before = cache.shard_misses(shard);
    const int64_t hits_before = cache.shard_hits(shard);
    EXPECT_FALSE(cache.Lookup(key).has_value());
    cache.Insert(key, MakePrediction(k));
    auto hit = cache.Lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->label, k);
    EXPECT_EQ(cache.shard_misses(shard), misses_before + 1);
    EXPECT_EQ(cache.shard_hits(shard), hits_before + 1);
  }

  // Aggregates are exactly the per-shard sums.
  int64_t hits = 0, misses = 0, evictions = 0;
  size_t size = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    hits += cache.shard_hits(s);
    misses += cache.shard_misses(s);
    evictions += cache.shard_evictions(s);
    size += cache.shard_size(s);
  }
  EXPECT_EQ(cache.hits(), hits);
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_EQ(cache.evictions(), evictions);
  EXPECT_EQ(cache.size(), size);
  EXPECT_EQ(cache.hits(), 6);
  EXPECT_EQ(cache.misses(), 6);
}

TEST(PredictionCacheTest, ShardedCacheEvictsPerShardAndExportsCounters) {
  obs::MetricsRegistry registry;
  PredictionCache cache(4, 2, &registry);

  // Overfill: 12 distinct keys into 4 total slots forces evictions in every
  // shard that received more than its capacity of 2.
  for (int k = 0; k < 12; ++k) {
    cache.Insert("key" + std::to_string(k), MakePrediction(k));
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.evictions(), 0);
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    EXPECT_LE(cache.shard_size(s), cache.shard_capacity());
  }

  // The registry mirrors every shard's counters under the documented names.
  std::ostringstream scrape;
  registry.WritePrometheusText(scrape);
  const std::string text = scrape.str();
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    const std::string prefix =
        "deepmap_serve_cache_shard" + std::to_string(s) + "_";
    EXPECT_NE(text.find(prefix + "hits_total"), std::string::npos) << text;
    EXPECT_NE(text.find(prefix + "misses_total"), std::string::npos);
    EXPECT_NE(text.find(prefix + "evictions_total"), std::string::npos);
  }
}

TEST(PredictionCacheTest, ConcurrentShardedAccessKeepsCountsConsistent) {
  PredictionCache cache(64, 8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key" + std::to_string((t * 7 + i) % 32);
        if (!cache.Lookup(key).has_value()) {
          cache.Insert(key, MakePrediction(i));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            int64_t{kThreads} * kOpsPerThread);
  EXPECT_LE(cache.size(), 64u);
}

// ---------------------------------------------------------------------------
// MicroBatcher

ServeRequest MakeRequest() {
  ServeRequest r;
  r.graph = graph::Graph(1);
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

void FulfillAll(std::vector<ServeRequest>& batch) {
  for (ServeRequest& r : batch) r.promise.set_value(MakePrediction(0));
}

TEST(MicroBatcherTest, SubmitWakesIdleDispatcherImmediately) {
  // Regression: an idle dispatcher must sleep on the work cv, not poll on a
  // max_wait_us-bounded timer. With max_batch == 1 the size trigger fires
  // the moment one request arrives, so a wait bounded only by the 60 s
  // window below would hang far past the watchdog.
  MicroBatcher::Options options;
  options.max_batch = 1;
  options.max_wait_us = 60 * 1000 * 1000;
  MicroBatcher batcher(options, [](std::vector<ServeRequest>&& batch,
                                   size_t) { FulfillAll(batch); });

  ServeRequest request = MakeRequest();
  std::future<StatusOr<Prediction>> future = request.promise.get_future();
  ASSERT_TRUE(batcher.Submit(std::move(request)).ok());
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "idle dispatcher slept through a submit wakeup";
  EXPECT_TRUE(future.get().ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, FlushesWhenBatchIsFull) {
  MicroBatcher::Options options;
  options.max_batch = 4;
  options.max_wait_us = 60 * 1000 * 1000;  // only the size trigger can fire
  std::mutex mu;
  std::vector<size_t> batch_sizes;
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                    size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      batch_sizes.push_back(batch.size());
    }
    FulfillAll(batch);
  });

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 4; ++i) {
    ServeRequest r = MakeRequest();
    futures.push_back(r.promise.get_future());
    ASSERT_TRUE(batcher.Submit(std::move(r)).ok());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 4u);
}

TEST(MicroBatcherTest, FlushesOnTimeoutWithPartialBatch) {
  MicroBatcher::Options options;
  options.max_batch = 100;  // never reached
  options.max_wait_us = 2000;
  std::mutex mu;
  std::vector<size_t> batch_sizes;
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                    size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      batch_sizes.push_back(batch.size());
    }
    FulfillAll(batch);
  });

  ServeRequest a = MakeRequest();
  ServeRequest b = MakeRequest();
  auto fa = a.promise.get_future();
  auto fb = b.promise.get_future();
  ASSERT_TRUE(batcher.Submit(std::move(a)).ok());
  ASSERT_TRUE(batcher.Submit(std::move(b)).ok());
  // Only the deadline can flush this partial batch.
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(batch_sizes.size(), 1u);
  EXPECT_LE(batch_sizes[0], 2u);
}

TEST(MicroBatcherTest, BoundedQueueRejectsWhenFull) {
  MicroBatcher::Options options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.queue_capacity = 2;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> handled{0};
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                    size_t) {
    // Block the dispatcher on the first batch so the queue can fill up.
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
    handled += static_cast<int>(batch.size());
    FulfillAll(batch);
  });

  // First request is picked up by the dispatcher and parks in the handler.
  ServeRequest first = MakeRequest();
  auto f0 = first.promise.get_future();
  ASSERT_TRUE(batcher.Submit(std::move(first)).ok());
  while (batcher.queue_depth() != 0) std::this_thread::yield();

  // Now fill the bounded queue behind the parked dispatcher.
  std::vector<std::future<StatusOr<Prediction>>> futures;
  futures.push_back(std::move(f0));
  for (int i = 0; i < 2; ++i) {
    ServeRequest r = MakeRequest();
    futures.push_back(r.promise.get_future());
    ASSERT_TRUE(batcher.Submit(std::move(r)).ok());
  }
  ServeRequest overflow = MakeRequest();
  Status s = batcher.Submit(std::move(overflow));
  EXPECT_FALSE(s.ok());
  // Queue-full is retryable backpressure, distinct from the permanent
  // FailedPrecondition of a stopped batcher.
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(handled.load(), 3);
}

TEST(MicroBatcherTest, ConcurrentSubmittersAllGetAnswers) {
  MicroBatcher::Options options;
  options.max_batch = 8;
  options.max_wait_us = 500;
  options.queue_capacity = 4096;
  std::atomic<int> handled{0};
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                    size_t) {
    handled += static_cast<int>(batch.size());
    FulfillAll(batch);
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ServeRequest r = MakeRequest();
        auto f = r.promise.get_future();
        ASSERT_TRUE(batcher.Submit(std::move(r)).ok());
        if (f.get().ok()) ++answered;
      }
    });
  }
  for (auto& t : threads) t.join();
  batcher.Drain();
  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  EXPECT_EQ(batcher.queue_depth(), 0u);
}

TEST(MicroBatcherTest, StopDrainsQueuedRequests) {
  MicroBatcher::Options options;
  options.max_batch = 64;
  options.max_wait_us = 60 * 1000 * 1000;  // no deadline flush
  std::atomic<int> handled{0};
  std::vector<std::future<StatusOr<Prediction>>> futures;
  {
    MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                      size_t) {
      handled += static_cast<int>(batch.size());
      FulfillAll(batch);
    });
    for (int i = 0; i < 5; ++i) {
      ServeRequest r = MakeRequest();
      futures.push_back(r.promise.get_future());
      ASSERT_TRUE(batcher.Submit(std::move(r)).ok());
    }
    // Destruction stops the batcher, which must flush the 5 queued
    // requests (far below both triggers) instead of dropping them.
  }
  EXPECT_EQ(handled.load(), 5);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
}

// ---------------------------------------------------------------------------
// Tensor copy accounting

TEST(TensorCopyCountTest, CountsCopiesNotMoves) {
  nn::Tensor::ResetCopyCount();
  nn::Tensor a({4});
  a.Fill(1.0f);
  EXPECT_EQ(nn::Tensor::CopyCount(), 0);

  nn::Tensor b = a;  // copy construction
  EXPECT_EQ(nn::Tensor::CopyCount(), 1);

  nn::Tensor c = std::move(a);  // move construction
  EXPECT_EQ(nn::Tensor::CopyCount(), 1);

  nn::Tensor d;
  d = std::move(b);  // move assignment
  EXPECT_EQ(nn::Tensor::CopyCount(), 1);

  d = c;  // copy assignment
  EXPECT_EQ(nn::Tensor::CopyCount(), 2);
  nn::Tensor::ResetCopyCount();
  EXPECT_EQ(nn::Tensor::CopyCount(), 0);
}

// ---------------------------------------------------------------------------
// Serialization robustness

std::filesystem::path TempFile(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

struct ParamSet {
  std::vector<nn::Tensor> values;
  std::vector<nn::Tensor> grads;
  std::vector<nn::Param> params;

  explicit ParamSet(const std::vector<std::vector<int>>& shapes) {
    values.reserve(shapes.size());
    grads.reserve(shapes.size());
    for (const auto& shape : shapes) {
      values.emplace_back(shape);
      grads.emplace_back(shape);
    }
    for (size_t i = 0; i < values.size(); ++i) {
      params.push_back({&values[i], &grads[i]});
    }
  }
};

TEST(SerializationTest, RoundTripRestoresValues) {
  ParamSet a({{2, 3}, {3}});
  for (int i = 0; i < 6; ++i) a.values[0].data()[i] = 0.5f * i;
  for (int i = 0; i < 3; ++i) a.values[1].data()[i] = -1.0f * i;
  auto path = TempFile("serve_test_roundtrip.bin");
  ASSERT_TRUE(nn::SaveParameters(a.params, path.string()).ok());

  ParamSet b({{2, 3}, {3}});
  ASSERT_TRUE(nn::LoadParameters(b.params, path.string()).ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(b.values[0].data()[i], a.values[0].data()[i]);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b.values[1].data()[i], a.values[1].data()[i]);
  }
  std::filesystem::remove(path);
}

TEST(SerializationTest, RejectsTruncatedFile) {
  ParamSet a({{4, 4}});
  auto path = TempFile("serve_test_truncated.bin");
  ASSERT_TRUE(nn::SaveParameters(a.params, path.string()).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 7);

  ParamSet b({{4, 4}});
  Status s = nn::LoadParameters(b.params, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.ToString();
  std::filesystem::remove(path);
}

TEST(SerializationTest, RejectsTrailingBytes) {
  ParamSet a({{2, 2}});
  auto path = TempFile("serve_test_trailing.bin");
  ASSERT_TRUE(nn::SaveParameters(a.params, path.string()).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }

  ParamSet b({{2, 2}});
  Status s = nn::LoadParameters(b.params, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trailing"), std::string::npos) << s.ToString();
  // The failed load must leave the destination untouched.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b.values[0].data()[i], 0.0f);
  std::filesystem::remove(path);
}

TEST(SerializationTest, RejectsShapeMismatchWithParamIndex) {
  ParamSet a({{2, 3}, {3}});
  auto path = TempFile("serve_test_shape.bin");
  ASSERT_TRUE(nn::SaveParameters(a.params, path.string()).ok());

  ParamSet wrong_dim({{2, 4}, {3}});
  Status s = nn::LoadParameters(wrong_dim.params, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("parameter 0"), std::string::npos)
      << s.ToString();

  ParamSet wrong_rank({{2, 3}, {3, 1}});
  s = nn::LoadParameters(wrong_rank.params, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("parameter 1"), std::string::npos)
      << s.ToString();

  ParamSet wrong_count({{2, 3}});
  s = nn::LoadParameters(wrong_count.params, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("count mismatch"), std::string::npos)
      << s.ToString();
  std::filesystem::remove(path);
}

TEST(SerializationTest, RejectsNonModelFile) {
  auto path = TempFile("serve_test_not_a_model.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("definitely not DMNN data", 24);
  }
  ParamSet b({{2, 2}});
  Status s = nn::LoadParameters(b.params, path.string());
  EXPECT_FALSE(s.ok());
  std::filesystem::remove(path);
}

TEST(SerializationTest, AtomicSaveSurvivesInjectedShortWrite) {
  auto path = TempFile("serve_test_atomic_save.bin");
  auto temp = TempFile("serve_test_atomic_save.bin.tmp");

  // v1: a good save that must survive the failed v2 save below.
  ParamSet v1({{2, 2}});
  for (int i = 0; i < 4; ++i) v1.values[0].data()[i] = 10.0f + i;
  ASSERT_TRUE(nn::SaveParameters(v1.params, path.string()).ok());

  // v2 save crashes mid-write (truncated temp file abandoned, like a real
  // crash); the destination must be untouched.
  ParamSet v2({{2, 2}});
  for (int i = 0; i < 4; ++i) v2.values[0].data()[i] = -1.0f;
  FailPointRegistry::Instance().Enable("nn.save.short_write",
                                       FailPointSpec::Once());
  Status s = nn::SaveParameters(v2.params, path.string());
  FailPointRegistry::Instance().DisableAll();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_TRUE(std::filesystem::exists(temp));  // the simulated crash residue
  EXPECT_LT(std::filesystem::file_size(temp),
            std::filesystem::file_size(path));

  // Recovery: v1 is still fully loadable...
  ParamSet loaded({{2, 2}});
  ASSERT_TRUE(nn::LoadParameters(loaded.params, path.string()).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.values[0].data()[i], v1.values[0].data()[i]);
  }
  // ...and the next save overwrites the stale temp file and lands v2.
  ASSERT_TRUE(nn::SaveParameters(v2.params, path.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(temp));
  ASSERT_TRUE(nn::LoadParameters(loaded.params, path.string()).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.values[0].data()[i], -1.0f);
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// End-to-end serving (shared trained bundle; training is the slow part, so
// it runs once per process)

struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();

    // WL features: serving-time replay is exactly deterministic, so served
    // predictions must match the offline pipeline bit for bit.
    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 3;
    b->config.train.batch_size = 8;

    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);

    Status s = b->registry.Adopt("ptc_mm", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("ptc_mm");
    DEEPMAP_CHECK(b->servable != nullptr);
    return b;
  }();
  return *bundle;
}

TEST(CompiledModelTest, LogitsBitIdenticalToTrainingStack) {
  TrainedBundle& b = Bundle();
  const CompiledModel& compiled = b.servable->compiled();
  ForwardScratch scratch;
  for (int i = 0; i < b.dataset.size(); ++i) {
    const nn::Tensor& input = b.pipeline->inputs()[i];
    nn::Tensor offline = b.model->Forward(input, false);
    nn::Tensor served = compiled.Logits(input, &scratch);
    ASSERT_EQ(served.NumElements(), offline.NumElements());
    for (int c = 0; c < offline.NumElements(); ++c) {
      ASSERT_EQ(served.data()[c], offline.data()[c])
          << "graph " << i << " logit " << c;
    }
  }
}

TEST(CompiledModelTest, CompileRejectsWrongArchitecture) {
  TrainedBundle& b = Bundle();
  core::DeepMapConfig narrow = b.config;
  narrow.conv1_channels = 8;  // trained model has 32
  StatusOr<CompiledModel> compiled = CompiledModel::Compile(
      *b.model, narrow, b.pipeline->feature_dim(),
      b.pipeline->sequence_length(), b.pipeline->num_classes());
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("conv1"), std::string::npos)
      << compiled.status().ToString();
}

TEST(ModelRegistryTest, LoadFromDiskServesAndValidates) {
  TrainedBundle& b = Bundle();
  auto path = TempFile("serve_test_registry_model.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("disk", b.dataset, b.config, path.string()).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_FALSE(
      registry.Load("disk", b.dataset, b.config, path.string()).ok());
  EXPECT_EQ(registry.Get("missing"), nullptr);

  // A config implying a different architecture must be rejected at load
  // time, not produce a silently broken servable.
  core::DeepMapConfig narrow = b.config;
  narrow.conv1_channels = 8;
  Status s = registry.Load("narrow", b.dataset, narrow, path.string());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(registry.size(), 1u);

  // The disk-loaded servable predicts identically to the adopted one.
  std::shared_ptr<serve::ServableModel> disk = registry.Get("disk");
  ASSERT_NE(disk, nullptr);
  ForwardScratch s1, s2;
  const nn::Tensor& input = b.pipeline->inputs()[0];
  nn::Tensor from_disk = disk->compiled().Logits(input, &s1);
  nn::Tensor adopted = b.servable->compiled().Logits(input, &s2);
  for (int c = 0; c < adopted.NumElements(); ++c) {
    EXPECT_EQ(from_disk.data()[c], adopted.data()[c]);
  }

  EXPECT_TRUE(registry.Unload("disk").ok());
  EXPECT_FALSE(registry.Unload("disk").ok());
  std::filesystem::remove(path);
}

TEST(InferenceEngineTest, ServedPredictionMatchesOfflinePipeline) {
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 0;  // force the full preprocess+forward path
  options.batcher.max_batch = 16;
  options.batcher.max_wait_us = 200;
  InferenceEngine engine(b.servable, options);

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (const graph::Graph& g : b.dataset.graphs()) {
    futures.push_back(engine.Submit(g));
  }
  for (int i = 0; i < b.dataset.size(); ++i) {
    StatusOr<Prediction> served = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    int offline = nn::Predict(*b.model, b.pipeline->inputs()[i]);
    EXPECT_EQ(served.value().label, offline) << "graph " << i;
  }
  EXPECT_EQ(engine.metrics().requests(), b.dataset.size());
  EXPECT_EQ(engine.metrics().cache_hits(), 0);
}

TEST(InferenceEngineTest, WarmCacheHitSkipsPreprocessing) {
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 64;
  options.batcher.max_batch = 4;
  options.batcher.max_wait_us = 100;
  InferenceEngine engine(b.servable, options);

  const graph::Graph& g = b.dataset.graph(0);
  StatusOr<Prediction> cold = engine.Classify(g);
  ASSERT_TRUE(cold.ok());
  StatusOr<Prediction> warm = engine.Classify(g);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().label, cold.value().label);

  const serve::ServeMetrics& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests(), 2);
  EXPECT_EQ(metrics.cache_hits(), 1);
  EXPECT_EQ(metrics.cache_misses(), 1);
  // Only the cold request ran the pipeline stages: the warm hit skipped
  // preprocessing (and the forward pass) entirely.
  EXPECT_EQ(metrics.stage_count("preprocess"), 1);
  EXPECT_EQ(metrics.stage_count("forward"), 1);
  EXPECT_EQ(metrics.stage_count("total"), 2);
  EXPECT_EQ(engine.cache().hits(), 1);
}

TEST(InferenceEngineTest, RejectsUnservableGraphs) {
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options;
  options.batcher.max_wait_us = 100;
  InferenceEngine engine(b.servable, options);

  StatusOr<Prediction> empty = engine.Classify(graph::Graph());
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  graph::Graph oversized(b.servable->sequence_length() + 1);
  StatusOr<Prediction> too_big = engine.Classify(oversized);
  EXPECT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
}

TEST(InferenceEngineTest, ConcurrentSubmittersGetConsistentAnswers) {
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 1024;
  options.batcher.max_batch = 16;
  options.batcher.max_wait_us = 300;
  InferenceEngine engine(b.servable, options);

  // The cache serves every graph with the same WL hash from one entry, so
  // restrict the stream to one representative per key: each representative's
  // cached prediction is then its own, and must match the offline path.
  std::vector<int> representatives;
  std::vector<int> expected;
  {
    std::unordered_map<std::string, int> seen;
    for (int i = 0; i < b.dataset.size(); ++i) {
      std::string key = PredictionCache::KeyFor(
          b.dataset.graph(i), options.cache_wl_iterations);
      if (seen.emplace(std::move(key), i).second) {
        representatives.push_back(i);
        expected.push_back(nn::Predict(*b.model, b.pipeline->inputs()[i]));
      }
    }
  }
  ASSERT_GE(representatives.size(), 4u);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  const int n = static_cast<int>(representatives.size());
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = t; i < n; i += kThreads) {
          const size_t idx = static_cast<size_t>(i);
          StatusOr<Prediction> served =
              engine.Classify(b.dataset.graph(representatives[idx]));
          if (!served.ok()) {
            ++failures;
          } else if (served.value().label != expected[idx]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  engine.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine.metrics().cache_hits(), 0);
}

TEST(InferenceEngineTest, ServingLoopMakesNoTensorCopies) {
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 0;  // every request runs the full pipeline
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 200;
  InferenceEngine engine(b.servable, options);

  nn::Tensor::ResetCopyCount();
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.Submit(b.dataset.graph(i % b.dataset.size())));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  // Preprocess -> batch -> forward must move tensors end to end; a copy here
  // is a per-request [w*r, m] allocation on the hot path.
  EXPECT_EQ(nn::Tensor::CopyCount(), 0);
}

}  // namespace
}  // namespace deepmap
