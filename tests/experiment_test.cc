#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "datasets/registry.h"

namespace deepmap::eval {
namespace {

BenchOptions TinyOptions() {
  BenchOptions options;
  options.min_graphs = 24;
  options.folds = 2;
  options.epochs = 4;
  options.max_dense_dim = 32;
  return options;
}

TEST(BenchOptionsTest, ParsesFlags) {
  const char* argv[] = {"bench", "--full", "--seed=7",
                        "--datasets=KKI,PTC_MR"};
  BenchOptions options =
      BenchOptions::FromArgs(4, const_cast<char**>(argv));
  EXPECT_TRUE(options.full);
  EXPECT_EQ(options.seed, 7u);
  EXPECT_EQ(options.folds, 10);  // --full implies the paper protocol
  ASSERT_EQ(options.datasets.size(), 2u);
  EXPECT_EQ(options.datasets[0], "KKI");
}

TEST(BenchOptionsTest, ScaleAndEpochFlags) {
  const char* argv[] = {"bench", "--scale=0.5", "--epochs=3", "--folds=4"};
  BenchOptions options =
      BenchOptions::FromArgs(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 0.5);
  EXPECT_EQ(options.epochs, 3);
  EXPECT_EQ(options.folds, 4);
  EXPECT_FALSE(options.full);
}

TEST(BenchOptionsTest, SelectedDatasetsFilter) {
  BenchOptions options;
  EXPECT_EQ(options.SelectedDatasets({"A", "B"}),
            (std::vector<std::string>{"A", "B"}));
  options.datasets = {"KKI"};
  EXPECT_EQ(options.SelectedDatasets({"A"}),
            (std::vector<std::string>{"KKI"}));
  options.datasets = {"all"};
  EXPECT_EQ(options.SelectedDatasets({"A"}).size(), 15u);
}

TEST(GnnKindNameTest, Names) {
  EXPECT_EQ(GnnKindName(GnnKind::kDgcnn), "DGCNN");
  EXPECT_EQ(GnnKindName(GnnKind::kGin), "GIN");
  EXPECT_EQ(GnnKindName(GnnKind::kDcnn), "DCNN");
  EXPECT_EQ(GnnKindName(GnnKind::kPatchySan), "PATCHYSAN");
}

class MethodRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_ = TinyOptions();
    auto ds = datasets::MakeDataset("PTC_MR", options_.dataset_options());
    ASSERT_TRUE(ds.ok());
    dataset_ = std::move(ds).value();
  }
  BenchOptions options_;
  graph::GraphDataset dataset_;
};

TEST_F(MethodRunnerTest, RunDeepMapProducesFoldsAndTimings) {
  MethodRun run = RunDeepMap(dataset_, kernels::FeatureMapKind::kWlSubtree,
                             options_);
  EXPECT_EQ(run.cv.fold_accuracies.size(), 2u);
  EXPECT_GE(run.cv.mean_accuracy, 0.0);
  EXPECT_LE(run.cv.mean_accuracy, 100.0);
  EXPECT_GT(run.mean_epoch_ms, 0.0);
}

TEST_F(MethodRunnerTest, RunGraphKernelProducesResult) {
  MethodRun run = RunGraphKernel(dataset_,
                                 kernels::FeatureMapKind::kShortestPath,
                                 options_);
  EXPECT_EQ(run.cv.fold_accuracies.size(), 2u);
  EXPECT_EQ(run.mean_epoch_ms, 0.0);  // SVMs have no epochs
}

TEST_F(MethodRunnerTest, KernelBaselinesRun) {
  EXPECT_GT(RunDgk(dataset_, options_).cv.mean_accuracy, 0.0);
  EXPECT_GT(RunRetGk(dataset_, options_).cv.mean_accuracy, 0.0);
  EXPECT_GT(RunGntk(dataset_, options_).cv.mean_accuracy, 0.0);
}

TEST_F(MethodRunnerTest, AllGnnBaselinesRunBothInputKinds) {
  for (auto kind : {GnnKind::kDgcnn, GnnKind::kGin, GnnKind::kDcnn,
                    GnnKind::kPatchySan}) {
    for (bool vfm : {false, true}) {
      MethodRun run = RunGnn(dataset_, kind, vfm, options_);
      EXPECT_EQ(run.cv.fold_accuracies.size(), 2u)
          << GnnKindName(kind) << " vfm=" << vfm;
      EXPECT_GT(run.mean_epoch_ms, 0.0);
    }
  }
}

TEST_F(MethodRunnerTest, DeterministicAcrossRuns) {
  MethodRun a = RunDeepMap(dataset_, kernels::FeatureMapKind::kWlSubtree,
                           options_);
  MethodRun b = RunDeepMap(dataset_, kernels::FeatureMapKind::kWlSubtree,
                           options_);
  EXPECT_EQ(a.cv.fold_accuracies, b.cv.fold_accuracies);
}

}  // namespace
}  // namespace deepmap::eval
