#include "kernels/kernel_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deepmap::kernels {
namespace {

SparseFeatureMap MapOf(std::initializer_list<std::pair<FeatureId, double>> e) {
  SparseFeatureMap m;
  for (const auto& [id, count] : e) m.Add(id, count);
  return m;
}

TEST(GramMatrixTest, UnnormalizedDotProducts) {
  std::vector<SparseFeatureMap> maps{MapOf({{1, 1.0}, {2, 2.0}}),
                                     MapOf({{2, 3.0}})};
  Matrix k = GramMatrix(maps, /*normalize=*/false);
  EXPECT_DOUBLE_EQ(k[0][0], 5.0);
  EXPECT_DOUBLE_EQ(k[0][1], 6.0);
  EXPECT_DOUBLE_EQ(k[1][0], 6.0);
  EXPECT_DOUBLE_EQ(k[1][1], 9.0);
}

TEST(GramMatrixTest, NormalizedHasUnitDiagonal) {
  std::vector<SparseFeatureMap> maps{MapOf({{1, 2.0}}), MapOf({{1, 5.0}}),
                                     MapOf({{2, 1.0}})};
  Matrix k = GramMatrix(maps, /*normalize=*/true);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(k[i][i], 1.0);
  EXPECT_DOUBLE_EQ(k[0][1], 1.0);  // colinear maps
  EXPECT_DOUBLE_EQ(k[0][2], 0.0);  // orthogonal maps
}

TEST(GramMatrixTest, EmptyMapRowStaysZero) {
  std::vector<SparseFeatureMap> maps{MapOf({{1, 1.0}}), SparseFeatureMap{}};
  Matrix k = GramMatrix(maps, /*normalize=*/true);
  EXPECT_DOUBLE_EQ(k[1][1], 0.0);
  EXPECT_DOUBLE_EQ(k[0][1], 0.0);
}

TEST(PsdTest, GramOfExplicitFeaturesIsPsd) {
  std::vector<SparseFeatureMap> maps{
      MapOf({{1, 1.0}, {2, 2.0}}), MapOf({{2, 3.0}, {3, 1.0}}),
      MapOf({{1, 4.0}}), MapOf({{3, 2.0}, {1, 1.0}})};
  EXPECT_TRUE(IsPositiveSemidefinite(GramMatrix(maps, false)));
  EXPECT_TRUE(IsPositiveSemidefinite(GramMatrix(maps, true)));
}

TEST(PsdTest, DetectsIndefiniteMatrix) {
  Matrix k{{0.0, 1.0}, {1.0, 0.0}};  // eigenvalues +-1
  EXPECT_FALSE(IsPositiveSemidefinite(k));
}

TEST(PsdTest, DetectsNegativeDiagonal) {
  Matrix k{{-1.0}};
  EXPECT_FALSE(IsPositiveSemidefinite(k));
}

TEST(PsdTest, AcceptsSingularPsd) {
  // Rank-1 matrix [[1,1],[1,1]].
  Matrix k{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(IsPositiveSemidefinite(k));
}

TEST(RbfKernelTest, DiagonalOneAndSymmetric) {
  std::vector<std::vector<double>> rows{{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}};
  Matrix k = RbfKernelMatrix(rows, 0.5);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(k[i][i], 1.0);
  EXPECT_DOUBLE_EQ(k[0][1], std::exp(-0.5));
  EXPECT_DOUBLE_EQ(k[0][2], std::exp(-2.0));
  EXPECT_DOUBLE_EQ(k[1][2], k[2][1]);
  EXPECT_TRUE(IsPositiveSemidefinite(k));
}

}  // namespace
}  // namespace deepmap::kernels
