#include "kernels/feature_map.h"

#include <gtest/gtest.h>

namespace deepmap::kernels {
namespace {

TEST(SparseFeatureMapTest, AddAndGet) {
  SparseFeatureMap m;
  m.Add(3);
  m.Add(3, 2.0);
  m.Add(7, 0.5);
  EXPECT_DOUBLE_EQ(m.Get(3), 3.0);
  EXPECT_DOUBLE_EQ(m.Get(7), 0.5);
  EXPECT_DOUBLE_EQ(m.Get(99), 0.0);
  EXPECT_EQ(m.NumNonZero(), 2u);
}

TEST(SparseFeatureMapTest, ZeroCountIgnored) {
  SparseFeatureMap m;
  m.Add(1, 0.0);
  EXPECT_TRUE(m.empty());
}

TEST(SparseFeatureMapTest, DotProduct) {
  SparseFeatureMap a, b;
  a.Add(1, 2.0);
  a.Add(2, 3.0);
  b.Add(2, 4.0);
  b.Add(3, 5.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 12.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), 12.0);
  EXPECT_DOUBLE_EQ(a.Dot(a), 13.0);
}

TEST(SparseFeatureMapTest, SumEqualsEq7) {
  SparseFeatureMap a, b;
  a.Add(1, 1.0);
  b.Add(1, 2.0);
  b.Add(5, 1.0);
  SparseFeatureMap sum = SumFeatureMaps({a, b});
  EXPECT_DOUBLE_EQ(sum.Get(1), 3.0);
  EXPECT_DOUBLE_EQ(sum.Get(5), 1.0);
}

TEST(SparseFeatureMapTest, L2NormAndTotal) {
  SparseFeatureMap m;
  m.Add(1, 3.0);
  m.Add(2, 4.0);
  EXPECT_DOUBLE_EQ(m.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.TotalCount(), 7.0);
}

TEST(VocabularyTest, AssignsDenseColumns) {
  SparseFeatureMap a, b;
  a.Add(100);
  a.Add(200);
  b.Add(200);
  b.Add(300);
  Vocabulary vocab;
  vocab.AddAll(a);
  vocab.AddAll(b);
  EXPECT_EQ(vocab.size(), 3u);
  EXPECT_EQ(vocab.ColumnOf(100), 0);
  EXPECT_EQ(vocab.ColumnOf(200), 1);
  EXPECT_EQ(vocab.ColumnOf(300), 2);
  EXPECT_EQ(vocab.ColumnOf(999), -1);
}

TEST(VocabularyTest, DensifyDropsUnseen) {
  Vocabulary vocab;
  SparseFeatureMap seen;
  seen.Add(10, 2.0);
  vocab.AddAll(seen);
  SparseFeatureMap query;
  query.Add(10, 4.0);
  query.Add(11, 9.0);  // unseen
  auto dense = vocab.Densify(query);
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_DOUBLE_EQ(dense[0], 4.0);
}

TEST(DensifyHashedTest, PreservesTotalMass) {
  SparseFeatureMap m;
  m.Add(1, 2.0);
  m.Add(1000003, 3.0);
  m.Add(77777777, 1.5);
  auto dense = DensifyHashed(m, 16);
  double total = 0;
  for (double d : dense) total += d;
  EXPECT_DOUBLE_EQ(total, 6.5);
}

TEST(DensifyHashedTest, DeterministicColumns) {
  SparseFeatureMap m;
  m.Add(42, 1.0);
  auto a = DensifyHashed(m, 8);
  auto b = DensifyHashed(m, 8);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace deepmap::kernels
