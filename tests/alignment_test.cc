#include "core/alignment.h"

#include <gtest/gtest.h>

#include "core/receptive_field.h"
#include "graph/graph.h"

namespace deepmap::core {
namespace {

using graph::Graph;
using graph::Vertex;

Graph StarGraph(int leaves) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

TEST(AlignmentTest, EigenvectorPutsHubFirst) {
  Graph g = StarGraph(4);
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kEigenvector,
                                      nullptr);
  auto sequence = GenerateVertexSequence(g, centrality, 5);
  EXPECT_EQ(sequence[0], 0);
}

TEST(AlignmentTest, PaddingWithDummies) {
  Graph g = StarGraph(2);
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kDegree, nullptr);
  auto sequence = GenerateVertexSequence(g, centrality, 6);
  ASSERT_EQ(sequence.size(), 6u);
  EXPECT_EQ(sequence[3], kDummyVertex);
  EXPECT_EQ(sequence[4], kDummyVertex);
  EXPECT_EQ(sequence[5], kDummyVertex);
}

TEST(AlignmentTest, RandomMeasureNeedsRng) {
  Graph g = StarGraph(3);
  Rng rng(5);
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kRandom, &rng);
  EXPECT_EQ(centrality.size(), 4u);
}

TEST(AlignmentTest, MeasureNames) {
  EXPECT_EQ(AlignmentMeasureName(AlignmentMeasure::kEigenvector),
            "eigenvector");
  EXPECT_EQ(AlignmentMeasureName(AlignmentMeasure::kRandom), "random");
}

TEST(AlignmentTest, SequenceIsPermutationOfVertices) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto sequence = GenerateVertexSequence(g, centrality, 6);
  std::vector<bool> seen(6, false);
  for (Vertex v : sequence) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 6);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(AlignmentTest, DisconnectedGraphOrderingIsDeterministic) {
  // Triangle {0,1,2} + star {3: center; 4,5,6: leaves}. With per-component
  // eigenvector normalization (Definition 2 alignment on disconnected
  // inputs), the star center leads, the symmetric triangle vertices tie and
  // break by ascending id, then the star leaves. Pre-fix the star component
  // decayed to ~0 and its internal ordering was rounding noise.
  Graph g = Graph::FromEdges(
      7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {3, 5}, {3, 6}});
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto sequence = GenerateVertexSequence(g, centrality, 7);
  const std::vector<Vertex> expected{3, 0, 1, 2, 4, 5, 6};
  EXPECT_EQ(sequence, expected);
}

TEST(ReceptiveFieldTest, TopNeighborsByCentrality) {
  // Star: receptive field of the hub with r=3 takes hub + 2 leaves (highest
  // centrality tie-break = lowest id).
  Graph g = StarGraph(4);
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto field = BuildReceptiveField(g, 0, 3, centrality);
  ASSERT_EQ(field.size(), 3u);
  EXPECT_EQ(field[0], 0);  // hub has the highest centrality
  EXPECT_EQ(field[1], 1);
  EXPECT_EQ(field[2], 2);
}

TEST(ReceptiveFieldTest, HopExpansionWhenNeighborhoodSmall) {
  // Path 0-1-2-3-4: field of vertex 0 with r=3 must reach the 2-hop vertex.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto field = BuildReceptiveField(g, 0, 3, centrality);
  std::vector<Vertex> sorted(field);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Vertex>{0, 1, 2}));
}

TEST(ReceptiveFieldTest, PadsWhenGraphTooSmall) {
  Graph g = Graph::FromEdges(2, {{0, 1}});
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kDegree, nullptr);
  auto field = BuildReceptiveField(g, 0, 5, centrality);
  ASSERT_EQ(field.size(), 5u);
  EXPECT_EQ(field[2], kDummyVertex);
  EXPECT_EQ(field[4], kDummyVertex);
}

TEST(ReceptiveFieldTest, DisconnectedVertexOnlySelf) {
  Graph g(4);
  g.AddEdge(0, 1);
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kDegree, nullptr);
  auto field = BuildReceptiveField(g, 3, 3, centrality);
  EXPECT_EQ(field[0], 3);
  EXPECT_EQ(field[1], kDummyVertex);
  EXPECT_EQ(field[2], kDummyVertex);
}

TEST(ReceptiveFieldTest, SortedByCentralityDescending) {
  Graph g = Graph::FromEdges(5, {{2, 0}, {2, 1}, {2, 3}, {3, 4}, {0, 1}});
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto field = BuildReceptiveField(g, 4, 4, centrality);
  for (size_t i = 0; i + 1 < field.size(); ++i) {
    if (field[i] == kDummyVertex || field[i + 1] == kDummyVertex) continue;
    EXPECT_GE(centrality[field[i]], centrality[field[i + 1]]);
  }
}

TEST(ReceptiveFieldTest, SizeOneIsJustTheVertex) {
  Graph g = StarGraph(3);
  auto centrality = ComputeCentrality(g, AlignmentMeasure::kDegree, nullptr);
  auto field = BuildReceptiveField(g, 2, 1, centrality);
  EXPECT_EQ(field, (std::vector<Vertex>{2}));
}

TEST(ReceptiveFieldTest, AllFieldsCoverEveryVertexOnce) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto centrality =
      ComputeCentrality(g, AlignmentMeasure::kEigenvector, nullptr);
  auto fields = BuildAllReceptiveFields(g, 3, centrality);
  ASSERT_EQ(fields.size(), 6u);
  for (int v = 0; v < 6; ++v) {
    // Each field contains its own vertex.
    EXPECT_NE(std::find(fields[v].begin(), fields[v].end(), v),
              fields[v].end());
  }
}

}  // namespace
}  // namespace deepmap::core
