#include "datasets/synthetic.h"

#include <gtest/gtest.h>

#include "datasets/registry.h"
#include "graph/algorithms.h"

namespace deepmap::datasets {
namespace {

TEST(MakeSynthieTest, FourBalancedClasses) {
  auto ds = MakeSynthie(40, 7);
  EXPECT_EQ(ds.size(), 40);
  EXPECT_EQ(ds.NumClasses(), 4);
  std::vector<int> counts(4, 0);
  for (int y : ds.labels()) counts[y]++;
  for (int c : counts) EXPECT_EQ(c, 10);
  EXPECT_FALSE(ds.has_vertex_labels());
}

TEST(MakeSynthieTest, SizesNearPaperAverage) {
  auto ds = MakeSynthie(60, 8);
  double avg = ds.Stats().avg_vertices;
  EXPECT_GT(avg, 75.0);
  EXPECT_LT(avg, 110.0);
}

TEST(MakeKkiTest, MatchesSpecShape) {
  auto ds = MakeKki(40, 9);
  EXPECT_EQ(ds.NumClasses(), 2);
  auto stats = ds.Stats();
  EXPECT_GT(stats.avg_vertices, 18.0);
  EXPECT_LT(stats.avg_vertices, 36.0);
  EXPECT_GT(stats.num_vertex_labels, 40);  // large ROI alphabet
}

TEST(MakeChemicalTest, CompleteGraphMode) {
  ChemicalParams params{.name = "BZR_MD",
                        .num_classes = 2,
                        .avg_vertices = 21.0,
                        .label_count = 8,
                        .complete_graph = true};
  auto ds = MakeChemical(params, 20, 10);
  for (const auto& g : ds.graphs()) {
    EXPECT_TRUE(graph::IsCompleteGraph(g));
  }
}

TEST(MakeChemicalTest, SparseModeHasRings) {
  ChemicalParams params{.name = "DHFR",
                        .num_classes = 2,
                        .avg_vertices = 42.0,
                        .label_count = 9,
                        .ring_prob_base = 0.9,
                        .ring_prob_step = 0.0};
  auto ds = MakeChemical(params, 20, 11);
  int with_cycles = 0;
  for (const auto& g : ds.graphs()) {
    if (!graph::IsForest(g)) ++with_cycles;
  }
  EXPECT_GT(with_cycles, 10);  // ring motifs present in most graphs
}

TEST(MakeChemicalTest, LabelAlphabetBounded) {
  ChemicalParams params{.name = "NCI1",
                        .num_classes = 2,
                        .avg_vertices = 18.0,
                        .label_count = 37};
  auto ds = MakeChemical(params, 30, 12);
  EXPECT_LE(ds.NumVertexLabels(), 37);
  EXPECT_GT(ds.NumVertexLabels(), 5);
}

TEST(MakeProteinTest, ThreeStructureLabels) {
  ProteinParams params{.name = "PROTEINS", .num_classes = 2,
                       .avg_vertices = 39.0};
  auto ds = MakeProtein(params, 24, 13);
  EXPECT_LE(ds.NumVertexLabels(), 3);
  EXPECT_EQ(ds.NumClasses(), 2);
  // Backbone keeps graphs connected.
  for (const auto& g : ds.graphs()) {
    EXPECT_EQ(graph::NumConnectedComponents(g), 1);
  }
}

TEST(MakeProteinTest, SixClassEnzymes) {
  ProteinParams params{.name = "ENZYMES", .num_classes = 6,
                       .avg_vertices = 32.0};
  auto ds = MakeProtein(params, 36, 14);
  EXPECT_EQ(ds.NumClasses(), 6);
}

TEST(MakeEgoTest, DenseCollaborationGraphs) {
  EgoParams params{.name = "IMDB-BINARY", .num_classes = 2,
                   .avg_vertices = 20.0};
  auto ds = MakeEgo(params, 20, 15);
  EXPECT_FALSE(ds.has_vertex_labels());
  auto stats = ds.Stats();
  // Ego + cliques: much denser than a tree.
  EXPECT_GT(stats.avg_edges, 2.0 * stats.avg_vertices);
}

TEST(MakeEgoTest, EgoIsConnectedHub) {
  EgoParams params{.name = "IMDB-MULTI", .num_classes = 3,
                   .avg_vertices = 13.0};
  auto ds = MakeEgo(params, 15, 16);
  for (const auto& g : ds.graphs()) {
    EXPECT_EQ(g.Degree(0), g.NumVertices() - 1);  // vertex 0 is the ego
    EXPECT_EQ(graph::NumConnectedComponents(g), 1);
  }
}

TEST(RegistryTest, AllFifteenDatasetsRegistered) {
  EXPECT_EQ(DatasetNames().size(), 15u);
  EXPECT_EQ(PaperDatasets().size(), 15u);
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto ds = MakeDataset("MUTAG");  // not in the paper's Table 1
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, ScaleBoundsGraphCount) {
  DatasetOptions options;
  options.scale = 0.05;
  options.min_graphs = 40;
  auto ds = MakeDataset("NCI1", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_GE(ds.value().size(), 40);
  EXPECT_LE(ds.value().size(), 4110 / 4);
}

TEST(RegistryTest, DegreesAsLabelsAppliedToUnlabeled) {
  DatasetOptions options;
  options.scale = 0.02;
  auto ds = MakeDataset("IMDB-BINARY", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds.value().has_vertex_labels());
  options.degrees_as_labels = false;
  auto raw = MakeDataset("IMDB-BINARY", options);
  EXPECT_FALSE(raw.value().has_vertex_labels());
}

TEST(RegistryTest, GeneratedStatsTrackPaperStats) {
  // Average vertex counts should be within ~35% of Table 1 for every
  // dataset (edges are looser; exact replication is not the goal).
  DatasetOptions options;
  options.scale = 0.0;  // min_graphs only
  options.min_graphs = 48;
  for (const auto& spec : PaperDatasets()) {
    auto ds = MakeDataset(spec.name, options);
    ASSERT_TRUE(ds.ok()) << spec.name;
    double avg_v = ds.value().Stats().avg_vertices;
    EXPECT_GT(avg_v, spec.avg_vertices * 0.65) << spec.name;
    EXPECT_LT(avg_v, spec.avg_vertices * 1.35) << spec.name;
  }
}

TEST(RegistryTest, DeterministicForSeed) {
  DatasetOptions options;
  options.scale = 0.02;
  options.seed = 99;
  auto a = MakeDataset("PTC_MR", options);
  auto b = MakeDataset("PTC_MR", options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (int i = 0; i < a.value().size(); ++i) {
    EXPECT_TRUE(a.value().graph(i) == b.value().graph(i));
  }
}

}  // namespace
}  // namespace deepmap::datasets
