// Tests for the extended GNN baselines: GCN and GAT (paper Section 2.2's
// related-work models), including an exact finite-difference check of the
// attention backward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gat.h"
#include "baselines/gcn.h"
#include "baselines/graphsage.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "nn/gradient_check.h"

namespace deepmap::baselines {
namespace {

using graph::Graph;
using graph::GraphDataset;

GraphDataset CyclesVsCompletes(int per_class, uint64_t seed = 3) {
  std::vector<Graph> graphs;
  std::vector<int> labels;
  Rng rng(seed);
  for (int i = 0; i < per_class; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    graphs.push_back(cycle);
    labels.push_back(0);
    Graph complete(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("cvk", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  return ds;
}

TEST(GcnTest, ForwardShape) {
  GraphDataset ds = CyclesVsCompletes(2);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGcnSamples(ds, provider);
  GcnModel model(provider.dim, 2, GcnConfig{});
  nn::Tensor logits = model.Forward(samples[0], false);
  EXPECT_EQ(logits.NumElements(), 2);
}

TEST(GcnTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGcnSamples(ds, provider);
  GcnConfig config;
  config.hidden_units = 16;
  GcnModel model(provider.dim, 2, config);
  nn::TrainConfig train;
  train.epochs = 40;
  train.batch_size = 8;
  auto history = nn::TrainClassifier(model, samples, ds.labels(), train);
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(GatLayerTest, AttentionWeightsSumToOneViaUniformFeatures) {
  // With zero attention vectors (after construction, overwrite), alpha is
  // uniform: output = mean of neighborhood z rows.
  Rng rng(5);
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  GatLayer layer(2, 2, 0.2, rng);
  std::vector<nn::Param> params;
  layer.CollectParams(&params);
  // params: W, a_src, a_dst. Zero both attention vectors.
  params[1].value->Zero();
  params[2].value->Zero();
  nn::Tensor x = nn::Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1});
  nn::Tensor out = layer.Forward(g, x);
  // Vertex 0's neighborhood = {0, 1}: out[0] should be mean of z0, z1.
  nn::Tensor z = nn::MatMul(x, *params[0].value);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(out.at(0, c),
                std::max(0.0f, 0.5f * (z.at(0, c) + z.at(1, c))), 1e-5);
  }
}

TEST(GatLayerTest, GradientCheck) {
  Rng rng(7);
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  GatLayer layer(3, 2, 0.2, rng);
  nn::Tensor x({4, 3});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal()) + 0.3f;
  }
  std::vector<nn::Param> params;
  layer.CollectParams(&params);
  auto scalar_loss = [&](const nn::Tensor& out) {
    double s = 0;
    for (int i = 0; i < out.NumElements(); ++i) {
      s += (0.1 * (i % 5) + 0.05) * out.data()[i];
    }
    return s;
  };
  auto loss = [&]() { return scalar_loss(layer.Forward(g, x)); };
  nn::Tensor input_grad;
  auto forward_backward = [&]() {
    nn::ZeroGrads(params);
    nn::Tensor out = layer.Forward(g, x);
    nn::Tensor grad(out.shape());
    for (int i = 0; i < grad.NumElements(); ++i) {
      grad.data()[i] = static_cast<float>(0.1 * (i % 5) + 0.05);
    }
    input_grad = layer.Backward(grad);
  };
  auto result =
      nn::CheckParameterGradients(params, loss, forward_backward, 3e-3);
  EXPECT_LT(result.max_rel_error, 2e-2);
  auto input_result = nn::CheckInputGradient(x, input_grad, loss, 3e-3);
  EXPECT_LT(input_result.max_rel_error, 2e-2);
}

TEST(GatTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGatSamples(ds, provider);
  GatConfig config;
  GatModel model(provider.dim, 2, config);
  nn::TrainConfig train;
  train.epochs = 40;
  train.batch_size = 8;
  auto history = nn::TrainClassifier(model, samples, ds.labels(), train);
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(GatTest, DistinguishesStructures) {
  GraphDataset ds = CyclesVsCompletes(1);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGatSamples(ds, provider);
  GatModel model(provider.dim, 2, GatConfig{});
  nn::Tensor a = model.Forward(samples[0], false);
  nn::Tensor b = model.Forward(samples[1], false);
  bool different = false;
  for (int c = 0; c < 2; ++c) {
    if (std::abs(a.at(c) - b.at(c)) > 1e-6) different = true;
  }
  EXPECT_TRUE(different);
}


TEST(GraphSageLayerTest, GradientCheck) {
  Rng rng(9);
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  nn::GraphOp op = nn::GraphOp::Transition(g);
  GraphSageLayer layer(3, 2, rng);
  nn::Tensor x({4, 3});
  for (int i = 0; i < x.NumElements(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal()) + 0.5f;
  }
  std::vector<nn::Param> params;
  layer.CollectParams(&params);
  auto scalar_loss = [&](const nn::Tensor& out) {
    double s = 0;
    for (int i = 0; i < out.NumElements(); ++i) {
      s += (0.1 * (i % 5) + 0.05) * out.data()[i];
    }
    return s;
  };
  auto loss = [&]() { return scalar_loss(layer.Forward(op, x)); };
  auto forward_backward = [&]() {
    nn::ZeroGrads(params);
    nn::Tensor out = layer.Forward(op, x);
    nn::Tensor grad(out.shape());
    for (int i = 0; i < grad.NumElements(); ++i) {
      grad.data()[i] = static_cast<float>(0.1 * (i % 5) + 0.05);
    }
    layer.Backward(grad);
  };
  auto result =
      nn::CheckParameterGradients(params, loss, forward_backward, 3e-3);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(GraphSageTest, LearnsSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGraphSageSamples(ds, provider);
  GraphSageModel model(provider.dim, 2, GraphSageConfig{});
  nn::TrainConfig train;
  train.epochs = 40;
  train.batch_size = 8;
  auto history = nn::TrainClassifier(model, samples, ds.labels(), train);
  EXPECT_GT(history.best_accuracy(), 0.9);
}

TEST(GraphSageTest, IsolatedVertexMeanIsZero) {
  // Transition rows of isolated vertices are zero; the layer must not NaN.
  GraphDataset ds("iso", {Graph(3, 0)}, {0});
  VertexFeatureProvider provider = OneHotProvider(ds);
  auto samples = BuildGraphSageSamples(ds, provider);
  GraphSageModel model(provider.dim, 2, GraphSageConfig{});
  nn::Tensor logits = model.Forward(samples[0], false);
  EXPECT_FALSE(std::isnan(logits.at(0)));
}

}  // namespace
}  // namespace deepmap::baselines
