// Observability-through-serving integration tests: ServeMetrics' exact
// percentiles (the NearestRankIndex regression suite), agreement between the
// retained-sample percentiles and the registry-histogram estimates, and the
// end-to-end invariant that every Submit increments exactly one stage
// histogram chain in the engine's registry.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "serve/engine.h"

namespace deepmap {
namespace {

using serve::InferenceEngine;
using serve::LatencySummary;
using serve::NearestRankIndex;
using serve::Prediction;
using serve::RequestTiming;
using serve::ServeMetrics;
using serve::ServeOutcome;

// ---------------------------------------------------------------------------
// NearestRankIndex / Summarize regression suite (the pre-fix Percentile()
// returned the max for p95 of 20 samples and re-sorted per quantile).

TEST(NearestRankIndexTest, TwentySamplesP95IsNineteenthSmallest) {
  // ceil(0.95 * 20) = 19 -> index 18. In binary 0.95 * 20 is slightly above
  // 19, so an unguarded ceil gives 20 -> index 19 (the max). This is the
  // regression the epsilon guard exists for.
  EXPECT_EQ(NearestRankIndex(20, 0.95), 18u);
}

TEST(NearestRankIndexTest, SmallSampleCounts) {
  // n=1: every quantile is the only sample.
  EXPECT_EQ(NearestRankIndex(1, 0.50), 0u);
  EXPECT_EQ(NearestRankIndex(1, 0.95), 0u);
  EXPECT_EQ(NearestRankIndex(1, 0.99), 0u);
  // n=2: median is the 1st sample (ceil(1.0) = 1), p95 the 2nd.
  EXPECT_EQ(NearestRankIndex(2, 0.50), 0u);
  EXPECT_EQ(NearestRankIndex(2, 0.95), 1u);
  // Extremes clamp into range.
  EXPECT_EQ(NearestRankIndex(5, 0.0), 0u);
  EXPECT_EQ(NearestRankIndex(5, 1.0), 4u);
  EXPECT_EQ(NearestRankIndex(0, 0.5), 0u);
}

TEST(NearestRankIndexTest, ClassicRanksAtRoundCounts) {
  EXPECT_EQ(NearestRankIndex(100, 0.50), 49u);
  EXPECT_EQ(NearestRankIndex(100, 0.95), 94u);
  EXPECT_EQ(NearestRankIndex(100, 0.99), 98u);
  // 10k samples: 0.99 * 10000 is fraction-free mathematically but not in
  // binary; the guard must hold at scale too.
  EXPECT_EQ(NearestRankIndex(10000, 0.99), 9899u);
}

TEST(ServeMetricsTest, PercentilesAreExactOrderStatistics) {
  ServeMetrics metrics;
  // Record 20..1 so sortedness cannot come from insertion order.
  for (int v = 20; v >= 1; --v) {
    RequestTiming timing;
    timing.queue_us = v;
    timing.preprocess_us = v;
    timing.forward_us = v;
    timing.total_us = v;
    metrics.RecordRequest(timing);
  }
  for (const char* stage : {"queue", "preprocess", "forward", "total"}) {
    LatencySummary s = metrics.Latency(stage);
    ASSERT_EQ(s.count, 20) << stage;
    EXPECT_DOUBLE_EQ(s.p50, 10.0) << stage;
    EXPECT_DOUBLE_EQ(s.p95, 19.0) << stage;  // pre-fix: 20 (the max)
    EXPECT_DOUBLE_EQ(s.p99, 20.0) << stage;
    EXPECT_DOUBLE_EQ(s.max, 20.0) << stage;
    EXPECT_DOUBLE_EQ(s.mean, 10.5) << stage;
  }
}

TEST(ServeMetricsTest, SingleSamplePinsAllPercentiles) {
  ServeMetrics metrics;
  RequestTiming timing;
  timing.total_us = 123.0;
  timing.cache_hit = true;  // total-only path
  metrics.RecordRequest(timing);
  LatencySummary s = metrics.Latency("total");
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.p50, 123.0);
  EXPECT_DOUBLE_EQ(s.p95, 123.0);
  EXPECT_DOUBLE_EQ(s.p99, 123.0);
  EXPECT_DOUBLE_EQ(s.max, 123.0);
}

TEST(ServeMetricsTest, EmptySummaryIsZero) {
  ServeMetrics metrics;
  LatencySummary s = metrics.Latency("total");
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// ---------------------------------------------------------------------------
// ServeMetrics <-> registry wiring

TEST(ServeMetricsTest, CountersLiveInRegistry) {
  ServeMetrics metrics;
  RequestTiming hit;
  hit.cache_hit = true;
  hit.total_us = 5.0;
  metrics.RecordRequest(hit);
  metrics.RecordOutcome(ServeOutcome::kOk);
  RequestTiming miss;
  miss.total_us = 50.0;
  metrics.RecordRequest(miss);
  metrics.RecordOutcome(ServeOutcome::kOk);
  metrics.RecordBatch(3);
  metrics.RecordBatch(5);
  metrics.RecordQueueDepth(2);
  metrics.RecordQueueDepth(6);
  metrics.RecordShed();
  metrics.RecordDeadlineExceeded("preprocess");
  metrics.RecordDegradedStale();
  metrics.RecordRetry();
  metrics.RecordRejected();

  const obs::MetricsRegistry& r = metrics.registry();
  EXPECT_EQ(metrics.cache_hits(), 1);
  EXPECT_EQ(metrics.cache_misses(), 1);
  EXPECT_DOUBLE_EQ(metrics.cache_hit_rate(), 0.5);
  EXPECT_EQ(metrics.num_batches(), 2);
  EXPECT_DOUBLE_EQ(metrics.mean_batch_size(), 4.0);
  EXPECT_EQ(metrics.max_queue_depth(), 6u);
  EXPECT_DOUBLE_EQ(metrics.mean_queue_depth(), 4.0);
  EXPECT_EQ(metrics.shed(), 1);
  EXPECT_EQ(metrics.deadline_exceeded(), 1);
  EXPECT_EQ(metrics.deadline_exceeded("preprocess"), 1);
  EXPECT_EQ(metrics.deadline_exceeded("forward"), 0);
  EXPECT_EQ(metrics.degraded_stale(), 1);
  EXPECT_EQ(metrics.retries(), 1);
  EXPECT_EQ(metrics.rejected(), 1);
  // ok(2) + shed + deadline + degraded + rejected
  EXPECT_EQ(metrics.total_outcomes(), 6);

  EXPECT_TRUE(r.Has("deepmap_serve_cache_hits_total"));
  EXPECT_TRUE(r.Has("deepmap_serve_outcome_ok_total"));
  EXPECT_TRUE(r.Has("deepmap_serve_deadline_preprocess_total"));
  EXPECT_TRUE(r.Has("deepmap_serve_total_seconds"));

  // The scrape carries the same numbers (values in seconds for histograms).
  std::ostringstream os;
  metrics.registry().WritePrometheusText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("deepmap_serve_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("deepmap_serve_outcome_ok_total 2"), std::string::npos);
  EXPECT_NE(text.find("deepmap_serve_total_seconds_count 2"),
            std::string::npos);
}

TEST(ServeMetricsTest, PrivateRegistriesDoNotShareCounts) {
  ServeMetrics a;
  ServeMetrics b;
  RequestTiming timing;
  timing.cache_hit = true;
  timing.total_us = 1.0;
  a.RecordRequest(timing);
  EXPECT_EQ(a.cache_hits(), 1);
  EXPECT_EQ(b.cache_hits(), 0);
}

TEST(ServeMetricsTest, InjectedRegistryAggregates) {
  obs::MetricsRegistry shared;
  ServeMetrics a(&shared);
  ServeMetrics b(&shared);
  RequestTiming timing;
  timing.cache_hit = true;
  timing.total_us = 1.0;
  a.RecordRequest(timing);
  b.RecordRequest(timing);
  EXPECT_EQ(a.cache_hits(), 2);  // same counter under both
  EXPECT_TRUE(shared.Has("deepmap_serve_cache_hits_total"));
}

TEST(ServeMetricsTest, BucketP95TracksExactP95) {
  ServeMetrics metrics;
  // Smooth latency sweep: 200 samples, 100us..10ms, multiplicative steps.
  std::vector<double> samples_us;
  double v = 100.0;
  for (int i = 0; i < 200; ++i) {
    samples_us.push_back(v);
    v *= 1.0234;
  }
  for (double us : samples_us) {
    RequestTiming timing;
    timing.cache_hit = true;  // total-only, keeps the test focused
    timing.total_us = us;
    metrics.RecordRequest(timing);
  }
  const double exact_p95 = metrics.Latency("total").p95;
  const obs::Histogram& h =
      metrics.registry().GetHistogram("deepmap_serve_total_seconds");
  const double bucket_p95_us = h.Snapshot().Quantile(0.95) * 1e6;
  // The acceptance bound from the issue: interpolated bucket percentiles
  // must track exact order statistics within 5% on smooth data.
  EXPECT_NEAR(bucket_p95_us, exact_p95, 0.05 * exact_p95);
}

// ---------------------------------------------------------------------------
// End-to-end: a served request stream drives the stage histogram chain.

struct ObsBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
};

ObsBundle& Bundle() {
  static ObsBundle* bundle = [] {
    auto* b = new ObsBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 24;
    auto dataset_or = datasets::MakeDataset("KKI", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();
    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 1;
    b->config.features.max_dense_dim = 16;
    b->config.train.epochs = 2;
    b->config.train.batch_size = 8;
    b->pipeline = std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(), b->dataset.labels(),
                        b->config.train);
    Status s = b->registry.Adopt("obs", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("obs");
    return b;
  }();
  return *bundle;
}

TEST(ObsServeIntegrationTest, EverySubmitIncrementsOneStageChain) {
  ObsBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 0;  // every request walks the full chain
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 200;
  InferenceEngine engine(b.servable, options);

  const int n = b.dataset.size();
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(engine.Submit(b.dataset.graph(i)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  engine.Drain();

  const ServeMetrics& metrics = engine.metrics();
  // Exactly one chain per request: each Submit lands one observation in
  // queue, preprocess, forward, and total — no drops, no double counting.
  EXPECT_EQ(metrics.requests(), n);
  EXPECT_EQ(metrics.stage_count("queue"), n);
  EXPECT_EQ(metrics.stage_count("preprocess"), n);
  EXPECT_EQ(metrics.stage_count("forward"), n);
  EXPECT_EQ(metrics.stage_count("total"), n);
  EXPECT_EQ(metrics.total_outcomes(), n);
  EXPECT_EQ(metrics.outcome_count(ServeOutcome::kOk), n);

  // The registry histograms saw the identical stream.
  obs::MetricsRegistry& registry =
      const_cast<ServeMetrics&>(engine.metrics()).registry();
  for (const char* name :
       {"deepmap_serve_queue_seconds", "deepmap_serve_preprocess_seconds",
        "deepmap_serve_forward_seconds", "deepmap_serve_total_seconds"}) {
    EXPECT_EQ(registry.GetHistogram(name).Snapshot().count, n) << name;
  }
  EXPECT_EQ(
      registry.GetCounter("deepmap_serve_batch_items_total").Value(), n);
}

TEST(ObsServeIntegrationTest, CacheHitsSkipPipelineStages) {
  ObsBundle& b = Bundle();
  InferenceEngine::Options options;
  options.cache_capacity = 64;
  options.batcher.max_batch = 4;
  options.batcher.max_wait_us = 100;
  InferenceEngine engine(b.servable, options);

  const graph::Graph& g = b.dataset.graph(0);
  ASSERT_TRUE(engine.Classify(g).ok());  // cold: full chain
  ASSERT_TRUE(engine.Classify(g).ok());  // warm: total only
  const ServeMetrics& metrics = engine.metrics();
  EXPECT_EQ(metrics.requests(), 2);
  EXPECT_EQ(metrics.cache_hits(), 1);
  EXPECT_EQ(metrics.stage_count("total"), 2);
  EXPECT_EQ(metrics.stage_count("preprocess"), 1);
  EXPECT_EQ(metrics.stage_count("forward"), 1);
}

}  // namespace
}  // namespace deepmap
