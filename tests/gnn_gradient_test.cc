// End-to-end finite-difference gradient checks for the composite GNN
// baselines, whose Backward passes are handwritten (concat splits, per-layer
// readouts, sort pooling). These certify that every model trains on the
// true gradient of its loss.
#include <gtest/gtest.h>

#include "baselines/dcnn.h"
#include "baselines/dgcnn.h"
#include "baselines/gin.h"
#include "baselines/patchysan.h"
#include "common/rng.h"
#include "core/deepmap.h"
#include "graph/graph.h"
#include "nn/gradient_check.h"

namespace deepmap {
namespace {

using graph::Graph;
using graph::GraphDataset;

// Small labeled test graph with distinct degrees (avoids sort-pool ties).
GraphDataset TinyDataset() {
  Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}},
                             {0, 1, 0, 1, 0});
  return GraphDataset("tiny", {g}, {1});
}

template <typename Model, typename Sample>
void CheckModelGradients(Model& model, const Sample& sample, int label,
                         double tolerance) {
  std::vector<nn::Param> params = model.Params();
  ASSERT_FALSE(params.empty());
  // Zero-padded input rows with zero-initialized biases park many ReLU
  // pre-activations exactly on the kink, where finite differences measure a
  // half-gradient. Jitter every parameter slightly to move off the kinks.
  Rng jitter(99);
  for (const nn::Param& p : params) {
    for (int i = 0; i < p.value->NumElements(); ++i) {
      p.value->data()[i] += static_cast<float>(jitter.Uniform(0.011, 0.029)) *
                            (jitter.Bernoulli(0.5) ? 1.0f : -1.0f);
    }
  }
  auto loss = [&]() {
    return nn::SoftmaxCrossEntropy(model.Forward(sample, false), label).loss;
  };
  auto forward_backward = [&]() {
    nn::ZeroGrads(params);
    // Training mode: Backward needs the layers' input caches. Every test
    // sets dropout_rate = 0, so the training logits equal the inference
    // logits the loss lambda measures.
    nn::Tensor logits = model.Forward(sample, true);
    model.Backward(nn::SoftmaxCrossEntropy(logits, label).grad_logits);
  };
  auto result =
      nn::CheckParameterGradients(params, loss, forward_backward, 3e-3);
  EXPECT_LT(result.max_rel_error, tolerance);
  EXPECT_GT(result.coordinates_checked, 50);
}

TEST(GnnGradientTest, DgcnnFullModel) {
  GraphDataset ds = TinyDataset();
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  auto samples = baselines::BuildDgcnnSamples(ds, provider);
  baselines::DgcnnConfig config;
  config.conv_channels = {4, 4, 1};
  config.sortpool_k = 3;
  config.conv1d_channels = 4;
  config.dense_units = 8;
  config.dropout_rate = 0.0;  // deterministic loss for finite differences
  baselines::DgcnnModel model(provider.dim, 2, config);
  // SortPooling is genuinely non-differentiable where the sort order flips;
  // a finite-difference step occasionally crosses such a boundary, so the
  // tolerance is looser here. Gross backward bugs (wrong sign, missing
  // terms) still produce errors of order 1.
  CheckModelGradients(model, samples[0], 1, 0.15);
}

TEST(GnnGradientTest, GinFullModel) {
  GraphDataset ds = TinyDataset();
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  auto samples = baselines::BuildGinSamples(ds, provider);
  baselines::GinConfig config;
  config.num_layers = 2;
  config.hidden_units = 5;
  config.dropout_rate = 0.0;
  baselines::GinModel model(provider.dim, 2, config);
  CheckModelGradients(model, samples[0], 0, 2e-2);
}

TEST(GnnGradientTest, DcnnFullModel) {
  GraphDataset ds = TinyDataset();
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  auto samples = baselines::BuildDcnnSamples(ds, provider, 2);
  baselines::DcnnConfig config;
  config.dense_units = 6;
  config.dropout_rate = 0.0;
  baselines::DcnnModel model(provider.dim, 2, 2, config);
  CheckModelGradients(model, samples[0], 1, 2e-2);
}

TEST(GnnGradientTest, PatchySanFullModel) {
  GraphDataset ds = TinyDataset();
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  baselines::PatchySanConfig config;
  config.sequence_length = 4;
  config.field_size = 3;
  config.conv_channels = 4;
  config.conv2_channels = 4;
  config.dense_units = 8;
  config.dropout_rate = 0.0;
  auto inputs = baselines::BuildPatchySanInputs(ds, provider, config);
  baselines::PatchySanModel model(provider.dim, 2, config);
  CheckModelGradients(model, inputs[0], 0, 2e-2);
}

TEST(GnnGradientTest, DeepMapFullModel) {
  GraphDataset ds = TinyDataset();
  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 1;
  config.receptive_field_size = 3;
  config.conv1_channels = 4;
  config.conv2_channels = 4;
  config.conv3_channels = 4;
  config.dense_units = 8;
  config.dropout_rate = 0.0;
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config.features);
  auto inputs = core::BuildDeepMapInputs(ds, features, config);
  core::DeepMapModel model(features.dim(), ds.MaxVertices(), 2, config);
  CheckModelGradients(model, inputs[0], 1, 2e-2);
}

}  // namespace
}  // namespace deepmap
