// Tests for the extension modules: betweenness centrality, the random-walk
// kernel (+ the paper's Sec. 6 high-order extension), the WL optimal
// assignment kernel, and model serialization.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "baselines/kernel_svm.h"
#include "common/rng.h"
#include "core/alignment.h"
#include "datasets/random_graphs.h"
#include "graph/centrality.h"
#include "kernels/random_walk.h"
#include "kernels/wl_oa.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model.h"
#include "nn/serialization.h"

namespace deepmap {
namespace {

using graph::Graph;
using graph::GraphDataset;
using graph::Vertex;

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

// ---------------------------------------------------------------------------
// Betweenness centrality.
// ---------------------------------------------------------------------------

TEST(BetweennessTest, PathGraphKnownValues) {
  // P5: betweenness of vertex i is (#pairs whose shortest path passes it).
  auto c = graph::BetweennessCentrality(PathGraph(5));
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);  // pairs (0,2),(0,3),(0,4)
  EXPECT_DOUBLE_EQ(c[2], 4.0);  // pairs (0,3),(0,4),(1,3),(1,4)
  EXPECT_DOUBLE_EQ(c[3], 3.0);
  EXPECT_DOUBLE_EQ(c[4], 0.0);
}

TEST(BetweennessTest, StarCenterCarriesAllPairs) {
  Graph g(5);
  for (int i = 1; i < 5; ++i) g.AddEdge(0, i);
  auto c = graph::BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(c[0], 6.0);  // C(4,2) leaf pairs
  for (int i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(c[i], 0.0);
}

TEST(BetweennessTest, SplitsEquallyAcrossShortestPaths) {
  // C4: each pair of opposite vertices has two shortest paths, each middle
  // vertex carries half a pair from each of the two opposite pairs.
  Graph g(4);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  auto c = graph::BetweennessCentrality(g);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c[i], 0.5);
}

TEST(BetweennessTest, AlignmentMeasureIntegration) {
  Graph g = PathGraph(5);
  auto c = core::ComputeCentrality(g, core::AlignmentMeasure::kBetweenness,
                                   nullptr);
  EXPECT_EQ(core::AlignmentMeasureName(core::AlignmentMeasure::kBetweenness),
            "betweenness");
  auto seq = core::GenerateVertexSequence(g, c, 5);
  EXPECT_EQ(seq[0], 2);  // the middle vertex leads
}

// ---------------------------------------------------------------------------
// Random-walk kernel + the high-order extension.
// ---------------------------------------------------------------------------

TEST(RandomWalkKernelTest, LengthZeroCountsLabelMatches) {
  Graph a = Graph::FromEdges(2, {{0, 1}}, {0, 1});
  Graph b = Graph::FromEdges(2, {{0, 1}}, {0, 0});
  kernels::RandomWalkConfig config;
  config.max_length = 0;
  // Label-matching vertex pairs: (a0,b0), (a0,b1) -> 2.
  EXPECT_DOUBLE_EQ(kernels::RandomWalkKernelValue(a, b, config), 2.0);
}

TEST(RandomWalkKernelTest, SingleStepCountsMatchingEdges) {
  Graph a = Graph::FromEdges(2, {{0, 1}}, {0, 1});
  kernels::RandomWalkConfig config;
  config.max_length = 1;
  config.lambda = 1.0;
  // Walks of length 0: pairs (0,0),(1,1) = 2. Length 1: (0->1, 0->1) and
  // (1->0, 1->0) = 2. Total 4.
  EXPECT_DOUBLE_EQ(kernels::RandomWalkKernelValue(a, a, config), 4.0);
}

TEST(RandomWalkKernelTest, LambdaDiscountsLongWalks) {
  Graph a = PathGraph(4);
  kernels::RandomWalkConfig heavy, light;
  heavy.max_length = light.max_length = 4;
  heavy.lambda = 0.9;
  light.lambda = 0.1;
  EXPECT_GT(kernels::RandomWalkKernelValue(a, a, heavy),
            kernels::RandomWalkKernelValue(a, a, light));
}

TEST(RandomWalkKernelTest, SymmetricAndPermutationInvariant) {
  Rng rng(5);
  Graph g = datasets::ErdosRenyi(8, 0.4, rng);
  for (Vertex v = 0; v < 8; ++v) g.SetLabel(v, static_cast<int>(v % 3));
  Graph h = datasets::ErdosRenyi(7, 0.5, rng);
  for (Vertex v = 0; v < 7; ++v) h.SetLabel(v, static_cast<int>(v % 3));
  kernels::RandomWalkConfig config;
  EXPECT_NEAR(kernels::RandomWalkKernelValue(g, h, config),
              kernels::RandomWalkKernelValue(h, g, config), 1e-9);
  std::vector<Vertex> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  EXPECT_NEAR(kernels::RandomWalkKernelValue(g, h, config),
              kernels::RandomWalkKernelValue(g.Permuted(perm), h, config),
              1e-9);
}

TEST(HighOrderGraphTest, OrderOneIsIdentity) {
  Graph g = PathGraph(4);
  Graph h = kernels::HighOrderGraph(g, 1);
  EXPECT_TRUE(g == h);
}

TEST(HighOrderGraphTest, OrderTwoConnectsTwoHopPairs) {
  Graph g = PathGraph(4);  // 0-1-2-3
  Graph h = kernels::HighOrderGraph(g, 2);
  EXPECT_TRUE(h.HasEdge(0, 2));
  EXPECT_TRUE(h.HasEdge(1, 3));
  EXPECT_FALSE(h.HasEdge(0, 1));  // distance 1, not 2
  EXPECT_FALSE(h.HasEdge(0, 3));  // distance 3
  EXPECT_EQ(h.NumEdges(), 2);
}

TEST(HighOrderGraphTest, PreservesLabels) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {5, 6, 7});
  Graph h = kernels::HighOrderGraph(g, 2);
  EXPECT_EQ(h.Labels(), g.Labels());
}

TEST(RandomWalkKernelTest, HighOrderSeesLongRangeStructure) {
  // Two graphs identical at first order distances 1 but different at 2 hops
  // would be ideal; here we just verify the matrices differ and stay valid.
  Rng rng(9);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    Graph g = datasets::ErdosRenyi(7, 0.35, rng);
    for (Vertex v = 0; v < 7; ++v) g.SetLabel(v, static_cast<int>(v % 2));
    graphs.push_back(g);
    labels.push_back(i % 2);
  }
  GraphDataset ds("rw", std::move(graphs), std::move(labels));
  kernels::RandomWalkConfig first, second;
  second.order = 2;
  auto k1 = kernels::RandomWalkKernelMatrix(ds, first);
  auto k2 = kernels::RandomWalkKernelMatrix(ds, second);
  bool any_different = false;
  for (size_t i = 0; i < k1.size(); ++i) {
    EXPECT_NEAR(k1[i][i], 1.0, 1e-9);
    EXPECT_NEAR(k2[i][i], 1.0, 1e-9);
    for (size_t j = 0; j < k1.size(); ++j) {
      if (std::abs(k1[i][j] - k2[i][j]) > 1e-6) any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// WL optimal assignment kernel.
// ---------------------------------------------------------------------------

TEST(HistogramIntersectionTest, BasicMinSum) {
  kernels::SparseFeatureMap a, b;
  a.Add(1, 3.0);
  a.Add(2, 1.0);
  b.Add(1, 2.0);
  b.Add(3, 5.0);
  EXPECT_DOUBLE_EQ(kernels::HistogramIntersection(a, b), 2.0);
  EXPECT_DOUBLE_EQ(kernels::HistogramIntersection(b, a), 2.0);
  EXPECT_DOUBLE_EQ(kernels::HistogramIntersection(a, a), 4.0);
}

TEST(WlOaTest, SelfSimilarityIsVertexCountTimesIterations) {
  // K(G, G) before normalization = sum over h of |V| -> after cosine
  // normalization the diagonal is 1.
  Graph g = PathGraph(5);
  GraphDataset ds("one", {g, g}, {0, 0});
  auto k = kernels::WlOptimalAssignmentKernelMatrix(ds, kernels::WlConfig{2});
  EXPECT_NEAR(k[0][0], 1.0, 1e-12);
  EXPECT_NEAR(k[0][1], 1.0, 1e-12);  // identical graphs
}

TEST(WlOaTest, BoundedAboveByOneAndSymmetric) {
  Rng rng(11);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    Graph g = datasets::ErdosRenyi(rng.UniformInt(4, 9), 0.4, rng);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      g.SetLabel(v, static_cast<int>(rng.Index(3)));
    }
    graphs.push_back(g);
    labels.push_back(i % 2);
  }
  GraphDataset ds("oa", std::move(graphs), std::move(labels));
  auto k = kernels::WlOptimalAssignmentKernelMatrix(ds);
  for (size_t i = 0; i < k.size(); ++i) {
    for (size_t j = 0; j < k.size(); ++j) {
      EXPECT_NEAR(k[i][j], k[j][i], 1e-12);
      EXPECT_LE(k[i][j], 1.0 + 1e-9);
      EXPECT_GE(k[i][j], 0.0);
    }
  }
}

TEST(WlOaTest, ClassifiesSeparableData) {
  Rng rng(3);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    Graph complete(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(cycle);
    labels.push_back(0);
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("sep", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  auto k = kernels::WlOptimalAssignmentKernelMatrix(ds);
  auto cv = baselines::KernelSvmCrossValidate(k, ds.labels(), 4, 7);
  EXPECT_GT(cv.mean_accuracy, 85.0);
}

// ---------------------------------------------------------------------------
// Model serialization.
// ---------------------------------------------------------------------------

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("deepmap_model_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(SerializationTest, RoundTripRestoresPredictions) {
  Rng rng(5);
  nn::Sequential a;
  a.Emplace<nn::Dense>(3, 8, rng).Emplace<nn::Relu>().Emplace<nn::Dense>(8, 2,
                                                                         rng);
  nn::Tensor input = nn::Tensor::FromFlat({0.5f, -1.0f, 2.0f});
  nn::Tensor before = a.Forward(input, false);
  ASSERT_TRUE(nn::SaveParameters(a.Params(), path_).ok());

  Rng rng2(99);  // different init
  nn::Sequential b;
  b.Emplace<nn::Dense>(3, 8, rng2).Emplace<nn::Relu>().Emplace<nn::Dense>(
      8, 2, rng2);
  ASSERT_TRUE(nn::LoadParameters(b.Params(), path_).ok());
  nn::Tensor after = b.Forward(input, false);
  for (int i = 0; i < 2; ++i) EXPECT_FLOAT_EQ(before.at(i), after.at(i));
}

TEST_F(SerializationTest, RejectsArchitectureMismatch) {
  Rng rng(5);
  nn::Sequential a;
  a.Emplace<nn::Dense>(3, 8, rng);
  ASSERT_TRUE(nn::SaveParameters(a.Params(), path_).ok());
  nn::Sequential wrong_shape;
  wrong_shape.Emplace<nn::Dense>(4, 8, rng);
  EXPECT_FALSE(nn::LoadParameters(wrong_shape.Params(), path_).ok());
  nn::Sequential wrong_count;
  wrong_count.Emplace<nn::Dense>(3, 8, rng).Emplace<nn::Dense>(8, 2, rng);
  EXPECT_FALSE(nn::LoadParameters(wrong_count.Params(), path_).ok());
}

TEST_F(SerializationTest, RejectsGarbageFile) {
  {
    std::ofstream f(path_);
    f << "not a model";
  }
  Rng rng(5);
  nn::Sequential a;
  a.Emplace<nn::Dense>(2, 2, rng);
  auto status = nn::LoadParameters(a.Params(), path_);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, MissingFileIsIoError) {
  Rng rng(5);
  nn::Sequential a;
  a.Emplace<nn::Dense>(2, 2, rng);
  auto status = nn::LoadParameters(a.Params(), "/nonexistent/model.bin");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace deepmap
