#include "graph/statistics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/random_graphs.h"

namespace deepmap::graph {
namespace {

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph StarGraph(int leaves) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

TEST(DensityTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Density(CompleteGraph(5)), 1.0);
  EXPECT_DOUBLE_EQ(Density(Graph(5)), 0.0);
  EXPECT_DOUBLE_EQ(Density(PathGraph(4)), 0.5);  // 3 / 6
  EXPECT_DOUBLE_EQ(Density(Graph(1)), 0.0);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CompleteGraph(6)), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(CompleteGraph(6)), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(StarGraph(5)), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(PathGraph(6)), 0.0);
}

TEST(ClusteringTest, TriangleWithTail) {
  // Triangle 0-1-2 plus pendant 3 on vertex 0.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // Triples: deg(0)=3 -> 3, deg(1)=deg(2)=2 -> 1 each, deg(3)=1 -> 0. Total 5.
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 3.0 / 5.0);
  // Local: v0: 1 link of 3 pairs = 1/3; v1, v2: 1/1; v3: 0.
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g), (1.0 / 3 + 1 + 1 + 0) / 4);
}

TEST(AssortativityTest, StarIsPerfectlyDisassortative) {
  EXPECT_NEAR(DegreeAssortativity(StarGraph(6)), -1.0, 1e-9);
}

TEST(AssortativityTest, RegularGraphDegenerate) {
  // All degrees equal: variance zero -> defined as 0.
  Graph cycle(6);
  for (int i = 0; i < 6; ++i) cycle.AddEdge(i, (i + 1) % 6);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(cycle), 0.0);
}

TEST(AssortativityTest, BoundedInMinusOneToOne) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = datasets::ErdosRenyi(15, 0.3, rng);
    double a = DegreeAssortativity(g);
    EXPECT_GE(a, -1.0 - 1e-9);
    EXPECT_LE(a, 1.0 + 1e-9);
  }
}

TEST(ExtendedStatsTest, AggregatesMeans) {
  GraphDataset ds("mix", {CompleteGraph(4), PathGraph(4)}, {0, 1});
  ExtendedStats stats = ComputeExtendedStats(ds);
  EXPECT_DOUBLE_EQ(stats.density, (1.0 + 0.5) / 2);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.5);
  EXPECT_DOUBLE_EQ(stats.components, 1.0);
  EXPECT_DOUBLE_EQ(stats.diameter, 2.0);  // (1 + 3) / 2
}

TEST(ExtendedStatsTest, EmptyDataset) {
  GraphDataset ds;
  ExtendedStats stats = ComputeExtendedStats(ds);
  EXPECT_DOUBLE_EQ(stats.density, 0.0);
}

}  // namespace
}  // namespace deepmap::graph
