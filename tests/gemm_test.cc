// Equivalence suite for the blocked/parallel GEMM core and the
// im2col-lowered Conv1D (ctest label: perf_equiv).
//
// The determinism contract (docs/performance.md) says the optimized paths
// are bit-identical to the naive reference loops: every comparison here is
// exact (0 ULP), via float bit patterns, across odd shapes, tile-fringe
// dims, and thread counts.
#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "nn/conv1d.h"
#include "nn/tensor.h"

namespace deepmap::nn {
namespace {

// Naive references: single accumulator per output element, ascending-k.
// These replicate the pre-GEMM triple loops (minus the zero-skip, whose
// removal is pinned by tensor_test's NaN tests).

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int t = 0; t < k; ++t) {
      const float av = a.at(i, t);
      for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(t, j);
    }
  }
  return out;
}

Tensor NaiveMatMulTransposedA(const Tensor& a, const Tensor& b) {
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int t = 0; t < k; ++t) {
    for (int i = 0; i < m; ++i) {
      const float av = a.at(t, i);
      for (int j = 0; j < n; ++j) out.at(i, j) += av * b.at(t, j);
    }
  }
  return out;
}

Tensor NaiveMatMulTransposedB(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int t = 0; t < k; ++t) sum += a.at(i, t) * b.at(j, t);
      out.at(i, j) = sum;
    }
  }
  return out;
}

Tensor RandomTensor(std::vector<int> shape, Rng& rng, double zero_prob = 0.1) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.NumElements(); ++i) {
    t.data()[i] =
        rng.Bernoulli(zero_prob) ? 0.0f : static_cast<float>(rng.Normal());
  }
  return t;
}

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure()
           << a.ShapeString() << " vs " << b.ShapeString();
  }
  for (int i = 0; i < a.NumElements(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a.data()[i], sizeof(ba));
    std::memcpy(&bb, &b.data()[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a.data()[i] << " (0x" << std::hex
             << ba << ") vs " << b.data()[i] << " (0x" << bb << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Restores default tuning and thread pinning when a test exits.
class TuningGuard {
 public:
  TuningGuard() : saved_(GetGemmTuning()) {
    const char* env = std::getenv("DEEPMAP_NUM_THREADS");
    if (env != nullptr) saved_env_ = env;
    had_env_ = env != nullptr;
  }
  ~TuningGuard() {
    SetGemmTuning(saved_);
    if (had_env_) {
      setenv("DEEPMAP_NUM_THREADS", saved_env_.c_str(), 1);
    } else {
      unsetenv("DEEPMAP_NUM_THREADS");
    }
  }

 private:
  GemmTuning saved_;
  std::string saved_env_;
  bool had_env_ = false;
};

struct Shape {
  int m, k, n;
};

// Odd shapes on purpose: unit dims, k=1, tall-skinny, non-multiples of the
// MR/NR/MC/KC tiles, and one square big enough for the blocked+parallel
// path under default tuning.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},   {7, 1, 3},    {2, 3, 5},    {13, 1, 29},
    {5, 129, 1},  {31, 33, 129}, {64, 64, 64}, {65, 129, 33}, {301, 13, 7},
    {4, 32, 32},  {128, 96, 160}};

void ExpectAllVariantsMatch() {
  Rng rng(77);
  for (const Shape& s : kShapes) {
    Tensor a = RandomTensor({s.m, s.k}, rng);
    Tensor b = RandomTensor({s.k, s.n}, rng);
    EXPECT_TRUE(BitIdentical(MatMul(a, b), NaiveMatMul(a, b)))
        << "MatMul " << s.m << "x" << s.k << "x" << s.n;
    Tensor at = RandomTensor({s.k, s.m}, rng);
    EXPECT_TRUE(
        BitIdentical(MatMulTransposedA(at, b), NaiveMatMulTransposedA(at, b)))
        << "MatMulTransposedA " << s.m << "x" << s.k << "x" << s.n;
    Tensor bt = RandomTensor({s.n, s.k}, rng);
    EXPECT_TRUE(
        BitIdentical(MatMulTransposedB(a, bt), NaiveMatMulTransposedB(a, bt)))
        << "MatMulTransposedB " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(GemmEquivalenceTest, DefaultTuningMatchesNaive) {
  TuningGuard guard;
  SetGemmTuning(GemmTuning{});
  ExpectAllVariantsMatch();
}

TEST(GemmEquivalenceTest, BlockedPathForcedMatchesNaive) {
  TuningGuard guard;
  GemmTuning t;
  t.small_flops = 0;  // every product takes the packed/blocked path
  SetGemmTuning(t);
  ExpectAllVariantsMatch();
}

TEST(GemmEquivalenceTest, OddTilesMatchNaive) {
  TuningGuard guard;
  GemmTuning t;
  t.mc = 5;
  t.kc = 7;
  t.nc = 11;
  t.nr = 8;
  t.small_flops = 0;
  SetGemmTuning(t);
  ExpectAllVariantsMatch();
}

TEST(GemmEquivalenceTest, SmallPathForcedMatchesNaive) {
  TuningGuard guard;
  GemmTuning t;
  t.small_flops = 1LL << 62;  // never block
  SetGemmTuning(t);
  ExpectAllVariantsMatch();
}

TEST(GemmEquivalenceTest, EightThreadsBitIdenticalToSerial) {
  TuningGuard guard;
  GemmTuning t;
  t.mc = 16;              // many row panels to spread across threads
  t.small_flops = 0;
  t.parallel_min_flops = 0;  // parallelize everything
  SetGemmTuning(t);
  Rng rng(123);
  for (const Shape& s : kShapes) {
    Tensor a = RandomTensor({s.m, s.k}, rng);
    Tensor b = RandomTensor({s.k, s.n}, rng);
    setenv("DEEPMAP_NUM_THREADS", "1", 1);
    Tensor serial = MatMul(a, b);
    setenv("DEEPMAP_NUM_THREADS", "8", 1);
    Tensor parallel = MatMul(a, b);
    EXPECT_TRUE(BitIdentical(serial, parallel))
        << s.m << "x" << s.k << "x" << s.n;
  }
}

// --- Conv1D im2col equivalence -------------------------------------------

// Replicates the pre-GEMM Conv1D loops (seed implementation) against
// caller-supplied parameters.
Tensor NaiveConvForward(const Tensor& weights, const Tensor& bias,
                        const Tensor& input, int in_channels, int out_channels,
                        int kernel_size, int stride) {
  const int out_length = (input.dim(0) - kernel_size) / stride + 1;
  Tensor out({out_length, out_channels});
  for (int p = 0; p < out_length; ++p) {
    const int start = p * stride;
    for (int o = 0; o < out_channels; ++o) {
      float sum = bias.at(o);
      const float* w =
          weights.data() + static_cast<size_t>(o) * kernel_size * in_channels;
      const float* x = input.data() + static_cast<size_t>(start) * in_channels;
      for (int t = 0; t < kernel_size * in_channels; ++t) sum += w[t] * x[t];
      out.at(p, o) = sum;
    }
  }
  return out;
}

struct NaiveConvGrads {
  Tensor grad_input;
  Tensor weights_grad;
  Tensor bias_grad;
};

NaiveConvGrads NaiveConvBackward(const Tensor& weights, const Tensor& input,
                                 const Tensor& grad_output, int in_channels,
                                 int out_channels, int kernel_size,
                                 int stride) {
  const int out_length = grad_output.dim(0);
  NaiveConvGrads g{Tensor({input.dim(0), in_channels}),
                   Tensor({out_channels, kernel_size * in_channels}),
                   Tensor({out_channels})};
  for (int p = 0; p < out_length; ++p) {
    const int start = p * stride;
    const float* x = input.data() + static_cast<size_t>(start) * in_channels;
    float* gx = g.grad_input.data() + static_cast<size_t>(start) * in_channels;
    for (int o = 0; o < out_channels; ++o) {
      const float grad = grad_output.at(p, o);
      g.bias_grad.at(o) += grad;
      const size_t offset =
          static_cast<size_t>(o) * kernel_size * in_channels;
      const float* w = weights.data() + offset;
      float* gw = g.weights_grad.data() + offset;
      for (int t = 0; t < kernel_size * in_channels; ++t) {
        gw[t] += grad * x[t];
        gx[t] += grad * w[t];
      }
    }
  }
  return g;
}

struct ConvCase {
  int in_channels, out_channels, kernel, stride, length;
};

// DEEPMAP-style (kernel == stride), pointwise, stride > kernel, and 1x1
// fringe cases. Overlapping strides (kernel > stride) are exercised
// separately: their backward col2im regroups sums, so only the forward is
// exact there.
const ConvCase kExactCases[] = {{7, 5, 3, 3, 21},  {4, 6, 1, 1, 9},
                                {3, 2, 2, 5, 17},  {2, 3, 4, 4, 4},
                                {1, 1, 1, 1, 1},   {16, 32, 5, 5, 200},
                                {5, 4, 3, 7, 31}};

TEST(Conv1DIm2colTest, ForwardBitIdenticalToNaive) {
  TuningGuard guard;
  for (const GemmTuning& t :
       {GemmTuning{}, GemmTuning{5, 7, 11, 8, 0, 1LL << 62}}) {
    SetGemmTuning(t);
    for (const ConvCase& c : kExactCases) {
      Rng rng(5);
      Conv1D conv(c.in_channels, c.out_channels, c.kernel, c.stride, rng);
      std::vector<Param> params;
      conv.CollectParams(&params);
      Rng data_rng(6);
      Tensor x = RandomTensor({c.length, c.in_channels}, data_rng);
      Tensor got = conv.Forward(x, false);
      Tensor want = NaiveConvForward(*params[0].value, *params[1].value, x,
                                     c.in_channels, c.out_channels, c.kernel,
                                     c.stride);
      EXPECT_TRUE(BitIdentical(got, want))
          << "conv " << c.in_channels << "->" << c.out_channels << " k"
          << c.kernel << " s" << c.stride;
    }
  }
}

TEST(Conv1DIm2colTest, OverlappingForwardBitIdenticalToNaive) {
  TuningGuard guard;
  SetGemmTuning(GemmTuning{});
  const ConvCase c{3, 4, 5, 2, 23};
  Rng rng(7);
  Conv1D conv(c.in_channels, c.out_channels, c.kernel, c.stride, rng);
  std::vector<Param> params;
  conv.CollectParams(&params);
  Rng data_rng(8);
  Tensor x = RandomTensor({c.length, c.in_channels}, data_rng);
  Tensor got = conv.Forward(x, false);
  Tensor want =
      NaiveConvForward(*params[0].value, *params[1].value, x, c.in_channels,
                       c.out_channels, c.kernel, c.stride);
  EXPECT_TRUE(BitIdentical(got, want));
}

TEST(Conv1DIm2colTest, BackwardBitIdenticalToNaive) {
  TuningGuard guard;
  SetGemmTuning(GemmTuning{});
  for (const ConvCase& c : kExactCases) {
    Rng rng(9);
    Conv1D conv(c.in_channels, c.out_channels, c.kernel, c.stride, rng);
    std::vector<Param> params;
    conv.CollectParams(&params);
    Rng data_rng(10);
    Tensor x = RandomTensor({c.length, c.in_channels}, data_rng);
    Tensor out = conv.Forward(x, true);
    Tensor grad_out = RandomTensor(out.shape(), data_rng);
    Tensor grad_in = conv.Backward(grad_out);
    NaiveConvGrads want =
        NaiveConvBackward(*params[0].value, x, grad_out, c.in_channels,
                          c.out_channels, c.kernel, c.stride);
    EXPECT_TRUE(BitIdentical(grad_in, want.grad_input));
    EXPECT_TRUE(BitIdentical(*params[0].grad, want.weights_grad));
    EXPECT_TRUE(BitIdentical(*params[1].grad, want.bias_grad));
  }
}

TEST(Conv1DIm2colTest, OverlappingBackwardMatchesNaiveClosely) {
  // kernel > stride: the col2im scatter regroups per-window sums, which can
  // round differently from the naive interleaved accumulation — equal up to
  // tiny FP error, not bitwise.
  TuningGuard guard;
  SetGemmTuning(GemmTuning{});
  const ConvCase c{3, 4, 5, 2, 23};
  Rng rng(11);
  Conv1D conv(c.in_channels, c.out_channels, c.kernel, c.stride, rng);
  std::vector<Param> params;
  conv.CollectParams(&params);
  Rng data_rng(12);
  Tensor x = RandomTensor({c.length, c.in_channels}, data_rng);
  Tensor out = conv.Forward(x, true);
  Tensor grad_out = RandomTensor(out.shape(), data_rng);
  Tensor grad_in = conv.Backward(grad_out);
  NaiveConvGrads want =
      NaiveConvBackward(*params[0].value, x, grad_out, c.in_channels,
                        c.out_channels, c.kernel, c.stride);
  ASSERT_EQ(grad_in.shape(), want.grad_input.shape());
  for (int i = 0; i < grad_in.NumElements(); ++i) {
    EXPECT_NEAR(grad_in.data()[i], want.grad_input.data()[i], 1e-5f);
  }
  EXPECT_TRUE(BitIdentical(*params[0].grad, want.weights_grad));
  EXPECT_TRUE(BitIdentical(*params[1].grad, want.bias_grad));
}

TEST(Conv1DIm2colTest, InferenceForwardSkipsInputCacheCopy) {
  Rng rng(13);
  Conv1D conv(4, 3, 2, 2, rng);
  Rng data_rng(14);
  Tensor x = RandomTensor({10, 4}, data_rng);
  conv.Forward(x, true);  // warm up so any lazy allocation is done
  Tensor::ResetCopyCount();
  conv.Forward(x, false);
  EXPECT_EQ(Tensor::CopyCount(), 0)
      << "inference Forward must not deep-copy the input";
  // Training mode still caches (one copy) and Backward works.
  Tensor::ResetCopyCount();
  Tensor out = conv.Forward(x, true);
  EXPECT_EQ(Tensor::CopyCount(), 1);
  conv.Backward(Tensor(out.shape()));
}

TEST(GemmTuningTest, SetterClampsAndSnaps) {
  TuningGuard guard;
  GemmTuning t;
  t.mc = -3;
  t.kc = 0;
  t.nc = -1;
  t.nr = 13;
  t.small_flops = -5;
  SetGemmTuning(t);
  GemmTuning got = GetGemmTuning();
  EXPECT_GE(got.mc, 1);
  EXPECT_GE(got.kc, 1);
  EXPECT_GE(got.nc, 1);
  EXPECT_EQ(got.nr, 16);
  EXPECT_EQ(got.small_flops, 0);
}

}  // namespace
}  // namespace deepmap::nn
