#include "datasets/random_graphs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"

namespace deepmap::datasets {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(1);
  graph::Graph g = ErdosRenyi(100, 0.1, rng);
  EXPECT_EQ(g.NumVertices(), 100);
  double expected = 0.1 * 100 * 99 / 2;  // 495
  EXPECT_GT(g.NumEdges(), expected * 0.7);
  EXPECT_LT(g.NumEdges(), expected * 1.3);
}

TEST(ErdosRenyiTest, ExtremeProbabilities) {
  Rng rng(2);
  EXPECT_EQ(ErdosRenyi(10, 0.0, rng).NumEdges(), 0);
  EXPECT_EQ(ErdosRenyi(10, 1.0, rng).NumEdges(), 45);
}

TEST(BarabasiAlbertTest, EdgeCountAndConnectivity) {
  Rng rng(3);
  graph::Graph g = BarabasiAlbert(50, 2, rng);
  EXPECT_EQ(g.NumVertices(), 50);
  // m0 clique (3 edges for m=2) + ~2 per remaining vertex.
  EXPECT_GE(g.NumEdges(), 80);
  EXPECT_EQ(graph::NumConnectedComponents(g), 1);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  Rng rng(4);
  graph::Graph g = BarabasiAlbert(200, 2, rng);
  auto degrees = graph::DegreeSequence(g);
  // Preferential attachment: the max degree dwarfs the median.
  EXPECT_GT(degrees.front(), 3 * degrees[degrees.size() / 2]);
}

TEST(WattsStrogatzTest, PreservesEdgeCount) {
  Rng rng(5);
  graph::Graph g = WattsStrogatz(40, 3, 0.2, rng);
  EXPECT_EQ(g.NumVertices(), 40);
  // Rewiring can occasionally drop an edge when no free slot is found, but
  // the count stays near n*k.
  EXPECT_GE(g.NumEdges(), 110);
  EXPECT_LE(g.NumEdges(), 120);
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(6);
  graph::Graph g = WattsStrogatz(20, 2, 0.0, rng);
  EXPECT_EQ(g.NumEdges(), 40);
  for (int v = 0; v < 20; ++v) EXPECT_EQ(g.Degree(v), 4);
}

TEST(RandomGeometricTest, RadiusControlsDensity) {
  Rng rng(7);
  graph::Graph sparse = RandomGeometric(80, 0.1, rng);
  graph::Graph dense = RandomGeometric(80, 0.4, rng);
  EXPECT_LT(sparse.NumEdges(), dense.NumEdges());
}

TEST(RandomGeometricTest, FullRadiusIsComplete) {
  Rng rng(8);
  graph::Graph g = RandomGeometric(15, 2.0, rng);
  EXPECT_TRUE(graph::IsCompleteGraph(g));
}

TEST(SubsampleAndRewireTest, KeepsRequestedFraction) {
  Rng rng(9);
  graph::Graph seed = ErdosRenyi(100, 0.1, rng);
  graph::Graph sub = SubsampleAndRewire(seed, 0.5, 0.0, rng);
  EXPECT_EQ(sub.NumVertices(), 50);
}

TEST(SubsampleAndRewireTest, NoRewireIsInducedSubgraph) {
  Rng rng(10);
  graph::Graph seed = ErdosRenyi(30, 0.3, rng);
  graph::Graph sub = SubsampleAndRewire(seed, 1.0, 0.0, rng);
  EXPECT_EQ(sub.NumVertices(), seed.NumVertices());
  EXPECT_EQ(sub.NumEdges(), seed.NumEdges());
}

TEST(SubsampleAndRewireTest, RewireApproximatelyPreservesEdgeCount) {
  // Rewired targets can collide with existing edges, so a few edges may be
  // lost; the count must stay close.
  Rng rng(11);
  graph::Graph seed = ErdosRenyi(40, 0.2, rng);
  graph::Graph sub = SubsampleAndRewire(seed, 1.0, 0.8, rng);
  EXPECT_LE(sub.NumEdges(), seed.NumEdges());
  EXPECT_GE(sub.NumEdges(), static_cast<int>(seed.NumEdges() * 0.9));
}

TEST(AttachRingTest, AddsCycleVertices) {
  Rng rng(12);
  graph::Graph g(2);
  g.AddEdge(0, 1);
  AttachRing(g, 0, 5, 3, rng);
  EXPECT_EQ(g.NumVertices(), 7);
  EXPECT_EQ(g.NumEdges(), 1 + 5 + 1);  // original + ring + anchor link
  EXPECT_FALSE(graph::IsForest(g));
}

TEST(RandomTreeTest, IsTree) {
  Rng rng(13);
  graph::Graph t = RandomTree(25, 4, rng);
  EXPECT_EQ(t.NumVertices(), 25);
  EXPECT_EQ(t.NumEdges(), 24);
  EXPECT_TRUE(graph::IsForest(t));
  EXPECT_EQ(graph::NumConnectedComponents(t), 1);
  for (int v = 0; v < 25; ++v) EXPECT_LT(t.GetLabel(v), 4);
}

TEST(RMatTest, ReachesEdgeTargetOnSparseGraphs) {
  Rng rng(15);
  graph::Graph g = RMat(1024, 8, rng);
  EXPECT_EQ(g.NumVertices(), 1024);
  // Sparse regime: few placements collide, so the realized count lands
  // close to the n * edges_per_vertex target.
  EXPECT_GE(g.NumEdges(), 1024 * 8 * 0.9);
  EXPECT_LE(g.NumEdges(), 1024 * 8);
}

TEST(RMatTest, DeterministicForFixedSeed) {
  Rng rng_a(16), rng_b(16);
  graph::Graph a = RMat(500, 4, rng_a);
  graph::Graph b = RMat(500, 4, rng_b);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (int v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.Neighbors(v), b.Neighbors(v));
  }
}

TEST(RMatTest, HeavyTailedDegrees) {
  Rng rng(17);
  graph::Graph g = RMat(2048, 8, rng);
  auto degrees = graph::DegreeSequence(g);
  // The skewed quadrant probabilities concentrate edges on low-id vertices:
  // the max degree should dwarf the median, like BarabasiAlbert's hubs.
  EXPECT_GT(degrees.front(), 5 * std::max<int>(1, degrees[degrees.size() / 2]));
}

TEST(RMatTest, NonPowerOfTwoVertexCount) {
  Rng rng(18);
  graph::Graph g = RMat(300, 3, rng);
  EXPECT_EQ(g.NumVertices(), 300);
  EXPECT_GT(g.NumEdges(), 0);
  for (const auto& [u, v] : g.EdgeList()) {
    EXPECT_LT(u, 300);
    EXPECT_LT(v, 300);
    EXPECT_NE(u, v);
  }
}

TEST(MakeConnectedTest, ConnectsComponents) {
  Rng rng(14);
  graph::Graph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(5, 6);
  MakeConnected(g, rng);
  EXPECT_EQ(graph::NumConnectedComponents(g), 1);
}

}  // namespace
}  // namespace deepmap::datasets
