// Gradient-checks every layer's backward pass against finite differences and
// verifies forward semantics on hand-computable cases.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/gradient_check.h"
#include "nn/graph_conv.h"
#include "nn/model.h"
#include "nn/pooling.h"
#include "nn/softmax_xent.h"

namespace deepmap::nn {
namespace {

Tensor RandomTensor(std::vector<int> shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.NumElements(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// Loss used for layer checks: cross entropy of flattened layer output
// against class 0 via a fixed linear head (sum of entries as one logit and
// its negation as the other keeps everything differentiable and scalar).
double ScalarLoss(const Tensor& out) {
  double s = 0.0;
  for (int i = 0; i < out.NumElements(); ++i) {
    // Weighted sum so no gradient coordinate degenerates to the same value.
    s += (0.1 * (i % 7) + 0.05) * out.data()[i];
  }
  return s;
}

Tensor ScalarLossGrad(const Tensor& out) {
  Tensor g(out.shape());
  for (int i = 0; i < g.NumElements(); ++i) {
    g.data()[i] = static_cast<float>(0.1 * (i % 7) + 0.05);
  }
  return g;
}

// Runs parameter + input gradient checks for one layer.
void CheckLayer(Layer& layer, Tensor input, double tol = 2e-3) {
  std::vector<Param> params;
  layer.CollectParams(&params);
  auto loss = [&]() {
    Tensor out = layer.Forward(input, /*training=*/false);
    return ScalarLoss(out);
  };
  Tensor analytic_input_grad;
  auto forward_backward = [&]() {
    ZeroGrads(params);
    // Backward requires a training-mode Forward (inference skips the input
    // cache); the layers under test are deterministic, so the training
    // output equals the inference output the loss lambda sees.
    Tensor out = layer.Forward(input, /*training=*/true);
    analytic_input_grad = layer.Backward(ScalarLossGrad(out));
  };
  if (!params.empty()) {
    auto result = CheckParameterGradients(params, loss, forward_backward);
    EXPECT_LT(result.max_rel_error, tol) << "parameter gradients";
  } else {
    forward_backward();
  }
  auto input_result = CheckInputGradient(input, analytic_input_grad, loss);
  EXPECT_LT(input_result.max_rel_error, tol) << "input gradients";
}

TEST(DenseTest, ForwardKnownValues) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  dense.weights() = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  dense.bias() = Tensor::FromFlat({10, 20});
  Tensor out = dense.Forward(Tensor::FromFlat({1, 1}), false);
  EXPECT_FLOAT_EQ(out.at(0), 13.0f);  // 1+2+10
  EXPECT_FLOAT_EQ(out.at(1), 27.0f);  // 3+4+20
}

TEST(DenseTest, RowwiseApplication) {
  Rng rng(2);
  Dense dense(3, 2, rng);
  Tensor x = RandomTensor({4, 3}, rng);
  Tensor out = dense.Forward(x, false);
  EXPECT_EQ(out.dim(0), 4);
  EXPECT_EQ(out.dim(1), 2);
  // Row i of the output equals applying the layer to row i alone.
  Tensor row = Tensor::FromVector({3}, {x.at(2, 0), x.at(2, 1), x.at(2, 2)});
  Tensor row_out = dense.Forward(row, false);
  EXPECT_FLOAT_EQ(row_out.at(0), out.at(2, 0));
  EXPECT_FLOAT_EQ(row_out.at(1), out.at(2, 1));
}

TEST(DenseTest, GradientCheckRank1) {
  Rng rng(3);
  Dense dense(4, 3, rng);
  CheckLayer(dense, RandomTensor({4}, rng));
}

TEST(DenseTest, GradientCheckRank2) {
  Rng rng(4);
  Dense dense(3, 5, rng);
  CheckLayer(dense, RandomTensor({6, 3}, rng));
}

TEST(Conv1DTest, OutputLengthStride) {
  Rng rng(5);
  Conv1D conv(2, 3, /*kernel=*/4, /*stride=*/4, rng);
  EXPECT_EQ(conv.OutputLength(12), 3);
  EXPECT_EQ(conv.OutputLength(4), 1);
}

TEST(Conv1DTest, PointwiseConvMatchesDense) {
  // kernel=1, stride=1 conv is a row-wise dense layer.
  Rng rng(6);
  Conv1D conv(3, 2, 1, 1, rng);
  Tensor x = RandomTensor({5, 3}, rng);
  Tensor out = conv.Forward(x, false);
  EXPECT_EQ(out.dim(0), 5);
  EXPECT_EQ(out.dim(1), 2);
}

TEST(Conv1DTest, GradientCheckStrided) {
  Rng rng(7);
  Conv1D conv(2, 3, /*kernel=*/3, /*stride=*/3, rng);
  CheckLayer(conv, RandomTensor({9, 2}, rng));
}

TEST(Conv1DTest, GradientCheckOverlapping) {
  Rng rng(8);
  Conv1D conv(2, 2, /*kernel=*/3, /*stride=*/1, rng);
  CheckLayer(conv, RandomTensor({7, 2}, rng));
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu;
  Tensor out = relu.Forward(Tensor::FromFlat({-1, 0, 2}), false);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2), 2.0f);
}

TEST(ReluTest, GradientCheck) {
  Rng rng(9);
  Relu relu;
  // Keep inputs away from the kink at 0.
  Tensor x = RandomTensor({10}, rng);
  for (int i = 0; i < x.NumElements(); ++i) {
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = 0.5f;
  }
  CheckLayer(relu, x);
}

TEST(TanhTest, GradientCheck) {
  Rng rng(10);
  Tanh tanh_layer;
  CheckLayer(tanh_layer, RandomTensor({8}, rng));
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(11);
  Dropout dropout(0.5, rng);
  Tensor x = RandomTensor({20}, rng);
  Tensor out = dropout.Forward(x, /*training=*/false);
  for (int i = 0; i < 20; ++i) EXPECT_FLOAT_EQ(out.data()[i], x.data()[i]);
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  Rng rng(12);
  Dropout dropout(0.5, rng);
  Tensor x(std::vector<int>{1000});
  x.Fill(1.0f);
  Tensor out = dropout.Forward(x, /*training=*/true);
  int zeros = 0;
  double total = 0.0;
  for (int i = 0; i < 1000; ++i) {
    if (out.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out.data()[i], 2.0f);  // 1/(1-0.5)
      total += out.data()[i];
    }
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
  EXPECT_NEAR(total / 1000.0, 1.0, 0.15);  // expectation preserved
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(13);
  Dropout dropout(0.5, rng);
  Tensor x(std::vector<int>{100});
  x.Fill(1.0f);
  Tensor out = dropout.Forward(x, /*training=*/true);
  Tensor grad_in(std::vector<int>{100});
  grad_in.Fill(1.0f);
  Tensor grad = dropout.Backward(grad_in);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(grad.data()[i], out.data()[i]);  // both x*mask with x=1
  }
}

TEST(DropoutDeathTest, RejectsOutOfRangeRates) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(14);
  // rate == 1.0 would make the keep scale 1/(1-rate) infinite.
  EXPECT_DEATH(Dropout(1.0, rng), "rate < 1");
  EXPECT_DEATH(Dropout(1.5, rng), "rate < 1");
  EXPECT_DEATH(Dropout(-0.1, rng), "rate >= 0");
  EXPECT_DEATH(Dropout(std::nan(""), rng), "NaN");
}

TEST(DropoutTest, NearOneRateStaysFinite) {
  Rng rng(15);
  // The largest admissible rates produce a huge but finite keep scale;
  // outputs must never be inf/NaN.
  Dropout dropout(0.999, rng);
  Tensor x(std::vector<int>{256});
  x.Fill(1.0f);
  Tensor out = dropout.Forward(x, /*training=*/true);
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i])) << i;
  }
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Rng rng(16);
  Dropout dropout(0.0, rng);
  Tensor x = RandomTensor({32}, rng);
  Tensor out = dropout.Forward(x, /*training=*/true);
  for (int i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(out.data()[i], x.data()[i]);
}

TEST(SumPoolTest, ForwardAndGradient) {
  SumPool pool;
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = pool.Forward(x, false);
  EXPECT_FLOAT_EQ(out.at(0), 9.0f);
  EXPECT_FLOAT_EQ(out.at(1), 12.0f);
  Rng rng(14);
  CheckLayer(pool, RandomTensor({4, 3}, rng));
}

TEST(MeanPoolTest, ForwardAndGradient) {
  MeanPool pool;
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor out = pool.Forward(x, false);
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 3.0f);
  Rng rng(15);
  CheckLayer(pool, RandomTensor({5, 2}, rng));
}

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out = flatten.Forward(x, false);
  EXPECT_EQ(out.rank(), 1);
  EXPECT_EQ(out.NumElements(), 6);
  Tensor grad = flatten.Backward(out);
  EXPECT_EQ(grad.rank(), 2);
  EXPECT_EQ(grad.dim(0), 2);
}

TEST(SortPoolingTest, KeepsTopRowsByLastChannel) {
  SortPooling pool(2);
  Tensor x = Tensor::FromVector({3, 2}, {10, 0.1f, 20, 0.9f, 30, 0.5f});
  Tensor out = pool.Forward(x, false);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 20.0f);  // largest last-channel value
  EXPECT_FLOAT_EQ(out.at(1, 0), 30.0f);
}

TEST(SortPoolingTest, PadsShortInputs) {
  SortPooling pool(4);
  Tensor x = Tensor::FromVector({2, 1}, {5, 7});
  Tensor out = pool.Forward(x, false);
  EXPECT_EQ(out.dim(0), 4);
  EXPECT_FLOAT_EQ(out.at(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(3, 0), 0.0f);
}

TEST(SortPoolingTest, GradientScattersToKeptRows) {
  SortPooling pool(1);
  Tensor x = Tensor::FromVector({2, 1}, {5, 7});
  pool.Forward(x, false);
  Tensor grad = pool.Backward(Tensor::FromVector({1, 1}, {3}));
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 0), 3.0f);
}


TEST(RowL2NormalizeTest, ForwardUnitRows) {
  RowL2Normalize norm;
  Tensor x = Tensor::FromVector({2, 2}, {3, 4, 0.6f, 0.8f});
  Tensor out = norm.Forward(x, false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.8f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.6f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 0.8f);
}

TEST(RowL2NormalizeTest, ZeroRowStaysFinite) {
  RowL2Normalize norm;
  Tensor x({2, 3});
  x.at(1, 0) = 5.0f;
  Tensor out = norm.Forward(x, false);
  for (int c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(out.at(0, c), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 1.0f);
}

TEST(RowL2NormalizeTest, GradientCheck) {
  Rng rng(21);
  RowL2Normalize norm;
  // Keep rows away from the epsilon clamp.
  Tensor x = RandomTensor({4, 3}, rng);
  for (int i = 0; i < x.NumElements(); ++i) x.data()[i] += 2.0f;
  CheckLayer(norm, x);
}

TEST(RowL2NormalizeTest, ScaleInvariantForward) {
  RowL2Normalize norm;
  Rng rng(22);
  Tensor x = RandomTensor({3, 4}, rng);
  Tensor scaled = x;
  scaled.Scale(7.5f);
  Tensor a = norm.Forward(x, false);
  Tensor b = norm.Forward(scaled, false);
  for (int i = 0; i < a.NumElements(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5);
  }
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  Tensor probs = Softmax(Tensor::FromFlat({1, 2, 3}));
  double sum = 0;
  for (int i = 0; i < 3; ++i) sum += probs.at(i);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(probs.at(2), probs.at(1));
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor probs = Softmax(Tensor::FromFlat({1000, 1001}));
  EXPECT_NEAR(probs.at(0) + probs.at(1), 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(probs.at(0)));
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOneHot) {
  Tensor logits = Tensor::FromFlat({0.5f, -1.0f, 2.0f});
  LossAndGrad lg = SoftmaxCrossEntropy(logits, 1);
  Tensor probs = Softmax(logits);
  EXPECT_NEAR(lg.grad_logits.at(0), probs.at(0), 1e-6);
  EXPECT_NEAR(lg.grad_logits.at(1), probs.at(1) - 1.0f, 1e-6);
  EXPECT_NEAR(lg.loss, -std::log(probs.at(1)), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, NumericGradient) {
  Rng rng(16);
  Tensor logits = RandomTensor({4}, rng);
  LossAndGrad lg = SoftmaxCrossEntropy(logits, 2);
  auto loss = [&]() { return SoftmaxCrossEntropy(logits, 2).loss; };
  auto result = CheckInputGradient(logits, lg.grad_logits, loss, 1e-3);
  EXPECT_LT(result.max_rel_error, 1e-3);
}

TEST(GraphOpTest, GcnNormRowsOfRegularGraph) {
  // Triangle: every vertex has degree 2; D^-1/2 (A+I) D^-1/2 entries = 1/3.
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  GraphOp op = GraphOp::GcnNorm(g);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(op.entry(i, j), 1.0 / 3, 1e-12);
  }
}

TEST(GraphOpTest, TransitionRowsSumToOne) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  GraphOp op = GraphOp::Transition(g);
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int j = 0; j < 4; ++j) row += op.entry(i, j);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(GraphOpTest, PowerOfTransitionStaysStochastic) {
  graph::Graph g = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  GraphOp p3 = GraphOp::Transition(g).Power(3);
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int j = 0; j < 4; ++j) row += p3.entry(i, j);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(GraphOpTest, ApplyTransposeIsAdjoint) {
  // <S x, y> == <x, S^T y>.
  Rng rng(17);
  graph::Graph g = graph::Graph::FromEdges(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  GraphOp op = GraphOp::RowNormAdj(g);
  Tensor x = RandomTensor({5, 2}, rng);
  Tensor y = RandomTensor({5, 2}, rng);
  Tensor sx = op.Apply(x);
  Tensor sty = op.ApplyTranspose(y);
  double lhs = 0, rhs = 0;
  for (int i = 0; i < 10; ++i) {
    lhs += sx.data()[i] * y.data()[i];
    rhs += x.data()[i] * sty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(GraphOpTest, IdentityPowerZero) {
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 1}});
  GraphOp p0 = GraphOp::Transition(g).Power(0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(p0.entry(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(SequentialTest, GradientCheckSmallCnn) {
  // Conv(2ch->3, k2 s2) -> ReLU -> SumPool -> Dense(3->2): the DEEPMAP
  // architecture in miniature, checked end to end.
  Rng rng(18);
  Sequential net;
  net.Emplace<Conv1D>(2, 3, 2, 2, rng)
      .Emplace<Relu>()
      .Emplace<SumPool>()
      .Emplace<Dense>(3, 2, rng);
  Tensor input = RandomTensor({6, 2}, rng);
  auto params = net.Params();
  const int label = 1;
  auto loss = [&]() {
    return SoftmaxCrossEntropy(net.Forward(input, false), label).loss;
  };
  auto forward_backward = [&]() {
    ZeroGrads(params);
    // Training mode: Backward needs the layers' input caches.
    Tensor logits = net.Forward(input, true);
    net.Backward(SoftmaxCrossEntropy(logits, label).grad_logits);
  };
  auto result = CheckParameterGradients(params, loss, forward_backward, 1e-2);
  EXPECT_LT(result.max_rel_error, 5e-3);
  EXPECT_GT(result.coordinates_checked, 20);
}

TEST(SequentialTest, NumParametersCounts) {
  Rng rng(19);
  Sequential net;
  net.Emplace<Dense>(4, 3, rng).Emplace<Relu>().Emplace<Dense>(3, 2, rng);
  EXPECT_EQ(net.NumParameters(), 4 * 3 + 3 + 3 * 2 + 2);
}

}  // namespace
}  // namespace deepmap::nn
