#include "graph/centrality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"

namespace deepmap::graph {
namespace {

Graph StarGraph(int leaves) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

TEST(EigenvectorCentralityTest, StarCenterDominates) {
  Graph g = StarGraph(5);
  auto c = EigenvectorCentrality(g);
  for (int leaf = 1; leaf <= 5; ++leaf) EXPECT_GT(c[0], c[leaf]);
  // Leaves are symmetric.
  for (int leaf = 2; leaf <= 5; ++leaf) EXPECT_NEAR(c[1], c[leaf], 1e-9);
}

TEST(EigenvectorCentralityTest, L2Normalized) {
  Graph g = StarGraph(4);
  auto c = EigenvectorCentrality(g);
  double norm = 0;
  for (double value : c) norm += value * value;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(EigenvectorCentralityTest, CycleIsUniform) {
  Graph g(6);
  for (int i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6);
  auto c = EigenvectorCentrality(g);
  for (int v = 1; v < 6; ++v) EXPECT_NEAR(c[v], c[0], 1e-6);
  EXPECT_NEAR(c[0], 1.0 / std::sqrt(6.0), 1e-6);
}

TEST(EigenvectorCentralityTest, EdgelessGraphUniform) {
  Graph g(4);
  auto c = EigenvectorCentrality(g);
  for (double value : c) EXPECT_NEAR(value, 0.5, 1e-12);
}

TEST(EigenvectorCentralityTest, EmptyGraph) {
  EXPECT_TRUE(EigenvectorCentrality(Graph()).empty());
}

TEST(EigenvectorCentralityTest, MatchesKnownEigenvector) {
  // Path 0-1-2: dominant eigenvector of adjacency is (1, sqrt(2), 1)/2.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto c = EigenvectorCentrality(g);
  EXPECT_NEAR(c[0], 0.5, 1e-6);
  EXPECT_NEAR(c[1], std::sqrt(2.0) / 2.0, 1e-6);
  EXPECT_NEAR(c[2], 0.5, 1e-6);
}

// Triangle {0,1,2} plus a K_{1,3} star {3: center; 4,5,6: leaves}. The
// triangle's spectral radius (3 on A+I) beats the star's (1 + sqrt(3)), so a
// globally normalized power iteration starves the star toward zero.
Graph TrianglePlusStar() {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  g.AddEdge(3, 5);
  g.AddEdge(3, 6);
  return g;
}

TEST(EigenvectorCentralityTest, DisconnectedStarCenterIsGlobalMax) {
  // Regression: pre-fix, the star component decayed to ~0 under the global
  // normalization, so the star center — the most locally central vertex in
  // the graph — ranked below every triangle vertex.
  auto c = EigenvectorCentrality(TrianglePlusStar());
  // Per-component: star center sqrt(3)/sqrt(6), triangle 1/sqrt(3), star
  // leaf 1/sqrt(6); global rescale by 1/sqrt(2 components).
  const double scale = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(c[3], std::sqrt(3.0 / 6.0) * scale, 1e-6);
  for (int v = 0; v < 3; ++v) EXPECT_NEAR(c[v], scale / std::sqrt(3.0), 1e-6);
  for (int leaf = 4; leaf <= 6; ++leaf) {
    EXPECT_NEAR(c[leaf], scale / std::sqrt(6.0), 1e-6);
  }
  // The star center must outrank everything, including the denser triangle.
  for (int v = 0; v < 7; ++v) {
    if (v != 3) EXPECT_GT(c[3], c[v]) << "vertex " << v;
  }
}

TEST(EigenvectorCentralityTest, ComponentValuesMatchIsolatedComputation) {
  // Each component's values (up to the equal-mass rescale) must equal what
  // the same component yields when computed as a standalone graph.
  auto joint = EigenvectorCentrality(TrianglePlusStar());
  Graph star(4);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  auto alone = EigenvectorCentrality(star);
  const double scale = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(joint[3], alone[0] * scale, 1e-8);
  for (int leaf = 0; leaf < 3; ++leaf) {
    EXPECT_NEAR(joint[4 + leaf], alone[1 + leaf] * scale, 1e-8);
  }
}

TEST(EigenvectorCentralityTest, DisconnectedGraphStaysL2Normalized) {
  auto c = EigenvectorCentrality(TrianglePlusStar());
  double norm = 0.0;
  for (double value : c) norm += value * value;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(EigenvectorCentralityTest, IsolatedVertexIsZero) {
  Graph g(3);
  g.AddEdge(0, 1);  // vertex 2 isolated
  auto c = EigenvectorCentrality(g);
  EXPECT_NEAR(c[0], 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(c[1], 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_EQ(c[2], 0.0);
}

TEST(DegreeCentralityTest, EqualsDegrees) {
  Graph g = StarGraph(3);
  auto c = DegreeCentrality(g);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
}

TEST(PageRankTest, SumsToOne) {
  Graph g = StarGraph(4);
  auto pr = PageRankCentrality(g);
  double sum = 0;
  for (double value : pr) sum += value;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_GT(pr[0], pr[leaf]);
}

TEST(PageRankTest, HandlesIsolatedVertices) {
  Graph g(3);
  g.AddEdge(0, 1);
  auto pr = PageRankCentrality(g);
  double sum = 0;
  for (double value : pr) sum += value;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(pr[2], 0.0);
}

TEST(SortByCentralityTest, DescendingWithStableTies) {
  std::vector<double> c{0.3, 0.9, 0.3, 0.5};
  auto order = SortByCentralityDescending(c);
  std::vector<Vertex> expected{1, 3, 0, 2};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace deepmap::graph
