#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace deepmap {
namespace {

TEST(LoggingTest, LevelFilterRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  // Smoke test: the macro must accept stream expressions at every level.
  SetLogLevel(LogLevel::kError);  // suppress output during tests
  DEEPMAP_LOG(Debug) << "debug " << 1;
  DEEPMAP_LOG(Info) << "info " << 2.5;
  DEEPMAP_LOG(Warning) << "warning " << 'c';
  SetLogLevel(LogLevel::kInfo);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a tiny amount.
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GE(sink, 0.0);  // keep the loop observable
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 100);
}

TEST(StopwatchTest, ResetRestartsClock) {
  Stopwatch watch;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace deepmap
