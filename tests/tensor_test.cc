#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace deepmap::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.NumElements(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, Rank3Accessor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 7.0f);
}

TEST(TensorTest, ReshapedSharesValues) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor r = t.Reshaped({4});
  EXPECT_EQ(r.rank(), 1);
  EXPECT_EQ(r.at(2), 3.0f);
}

TEST(TensorTest, AddAndScale) {
  Tensor a = Tensor::FromFlat({1, 2});
  Tensor b = Tensor::FromFlat({10, 20});
  a.Add(b);
  EXPECT_EQ(a.at(0), 11.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a.at(1), 44.0f);
  a.AddScaled(b, -0.5f);
  EXPECT_EQ(a.at(0), 17.0f);
}

TEST(TensorTest, ArgMaxAndMaxAbs) {
  Tensor t = Tensor::FromFlat({-5, 3, 2, 3});
  EXPECT_EQ(t.ArgMax(), 1);  // first of the tied maxima
  EXPECT_EQ(t.MaxAbs(), 5.0f);
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Tensor a = Tensor::FromVector({2, 3}, {1, -2, 3, 0, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, -9, 10, 11, 0});
  Tensor expected = MatMul(a, b);
  // a^T has shape [3, 2]; (a^T)^T b == a b.
  Tensor at = Tensor::FromVector({3, 2}, {1, 0, -2, 5, 3, 6});
  Tensor viaA = MatMulTransposedA(at, b);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_FLOAT_EQ(viaA.at(i, j), expected.at(i, j));
  }
  // b^T has shape [2, 3]; a (b^T)^T == a b.
  Tensor bt = Tensor::FromVector({2, 3}, {7, -9, 11, 8, 10, 0});
  Tensor viaB = MatMulTransposedB(a, bt);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_FLOAT_EQ(viaB.at(i, j), expected.at(i, j));
  }
}

// Regression: MatMul historically skipped k-terms where the A element was
// exactly 0.0f. That silently swallowed NaN/Inf in the other operand
// (0 * NaN must be NaN). The GEMM core keeps every term in the reduction;
// these tests pin that.

TEST(MatMulTest, ZeroTimesNanPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromVector({1, 2}, {0.0f, 0.0f});
  Tensor b = Tensor::FromVector({2, 1}, {nan, 1.0f});
  EXPECT_TRUE(std::isnan(MatMul(a, b).at(0, 0)));

  Tensor at = Tensor::FromVector({2, 1}, {0.0f, 0.0f});
  EXPECT_TRUE(std::isnan(MatMulTransposedA(at, b).at(0, 0)));

  Tensor bt = Tensor::FromVector({1, 2}, {nan, 1.0f});
  EXPECT_TRUE(std::isnan(MatMulTransposedB(a, bt).at(0, 0)));
}

TEST(MatMulTest, ZeroTimesInfPropagatesNan) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::FromVector({1, 1}, {0.0f});
  Tensor b = Tensor::FromVector({1, 1}, {inf});
  // 0 * inf is NaN by IEEE-754; the old skip returned 0.
  EXPECT_TRUE(std::isnan(MatMul(a, b).at(0, 0)));
}

TEST(MatMulTest, NegativeZeroFollowsIeeeAddition) {
  // The accumulator chain starts at +0 (the zero-initialized output), so
  // +0 + (-0 * 5) rounds to +0 — same as the naive reference.
  Tensor a = Tensor::FromVector({1, 1}, {-0.0f});
  Tensor b = Tensor::FromVector({1, 1}, {5.0f});
  const float out = MatMul(a, b).at(0, 0);
  EXPECT_EQ(out, 0.0f);
  EXPECT_FALSE(std::signbit(out));
}

}  // namespace
}  // namespace deepmap::nn
