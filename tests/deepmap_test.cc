#include "core/deepmap.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datasets/synthetic.h"
#include "eval/cross_validation.h"
#include "graph/graph.h"

namespace deepmap::core {
namespace {

using graph::Graph;
using graph::GraphDataset;

// A tiny, strongly separable dataset: cycles (class 0, triangle-free) vs
// complete graphs (class 1, triangle-rich) — separable by all three feature
// map kinds (graphlet types, path-length spectrum, degree-based WL colors).
GraphDataset SeparableDataset(int per_class) {
  std::vector<Graph> graphs;
  std::vector<int> labels;
  Rng rng(3);
  for (int i = 0; i < per_class; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    // Class 0: cycle graph.
    Graph cycle(n, /*label=*/0);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    graphs.push_back(cycle);
    labels.push_back(0);
    // Class 1: complete graph.
    Graph complete(n, /*label=*/0);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("SEP", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  return ds;
}

DeepMapConfig SmallConfig(kernels::FeatureMapKind kind) {
  DeepMapConfig config;
  config.features.kind = kind;
  config.features.wl.iterations = 2;
  config.features.graphlet.k = 3;
  config.features.graphlet.samples_per_vertex = 10;
  config.receptive_field_size = 3;
  config.conv1_channels = 8;
  config.conv2_channels = 8;
  config.conv3_channels = 8;
  config.dense_units = 16;
  config.train.epochs = 25;
  config.train.batch_size = 8;
  return config;
}

TEST(BuildDeepMapInputTest, ShapeIsSequenceTimesFieldByFeatureDim) {
  GraphDataset ds = SeparableDataset(3);
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config.features);
  auto inputs = BuildDeepMapInputs(ds, features, config);
  ASSERT_EQ(inputs.size(), static_cast<size_t>(ds.size()));
  const int w = ds.MaxVertices();
  for (const auto& input : inputs) {
    EXPECT_EQ(input.dim(0), w * config.receptive_field_size);
    EXPECT_EQ(input.dim(1), features.dim());
  }
}

TEST(BuildDeepMapInputTest, DummySlotsAreZero) {
  GraphDataset ds = SeparableDataset(2);
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config.features);
  // Find a graph smaller than w.
  const int w = ds.MaxVertices();
  int small = -1;
  for (int g = 0; g < ds.size(); ++g) {
    if (ds.graph(g).NumVertices() < w) {
      small = g;
      break;
    }
  }
  ASSERT_GE(small, 0);
  auto input = BuildDeepMapInput(ds.graph(small), features, small, w,
                                 config.receptive_field_size,
                                 config.alignment, nullptr);
  const int r = config.receptive_field_size;
  const int n = ds.graph(small).NumVertices();
  // Rows of the dummy tail must be all zero.
  for (int slot = n; slot < w; ++slot) {
    for (int pos = 0; pos < r; ++pos) {
      for (int c = 0; c < features.dim(); ++c) {
        EXPECT_EQ(input.at(slot * r + pos, c), 0.0f);
      }
    }
  }
}

TEST(BuildDeepMapInputTest, RealVertexRowsNonZero) {
  GraphDataset ds = SeparableDataset(2);
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config.features);
  auto input = BuildDeepMapInput(ds.graph(0), features, 0, ds.MaxVertices(),
                                 config.receptive_field_size,
                                 config.alignment, nullptr);
  // First slot, first position = highest-centrality vertex: WL maps always
  // have at least one nonzero count.
  float sum = 0;
  for (int c = 0; c < features.dim(); ++c) sum += input.at(0, c);
  EXPECT_GT(sum, 0.0f);
}

TEST(DeepMapModelTest, LogitShapeMatchesClasses) {
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  DeepMapModel model(/*feature_dim=*/7, /*sequence_length=*/6,
                     /*num_classes=*/4, config);
  nn::Tensor input({6 * config.receptive_field_size, 7});
  nn::Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.rank(), 1);
  EXPECT_EQ(logits.NumElements(), 4);
}

TEST(DeepMapModelTest, ReadoutVariantsProduceLogits) {
  for (ReadoutKind readout :
       {ReadoutKind::kSum, ReadoutKind::kMean, ReadoutKind::kConcat}) {
    DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
    config.readout = readout;
    DeepMapModel model(5, 4, 2, config);
    nn::Tensor input({4 * config.receptive_field_size, 5});
    nn::Tensor logits = model.Forward(input, false);
    EXPECT_EQ(logits.NumElements(), 2) << ReadoutKindName(readout);
  }
}

TEST(DeepMapModelTest, Theorem1IsomorphicGraphsSameLogits) {
  // Isomorphic graphs must produce identical deep feature maps (and thus
  // logits) when the feature maps are deterministic (WL, not sampled GK).
  // Note: the graph must not be regular — on regular graphs eigenvector
  // centrality cannot order the vertices and the aligned sequences of two
  // isomorphic copies may legitimately differ (Theorem 1's construction
  // presupposes the centrality-sorted sequence is canonical).
  Rng rng(11);
  Graph g = Graph::FromEdges(
      7, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 5}, {4, 6}},
      {0, 1, 1, 2, 3, 3, 0});
  std::vector<graph::Vertex> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  GraphDataset ds("iso", {g, h}, {0, 0});
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  auto features = kernels::ComputeDatasetVertexFeatures(ds, config.features);
  auto inputs = BuildDeepMapInputs(ds, features, config);
  DeepMapModel model(features.dim(), ds.MaxVertices(), 2, config);
  nn::Tensor la = model.Forward(inputs[0], false);
  nn::Tensor lb = model.Forward(inputs[1], false);
  for (int c = 0; c < la.NumElements(); ++c) {
    EXPECT_NEAR(la.at(c), lb.at(c), 1e-4);
  }
}

class DeepMapKindTest
    : public ::testing::TestWithParam<kernels::FeatureMapKind> {};

TEST_P(DeepMapKindTest, LearnsSeparableDataset) {
  GraphDataset ds = SeparableDataset(12);
  DeepMapConfig config = SmallConfig(GetParam());
  DeepMapPipeline pipeline(ds, config);
  // Single split: first 2/3 train, last 1/3 test (classes alternate).
  std::vector<int> train_idx, test_idx;
  for (int i = 0; i < ds.size(); ++i) {
    (i < 2 * ds.size() / 3 ? train_idx : test_idx).push_back(i);
  }
  EvaluationResult result = pipeline.RunFold(train_idx, test_idx, 5);
  EXPECT_GT(result.test_accuracy, 0.85)
      << kernels::FeatureMapKindName(GetParam());
  EXPECT_GT(result.history.final_accuracy(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DeepMapKindTest,
                         ::testing::Values(kernels::FeatureMapKind::kGraphlet,
                                           kernels::FeatureMapKind::kShortestPath,
                                           kernels::FeatureMapKind::kWlSubtree),
                         [](const auto& info) {
                           return kernels::FeatureMapKindName(info.param);
                         });

TEST(DeepMapPipelineTest, CrossValidationOnSeparableData) {
  GraphDataset ds = SeparableDataset(10);
  DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
  config.train.epochs = 20;
  DeepMapPipeline pipeline(ds, config);
  auto cv = eval::CrossValidate(
      ds.labels(), 4, 17, [&](const eval::FoldSplit& split, int fold) {
        return pipeline
            .RunFold(split.train_indices, split.test_indices, 100 + fold)
            .test_accuracy;
      });
  EXPECT_GT(cv.mean_accuracy, 85.0);
  EXPECT_EQ(cv.fold_accuracies.size(), 4u);
}

}  // namespace
}  // namespace deepmap::core
