// Property-based tests: invariants that must hold across randomized graphs,
// seeds, and feature-map kinds (parameterized sweeps).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "baselines/gntk.h"
#include "baselines/retgk.h"
#include "common/rng.h"
#include "core/alignment.h"
#include "core/receptive_field.h"
#include "datasets/random_graphs.h"
#include "graph/algorithms.h"
#include "graph/centrality.h"
#include "graph/isomorphism.h"
#include "kernels/kernel_matrix.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap {
namespace {

using graph::Graph;
using graph::GraphDataset;
using graph::Vertex;

Graph RandomLabeledGraph(int n, double p, int labels, Rng& rng) {
  Graph g = datasets::ErdosRenyi(n, p, rng);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    g.SetLabel(v, static_cast<graph::Label>(rng.Index(labels)));
  }
  return g;
}

// ---------------------------------------------------------------------------
// Permutation invariance of graph-level feature maps, across kinds & seeds.
// ---------------------------------------------------------------------------

class FeatureInvarianceTest
    : public ::testing::TestWithParam<std::tuple<kernels::FeatureMapKind,
                                                 int>> {};

TEST_P(FeatureInvarianceTest, GraphFeatureMapPermutationInvariant) {
  auto [kind, seed] = GetParam();
  Rng rng(seed);
  Graph g = RandomLabeledGraph(rng.UniformInt(4, 12), rng.Uniform(0.2, 0.6),
                               3, rng);
  std::vector<Vertex> perm(g.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  GraphDataset ds("pair", {g, h}, {0, 0});
  kernels::VertexFeatureConfig config;
  config.kind = kind;
  config.graphlet.k = 3;
  config.graphlet.exhaustive = true;  // deterministic for invariance check
  auto maps = kernels::ComputeGraphFeatureMaps(ds, config);
  EXPECT_NEAR(maps[0].Dot(maps[0]), maps[1].Dot(maps[1]), 1e-9);
  EXPECT_NEAR(maps[0].Dot(maps[0]), maps[0].Dot(maps[1]), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FeatureInvarianceTest,
    ::testing::Combine(::testing::Values(kernels::FeatureMapKind::kGraphlet,
                                         kernels::FeatureMapKind::kShortestPath,
                                         kernels::FeatureMapKind::kWlSubtree),
                       ::testing::Range(1, 6)),
    [](const auto& info) {
      return kernels::FeatureMapKindName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Gram matrices of random datasets are PSD for every kind.
// ---------------------------------------------------------------------------

class GramPsdTest : public ::testing::TestWithParam<int> {};

TEST_P(GramPsdTest, RandomDatasetGramIsPsd) {
  Rng rng(GetParam());
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    graphs.push_back(RandomLabeledGraph(rng.UniformInt(3, 10),
                                        rng.Uniform(0.1, 0.7), 4, rng));
    labels.push_back(i % 2);
  }
  GraphDataset ds("rand", std::move(graphs), std::move(labels));
  for (auto kind : {kernels::FeatureMapKind::kGraphlet,
                    kernels::FeatureMapKind::kShortestPath,
                    kernels::FeatureMapKind::kWlSubtree}) {
    kernels::VertexFeatureConfig config;
    config.kind = kind;
    config.graphlet.k = 3;
    config.seed = GetParam();
    auto maps = kernels::ComputeGraphFeatureMaps(ds, config);
    EXPECT_TRUE(kernels::IsPositiveSemidefinite(
        kernels::GramMatrix(maps, true), 1e-7))
        << kernels::FeatureMapKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GramPsdTest, ::testing::Range(10, 16));

// ---------------------------------------------------------------------------
// Baseline kernel matrices: symmetry + unit diagonal + PSD-ish.
// ---------------------------------------------------------------------------

TEST(BaselineKernelPropertyTest, RetGkAndGntkAreValidKernels) {
  Rng rng(77);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    graphs.push_back(RandomLabeledGraph(rng.UniformInt(4, 9),
                                        rng.Uniform(0.2, 0.7), 3, rng));
    labels.push_back(i % 2);
  }
  GraphDataset ds("rand", std::move(graphs), std::move(labels));
  for (const kernels::Matrix& k :
       {baselines::RetGkKernelMatrix(ds), baselines::GntkKernelMatrix(ds)}) {
    for (size_t i = 0; i < k.size(); ++i) {
      EXPECT_NEAR(k[i][i], 1.0, 1e-9);
      for (size_t j = 0; j < k.size(); ++j) {
        EXPECT_NEAR(k[i][j], k[j][i], 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Receptive fields: structural properties on random graphs.
// ---------------------------------------------------------------------------

class ReceptiveFieldPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReceptiveFieldPropertyTest, FieldsWellFormed) {
  Rng rng(GetParam());
  Graph g = datasets::ErdosRenyi(rng.UniformInt(2, 20),
                                 rng.Uniform(0.05, 0.5), rng);
  auto centrality = graph::EigenvectorCentrality(g);
  const int r = rng.UniformInt(1, 7);
  auto component = graph::ConnectedComponents(g);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    auto field = core::BuildReceptiveField(g, v, r, centrality);
    ASSERT_EQ(field.size(), static_cast<size_t>(r));
    // Contains v; no duplicates; non-dummies are in v's component; dummies
    // only at the tail.
    bool saw_dummy = false;
    std::set<Vertex> seen;
    bool contains_v = false;
    for (Vertex u : field) {
      if (u == core::kDummyVertex) {
        saw_dummy = true;
        continue;
      }
      EXPECT_FALSE(saw_dummy) << "dummy before real vertex";
      EXPECT_TRUE(seen.insert(u).second) << "duplicate in field";
      EXPECT_EQ(component[u], component[v]);
      if (u == v) contains_v = true;
    }
    EXPECT_TRUE(contains_v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReceptiveFieldPropertyTest,
                         ::testing::Range(20, 28));

// ---------------------------------------------------------------------------
// Centrality sanity on random graphs.
// ---------------------------------------------------------------------------

class CentralityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CentralityPropertyTest, EigenvectorNonNegativeAndNormalized) {
  Rng rng(GetParam());
  Graph g = datasets::ErdosRenyi(rng.UniformInt(2, 30),
                                 rng.Uniform(0.05, 0.6), rng);
  auto c = graph::EigenvectorCentrality(g);
  double norm = 0;
  for (double x : c) {
    EXPECT_GE(x, 0.0);
    norm += x * x;
  }
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST_P(CentralityPropertyTest, SequenceIsPermutation) {
  Rng rng(GetParam() + 100);
  Graph g = datasets::ErdosRenyi(rng.UniformInt(2, 25),
                                 rng.Uniform(0.1, 0.5), rng);
  auto c = graph::EigenvectorCentrality(g);
  auto seq = core::GenerateVertexSequence(g, c, g.NumVertices() + 3);
  std::set<Vertex> seen;
  int dummies = 0;
  for (Vertex v : seq) {
    if (v == core::kDummyVertex) {
      ++dummies;
    } else {
      EXPECT_TRUE(seen.insert(v).second);
    }
  }
  EXPECT_EQ(dummies, 3);
  EXPECT_EQ(static_cast<int>(seen.size()), g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentralityPropertyTest,
                         ::testing::Range(30, 38));

// ---------------------------------------------------------------------------
// Isomorphism invariance of RPF across random graphs.
// ---------------------------------------------------------------------------

class RpfInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(RpfInvarianceTest, SortedRpfMatchesUnderPermutation) {
  Rng rng(GetParam());
  Graph g = datasets::ErdosRenyi(rng.UniformInt(3, 15),
                                 rng.Uniform(0.2, 0.6), rng);
  std::vector<Vertex> perm(g.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  auto rg = baselines::ReturnProbabilityFeatures(g, 5);
  auto rh = baselines::ReturnProbabilityFeatures(h, 5);
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (int t = 0; t < 5; ++t) {
      EXPECT_NEAR(rg[v][t], rh[perm[v]][t], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpfInvarianceTest, ::testing::Range(40, 46));

// ---------------------------------------------------------------------------
// WL fingerprint never produces false "non-isomorphic" on isomorphic pairs.
// ---------------------------------------------------------------------------

class WlSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(WlSoundnessTest, IsomorphicPairsNeverDistinguished) {
  Rng rng(GetParam());
  Graph g = RandomLabeledGraph(rng.UniformInt(3, 20), rng.Uniform(0.1, 0.6),
                               3, rng);
  std::vector<Vertex> perm(g.NumVertices());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  EXPECT_NE(graph::TestIsomorphism(g, h), graph::IsoResult::kNonIsomorphic);
  for (int rounds : {0, 1, 3, 5}) {
    EXPECT_EQ(graph::WlFingerprint(g, rounds),
              graph::WlFingerprint(h, rounds));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlSoundnessTest, ::testing::Range(50, 58));

}  // namespace
}  // namespace deepmap
