#include "kernels/graphlet.h"

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

TEST(GraphletCatalogTest, SizesMatchKnownCounts) {
  EXPECT_EQ(GetGraphletCatalog(2).size(), 2);
  EXPECT_EQ(GetGraphletCatalog(3).size(), 4);   // Figure 1 of the paper
  EXPECT_EQ(GetGraphletCatalog(4).size(), 11);
  EXPECT_EQ(GetGraphletCatalog(5).size(), 34);
}

TEST(GraphletCatalogTest, IndexRoundTripsExemplar) {
  const GraphletCatalog& catalog = GetGraphletCatalog(4);
  for (int i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.IndexOf(catalog.Exemplar(i)), i);
  }
}

TEST(GraphletCatalogTest, IsomorphicGraphletsShareIndex) {
  const GraphletCatalog& catalog = GetGraphletCatalog(3);
  Graph path_a = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  Graph path_b = Graph::FromEdges(3, {{0, 2}, {2, 1}});
  EXPECT_EQ(catalog.IndexOf(path_a), catalog.IndexOf(path_b));
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_NE(catalog.IndexOf(path_a), catalog.IndexOf(triangle));
}

TEST(ExactSize3Test, TriangleCounts) {
  Graph k4 = CompleteGraph(4);
  SparseFeatureMap counts = ExactSize3GraphletCounts(k4);
  // All C(4,3)=4 induced subgraphs of K4 are triangles.
  const GraphletCatalog& catalog = GetGraphletCatalog(3);
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  FeatureId triangle_id = static_cast<FeatureId>(catalog.IndexOf(triangle));
  EXPECT_DOUBLE_EQ(counts.Get(triangle_id), 4.0);
  EXPECT_DOUBLE_EQ(counts.TotalCount(), 4.0);
}

TEST(ExactSize3Test, EmptyGraphAllEmptyTriples) {
  Graph g(5);  // no edges
  SparseFeatureMap counts = ExactSize3GraphletCounts(g);
  const GraphletCatalog& catalog = GetGraphletCatalog(3);
  FeatureId empty_id = static_cast<FeatureId>(catalog.IndexOf(Graph(3)));
  EXPECT_DOUBLE_EQ(counts.Get(empty_id), 10.0);  // C(5,3)
}

TEST(VertexGraphletTest, ExhaustiveCreditsEachVertex) {
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  GraphletConfig config;
  config.k = 3;
  config.exhaustive = true;
  Rng rng(1);
  auto features = VertexGraphletFeatureMaps(triangle, config, rng);
  ASSERT_EQ(features.size(), 3u);
  for (const auto& f : features) EXPECT_DOUBLE_EQ(f.TotalCount(), 1.0);
}

TEST(VertexGraphletTest, SamplingProducesRequestedSamples) {
  Graph g = CompleteGraph(8);
  GraphletConfig config;
  config.k = 5;
  config.samples_per_vertex = 20;
  Rng rng(7);
  auto features = VertexGraphletFeatureMaps(g, config, rng);
  ASSERT_EQ(features.size(), 8u);
  for (const auto& f : features) EXPECT_DOUBLE_EQ(f.TotalCount(), 20.0);
}

TEST(VertexGraphletTest, CompleteGraphSamplesAreCliques) {
  Graph g = CompleteGraph(10);
  GraphletConfig config;
  config.k = 4;
  config.samples_per_vertex = 10;
  Rng rng(3);
  auto features = VertexGraphletFeatureMaps(g, config, rng);
  const GraphletCatalog& catalog = GetGraphletCatalog(4);
  FeatureId clique_id = static_cast<FeatureId>(catalog.IndexOf(
      CompleteGraph(4)));
  for (const auto& f : features) {
    EXPECT_DOUBLE_EQ(f.Get(clique_id), 10.0);
    EXPECT_EQ(f.NumNonZero(), 1u);
  }
}

TEST(VertexGraphletTest, SmallGraphPaddedWithIsolates) {
  // Graph with 2 vertices but k = 4: samples must land on the graphlet that
  // is one edge plus two isolated vertices.
  Graph g = Graph::FromEdges(2, {{0, 1}});
  GraphletConfig config;
  config.k = 4;
  config.samples_per_vertex = 5;
  Rng rng(9);
  auto features = VertexGraphletFeatureMaps(g, config, rng);
  Graph expected(4);
  expected.AddEdge(0, 1);
  FeatureId id = static_cast<FeatureId>(GetGraphletCatalog(4).IndexOf(expected));
  EXPECT_DOUBLE_EQ(features[0].Get(id), 5.0);
  EXPECT_DOUBLE_EQ(features[1].Get(id), 5.0);
}

TEST(VertexGraphletTest, SamplingApproximatesExactDistribution) {
  // On a fixed graph, heavy sampling should roughly recover exact size-3
  // frequencies (sampling is biased toward connected graphlets, so compare
  // only which types occur).
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  GraphletConfig sampled;
  sampled.k = 3;
  sampled.samples_per_vertex = 200;
  Rng rng(17);
  SparseFeatureMap approx = GraphletFeatureMap(g, sampled, rng);
  const GraphletCatalog& catalog = GetGraphletCatalog(3);
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}});
  FeatureId triangle_id = static_cast<FeatureId>(catalog.IndexOf(triangle));
  EXPECT_GT(approx.Get(triangle_id), 0.0);  // the one triangle is found
}

TEST(GraphletFeatureMapTest, IsSumOfVertexMaps) {
  Graph g = CompleteGraph(5);
  GraphletConfig config;
  config.k = 3;
  config.exhaustive = true;
  Rng rng(5);
  auto vertex_maps = VertexGraphletFeatureMaps(g, config, rng);
  SparseFeatureMap sum = SumFeatureMaps(vertex_maps);
  Rng rng2(5);
  SparseFeatureMap direct = GraphletFeatureMap(g, config, rng2);
  EXPECT_DOUBLE_EQ(sum.TotalCount(), direct.TotalCount());
}

}  // namespace
}  // namespace deepmap::kernels
