#include "baselines/svm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace deepmap::baselines {
namespace {

// Linear kernel over explicit 2-D points.
kernels::Matrix LinearKernel(const std::vector<std::pair<double, double>>& x) {
  const size_t n = x.size();
  kernels::Matrix k(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      k[i][j] = x[i].first * x[j].first + x[i].second * x[j].second;
    }
  }
  return k;
}

// Two well-separated Gaussian blobs.
void MakeBlobs(int per_class, std::vector<std::pair<double, double>>* points,
               std::vector<int>* labels, double separation = 4.0) {
  Rng rng(7);
  for (int i = 0; i < per_class; ++i) {
    points->push_back({-separation / 2 + rng.Normal(0, 0.5),
                       rng.Normal(0, 0.5)});
    labels->push_back(0);
    points->push_back({separation / 2 + rng.Normal(0, 0.5),
                       rng.Normal(0, 0.5)});
    labels->push_back(1);
  }
}

TEST(BinarySmoSvmTest, SeparatesBlobs) {
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  MakeBlobs(20, &points, &labels);
  auto gram = LinearKernel(points);
  std::vector<int> train_indices;
  std::vector<int> binary;
  for (int i = 0; i < 40; ++i) {
    train_indices.push_back(i);
    binary.push_back(labels[i] == 0 ? 1 : -1);
  }
  BinarySmoSvm svm;
  svm.Train(gram, train_indices, binary, SvmConfig{});
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    int predicted = svm.DecisionValue(gram, i) >= 0 ? 0 : 1;
    if (predicted == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 38);
  EXPECT_GT(svm.NumSupportVectors(), 0);
  EXPECT_LT(svm.NumSupportVectors(), 40);  // most points are not SVs
}

TEST(BinarySmoSvmTest, GeneralizesToHeldOut) {
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  MakeBlobs(30, &points, &labels);
  auto gram = LinearKernel(points);
  std::vector<int> train_indices, binary;
  for (int i = 0; i < 40; ++i) {
    train_indices.push_back(i);
    binary.push_back(labels[i] == 0 ? 1 : -1);
  }
  BinarySmoSvm svm;
  svm.Train(gram, train_indices, binary, SvmConfig{});
  int correct = 0;
  for (int i = 40; i < 60; ++i) {
    int predicted = svm.DecisionValue(gram, i) >= 0 ? 0 : 1;
    if (predicted == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 18);
}

TEST(KernelSvmTest, BinaryUsesOneMachine) {
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  MakeBlobs(10, &points, &labels);
  auto gram = LinearKernel(points);
  std::vector<int> train(20);
  for (int i = 0; i < 20; ++i) train[i] = i;
  KernelSvm svm;
  svm.Train(gram, labels, train, SvmConfig{});
  EXPECT_EQ(svm.num_classes(), 1);  // single machine for binary
  EXPECT_GT(svm.Evaluate(gram, labels, train), 0.9);
}

TEST(KernelSvmTest, MulticlassOneVsRest) {
  // Three blobs around (-4,0), (4,0), (0,4).
  Rng rng(9);
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  const double cx[3] = {-4, 4, 0};
  const double cy[3] = {0, 0, 4};
  for (int i = 0; i < 45; ++i) {
    int c = i % 3;
    points.push_back({cx[c] + rng.Normal(0, 0.4), cy[c] + rng.Normal(0, 0.4)});
    labels.push_back(c);
  }
  auto gram = LinearKernel(points);
  std::vector<int> train;
  for (int i = 0; i < 45; ++i) train.push_back(i);
  KernelSvm svm;
  svm.Train(gram, labels, train, SvmConfig{});
  EXPECT_EQ(svm.num_classes(), 3);
  EXPECT_GT(svm.Evaluate(gram, labels, train), 0.9);
}

TEST(KernelSvmTest, SmallCUnderfitsNoisyData) {
  // With overlapping blobs, a tiny C yields a smoother (higher-bias) fit
  // than a huge C; we only check both run and produce valid accuracies.
  std::vector<std::pair<double, double>> points;
  std::vector<int> labels;
  MakeBlobs(15, &points, &labels, /*separation=*/1.0);
  auto gram = LinearKernel(points);
  std::vector<int> train(30);
  for (int i = 0; i < 30; ++i) train[i] = i;
  for (double c : {0.01, 1000.0}) {
    SvmConfig config;
    config.c = c;
    KernelSvm svm;
    svm.Train(gram, labels, train, config);
    double accuracy = svm.Evaluate(gram, labels, train);
    EXPECT_GE(accuracy, 0.4);
    EXPECT_LE(accuracy, 1.0);
  }
}

}  // namespace
}  // namespace deepmap::baselines
