#include "core/vertex_classification.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/random_graphs.h"

namespace deepmap::core {
namespace {

using graph::Graph;
using graph::GraphDataset;
using graph::Vertex;

// Structural-role task: hubs (degree >= 3) vs non-hubs, on star-of-paths
// graphs where the role is perfectly determined by local structure.
struct RoleTask {
  GraphDataset dataset;
  std::vector<std::vector<int>> roles;
};

RoleTask MakeRoleTask(int num_graphs, uint64_t seed) {
  Rng rng(seed);
  std::vector<Graph> graphs;
  std::vector<int> graph_labels;
  std::vector<std::vector<int>> roles;
  for (int i = 0; i < num_graphs; ++i) {
    // A hub with 3-5 paths of length 2 hanging off it.
    int arms = rng.UniformInt(3, 5);
    Graph g(1 + 2 * arms, /*label=*/0);
    for (int a = 0; a < arms; ++a) {
      Vertex mid = 1 + 2 * a;
      Vertex leaf = mid + 1;
      g.AddEdge(0, mid);
      g.AddEdge(mid, leaf);
    }
    std::vector<int> role(g.NumVertices());
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      role[v] = g.Degree(v) >= 3 ? 0 : (g.Degree(v) == 2 ? 1 : 2);
    }
    graphs.push_back(std::move(g));
    graph_labels.push_back(0);
    roles.push_back(std::move(role));
  }
  GraphDataset ds("roles", std::move(graphs), std::move(graph_labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  return RoleTask{std::move(ds), std::move(roles)};
}

VertexClassifierConfig SmallConfig() {
  VertexClassifierConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 2;
  config.receptive_field_size = 3;
  config.conv_channels = 8;
  config.dense_units = 16;
  config.train.epochs = 20;
  config.train.batch_size = 16;
  return config;
}

TEST(VertexClassifierPipelineTest, EnumeratesAllVertices) {
  RoleTask task = MakeRoleTask(4, 1);
  VertexClassifierPipeline pipeline(task.dataset, task.roles, SmallConfig());
  size_t total = 0;
  for (const auto& g : task.dataset.graphs()) total += g.NumVertices();
  EXPECT_EQ(pipeline.vertices().size(), total);
  EXPECT_EQ(pipeline.num_classes(), 3);
}

TEST(VertexClassifierPipelineTest, InputShapeIsFieldByFeatureDim) {
  RoleTask task = MakeRoleTask(2, 2);
  VertexClassifierConfig config = SmallConfig();
  VertexClassifierPipeline pipeline(task.dataset, task.roles, config);
  const nn::Tensor& input = pipeline.input(0);
  EXPECT_EQ(input.dim(0), config.receptive_field_size);
  EXPECT_EQ(input.dim(1), pipeline.feature_dim());
}

TEST(VertexClassifierPipelineTest, LabelLookupMatchesRoles) {
  RoleTask task = MakeRoleTask(2, 3);
  VertexClassifierPipeline pipeline(task.dataset, task.roles, SmallConfig());
  for (size_t i = 0; i < pipeline.vertices().size(); ++i) {
    const VertexRef& ref = pipeline.vertices()[i];
    EXPECT_EQ(pipeline.label(i), task.roles[ref.graph][ref.vertex]);
  }
}

TEST(VertexClassifierTest, LearnsStructuralRoles) {
  RoleTask task = MakeRoleTask(8, 4);
  VertexClassifierPipeline pipeline(task.dataset, task.roles, SmallConfig());
  // Train on the vertices of the first 6 graphs, test on the rest.
  std::vector<int> train_refs, test_refs;
  for (size_t i = 0; i < pipeline.vertices().size(); ++i) {
    (pipeline.vertices()[i].graph < 6 ? train_refs : test_refs)
        .push_back(static_cast<int>(i));
  }
  double accuracy = pipeline.TrainAndEvaluate(train_refs, test_refs, 7);
  EXPECT_GT(accuracy, 0.9);  // roles are structurally determined
}

TEST(VertexClassifierModelTest, LogitShape) {
  VertexClassifierConfig config = SmallConfig();
  VertexClassifierModel model(/*feature_dim=*/10, /*num_classes=*/4, config);
  nn::Tensor input({config.receptive_field_size, 10});
  nn::Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.NumElements(), 4);
}

}  // namespace
}  // namespace deepmap::core
