#include "kernels/wl.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;

TEST(WlRefinementTest, IterationZeroIsLabels) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {4, 5, 6});
  WlRefinement refinery(WlConfig{0});
  auto colors = refinery.Refine(g);
  ASSERT_EQ(colors.size(), 1u);
  EXPECT_EQ(colors[0], (std::vector<int64_t>{4, 5, 6}));
}

TEST(WlRefinementTest, RefinementSeparatesByNeighborhood) {
  // Path 0-1-2, all same label: endpoints get one color, middle another.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 0, 0});
  WlRefinement refinery(WlConfig{1});
  auto colors = refinery.Refine(g);
  ASSERT_EQ(colors.size(), 2u);
  EXPECT_EQ(colors[1][0], colors[1][2]);
  EXPECT_NE(colors[1][0], colors[1][1]);
}

TEST(WlRefinementTest, SharedDictionaryAcrossGraphs) {
  Graph a = Graph::FromEdges(2, {{0, 1}}, {0, 0});
  Graph b = Graph::FromEdges(2, {{0, 1}}, {0, 0});
  WlRefinement refinery(WlConfig{2});
  auto ca = refinery.Refine(a);
  auto cb = refinery.Refine(b);
  EXPECT_EQ(ca, cb);  // identical graphs get identical colors
  EXPECT_EQ(refinery.NumColorsAtIteration(1), 1u);
}

TEST(WlRefinementTest, StableColoringStopsGrowing) {
  // A cycle is color-stable after one round: the dictionary gains nothing
  // in later rounds.
  Graph g(4);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, (i + 1) % 4);
  WlRefinement refinery(WlConfig{3});
  refinery.Refine(g);
  EXPECT_EQ(refinery.NumColorsAtIteration(1), 1u);
  EXPECT_EQ(refinery.NumColorsAtIteration(2), 1u);
  EXPECT_EQ(refinery.NumColorsAtIteration(3), 1u);
}

TEST(VertexWlTest, OneFeaturePerIterationPerVertex) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  WlRefinement refinery(WlConfig{3});
  auto features = VertexWlFeatureMaps(g, refinery);
  ASSERT_EQ(features.size(), 4u);
  for (const auto& f : features) {
    EXPECT_DOUBLE_EQ(f.TotalCount(), 4.0);  // h = 0..3
  }
}

TEST(WlFeatureMapTest, IsomorphicGraphsIdenticalMaps) {
  Rng rng(5);
  Graph g = Graph::FromEdges(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 6}},
      {0, 1, 1, 0, 2, 2, 0});
  std::vector<graph::Vertex> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  WlRefinement refinery(WlConfig{3});
  SparseFeatureMap fg = WlFeatureMap(g, refinery);
  SparseFeatureMap fh = WlFeatureMap(h, refinery);
  EXPECT_DOUBLE_EQ(fg.Dot(fg), fg.Dot(fh));
  EXPECT_DOUBLE_EQ(fg.Dot(fg), fh.Dot(fh));
}

TEST(WlFeatureMapTest, DistinguishesStarFromPath) {
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 0, 0, 0});
  Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}}, {0, 0, 0, 0});
  WlRefinement refinery(WlConfig{2});
  SparseFeatureMap fp = WlFeatureMap(path, refinery);
  SparseFeatureMap fs = WlFeatureMap(star, refinery);
  // Same h=0 counts but different refined colors: maps differ.
  double cos = fp.Dot(fs) / (fp.L2Norm() * fs.L2Norm());
  EXPECT_LT(cos, 1.0 - 1e-9);
}

TEST(WlFeatureMapTest, KernelValueMatchesHandComputation) {
  // Two single-edge graphs, labels {0,0} vs {0,1}; h = 0.
  Graph a = Graph::FromEdges(2, {{0, 1}}, {0, 0});
  Graph b = Graph::FromEdges(2, {{0, 1}}, {0, 1});
  WlRefinement refinery(WlConfig{0});
  SparseFeatureMap fa = WlFeatureMap(a, refinery);
  SparseFeatureMap fb = WlFeatureMap(b, refinery);
  // fa = {label0: 2}, fb = {label0: 1, label1: 1} -> dot = 2.
  EXPECT_DOUBLE_EQ(fa.Dot(fb), 2.0);
}

TEST(VertexWlForGraphsTest, ConsistentAcrossDataset) {
  Graph a = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 0, 0});
  Graph b = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 0, 0});
  auto all = VertexWlFeatureMapsForGraphs({a, b}, WlConfig{2});
  ASSERT_EQ(all.size(), 2u);
  for (int v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(all[0][v].Dot(all[0][v]), all[1][v].Dot(all[1][v]));
    EXPECT_DOUBLE_EQ(all[0][v].Dot(all[1][v]), all[0][v].Dot(all[0][v]));
  }
}

TEST(PackWlFeatureTest, IterationsDoNotCollide) {
  EXPECT_NE(PackWlFeature(0, 5), PackWlFeature(1, 5));
  EXPECT_NE(PackWlFeature(2, 0), PackWlFeature(3, 0));
}

}  // namespace
}  // namespace deepmap::kernels
