// Robustness tests: degenerate and edge-case inputs must flow through the
// entire pipeline without crashing and with sensible outputs — single-vertex
// graphs, edgeless graphs, single-class training, mismatched sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dgcnn.h"
#include "baselines/gin.h"
#include "baselines/kernel_svm.h"
#include "common/rng.h"
#include "core/deepmap.h"
#include "graph/graph.h"
#include "kernels/kernel_matrix.h"

namespace deepmap {
namespace {

using graph::Graph;
using graph::GraphDataset;

core::DeepMapConfig TinyConfig() {
  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.features.wl.iterations = 1;
  config.receptive_field_size = 3;
  config.conv1_channels = 4;
  config.conv2_channels = 4;
  config.conv3_channels = 4;
  config.dense_units = 8;
  config.train.epochs = 3;
  return config;
}

TEST(RobustnessTest, SingleVertexGraphs) {
  GraphDataset ds("single", {Graph(1, 0), Graph(1, 1), Graph(1, 0),
                             Graph(1, 1)},
                  {0, 1, 0, 1});
  core::DeepMapPipeline pipeline(ds, TinyConfig());
  EXPECT_EQ(pipeline.sequence_length(), 1);
  auto result = pipeline.RunFold({0, 1}, {2, 3}, 7);
  EXPECT_GE(result.test_accuracy, 0.0);
  EXPECT_LE(result.test_accuracy, 1.0);
}

TEST(RobustnessTest, EdgelessGraphs) {
  GraphDataset ds("edgeless", {Graph(3, 0), Graph(5, 1), Graph(3, 0),
                               Graph(5, 1)},
                  {0, 1, 0, 1});
  core::DeepMapPipeline pipeline(ds, TinyConfig());
  auto result = pipeline.RunFold({0, 1}, {2, 3}, 7);
  // Sizes + labels fully determine the class: learnable even without edges.
  EXPECT_GE(result.test_accuracy, 0.5);
}

TEST(RobustnessTest, MixedSizesWithLargePadding) {
  std::vector<Graph> graphs{Graph(1, 0), Graph(30, 1)};
  Graph big(30, 1);
  for (int i = 0; i + 1 < 30; ++i) big.AddEdge(i, i + 1);
  graphs[1] = big;
  GraphDataset ds("mixed", std::move(graphs), {0, 1});
  core::DeepMapPipeline pipeline(ds, TinyConfig());
  EXPECT_EQ(pipeline.sequence_length(), 30);
  // The 1-vertex graph's input must be 29/30 dummy slots and still forward.
  core::DeepMapModel model(pipeline.feature_dim(), 30, 2, TinyConfig());
  nn::Tensor logits = model.Forward(pipeline.inputs()[0], false);
  EXPECT_EQ(logits.NumElements(), 2);
}

TEST(RobustnessTest, GramMatrixWithEmptyFeatureMaps) {
  // Edgeless graphs have empty SP feature maps; the Gram matrix and SVM
  // must handle all-zero rows.
  GraphDataset ds("nofeat", {Graph(2, 0), Graph(3, 0), Graph(2, 1),
                             Graph(3, 1)},
                  {0, 0, 1, 1});
  kernels::VertexFeatureConfig config;
  config.kind = kernels::FeatureMapKind::kShortestPath;
  auto maps = kernels::ComputeGraphFeatureMaps(ds, config);
  auto gram = kernels::GramMatrix(maps, true);
  for (const auto& row : gram) {
    for (double value : row) EXPECT_FALSE(std::isnan(value));
  }
  baselines::KernelSvm svm;
  svm.Train(gram, ds.labels(), {0, 1, 2, 3}, baselines::SvmConfig{});
  EXPECT_GE(svm.Evaluate(gram, ds.labels(), {0, 1, 2, 3}), 0.0);
}

TEST(RobustnessTest, GnnOnSingleVertexGraph) {
  GraphDataset ds("one", {Graph(1, 0), Graph(1, 1)}, {0, 1});
  baselines::VertexFeatureProvider provider = baselines::OneHotProvider(ds);
  auto gin_samples = baselines::BuildGinSamples(ds, provider);
  baselines::GinConfig gin_config;
  gin_config.num_layers = 1;
  gin_config.hidden_units = 4;
  baselines::GinModel gin(provider.dim, 2, gin_config);
  EXPECT_EQ(gin.Forward(gin_samples[0], false).NumElements(), 2);

  auto dgcnn_samples = baselines::BuildDgcnnSamples(ds, provider);
  baselines::DgcnnConfig dgcnn_config;
  dgcnn_config.conv_channels = {4, 1};
  dgcnn_config.sortpool_k = 3;  // larger than the graph: exercise padding
  dgcnn_config.conv1d_channels = 4;
  dgcnn_config.dense_units = 8;
  baselines::DgcnnModel dgcnn(provider.dim, 2, dgcnn_config);
  EXPECT_EQ(dgcnn.Forward(dgcnn_samples[0], false).NumElements(), 2);
}

TEST(RobustnessTest, ReceptiveFieldLargerThanGraph) {
  Graph g(2, 0);
  g.AddEdge(0, 1);
  GraphDataset ds("tiny", {g, g}, {0, 1});
  core::DeepMapConfig config = TinyConfig();
  config.receptive_field_size = 10;  // much larger than any graph
  core::DeepMapPipeline pipeline(ds, config);
  core::DeepMapModel model(pipeline.feature_dim(), 2, 2, config);
  nn::Tensor logits = model.Forward(pipeline.inputs()[0], false);
  EXPECT_FALSE(std::isnan(logits.at(0)));
}

TEST(RobustnessTest, TrainingWithDegenerateClassBalance) {
  // 7:1 imbalance — training must still run and predict valid classes.
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    Graph g(3, i % 3);
    g.AddEdge(0, 1);
    graphs.push_back(g);
    labels.push_back(i == 0 ? 1 : 0);
  }
  GraphDataset ds("imbal", std::move(graphs), std::move(labels));
  core::DeepMapPipeline pipeline(ds, TinyConfig());
  auto result = pipeline.RunFold({0, 1, 2, 3, 4, 5}, {6, 7}, 3);
  EXPECT_GE(result.test_accuracy, 0.0);
}

}  // namespace
}  // namespace deepmap
