#include "eval/cross_validation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "eval/metrics.h"

namespace deepmap::eval {
namespace {

std::vector<int> AlternatingLabels(int n, int classes) {
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = i % classes;
  return labels;
}

TEST(StratifiedKFoldTest, PartitionsAllSamples) {
  auto labels = AlternatingLabels(50, 2);
  auto splits = StratifiedKFold(labels, 5, 1);
  ASSERT_EQ(splits.size(), 5u);
  std::set<int> all_test;
  for (const auto& split : splits) {
    for (int i : split.test_indices) {
      EXPECT_TRUE(all_test.insert(i).second) << "duplicate test index";
    }
    EXPECT_EQ(split.train_indices.size() + split.test_indices.size(), 50u);
  }
  EXPECT_EQ(all_test.size(), 50u);
}

TEST(StratifiedKFoldTest, TrainAndTestDisjoint) {
  auto labels = AlternatingLabels(30, 3);
  auto splits = StratifiedKFold(labels, 3, 2);
  for (const auto& split : splits) {
    std::set<int> train(split.train_indices.begin(),
                        split.train_indices.end());
    for (int i : split.test_indices) EXPECT_EQ(train.count(i), 0u);
  }
}

TEST(StratifiedKFoldTest, PreservesClassBalance) {
  auto labels = AlternatingLabels(100, 2);
  auto splits = StratifiedKFold(labels, 10, 3);
  for (const auto& split : splits) {
    int c0 = 0, c1 = 0;
    for (int i : split.test_indices) (labels[i] == 0 ? c0 : c1)++;
    EXPECT_EQ(c0, 5);
    EXPECT_EQ(c1, 5);
  }
}

TEST(StratifiedKFoldTest, DeterministicBySeed) {
  auto labels = AlternatingLabels(40, 2);
  auto a = StratifiedKFold(labels, 4, 7);
  auto b = StratifiedKFold(labels, 4, 7);
  for (size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test_indices, b[f].test_indices);
  }
  auto c = StratifiedKFold(labels, 4, 8);
  bool any_different = false;
  for (size_t f = 0; f < a.size(); ++f) {
    if (a[f].test_indices != c[f].test_indices) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(CrossValidateTest, AggregatesMeanAndStd) {
  auto labels = AlternatingLabels(20, 2);
  int calls = 0;
  auto result = CrossValidate(labels, 4, 5,
                              [&](const FoldSplit&, int fold) {
                                ++calls;
                                return fold < 2 ? 1.0 : 0.5;
                              });
  EXPECT_EQ(calls, 4);
  EXPECT_NEAR(result.mean_accuracy, 75.0, 1e-9);
  EXPECT_NEAR(result.stddev, 25.0, 1e-9);
}


TEST(CrossValidateParallelTest, MatchesSequentialResult) {
  auto labels = AlternatingLabels(24, 2);
  auto run_fold = [](const FoldSplit& split, int fold) {
    // Pure function of the split: deterministic in any execution order.
    return static_cast<double>(split.train_indices.size() % 7 + fold) / 10.0;
  };
  CvResult sequential = CrossValidate(labels, 4, 11, run_fold);
  CvResult parallel = CrossValidateParallel(labels, 4, 11, run_fold, 3);
  EXPECT_EQ(sequential.fold_accuracies, parallel.fold_accuracies);
  EXPECT_DOUBLE_EQ(sequential.mean_accuracy, parallel.mean_accuracy);
  EXPECT_DOUBLE_EQ(sequential.stddev, parallel.stddev);
}

TEST(CrossValidateParallelTest, AllFoldsExecuted) {
  auto labels = AlternatingLabels(20, 2);
  std::atomic<int> calls{0};
  auto result = CrossValidateParallel(
      labels, 5, 3,
      [&](const FoldSplit&, int) {
        calls++;
        return 1.0;
      },
      2);
  EXPECT_EQ(calls.load(), 5);
  EXPECT_DOUBLE_EQ(result.mean_accuracy, 100.0);
}

TEST(MetricsTest, AccuracyBasic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, ConfusionMatrixEntries) {
  auto cm = ConfusionMatrix({0, 1, 1, 0}, {0, 1, 0, 0}, 2);
  EXPECT_EQ(cm[0][0], 2);  // truth 0 predicted 0
  EXPECT_EQ(cm[0][1], 1);  // truth 0 predicted 1
  EXPECT_EQ(cm[1][1], 1);
  EXPECT_EQ(cm[1][0], 0);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({1, 1, 1}, {0, 0, 0}, 2), 0.0);
}

TEST(MetricsTest, MacroF1SkipsAbsentClasses) {
  // Class 2 never appears: macro average over classes 0 and 1 only.
  double f1 = MacroF1({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(f1, 1.0);
}

}  // namespace
}  // namespace deepmap::eval
