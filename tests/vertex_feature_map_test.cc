#include "kernels/vertex_feature_map.h"

#include <gtest/gtest.h>

#include "graph/dataset.h"
#include "graph/graph.h"
#include "kernels/kernel_matrix.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;
using graph::GraphDataset;

GraphDataset ToyDataset() {
  Graph triangle = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 1, 0});
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {1, 0, 1, 0});
  Graph star = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}},
                                {0, 1, 1, 1, 1});
  return GraphDataset("toy", {triangle, path, star}, {0, 1, 1});
}

class VertexFeatureMapKindTest
    : public ::testing::TestWithParam<FeatureMapKind> {};

TEST_P(VertexFeatureMapKindTest, ShapesMatchDataset) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = GetParam();
  config.graphlet.k = 3;
  config.graphlet.samples_per_vertex = 5;
  DatasetVertexFeatures features = ComputeDatasetVertexFeatures(ds, config);
  ASSERT_EQ(features.all().size(), 3u);
  for (int g = 0; g < ds.size(); ++g) {
    EXPECT_EQ(features.all()[g].size(),
              static_cast<size_t>(ds.graph(g).NumVertices()));
  }
  EXPECT_GT(features.dim(), 0);
}

TEST_P(VertexFeatureMapKindTest, DenseRowHasDimWidth) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = GetParam();
  config.graphlet.k = 3;
  DatasetVertexFeatures features = ComputeDatasetVertexFeatures(ds, config);
  auto row = features.DenseRow(1, 2);
  EXPECT_EQ(row.size(), static_cast<size_t>(features.dim()));
}

TEST_P(VertexFeatureMapKindTest, GramMatrixIsPsd) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = GetParam();
  config.graphlet.k = 3;
  auto maps = ComputeGraphFeatureMaps(ds, config);
  Matrix k = GramMatrix(maps, /*normalize=*/true);
  EXPECT_TRUE(IsPositiveSemidefinite(k));
  for (size_t i = 0; i < k.size(); ++i) EXPECT_NEAR(k[i][i], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, VertexFeatureMapKindTest,
                         ::testing::Values(FeatureMapKind::kGraphlet,
                                           FeatureMapKind::kShortestPath,
                                           FeatureMapKind::kWlSubtree),
                         [](const auto& info) {
                           return FeatureMapKindName(info.param);
                         });

TEST(DatasetVertexFeaturesTest, HashingCapsDimension) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = FeatureMapKind::kShortestPath;
  config.max_dense_dim = 2;
  DatasetVertexFeatures features = ComputeDatasetVertexFeatures(ds, config);
  EXPECT_TRUE(features.uses_hashing());
  EXPECT_EQ(features.dim(), 2);
  EXPECT_EQ(features.DenseRow(0, 0).size(), 2u);
}

TEST(DatasetVertexFeaturesTest, GraphMapEqualsVertexSum) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = FeatureMapKind::kWlSubtree;
  DatasetVertexFeatures features = ComputeDatasetVertexFeatures(ds, config);
  SparseFeatureMap sum;
  for (int v = 0; v < ds.graph(0).NumVertices(); ++v) {
    sum += features.Get(0, v);
  }
  SparseFeatureMap graph_map = features.GraphFeatureMap(0);
  EXPECT_DOUBLE_EQ(sum.Dot(sum), graph_map.Dot(graph_map));
}

TEST(DatasetVertexFeaturesTest, GraphletSeedReproducible) {
  GraphDataset ds = ToyDataset();
  VertexFeatureConfig config;
  config.kind = FeatureMapKind::kGraphlet;
  config.graphlet.k = 4;
  config.graphlet.samples_per_vertex = 7;
  config.seed = 123;
  auto a = ComputeGraphFeatureMaps(ds, config);
  auto b = ComputeGraphFeatureMaps(ds, config);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].Dot(a[i]), b[i].Dot(b[i]));
    EXPECT_DOUBLE_EQ(a[i].Dot(b[i]), a[i].Dot(a[i]));
  }
}

TEST(FeatureMapKindNameTest, Names) {
  EXPECT_EQ(FeatureMapKindName(FeatureMapKind::kGraphlet), "GK");
  EXPECT_EQ(FeatureMapKindName(FeatureMapKind::kShortestPath), "SP");
  EXPECT_EQ(FeatureMapKindName(FeatureMapKind::kWlSubtree), "WL");
}

}  // namespace
}  // namespace deepmap::kernels
