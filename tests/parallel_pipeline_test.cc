// Determinism suite for the parallel preprocessing pipeline (ctest label:
// perf_equiv): BuildDeepMapInputs, ComputeDatasetVertexFeatures, and
// GramMatrix must produce byte-identical results for every thread count,
// and the flat merge-join Gram sweep must equal the historical std::map
// probe implementation exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/deepmap.h"
#include "datasets/synthetic.h"
#include "kernels/kernel_matrix.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap {
namespace {

// Pins DEEPMAP_NUM_THREADS for a scope and restores the prior state.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(const char* value) {
    const char* prev = std::getenv("DEEPMAP_NUM_THREADS");
    if (prev != nullptr) {
      had_prev_ = true;
      prev_ = prev;
    }
    if (value != nullptr) {
      setenv("DEEPMAP_NUM_THREADS", value, 1);
    } else {
      unsetenv("DEEPMAP_NUM_THREADS");
    }
  }
  ~ScopedNumThreads() {
    if (had_prev_) {
      setenv("DEEPMAP_NUM_THREADS", prev_.c_str(), 1);
    } else {
      unsetenv("DEEPMAP_NUM_THREADS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(DefaultNumThreadsTest, EnvOverrideParsing) {
  {
    ScopedNumThreads pin("3");
    EXPECT_EQ(DefaultNumThreads(), 3u);
  }
  {
    ScopedNumThreads pin("1");
    EXPECT_EQ(DefaultNumThreads(), 1u);
  }
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const char* bad : {"0", "-4", "abc", "", "2x"}) {
    ScopedNumThreads pin(bad);
    EXPECT_EQ(DefaultNumThreads(), hw) << "value: \"" << bad << "\"";
  }
  {
    ScopedNumThreads pin(nullptr);
    EXPECT_EQ(DefaultNumThreads(), hw);
  }
}

TEST(DefaultNumThreadsTest, ParallelForHonorsOverride) {
  ScopedNumThreads pin("8");
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), [&](size_t i) { hits[i] = static_cast<int>(i); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], static_cast<int>(i));
  }
}

bool TensorsBitIdentical(const std::vector<nn::Tensor>& a,
                         const std::vector<nn::Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shape() != b[i].shape()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    sizeof(float) * static_cast<size_t>(a[i].NumElements())) !=
        0) {
      return false;
    }
  }
  return true;
}

core::DeepMapConfig SmallConfig(kernels::FeatureMapKind kind) {
  core::DeepMapConfig config;
  config.features.kind = kind;
  config.features.seed = 17;
  config.receptive_field_size = 4;
  config.seed = 17;
  return config;
}

// BuildDeepMapInputs must be byte-identical whether it runs serially or on 8
// threads: per-graph RNG streams are derived from (seed, graph index), never
// shared.
TEST(ParallelPipelineTest, BuildDeepMapInputsSerialEqualsEightThreads) {
  graph::GraphDataset dataset = datasets::MakeSynthie(24, 99);
  for (auto alignment : {core::AlignmentMeasure::kEigenvector,
                         core::AlignmentMeasure::kRandom}) {
    core::DeepMapConfig config = SmallConfig(kernels::FeatureMapKind::kWlSubtree);
    config.alignment = alignment;
    kernels::DatasetVertexFeatures features =
        kernels::ComputeDatasetVertexFeatures(dataset, config.features);

    std::vector<nn::Tensor> serial, parallel;
    {
      ScopedNumThreads pin("1");
      serial = core::BuildDeepMapInputs(dataset, features, config);
    }
    {
      ScopedNumThreads pin("8");
      parallel = core::BuildDeepMapInputs(dataset, features, config);
    }
    EXPECT_TRUE(TensorsBitIdentical(serial, parallel))
        << "alignment=" << static_cast<int>(alignment);
  }
}

// Per-graph feature extraction (including graphlet sampling, which draws
// from per-graph RNG streams) must not depend on the thread count.
TEST(ParallelPipelineTest, VertexFeaturesSerialEqualEightThreads) {
  graph::GraphDataset dataset = datasets::MakeSynthie(16, 7);
  for (auto kind :
       {kernels::FeatureMapKind::kGraphlet, kernels::FeatureMapKind::kShortestPath,
        kernels::FeatureMapKind::kWlSubtree, kernels::FeatureMapKind::kTreePp}) {
    kernels::VertexFeatureConfig config;
    config.kind = kind;
    config.seed = 5;

    auto compute = [&](const char* threads) {
      ScopedNumThreads pin(threads);
      return kernels::ComputeDatasetVertexFeatures(dataset, config);
    };
    kernels::DatasetVertexFeatures serial = compute("1");
    kernels::DatasetVertexFeatures parallel = compute("8");

    ASSERT_EQ(serial.all().size(), parallel.all().size());
    for (size_t g = 0; g < serial.all().size(); ++g) {
      ASSERT_EQ(serial.all()[g].size(), parallel.all()[g].size());
      for (size_t v = 0; v < serial.all()[g].size(); ++v) {
        EXPECT_EQ(serial.all()[g][v].entries(), parallel.all()[g][v].entries())
            << kernels::FeatureMapKindName(kind) << " graph " << g
            << " vertex " << v;
      }
    }
  }
}

// Historical GramMatrix inner loop: std::map-probe Dot over the upper
// triangle, sequential. The parallel merge-join version must reproduce it
// bit-for-bit.
kernels::Matrix LegacyGramMatrix(const std::vector<kernels::SparseFeatureMap>& maps,
                                 bool normalize) {
  const size_t n = maps.size();
  kernels::Matrix k(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double value = maps[i].Dot(maps[j]);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  if (normalize) kernels::NormalizeKernelMatrix(k);
  return k;
}

::testing::AssertionResult MatricesBitIdentical(const kernels::Matrix& a,
                                                const kernels::Matrix& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "row counts differ";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return ::testing::AssertionFailure() << "row " << i << " sizes differ";
    }
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (std::memcmp(&a[i][j], &b[i][j], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "(" << i << "," << j << "): " << a[i][j] << " vs "
               << b[i][j];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ParallelPipelineTest, GramMatrixMatchesLegacyAndIsThreadCountInvariant) {
  graph::GraphDataset dataset = datasets::MakeSynthie(20, 31);
  kernels::VertexFeatureConfig config;
  config.kind = kernels::FeatureMapKind::kWlSubtree;
  std::vector<kernels::SparseFeatureMap> maps =
      kernels::ComputeGraphFeatureMaps(dataset, config);

  for (bool normalize : {false, true}) {
    kernels::Matrix legacy = LegacyGramMatrix(maps, normalize);
    kernels::Matrix serial, parallel;
    {
      ScopedNumThreads pin("1");
      serial = kernels::GramMatrix(maps, normalize);
    }
    {
      ScopedNumThreads pin("8");
      parallel = kernels::GramMatrix(maps, normalize);
    }
    EXPECT_TRUE(MatricesBitIdentical(serial, legacy))
        << "normalize=" << normalize;
    EXPECT_TRUE(MatricesBitIdentical(serial, parallel))
        << "normalize=" << normalize;
  }
}

TEST(ParallelPipelineTest, RbfKernelMatrixThreadCountInvariant) {
  Rng rng(3);
  std::vector<std::vector<double>> rows(15, std::vector<double>(6));
  for (auto& row : rows) {
    for (double& x : row) x = rng.Normal();
  }
  kernels::Matrix serial, parallel;
  {
    ScopedNumThreads pin("1");
    serial = kernels::RbfKernelMatrix(rows, 0.3);
  }
  {
    ScopedNumThreads pin("8");
    parallel = kernels::RbfKernelMatrix(rows, 0.3);
  }
  EXPECT_TRUE(MatricesBitIdentical(serial, parallel));
}

}  // namespace
}  // namespace deepmap
