// DynamicGraph: the incremental WL repair must be bit-identical to a full
// recomputation after every delta (fuzzed), deltas must be strict and
// ApplyAll atomic, and warm-started centrality must agree with a cold run.
#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/centrality.h"
#include "graph/graph.h"
#include "graph/isomorphism.h"

namespace deepmap::graph {
namespace {

Graph RandomGraph(Rng& rng, int n, double edge_probability) {
  Graph g;
  for (int v = 0; v < n; ++v) {
    g.AddVertex(static_cast<Label>(rng.Index(4)));
  }
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(edge_probability)) g.AddEdge(u, v);
    }
  }
  return g;
}

/// Asserts every maintained level and the fingerprint equal a from-scratch
/// recomputation on the current graph.
void ExpectMatchesFullRecompute(DynamicGraph& dyn) {
  const auto full = WlHashColors(dyn.graph(), dyn.wl_iterations());
  for (int h = 0; h <= dyn.wl_iterations(); ++h) {
    ASSERT_EQ(dyn.Hashes(h), full[static_cast<size_t>(h)])
        << "level " << h << " diverged from full recompute";
  }
  EXPECT_EQ(dyn.Fingerprint(),
            WlHashFingerprint(dyn.graph(), dyn.wl_iterations()));
}

class DynamicWlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DynamicWlFuzzTest, IncrementalRepairMatchesFullRecompute) {
  Rng rng(GetParam());
  const int n = 8 + static_cast<int>(rng.Index(25));
  DynamicGraphOptions options;
  options.wl_iterations = 1 + static_cast<int>(rng.Index(4));  // 1..4
  DynamicGraph dyn(RandomGraph(rng, n, 0.15), options);
  ExpectMatchesFullRecompute(dyn);

  for (int step = 0; step < 60; ++step) {
    const Vertex u = static_cast<Vertex>(rng.Index(n));
    const Vertex v = static_cast<Vertex>(rng.Index(n));
    if (u == v) continue;
    // Toggle: insert when absent, remove when present — both directions of
    // the repair (post-insert BFS vs pre-delete BFS) get exercised.
    const EdgeUpdate update = dyn.graph().HasEdge(u, v)
                                  ? EdgeUpdate::Remove(u, v)
                                  : EdgeUpdate::Insert(u, v);
    ASSERT_TRUE(dyn.Apply(update).ok());
    ExpectMatchesFullRecompute(dyn);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicWlFuzzTest, ::testing::Range(400, 410));

TEST(DynamicGraphTest, ZeroIterationsMaintainsLabelHashesOnly) {
  Rng rng(1);
  DynamicGraphOptions options;
  options.wl_iterations = 0;
  DynamicGraph dyn(RandomGraph(rng, 10, 0.3), options);
  ExpectMatchesFullRecompute(dyn);
  ASSERT_TRUE(dyn.Apply(EdgeUpdate{0, 1, !dyn.graph().HasEdge(0, 1)}).ok());
  ExpectMatchesFullRecompute(dyn);
}

TEST(DynamicGraphTest, InsertThenRemoveRestoresFingerprint) {
  Rng rng(7);
  DynamicGraph dyn(RandomGraph(rng, 16, 0.2));
  const std::string before = dyn.Fingerprint();
  Vertex u = 0, v = 0;
  for (Vertex a = 0; a < 16 && u == v; ++a) {
    for (Vertex b = a + 1; b < 16; ++b) {
      if (!dyn.graph().HasEdge(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, v);
  ASSERT_TRUE(dyn.Apply(EdgeUpdate::Insert(u, v)).ok());
  EXPECT_NE(dyn.Fingerprint(), before);  // |E| changed, WL digest changed
  ASSERT_TRUE(dyn.Apply(EdgeUpdate::Remove(u, v)).ok());
  EXPECT_EQ(dyn.Fingerprint(), before);
  EXPECT_EQ(dyn.updates_applied(), 2);
}

TEST(DynamicGraphTest, InvalidUpdatesAreRejectedAndLeaveStateUntouched) {
  Graph base = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  DynamicGraph dyn(base);
  const std::string before = dyn.Fingerprint();

  EXPECT_EQ(dyn.Apply(EdgeUpdate::Insert(0, 0)).code(),
            StatusCode::kInvalidArgument);  // self loop
  EXPECT_EQ(dyn.Apply(EdgeUpdate::Insert(0, 1)).code(),
            StatusCode::kInvalidArgument);  // already present
  EXPECT_EQ(dyn.Apply(EdgeUpdate::Remove(0, 3)).code(),
            StatusCode::kInvalidArgument);  // absent
  EXPECT_EQ(dyn.Apply(EdgeUpdate::Insert(0, 4)).code(),
            StatusCode::kInvalidArgument);  // out of range
  EXPECT_EQ(dyn.Apply(EdgeUpdate::Insert(-1, 2)).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(dyn.updates_applied(), 0);
  EXPECT_EQ(dyn.Fingerprint(), before);
  ExpectMatchesFullRecompute(dyn);
}

TEST(DynamicGraphTest, ApplyAllRollsBackOnFailure) {
  Graph base = Graph::FromEdges(5, {{0, 1}, {1, 2}});
  DynamicGraph dyn(base);
  const std::string before = dyn.Fingerprint();

  // Third update is invalid (0-1 still present after the valid prefix), so
  // the first two must be rolled back.
  Status s = dyn.ApplyAll({EdgeUpdate::Insert(2, 3),
                           EdgeUpdate::Remove(1, 2),
                           EdgeUpdate::Insert(0, 1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(dyn.graph().HasEdge(0, 1));
  EXPECT_TRUE(dyn.graph().HasEdge(1, 2));
  EXPECT_FALSE(dyn.graph().HasEdge(2, 3));
  EXPECT_EQ(dyn.Fingerprint(), before);
  // The rolled-back batch counts zero: neither the applied prefix nor the
  // inverses that undid it show up in the committed-update counter.
  EXPECT_EQ(dyn.updates_applied(), 0);
  ExpectMatchesFullRecompute(dyn);

  // The same batch without the poison pill applies cleanly.
  EXPECT_TRUE(
      dyn.ApplyAll({EdgeUpdate::Insert(2, 3), EdgeUpdate::Remove(1, 2)})
          .ok());
  EXPECT_TRUE(dyn.graph().HasEdge(2, 3));
  EXPECT_FALSE(dyn.graph().HasEdge(1, 2));
  EXPECT_EQ(dyn.updates_applied(), 2);
  ExpectMatchesFullRecompute(dyn);
}

// --- warm-started centrality -------------------------------------------------

void ExpectCentralityAgrees(const std::vector<double>& warm,
                            const std::vector<double>& cold) {
  ASSERT_EQ(warm.size(), cold.size());
  for (size_t v = 0; v < warm.size(); ++v) {
    EXPECT_NEAR(warm[v], cold[v], 1e-8) << "vertex " << v;
  }
}

TEST(DynamicGraphTest, WarmStartedCentralityMatchesColdRun) {
  Rng rng(11);
  DynamicGraph dyn(RandomGraph(rng, 20, 0.2));
  (void)dyn.Centrality();  // converge once (cold)

  int warm_total = 0, cold_total = 0;
  for (int step = 0; step < 10; ++step) {
    const Vertex u = static_cast<Vertex>(rng.Index(20));
    const Vertex v = static_cast<Vertex>(rng.Index(20));
    if (u == v) continue;
    const EdgeUpdate update = dyn.graph().HasEdge(u, v)
                                  ? EdgeUpdate::Remove(u, v)
                                  : EdgeUpdate::Insert(u, v);
    ASSERT_TRUE(dyn.Apply(update).ok());

    int cold_iterations = 0;
    CentralityOptions cold;
    cold.iterations_used = &cold_iterations;
    ExpectCentralityAgrees(dyn.Centrality(),
                           EigenvectorCentrality(dyn.graph(), cold));
    warm_total += dyn.last_centrality_iterations();
    cold_total += cold_iterations;
  }
  // The warm restart is the speed lever: starting from the previous fixed
  // point, the deltas in aggregate need no more rounds than cold runs on
  // the same mutated graphs (a single adversarial delta may not win, so
  // the bound is on the sum).
  EXPECT_LE(warm_total, cold_total);
}

TEST(DynamicGraphTest, WarmStartHandlesComponentMergeAndSplit) {
  // Two triangles — distinct components — then a bridge merges them, then
  // removing it splits them again. Exercises the per-component warm-start
  // renormalization on both transitions.
  Graph base = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  DynamicGraph dyn(base);
  ExpectCentralityAgrees(dyn.Centrality(), EigenvectorCentrality(dyn.graph()));

  ASSERT_TRUE(dyn.Apply(EdgeUpdate::Insert(2, 3)).ok());  // merge
  ExpectCentralityAgrees(dyn.Centrality(), EigenvectorCentrality(dyn.graph()));

  ASSERT_TRUE(dyn.Apply(EdgeUpdate::Remove(2, 3)).ok());  // split
  ExpectCentralityAgrees(dyn.Centrality(), EigenvectorCentrality(dyn.graph()));
}

TEST(DynamicGraphTest, CentralityHandlesVertexIsolation) {
  // Removing the last edge of a vertex zeroes its centrality; the stale
  // positive warm-start entry must not resurrect it.
  Graph base = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  DynamicGraph dyn(base);
  (void)dyn.Centrality();
  ASSERT_TRUE(dyn.Apply(EdgeUpdate::Remove(0, 3)).ok());
  const std::vector<double>& warm = dyn.Centrality();
  EXPECT_NEAR(warm[3], 0.0, 1e-12);
  ExpectCentralityAgrees(warm, EigenvectorCentrality(dyn.graph()));
}

// --- WlHashFingerprint semantics --------------------------------------------

TEST(WlHashFingerprintTest, InvariantUnderVertexPermutation) {
  Rng rng(21);
  Graph g = RandomGraph(rng, 12, 0.25);
  std::vector<Vertex> perm(12);
  for (int v = 0; v < 12; ++v) perm[static_cast<size_t>(v)] = v;
  for (int v = 11; v > 0; --v) {
    std::swap(perm[static_cast<size_t>(v)],
              perm[rng.Index(static_cast<size_t>(v) + 1)]);
  }
  const Graph permuted = g.Permuted(perm);
  for (int iterations : {0, 1, 2, 3}) {
    EXPECT_EQ(WlHashFingerprint(g, iterations),
              WlHashFingerprint(permuted, iterations));
  }
}

TEST(WlHashFingerprintTest, SeparatesGraphsWlCanSeparate) {
  const Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NE(WlHashFingerprint(path, 2), WlHashFingerprint(star, 2));
}

TEST(WlHashFingerprintTest, CollidesOnWlEquivalentGraphs) {
  // C6 vs two triangles: the classic 1-WL-equivalent pair. Same vertex
  // count, same edge count, every vertex 2-regular with identical labels —
  // WL (any depth) cannot separate them, so the fingerprints MUST collide.
  // This documents the intended cache semantics, not a weakness.
  const Graph c6 = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const Graph triangles = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  for (int iterations : {1, 2, 4}) {
    EXPECT_EQ(WlHashFingerprint(c6, iterations),
              WlHashFingerprint(triangles, iterations));
  }
}

}  // namespace
}  // namespace deepmap::graph
