// Contract tests: DEEPMAP_CHECK violations abort with a diagnostic (death
// tests), and miscellaneous I/O paths not covered elsewhere.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/table.h"
#include "core/deepmap.h"
#include "eval/cross_validation.h"
#include "graph/graph.h"
#include "nn/tensor.h"

namespace deepmap {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(DEEPMAP_CHECK(1 == 2), "CHECK failed");
  EXPECT_DEATH(DEEPMAP_CHECK_EQ(3, 4), "3 == 4");
  EXPECT_DEATH(DEEPMAP_CHECK_LT(5, 5), "5 < 5");
}

TEST(ContractsDeathTest, GraphBoundsChecked) {
  graph::Graph g(2);
  EXPECT_DEATH(g.GetLabel(5), "CHECK failed");
  EXPECT_DEATH(g.Neighbors(-1), "CHECK failed");
  EXPECT_DEATH(g.AddEdge(0, 7), "CHECK failed");
}

TEST(ContractsDeathTest, TensorShapeChecked) {
  nn::Tensor t({2, 3});
  EXPECT_DEATH(t.at(5, 0), "CHECK failed");
  EXPECT_DEATH(t.at(0), "CHECK failed");  // rank mismatch
  EXPECT_DEATH(t.Reshaped({4}), "CHECK failed");
}

TEST(ContractsDeathTest, DatasetLabelMismatchChecked) {
  std::vector<graph::Graph> graphs{graph::Graph(2)};
  std::vector<int> labels{0, 1};  // one graph, two labels
  EXPECT_DEATH(graph::GraphDataset("bad", graphs, labels), "CHECK failed");
}

TEST(ContractsDeathTest, FoldCountChecked) {
  std::vector<int> labels{0, 1, 0};
  EXPECT_DEATH(eval::StratifiedKFold(labels, 1, 0), "CHECK failed");
  EXPECT_DEATH(eval::StratifiedKFold(labels, 5, 0), "CHECK failed");
}

TEST(TableIoTest, WriteCsvFileRoundTrips) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4,5"});
  auto path = std::filesystem::temp_directory_path() /
              ("deepmap_table_" + std::to_string(::getpid()) + ".csv");
  ASSERT_TRUE(t.WriteCsvFile(path.string()));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"4,5\"");
  std::filesystem::remove(path);
}

TEST(TableIoTest, WriteCsvFileFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsvFile("/nonexistent_dir/x.csv"));
}

TEST(ParallelPipelineTest, CrossValidateParallelDrivesDeepMap) {
  // End-to-end smoke: DeepMapPipeline::RunFold is safe under parallel folds
  // and gives the same result as sequential execution.
  std::vector<graph::Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    graph::Graph g(4, i % 2);
    g.AddEdge(0, 1);
    if (i % 2 == 1) g.AddEdge(2, 3);
    graphs.push_back(g);
    labels.push_back(i % 2);
  }
  graph::GraphDataset ds("par", std::move(graphs), std::move(labels));
  core::DeepMapConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  config.receptive_field_size = 2;
  config.conv1_channels = 4;
  config.conv2_channels = 4;
  config.conv3_channels = 4;
  config.dense_units = 8;
  config.train.epochs = 4;
  core::DeepMapPipeline pipeline(ds, config);
  auto run_fold = [&](const eval::FoldSplit& split, int fold) {
    return pipeline
        .RunFold(split.train_indices, split.test_indices, 10 + fold)
        .test_accuracy;
  };
  auto sequential = eval::CrossValidate(ds.labels(), 3, 5, run_fold);
  auto parallel =
      eval::CrossValidateParallel(ds.labels(), 3, 5, run_fold, 3);
  EXPECT_EQ(sequential.fold_accuracies, parallel.fold_accuracies);
}

}  // namespace
}  // namespace deepmap
