// Tests for the kernel-method baselines: GK/SP/WL + SVM, DGK, RetGK, GNTK.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/dgk.h"
#include "baselines/gntk.h"
#include "baselines/kernel_svm.h"
#include "baselines/retgk.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::baselines {
namespace {

using graph::Graph;
using graph::GraphDataset;

GraphDataset CyclesVsCompletes(int per_class, uint64_t seed = 3) {
  std::vector<Graph> graphs;
  std::vector<int> labels;
  Rng rng(seed);
  for (int i = 0; i < per_class; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    graphs.push_back(cycle);
    labels.push_back(0);
    Graph complete(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("cvk", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  return ds;
}

class KernelBaselineKindTest
    : public ::testing::TestWithParam<kernels::FeatureMapKind> {};

TEST_P(KernelBaselineKindTest, SeparatesEasyClasses) {
  GraphDataset ds = CyclesVsCompletes(12);
  kernels::VertexFeatureConfig feature_config;
  feature_config.kind = GetParam();
  feature_config.graphlet.k = 3;
  feature_config.graphlet.samples_per_vertex = 10;
  feature_config.wl.iterations = 2;
  auto cv = GraphKernelBaseline(ds, feature_config, 4, 11);
  EXPECT_GT(cv.mean_accuracy, 90.0)
      << kernels::FeatureMapKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KernelBaselineKindTest,
                         ::testing::Values(kernels::FeatureMapKind::kGraphlet,
                                           kernels::FeatureMapKind::kShortestPath,
                                           kernels::FeatureMapKind::kWlSubtree),
                         [](const auto& info) {
                           return kernels::FeatureMapKindName(info.param);
                         });

TEST(KernelSvmCvTest, TunesCOverCandidates) {
  GraphDataset ds = CyclesVsCompletes(10);
  kernels::VertexFeatureConfig feature_config;
  feature_config.kind = kernels::FeatureMapKind::kWlSubtree;
  auto maps = kernels::ComputeGraphFeatureMaps(ds, feature_config);
  auto gram = kernels::GramMatrix(maps, true);
  KernelSvmConfig config;
  config.c_candidates = {0.001, 1.0};  // tiny C should lose the inner vote
  auto cv = KernelSvmCrossValidate(gram, ds.labels(), 4, 13, config);
  // WL colors partition complete graphs by size, so folds whose training
  // split lacks one size lose a few test graphs; 80% is still far above the
  // 50% chance level.
  EXPECT_GE(cv.mean_accuracy, 80.0);
}

TEST(DgkTest, PpmiNonNegativeAndZeroDiagonalSafe) {
  std::vector<std::vector<double>> counts{{4, 2, 0}, {2, 1, 0}, {0, 0, 0}};
  auto ppmi = PpmiMatrix(counts);
  for (const auto& row : ppmi) {
    for (double value : row) EXPECT_GE(value, 0.0);
  }
  EXPECT_EQ(ppmi[2][2], 0.0);
}

TEST(DgkTest, EigenEmbeddingReconstructsRankOne) {
  // M = v v^T with v = (3, 4): a 1-dim embedding must reproduce M.
  std::vector<std::vector<double>> m{{9, 12}, {12, 16}};
  auto e = TruncatedEigenEmbedding(m, 1, 50, 5);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_NEAR(e[0][0] * e[0][0], 9.0, 1e-6);
  EXPECT_NEAR(e[0][0] * e[1][0], 12.0, 1e-6);
  EXPECT_NEAR(e[1][0] * e[1][0], 16.0, 1e-6);
}

TEST(DgkTest, KernelMatrixNormalizedAndPsdish) {
  GraphDataset ds = CyclesVsCompletes(8);
  DgkConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  auto k = DgkKernelMatrix(ds, config);
  ASSERT_EQ(k.size(), static_cast<size_t>(ds.size()));
  for (size_t i = 0; i < k.size(); ++i) {
    EXPECT_NEAR(k[i][i], 1.0, 1e-6);
    for (size_t j = 0; j < k.size(); ++j) {
      EXPECT_NEAR(k[i][j], k[j][i], 1e-9);
      EXPECT_LE(k[i][j], 1.0 + 1e-6);
    }
  }
  // K = (Phi E)(Phi E)^T is PSD by construction.
  EXPECT_TRUE(kernels::IsPositiveSemidefinite(k, 1e-6));
}

TEST(DgkTest, ClassifiesSeparableData) {
  GraphDataset ds = CyclesVsCompletes(10);
  DgkConfig config;
  config.features.kind = kernels::FeatureMapKind::kWlSubtree;
  auto k = DgkKernelMatrix(ds, config);
  auto cv = KernelSvmCrossValidate(k, ds.labels(), 4, 21);
  EXPECT_GT(cv.mean_accuracy, 85.0);
}

TEST(RetGkTest, ReturnProbabilitiesAreProbabilities) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  auto rpf = ReturnProbabilityFeatures(g, 6);
  for (const auto& row : rpf) {
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
  // One-step return probability on a simple graph is zero.
  for (const auto& row : rpf) EXPECT_EQ(row[0], 0.0);
}

TEST(RetGkTest, RpfIsIsomorphismInvariant) {
  Rng rng(5);
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                 {5, 0}, {0, 3}});
  std::vector<graph::Vertex> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  auto rg = ReturnProbabilityFeatures(g, 5);
  auto rh = ReturnProbabilityFeatures(h, 5);
  for (int v = 0; v < 6; ++v) {
    for (int t = 0; t < 5; ++t) {
      EXPECT_NEAR(rg[v][t], rh[perm[v]][t], 1e-12);
    }
  }
}

TEST(RetGkTest, KernelSeparatesClasses) {
  GraphDataset ds = CyclesVsCompletes(10);
  auto k = RetGkKernelMatrix(ds);
  auto cv = KernelSvmCrossValidate(k, ds.labels(), 4, 23);
  EXPECT_GT(cv.mean_accuracy, 85.0);
}

TEST(GntkTest, PairKernelSymmetric) {
  Graph a = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  Graph b = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}},
                             {1, 0, 0, 1, 1});
  GntkConfig config;
  EXPECT_NEAR(GntkPairKernel(a, b, config), GntkPairKernel(b, a, config),
              1e-9);
}

TEST(GntkTest, SelfKernelPositive) {
  Graph a = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  EXPECT_GT(GntkPairKernel(a, a, GntkConfig{}), 0.0);
}

TEST(GntkTest, IsomorphismInvariant) {
  Rng rng(17);
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}},
                             {0, 1, 2, 1, 0});
  std::vector<graph::Vertex> perm(5);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  Graph probe = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}}, {0, 1, 1, 2});
  GntkConfig config;
  EXPECT_NEAR(GntkPairKernel(g, probe, config),
              GntkPairKernel(h, probe, config), 1e-9);
}

TEST(GntkTest, MatrixSeparatesClasses) {
  GraphDataset ds = CyclesVsCompletes(8);
  auto k = GntkKernelMatrix(ds);
  for (size_t i = 0; i < k.size(); ++i) EXPECT_NEAR(k[i][i], 1.0, 1e-9);
  auto cv = KernelSvmCrossValidate(k, ds.labels(), 4, 29);
  EXPECT_GT(cv.mean_accuracy, 80.0);
}

}  // namespace
}  // namespace deepmap::baselines
