#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model.h"

namespace deepmap::nn {
namespace {

// Minimizes f(w) = (w - 3)^2 with each optimizer; all must reach the optimum.
class QuadraticProblem {
 public:
  QuadraticProblem() : w_(std::vector<int>{1}), g_(std::vector<int>{1}) {
    w_.at(0) = 10.0f;
  }
  std::vector<Param> params() { return {{&w_, &g_}}; }
  void ComputeGrad() { g_.at(0) = 2.0f * (w_.at(0) - 3.0f); }
  float w() const { return w_.at(0); }

 private:
  Tensor w_, g_;
};

template <typename Opt>
float Optimize(Opt&& opt, int steps) {
  QuadraticProblem problem;
  auto params = problem.params();
  for (int i = 0; i < steps; ++i) {
    problem.ComputeGrad();
    opt.Step(params);
  }
  return problem.w();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_NEAR(Optimize(Sgd(0.1), 100), 3.0f, 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  EXPECT_NEAR(Optimize(Sgd(0.05, 0.9), 300), 3.0f, 1e-2);
}

TEST(RmsPropTest, ConvergesOnQuadratic) {
  EXPECT_NEAR(Optimize(RmsProp(0.05), 500), 3.0f, 1e-2);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_NEAR(Optimize(Adam(0.1), 500), 3.0f, 1e-2);
}

TEST(OptimizerTest, LearningRateMutable) {
  RmsProp opt(0.01);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);
  opt.set_learning_rate(0.005);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.005);
}

TEST(MakeOptimizerTest, ProducesRequestedKind) {
  EXPECT_NE(MakeOptimizer(OptimizerKind::kSgd, 0.1), nullptr);
  EXPECT_NE(MakeOptimizer(OptimizerKind::kRmsProp, 0.1), nullptr);
  EXPECT_NE(MakeOptimizer(OptimizerKind::kAdam, 0.1), nullptr);
}

TEST(TrainClassifierTest, LearnsLinearlySeparableData) {
  // Two Gaussian blobs in 2-D; a 2-layer net must fit them near perfectly.
  Rng rng(42);
  std::vector<Tensor> samples;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    int y = i % 2;
    float cx = y == 0 ? -2.0f : 2.0f;
    samples.push_back(Tensor::FromFlat(
        {cx + static_cast<float>(rng.Normal(0, 0.5)),
         static_cast<float>(rng.Normal(0, 0.5))}));
    labels.push_back(y);
  }
  Sequential net;
  net.Emplace<Dense>(2, 8, rng).Emplace<Relu>().Emplace<Dense>(8, 2, rng);
  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 8;
  config.learning_rate = 0.01;
  TrainHistory history = TrainClassifier(net, samples, labels, config);
  EXPECT_GT(history.final_accuracy(), 0.95);
  EXPECT_LT(history.final_loss(), history.epochs.front().loss);
  EXPECT_GT(EvaluateAccuracy(net, samples, labels), 0.95);
}

TEST(TrainClassifierTest, PlateauDecaysLearningRate) {
  // A constant-input dataset stops improving immediately; the plateau
  // scheduler must halve the learning rate.
  Rng rng(1);
  std::vector<Tensor> samples(10, Tensor::FromFlat({1.0f}));
  std::vector<int> labels(10);
  for (int i = 0; i < 10; ++i) labels[i] = i % 2;  // impossible task
  Sequential net;
  net.Emplace<Dense>(1, 2, rng);
  TrainConfig config;
  config.epochs = 30;
  config.batch_size = 10;
  config.learning_rate = 0.01;
  config.plateau_patience = 5;
  TrainHistory history = TrainClassifier(net, samples, labels, config);
  EXPECT_LT(history.epochs.back().learning_rate, 0.01);
}

TEST(TrainClassifierTest, HistoryTracksEpochs) {
  Rng rng(2);
  std::vector<Tensor> samples{Tensor::FromFlat({1.0f}),
                              Tensor::FromFlat({-1.0f})};
  std::vector<int> labels{0, 1};
  Sequential net;
  net.Emplace<Dense>(1, 2, rng);
  TrainConfig config;
  config.epochs = 7;
  TrainHistory history = TrainClassifier(net, samples, labels, config);
  EXPECT_EQ(history.epochs.size(), 7u);
  EXPECT_GE(history.best_accuracy(), history.epochs.front().accuracy);
  EXPECT_GT(history.mean_epoch_seconds(), 0.0);
}

}  // namespace
}  // namespace deepmap::nn
