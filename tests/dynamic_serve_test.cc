// Dynamic-graph serving: ClassifyDelta must answer with logits bit-identical
// to a fresh Classify of the mutated graph, invalidate exactly the stale
// cache entry (unrelated entries survive), hit the cache on a revert, and
// account every delta in the deepmap_serve_dynamic_* counters. Covers both
// the single InferenceEngine and the ServeCluster front ends.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/deepmap.h"
#include "datasets/registry.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "serve/cluster.h"
#include "serve/dynamic_graphs.h"
#include "serve/engine.h"

namespace deepmap {
namespace {

using graph::EdgeUpdate;
using serve::InferenceEngine;
using serve::Prediction;
using serve::ServeCluster;

// Shared trained bundle (training is the slow part; once per process).
struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();

    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 2;
    b->config.train.batch_size = 8;

    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);

    Status s = b->registry.Adopt("ptc_mm", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("ptc_mm");
    DEEPMAP_CHECK(b->servable != nullptr);
    return b;
  }();
  return *bundle;
}

InferenceEngine::Options SmallEngineOptions(size_t cache_capacity = 64) {
  InferenceEngine::Options o;
  o.num_threads = 2;
  o.cache_capacity = cache_capacity;
  return o;
}

/// A base graph with an edge to play with: vertex labels drawn from the
/// training alphabet so preprocessing succeeds.
graph::Graph BaseGraph() {
  return graph::Graph::FromEdges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, {0, 1, 0, 1, 0});
}

TEST(DynamicServeTest, DeltaLogitsBitIdenticalToFreshClassify) {
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, SmallEngineOptions());
  ASSERT_TRUE(engine.RegisterDynamicGraph("g", BaseGraph()).ok());

  // A fresh engine (cold cache) classifies the mutated graph directly.
  InferenceEngine oracle(b.servable, SmallEngineOptions(0));

  std::vector<EdgeUpdate> deltas = {
      EdgeUpdate::Insert(0, 2), EdgeUpdate::Insert(1, 4),
      EdgeUpdate::Remove(1, 2), EdgeUpdate::Insert(0, 4),
      EdgeUpdate::Remove(0, 2)};
  graph::Graph shadow = BaseGraph();
  for (const EdgeUpdate& u : deltas) {
    auto via_delta = engine.ClassifyDelta("g", {u});
    ASSERT_TRUE(via_delta.ok()) << via_delta.status().ToString();

    if (u.insert) {
      ASSERT_TRUE(shadow.AddEdge(u.u, u.v));
    } else {
      ASSERT_TRUE(shadow.RemoveEdge(u.u, u.v));
    }
    auto fresh = oracle.Classify(shadow);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(via_delta.value().label, fresh.value().label);
    // Bit-identical probabilities: the miss path runs the identical
    // pipeline, and hits replay a prediction that itself came from it.
    EXPECT_EQ(via_delta.value().probabilities, fresh.value().probabilities);
  }
  EXPECT_EQ(engine.metrics().dynamic_updates(), 5);
}

TEST(DynamicServeTest, ExactInvalidationPreservesUnrelatedEntries) {
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, SmallEngineOptions());
  ASSERT_TRUE(engine.RegisterDynamicGraph("g", BaseGraph()).ok());

  // Warm the cache with unrelated graphs.
  const int kUnrelated = 4;
  for (int i = 0; i < kUnrelated; ++i) {
    ASSERT_TRUE(engine.Classify(b.dataset.graph(i)).ok());
  }
  // And with the registered graph's own pre-delta structure.
  ASSERT_TRUE(engine.Classify(BaseGraph()).ok());
  const size_t warmed = engine.cache().size();
  EXPECT_GE(warmed, 1u);

  // The delta must erase exactly the pre-delta entry; the post-delta result
  // is inserted, and every unrelated entry survives (previously the serving
  // layer would Clear() the whole cache on any mutation).
  ASSERT_TRUE(engine.ClassifyDelta("g", {EdgeUpdate::Insert(0, 2)}).ok());
  EXPECT_EQ(engine.cache().size(), warmed);  // -1 stale +1 fresh

  // The unrelated graphs are still hits.
  const int64_t hits_before = engine.cache().hits();
  for (int i = 0; i < kUnrelated; ++i) {
    ASSERT_TRUE(engine.Classify(b.dataset.graph(i)).ok());
  }
  EXPECT_EQ(engine.cache().hits(), hits_before + kUnrelated);

  // The pre-delta structure was invalidated: classifying it again misses.
  const int64_t misses_before = engine.cache().misses();
  ASSERT_TRUE(engine.Classify(BaseGraph()).ok());
  EXPECT_EQ(engine.cache().misses(), misses_before + 1);
}

TEST(DynamicServeTest, DeltaThenRevertIsIncrementalHit) {
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, SmallEngineOptions());
  ASSERT_TRUE(engine.RegisterDynamicGraph("g", BaseGraph()).ok());

  // Warm the current structure, then apply a delta whose net effect is the
  // identity (insert + revert in one atomic batch): the pre- and post-delta
  // fingerprints coincide, so nothing is invalidated and the answer is an
  // incremental cache hit — no forward pass.
  ASSERT_TRUE(engine.Classify(BaseGraph()).ok());
  ASSERT_TRUE(engine
                  .ClassifyDelta("g", {EdgeUpdate::Insert(0, 2),
                                       EdgeUpdate::Remove(0, 2)})
                  .ok());
  EXPECT_EQ(engine.metrics().dynamic_updates(), 2);
  EXPECT_EQ(engine.metrics().dynamic_incremental_hits(), 1);
  EXPECT_EQ(engine.metrics().dynamic_full_recomputes(), 0);

  // A structure-changing delta misses (computes and warms the new entry);
  // an empty delta is then a pure cache probe of the current structure and
  // hits the entry the miss path just warmed.
  ASSERT_TRUE(engine.ClassifyDelta("g", {EdgeUpdate::Insert(0, 2)}).ok());
  EXPECT_EQ(engine.metrics().dynamic_full_recomputes(), 1);
  ASSERT_TRUE(engine.ClassifyDelta("g", {}).ok());
  EXPECT_EQ(engine.metrics().dynamic_incremental_hits(), 2);
}

TEST(DynamicServeTest, ErrorsLeaveRegisteredGraphUntouched) {
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, SmallEngineOptions());
  ASSERT_TRUE(engine.RegisterDynamicGraph("g", BaseGraph()).ok());
  EXPECT_EQ(engine.RegisterDynamicGraph("g", BaseGraph()).code(),
            StatusCode::kFailedPrecondition);  // duplicate id

  auto missing = engine.ClassifyDelta("nope", {EdgeUpdate::Insert(0, 2)});
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Invalid delta (second update re-inserts an existing edge): atomic
  // rejection, graph unchanged, nothing counted as an update.
  auto bad = engine.ClassifyDelta(
      "g", {EdgeUpdate::Insert(0, 2), EdgeUpdate::Insert(0, 1)});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.metrics().dynamic_updates(), 0);
  auto snapshot = engine.dynamic_graphs().Snapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot.value().HasEdge(0, 2));

  ASSERT_TRUE(engine.UnregisterDynamicGraph("g").ok());
  EXPECT_EQ(engine.UnregisterDynamicGraph("g").code(), StatusCode::kNotFound);
}

TEST(DynamicServeTest, StoreDeltasRaceUnregisterSafely) {
  // Regression: Find() used to hand back a raw pointer after dropping the
  // store mutex, so an Unregister landing before the delta locked the entry
  // destroyed the entry under it. Entries are shared_ptr-owned now; this
  // hammers the window (register/unregister churn against concurrent
  // deltas/snapshots) and must be clean under TSan.
  serve::DynamicGraphStore store(2);
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&store, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        // NotFound (unregistered) and InvalidArgument (edge present) are
        // both fine; the point is the entry must stay alive while in use.
        (void)store.ApplyDelta("g", {EdgeUpdate::Insert(0, 2)});
        (void)store.Snapshot("g");
        (void)store.CacheKey("g");
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(store.Register("g", BaseGraph()).ok());
    ASSERT_TRUE(store.Unregister("g").ok());
  }
  done.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(store.size(), 0u);
}

TEST(DynamicServeTest, ClusterClassifyDeltaMatchesEngine) {
  TrainedBundle& b = Bundle();
  ServeCluster::Options options;
  options.num_replicas = 2;
  options.cache_capacity = 64;
  options.replica.num_threads = 1;
  ServeCluster cluster(b.servable, options);
  ASSERT_TRUE(cluster.RegisterDynamicGraph("g", BaseGraph()).ok());

  InferenceEngine oracle(Bundle().servable, SmallEngineOptions(0));
  graph::Graph shadow = BaseGraph();
  ASSERT_TRUE(shadow.AddEdge(0, 3));

  auto via_delta = cluster.ClassifyDelta("g", {EdgeUpdate::Insert(0, 3)});
  ASSERT_TRUE(via_delta.ok()) << via_delta.status().ToString();
  auto fresh = oracle.Classify(shadow);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(via_delta.value().label, fresh.value().label);
  EXPECT_EQ(via_delta.value().probabilities, fresh.value().probabilities);
  EXPECT_EQ(cluster.metrics().dynamic_updates(), 1);
  EXPECT_EQ(cluster.metrics().dynamic_full_recomputes(), 1);

  // An empty delta probes the current structure: the cluster cache serves
  // the entry the miss path above just warmed.
  ASSERT_TRUE(cluster.ClassifyDelta("g", {}).ok());
  EXPECT_EQ(cluster.metrics().dynamic_incremental_hits(), 1);
}

TEST(DynamicServeTest, DynamicCountersAppearInPrometheusScrape) {
  TrainedBundle& b = Bundle();
  obs::MetricsRegistry registry;
  InferenceEngine::Options options = SmallEngineOptions();
  options.metrics_registry = &registry;
  InferenceEngine engine(b.servable, options);
  ASSERT_TRUE(engine.RegisterDynamicGraph("g", BaseGraph()).ok());
  ASSERT_TRUE(engine.ClassifyDelta("g", {EdgeUpdate::Insert(0, 2)}).ok());

  std::ostringstream scrape;
  registry.WritePrometheusText(scrape);
  const std::string text = scrape.str();
  EXPECT_NE(text.find("deepmap_serve_dynamic_updates_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("deepmap_serve_dynamic_full_recomputes_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_serve_dynamic_incremental_hits_total 0"),
            std::string::npos);
}

}  // namespace
}  // namespace deepmap
