// Tests for src/obs/: metric naming lint, sharded counter/gauge/histogram
// correctness under concurrency, Prometheus text exposition, quantile
// estimation (including the nearest-rank epsilon guard), tracer span
// nesting, Chrome trace JSON output, and scrape-while-writing safety.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace deepmap::obs {
namespace {

// ---------------------------------------------------------------------------
// Metric name validation

TEST(MetricNameTest, AcceptsConvention) {
  EXPECT_TRUE(ValidateMetricName("deepmap_serve_requests_total", "counter").ok());
  EXPECT_TRUE(ValidateMetricName("deepmap_pool_task_seconds", "histogram").ok());
  EXPECT_TRUE(ValidateMetricName("deepmap_serve_queue_depth", "gauge").ok());
  EXPECT_TRUE(
      ValidateMetricName("deepmap_nn_gemm_macs_total", "counter").ok());
}

TEST(MetricNameTest, RejectsViolations) {
  // Missing the deepmap_ prefix.
  EXPECT_FALSE(ValidateMetricName("serve_requests_total", "counter").ok());
  // Too few tokens: prefix + suffix with no subsystem/name.
  EXPECT_FALSE(ValidateMetricName("deepmap_total", "counter").ok());
  // Counters must end in _total, histograms in _seconds.
  EXPECT_FALSE(ValidateMetricName("deepmap_serve_requests", "counter").ok());
  EXPECT_FALSE(
      ValidateMetricName("deepmap_pool_task_micros", "histogram").ok());
  // Gauges must not claim either suffix.
  EXPECT_FALSE(ValidateMetricName("deepmap_serve_depth_total", "gauge").ok());
  EXPECT_FALSE(ValidateMetricName("deepmap_serve_depth_seconds", "gauge").ok());
  // Token character set: lowercase [a-z0-9] only, single underscores.
  EXPECT_FALSE(ValidateMetricName("deepmap_Serve_requests_total", "counter").ok());
  EXPECT_FALSE(ValidateMetricName("deepmap_serve__requests_total", "counter").ok());
  EXPECT_FALSE(ValidateMetricName("deepmap_serve-requests_total", "counter").ok());
  EXPECT_FALSE(ValidateMetricName("deepmap_serve_requests_total_", "counter").ok());
  EXPECT_FALSE(ValidateMetricName("", "counter").ok());
  // Unknown kind.
  EXPECT_FALSE(ValidateMetricName("deepmap_serve_requests_total", "timer").ok());
}

TEST(MetricNameDeathTest, RegistrationRejectsInvalidNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter("deepmap_serve_requests", ""),
               "CHECK failed");
  EXPECT_DEATH(registry.GetHistogram("deepmap_pool_task_total", {}, ""),
               "CHECK failed");
}

TEST(MetricNameDeathTest, KindClashIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.GetGauge("deepmap_serve_queue_depth");
  // Same name, different kind: gauges have no suffix requirement, so the
  // name passes validation and must be stopped by the kind map.
  EXPECT_DEATH(registry.GetHistogram("deepmap_serve_queue_depth",
                                     {1.0, 2.0}, ""),
               "CHECK failed");
}

// ---------------------------------------------------------------------------
// Counters / gauges

TEST(CounterTest, GetOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("deepmap_test_events_total", "help");
  Counter& b = registry.GetCounter("deepmap_test_events_total");
  EXPECT_EQ(&a, &b);
  a.Increment();
  b.Increment(4);
  EXPECT_EQ(a.Value(), 5);
  EXPECT_TRUE(registry.Has("deepmap_test_events_total"));
  EXPECT_FALSE(registry.Has("deepmap_test_other_total"));
}

TEST(CounterTest, MergesAcrossThreads) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("deepmap_test_merge_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  // Shards must merge losslessly: any torn update or false-shared overwrite
  // shows up as a wrong sum here.
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAddAndHighWaterMark) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("deepmap_test_level");
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.Value(), 5.0);
  Gauge& high = registry.GetGauge("deepmap_test_high_water");
  high.SetMax(4.0);
  high.SetMax(2.0);  // lower: ignored
  high.SetMax(7.0);
  EXPECT_EQ(high.Value(), 7.0);
}

// ---------------------------------------------------------------------------
// Histograms

TEST(HistogramTest, BucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("deepmap_test_latency_seconds",
                                       {1.0, 2.0, 4.0});
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1 (inclusive, Prometheus `le` semantics)
  h.Observe(1.5);   // le=2
  h.Observe(4.0);   // le=4
  h.Observe(100.0); // +Inf
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2);
  EXPECT_EQ(snap.bucket_counts[1], 1);
  EXPECT_EQ(snap.bucket_counts[2], 1);
  EXPECT_EQ(snap.bucket_counts[3], 1);
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), snap.sum / 5.0);
}

TEST(HistogramTest, NanGoesToOverflowBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("deepmap_test_nan_seconds", {1.0});
  h.Observe(std::nan(""));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.bucket_counts[0], 0);
  EXPECT_EQ(snap.bucket_counts[1], 1);
}

TEST(HistogramTest, QuantileNearestRankEpsilonGuard) {
  MetricsRegistry registry;
  // One unit-width bucket per integer so the interpolated quantile of the
  // samples 1..20 is exact: bucket le=v holds exactly the sample v.
  std::vector<double> bounds;
  for (int i = 1; i <= 20; ++i) bounds.push_back(i);
  Histogram& h = registry.GetHistogram("deepmap_test_rank_seconds", bounds);
  for (int v = 1; v <= 20; ++v) h.Observe(v);
  HistogramSnapshot snap = h.Snapshot();
  // ceil(0.95 * 20) = 19: the 19th-smallest sample, NOT the max. 0.95 is
  // slightly above 19/20 in binary, so an unguarded ceil lands on 20.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 19.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 20.0);
  // q=0 clamps to the smallest rank, not below the data.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("deepmap_test_interp_seconds",
                                       {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // all in (10, 20]
  HistogramSnapshot snap = h.Snapshot();
  // Rank 5 of 10 -> fraction 5/10 through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 15.0);
  EXPECT_EQ(snap.Quantile(0.0), 11.0);  // rank clamps to 1 -> 1/10 through
}

TEST(HistogramTest, ExponentialBoundsShape) {
  std::vector<double> bounds = Histogram::ExponentialBounds(1e-6, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[3], 8e-6);
  const std::vector<double>& latency = Histogram::DefaultLatencyBounds();
  EXPECT_TRUE(std::is_sorted(latency.begin(), latency.end()));
  EXPECT_GT(latency.back(), 60.0);  // covers minute-scale epochs
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusTest, TextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("deepmap_test_events_total", "events help").Increment(3);
  registry.GetGauge("deepmap_test_depth").Set(2.0);
  Histogram& h =
      registry.GetHistogram("deepmap_test_lat_seconds", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);

  std::ostringstream os;
  registry.WritePrometheusText(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# HELP deepmap_test_events_total events help\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE deepmap_test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_test_events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE deepmap_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("deepmap_test_depth 2\n"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("deepmap_test_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_test_lat_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_test_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_test_lat_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("deepmap_test_lat_seconds_sum 11\n"),
            std::string::npos);
}

TEST(PrometheusTest, NamesAreSorted) {
  MetricsRegistry registry;
  registry.GetCounter("deepmap_test_zzz_total");
  registry.GetCounter("deepmap_test_aaa_total");
  std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "deepmap_test_aaa_total");
  EXPECT_EQ(names[1], "deepmap_test_zzz_total");
}

TEST(PrometheusTest, ScrapeWhileWriting) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("deepmap_test_busy_total");
  Histogram& h = registry.GetHistogram("deepmap_test_busy_seconds", {1e-3});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Increment();
        h.Observe(1e-4);
      }
    });
  }
  // Scrapes must be safe (and monotone) while writers hammer the shards.
  int64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    std::ostringstream os;
    registry.WritePrometheusText(os);
    EXPECT_NE(os.str().find("deepmap_test_busy_total"), std::string::npos);
    const int64_t now = counter.Value();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, counter.Value());
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer tracer;
  { Tracer::Span span(tracer, "noop", "test"); }
  EXPECT_EQ(tracer.NumEvents(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0);
}

TEST(TracerTest, NestedSpansAreContained) {
  Tracer tracer;
  tracer.Enable();
  {
    Tracer::Span outer(tracer, "outer", "test");
    { Tracer::Span inner(tracer, "inner", "test"); }
  }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on destruction, so the inner span lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Containment on the shared thread track is what chrome://tracing uses to
  // reconstruct the stack.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(TracerTest, SpanOpenAcrossDisableIsDropped) {
  Tracer tracer;
  tracer.Enable();
  {
    Tracer::Span span(tracer, "crossing", "test");
    tracer.Disable();
  }
  // Recording after Disable would smear a span across two sessions.
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

TEST(TracerTest, EnableClearsPriorSession) {
  Tracer tracer;
  tracer.Enable();
  { Tracer::Span span(tracer, "first", "test"); }
  EXPECT_EQ(tracer.NumEvents(), 1u);
  tracer.Enable();  // new session: fresh epoch, empty buffer
  EXPECT_EQ(tracer.NumEvents(), 0u);
  tracer.Disable();
}

TEST(TracerTest, ThreadsGetDistinctTracks) {
  Tracer tracer;
  tracer.Enable();
  std::thread other([&] { Tracer::Span span(tracer, "worker", "test"); });
  other.join();
  { Tracer::Span span(tracer, "main", "test"); }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  tracer.Enable();
  { Tracer::Span span(tracer, "with \"quotes\" and \\slash", "serve"); }
  tracer.Disable();
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Balanced braces/brackets => structurally sound JSON for the viewers.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracerTest, GlobalMacroRespectsEnableState) {
  Tracer& global = Tracer::Global();
  global.Enable();
  {
    DEEPMAP_TRACE_SPAN("macro.outer", "test");
    DEEPMAP_TRACE_SPAN("macro.inner", "test");  // same scope: distinct vars
  }
  global.Disable();
  EXPECT_EQ(global.NumEvents(), 2u);
  global.Clear();
}

}  // namespace
}  // namespace deepmap::obs
