#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/dataset.h"

namespace deepmap::graph {
namespace {

Graph Triangle() {
  return Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, {1, 2, 3});
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0);
  EXPECT_EQ(g.NumEdges(), 0);
  EXPECT_EQ(g.LabelAlphabetSize(), 0);
}

TEST(GraphTest, AddVertexAndEdge) {
  Graph g;
  Vertex a = g.AddVertex(5);
  Vertex b = g.AddVertex(7);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, a));
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.GetLabel(a), 5);
  EXPECT_EQ(g.GetLabel(b), 7);
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(4);
  g.AddEdge(2, 3);
  g.AddEdge(2, 0);
  g.AddEdge(2, 1);
  std::vector<Vertex> expected{0, 1, 3};
  EXPECT_EQ(g.Neighbors(2), expected);
  EXPECT_EQ(g.Degree(2), 3);
}

TEST(GraphTest, FromEdgesWithLabels) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 3);
  EXPECT_EQ(g.GetLabel(2), 3);
  EXPECT_EQ(g.LabelAlphabetSize(), 4);
}

TEST(GraphTest, EdgeListSortedCanonical) {
  Graph g = Graph::FromEdges(4, {{3, 1}, {0, 2}, {2, 1}});
  auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(Vertex{0}, Vertex{2}));
  EXPECT_EQ(edges[1], std::make_pair(Vertex{1}, Vertex{2}));
  EXPECT_EQ(edges[2], std::make_pair(Vertex{1}, Vertex{3}));
}

TEST(GraphTest, InducedSubgraph) {
  // Path 0-1-2-3 plus labels.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, {10, 11, 12, 13});
  Graph sub = g.InducedSubgraph({1, 2, 3});
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(), 2);
  EXPECT_EQ(sub.GetLabel(0), 11);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_FALSE(sub.HasEdge(0, 2));
}

TEST(GraphTest, InducedSubgraphRespectsOrder) {
  Graph g = Graph::FromEdges(3, {{0, 1}}, {5, 6, 7});
  Graph sub = g.InducedSubgraph({2, 0, 1});
  EXPECT_EQ(sub.GetLabel(0), 7);
  EXPECT_EQ(sub.GetLabel(1), 5);
  EXPECT_TRUE(sub.HasEdge(1, 2));
}

TEST(GraphTest, PermutedPreservesStructure) {
  Graph g = Triangle();
  Graph p = g.Permuted({2, 0, 1});
  EXPECT_EQ(p.NumEdges(), 3);
  EXPECT_EQ(p.GetLabel(2), 1);  // vertex 0 (label 1) moved to slot 2
  EXPECT_EQ(p.GetLabel(0), 2);
}

TEST(GraphTest, EqualityIsExact) {
  Graph a = Triangle();
  Graph b = Triangle();
  EXPECT_TRUE(a == b);
  b.SetLabel(0, 9);
  EXPECT_FALSE(a == b);
}

TEST(GraphDatasetTest, StatsMatchContents) {
  std::vector<Graph> graphs{Triangle(), Graph::FromEdges(5, {{0, 1}, {1, 2}})};
  GraphDataset ds("toy", std::move(graphs), {0, 1});
  DatasetStats stats = ds.Stats();
  EXPECT_EQ(stats.size, 2);
  EXPECT_EQ(stats.num_classes, 2);
  EXPECT_DOUBLE_EQ(stats.avg_vertices, 4.0);
  EXPECT_DOUBLE_EQ(stats.avg_edges, 2.5);
  EXPECT_EQ(ds.MaxVertices(), 5);
}

TEST(GraphDatasetTest, UseDegreesAsLabels) {
  std::vector<Graph> graphs{Graph::FromEdges(3, {{0, 1}, {1, 2}})};
  GraphDataset ds("toy", std::move(graphs), {0}, /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  EXPECT_TRUE(ds.has_vertex_labels());
  EXPECT_EQ(ds.graph(0).GetLabel(0), 1);
  EXPECT_EQ(ds.graph(0).GetLabel(1), 2);
}

TEST(GraphDatasetTest, CompactVertexLabels) {
  std::vector<Graph> graphs{Graph::FromEdges(2, {{0, 1}}, {100, 7})};
  GraphDataset ds("toy", std::move(graphs), {0});
  int k = ds.CompactVertexLabels();
  EXPECT_EQ(k, 2);
  EXPECT_LT(ds.graph(0).GetLabel(0), 2);
  EXPECT_LT(ds.graph(0).GetLabel(1), 2);
  EXPECT_NE(ds.graph(0).GetLabel(0), ds.graph(0).GetLabel(1));
}

TEST(GraphDatasetTest, SubsetCopiesSelectedGraphs) {
  std::vector<Graph> graphs{Triangle(), Graph(2), Graph(4)};
  GraphDataset ds("toy", std::move(graphs), {0, 1, 0});
  GraphDataset sub = ds.Subset({2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.graph(0).NumVertices(), 4);
  EXPECT_EQ(sub.label(1), 0);
}

}  // namespace
}  // namespace deepmap::graph
