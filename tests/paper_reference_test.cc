#include "eval/paper_reference.h"

#include <gtest/gtest.h>

#include "datasets/registry.h"

namespace deepmap::eval {
namespace {

TEST(PaperReferenceTest, Table2KnownCells) {
  auto wl_synthie = PaperTable2("SYNTHIE", "DEEPMAP-WL");
  ASSERT_TRUE(wl_synthie.has_value());
  EXPECT_DOUBLE_EQ(wl_synthie->mean, 54.53);
  EXPECT_DOUBLE_EQ(wl_synthie->stddev, 6.16);
  auto gk_kki = PaperTable2("KKI", "GK");
  ASSERT_TRUE(gk_kki.has_value());
  EXPECT_DOUBLE_EQ(gk_kki->mean, 51.88);
}

TEST(PaperReferenceTest, Table2NaCells) {
  EXPECT_FALSE(PaperTable2("COLLAB", "SP").has_value());
  EXPECT_FALSE(PaperTable2("COLLAB", "DEEPMAP-SP").has_value());
  EXPECT_TRUE(PaperTable2("COLLAB", "WL").has_value());
}

TEST(PaperReferenceTest, Table3KnownCells) {
  auto retgk_nci1 = PaperTable3("NCI1", "RETGK");
  ASSERT_TRUE(retgk_nci1.has_value());
  EXPECT_DOUBLE_EQ(retgk_nci1->mean, 84.50);
  auto deepmap_cox2 = PaperTable3("COX2_MD", "DEEPMAP");
  ASSERT_TRUE(deepmap_cox2.has_value());
  EXPECT_DOUBLE_EQ(deepmap_cox2->mean, 72.28);
}

TEST(PaperReferenceTest, Table4KnownCells) {
  auto gin_kki = PaperTable4("KKI", "GIN");
  ASSERT_TRUE(gin_kki.has_value());
  EXPECT_DOUBLE_EQ(gin_kki->mean, 64.93);  // GIN beats DEEPMAP on KKI here
}

TEST(PaperReferenceTest, Table5KnownCells) {
  auto deepmap_nci1 = PaperTable5Ms("NCI1", "DEEPMAP");
  ASSERT_TRUE(deepmap_nci1.has_value());
  EXPECT_DOUBLE_EQ(*deepmap_nci1, 7300.0);
}

TEST(PaperReferenceTest, UnknownLookupsAreEmpty) {
  EXPECT_FALSE(PaperTable2("MUTAG", "WL").has_value());
  EXPECT_FALSE(PaperTable3("KKI", "NOSUCH").has_value());
  EXPECT_FALSE(PaperTable5Ms("KKI", "NOSUCH").has_value());
}

TEST(PaperReferenceTest, EveryDatasetHasEveryTable3Method) {
  for (const auto& spec : datasets::PaperDatasets()) {
    for (const std::string& method : Table3Methods()) {
      EXPECT_TRUE(PaperTable3(spec.name, method).has_value())
          << spec.name << " / " << method;
    }
  }
}

TEST(PaperReferenceTest, DeepMapWinsTable2OnMostDatasets) {
  // Sanity-check the transcription: the paper's headline claim is that the
  // deep maps beat their kernels in most cells.
  int wins = 0, comparisons = 0;
  for (const auto& spec : datasets::PaperDatasets()) {
    for (const char* base : {"GK", "SP", "WL"}) {
      auto kernel = PaperTable2(spec.name, base);
      auto deep = PaperTable2(spec.name, std::string("DEEPMAP-") + base);
      if (!kernel || !deep) continue;
      ++comparisons;
      if (deep->mean > kernel->mean) ++wins;
    }
  }
  EXPECT_GE(comparisons, 40);
  EXPECT_GT(static_cast<double>(wins) / comparisons, 0.85);
}

TEST(PaperReferenceTest, FormatAccuracy) {
  EXPECT_EQ(FormatPaperAccuracy(PaperAccuracy{54.53, 6.16}), "54.53+-6.16");
  EXPECT_EQ(FormatPaperAccuracy(std::nullopt), "N/A");
}

}  // namespace
}  // namespace deepmap::eval
