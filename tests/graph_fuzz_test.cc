// Reference-model fuzz test: random operation sequences on Graph are
// replayed against a naive adjacency-matrix model; every observable must
// agree at every step. Catches bookkeeping bugs (sorted-insert, edge
// counting, label handling) that example-based tests can miss.
// The same fuzzed graphs also drive the CSR structural invariants of the
// sparse substrate (src/sparse/): sorted/unique column indices, row-pointer
// monotonicity, transpose involution, and nnz/degree-sum accounting across
// all four graph-operator constructions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/dataset.h"
#include "graph/graph.h"
#include "graph/tu_format.h"
#include "sparse/sparse_graph.h"

namespace deepmap::graph {
namespace {

// Naive reference: dense adjacency matrix + label vector.
class ReferenceGraph {
 public:
  int AddVertex(Label label) {
    labels_.push_back(label);
    for (auto& row : adj_) row.push_back(false);
    adj_.emplace_back(labels_.size(), false);
    return static_cast<int>(labels_.size()) - 1;
  }

  bool AddEdge(int u, int v) {
    if (u == v || adj_[u][v]) return false;
    adj_[u][v] = adj_[v][u] = true;
    return true;
  }

  bool RemoveEdge(int u, int v) {
    if (u == v || !adj_[u][v]) return false;
    adj_[u][v] = adj_[v][u] = false;
    return true;
  }

  int NumVertices() const { return static_cast<int>(labels_.size()); }

  int NumEdges() const {
    int count = 0;
    for (int i = 0; i < NumVertices(); ++i) {
      for (int j = i + 1; j < NumVertices(); ++j) {
        if (adj_[i][j]) ++count;
      }
    }
    return count;
  }

  bool HasEdge(int u, int v) const { return adj_[u][v]; }

  std::vector<Vertex> Neighbors(int v) const {
    std::vector<Vertex> out;
    for (int u = 0; u < NumVertices(); ++u) {
      if (adj_[v][u]) out.push_back(u);
    }
    return out;  // ascending order by construction
  }

  Label GetLabel(int v) const { return labels_[v]; }

  void SetLabel(int v, Label l) { labels_[v] = l; }

 private:
  std::vector<std::vector<bool>> adj_;
  std::vector<Label> labels_;
};

class GraphFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphFuzzTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  Graph graph;
  ReferenceGraph reference;
  const int kSteps = 300;
  for (int step = 0; step < kSteps; ++step) {
    const int n = graph.NumVertices();
    int op = rng.UniformInt(0, 5);
    if (n < 2) op = 0;  // need vertices before edges/labels
    switch (op) {
      case 0: {  // add vertex
        Label label = static_cast<Label>(rng.Index(5));
        int a = graph.AddVertex(label);
        int b = reference.AddVertex(label);
        ASSERT_EQ(a, b);
        break;
      }
      case 1: {  // add edge (may be duplicate or self loop)
        int u = static_cast<int>(rng.Index(n));
        int v = static_cast<int>(rng.Index(n));
        ASSERT_EQ(graph.AddEdge(u, v), reference.AddEdge(u, v));
        break;
      }
      case 2: {  // relabel
        int v = static_cast<int>(rng.Index(n));
        Label label = static_cast<Label>(rng.Index(5));
        graph.SetLabel(v, label);
        reference.SetLabel(v, label);
        break;
      }
      case 3: {  // probe random pair
        int u = static_cast<int>(rng.Index(n));
        int v = static_cast<int>(rng.Index(n));
        ASSERT_EQ(graph.HasEdge(u, v), reference.HasEdge(u, v));
        break;
      }
      case 4: {  // full neighborhood check of one vertex
        int v = static_cast<int>(rng.Index(n));
        ASSERT_EQ(graph.Neighbors(v), reference.Neighbors(v));
        break;
      }
      case 5: {  // remove edge (may be absent or a self loop)
        int u = static_cast<int>(rng.Index(n));
        int v = static_cast<int>(rng.Index(n));
        ASSERT_EQ(graph.RemoveEdge(u, v), reference.RemoveEdge(u, v));
        break;
      }
    }
    // Global invariants every step.
    ASSERT_EQ(graph.NumVertices(), reference.NumVertices());
    ASSERT_EQ(graph.NumEdges(), reference.NumEdges());
  }
  // Final full-state comparison.
  for (int v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(graph.GetLabel(v), reference.GetLabel(v));
    EXPECT_EQ(graph.Neighbors(v), reference.Neighbors(v));
  }
  // Edge list is consistent with the adjacency relation.
  auto edges = graph.EdgeList();
  EXPECT_EQ(static_cast<int>(edges.size()), graph.NumEdges());
  for (const auto& [u, v] : edges) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(reference.HasEdge(u, v));
  }
  // Spot-check an algorithm against the reference structure: degree sums.
  int64_t degree_sum = 0;
  for (int v = 0; v < graph.NumVertices(); ++v) degree_sum += graph.Degree(v);
  EXPECT_EQ(degree_sum, 2 * static_cast<int64_t>(graph.NumEdges()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzTest, ::testing::Range(100, 112));

// CSR invariants of every sparse graph-operator construction over the same
// fuzzed graphs. CheckInvariants CHECK-fails (aborts) on violation, so a
// passing run certifies sorted/unique columns, row_ptr monotonicity, index
// bounds, and the no-explicit-zeros rule.
class SparseFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseFuzzTest, CsrInvariantsHoldForAllConstructions) {
  Rng rng(GetParam());
  Graph graph;
  // Random graph with isolated vertices and duplicate-edge attempts.
  const int n = 1 + static_cast<int>(rng.Index(40));
  for (int v = 0; v < n; ++v) graph.AddVertex(0);
  const int attempts = static_cast<int>(rng.Index(4 * n + 1));
  for (int e = 0; e < attempts; ++e) {
    graph.AddEdge(static_cast<int>(rng.Index(n)),
                  static_cast<int>(rng.Index(n)));
  }
  const int64_t edges = graph.NumEdges();

  const sparse::SparseGraph gcn = sparse::SparseGraph::GcnNorm(graph);
  const sparse::SparseGraph row = sparse::SparseGraph::RowNormAdj(graph);
  const sparse::SparseGraph tran = sparse::SparseGraph::Transition(graph);
  const sparse::SparseGraph sum = sparse::SparseGraph::SumAdj(graph);
  for (const sparse::SparseGraph* sg : {&gcn, &row, &tran, &sum}) {
    sg->matrix().CheckInvariants();
    sg->transpose().CheckInvariants();
    // Transpose involution: (S^T)^T == S exactly.
    EXPECT_TRUE(sg->transpose().Transpose() == sg->matrix());
    EXPECT_TRUE(sg->matrix().Transpose() == sg->transpose());
  }
  // nnz accounting. GcnNorm/SumAdj store A (+ I): one entry per directed
  // edge plus the diagonal; Transition stores a row per non-isolated vertex
  // with one entry per directed edge — so its nnz doubles the degree sum,
  // i.e. equals 2 * |E|.
  EXPECT_EQ(gcn.matrix().nnz(), n + 2 * edges);
  EXPECT_EQ(sum.matrix().nnz(), n + 2 * edges);
  EXPECT_EQ(tran.matrix().nnz(), 2 * edges);
  // RowNormAdj drops entries only via isolated vertices; every stored row
  // has deg(v) entries plus the diagonal.
  int64_t expected_rownorm = 0;
  for (int v = 0; v < n; ++v) expected_rownorm += 1 + graph.Degree(v);
  EXPECT_EQ(row.matrix().nnz(), expected_rownorm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseFuzzTest, ::testing::Range(200, 216));

// Randomized TU round-trip property: any dataset WriteTuDataset produces
// must come back from ReadTuDataset structurally identical (same graphs,
// same labels). Exercises the strict integer parsing on writer-produced
// files and the label-compaction path with arbitrary (already-compact)
// labels.
class TuRoundTripFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TuRoundTripFuzzTest, WriteReadIsIdentity) {
  Rng rng(GetParam());
  const int num_graphs = 1 + static_cast<int>(rng.Index(8));
  const int num_classes = 1 + static_cast<int>(rng.Index(3));
  std::vector<Graph> graphs;
  std::vector<int> labels;
  // Every class in [0, C) must appear at least once or compaction on read
  // renumbers (GraphDataset requires labels 0..C-1 anyway).
  for (int gi = 0; gi < num_graphs; ++gi) {
    const int n = 1 + static_cast<int>(rng.Index(12));
    Graph g;
    for (int v = 0; v < n; ++v) {
      g.AddVertex(static_cast<Label>(rng.Index(4)));
    }
    const int attempts = static_cast<int>(rng.Index(3 * n + 1));
    for (int e = 0; e < attempts; ++e) {
      g.AddEdge(static_cast<int>(rng.Index(n)),
                static_cast<int>(rng.Index(n)));
    }
    graphs.push_back(std::move(g));
    labels.push_back(gi < num_classes ? gi
                                      : static_cast<int>(rng.Index(
                                            num_classes)));
  }
  GraphDataset original("FUZZ", std::move(graphs), std::move(labels));

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("deepmap_tu_fuzz_" + std::to_string(::getpid()) + "_" +
       std::to_string(GetParam()));
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteTuDataset(original, dir.string()).ok());
  auto loaded = ReadTuDataset(dir.string(), "FUZZ");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const GraphDataset& ds = loaded.value();
  ASSERT_EQ(ds.size(), original.size());
  EXPECT_EQ(ds.labels(), original.labels());
  for (int i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.graph(i).NumVertices(), original.graph(i).NumVertices());
    EXPECT_EQ(ds.graph(i).NumEdges(), original.graph(i).NumEdges());
    EXPECT_EQ(ds.graph(i).EdgeList(), original.graph(i).EdgeList());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TuRoundTripFuzzTest,
                         ::testing::Range(300, 310));

}  // namespace
}  // namespace deepmap::graph
