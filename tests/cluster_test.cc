// Tests for ServeCluster: cluster-vs-single-engine prediction equivalence,
// the N=1 degenerate case, deterministic work stealing under skewed load,
// continuous batching, per-tenant fair-share admission, and cluster outcome
// accounting. Races are pinned with fail-point gates, never sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "serve/cluster.h"
#include "serve/engine.h"

namespace deepmap {
namespace {

using serve::InferenceEngine;
using serve::Prediction;
using serve::RequestOptions;
using serve::ServeCluster;
using serve::ServeOutcome;

constexpr auto kWatchdog = std::chrono::seconds(20);

/// Leaves the process-wide fail-point registry clean no matter how a test
/// exits, so one test's faults can never leak into the next.
struct FailPointGuard {
  ~FailPointGuard() { FailPointRegistry::Instance().DisableAll(); }
};

/// A gate that a fail-point hook can park a replica worker on. Once opened
/// it stays open, so late evaluations (e.g. during shutdown drain) never
/// deadlock.
struct DispatchGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> parked{0};

  void Park() {
    ++parked;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitParked() {
    while (parked.load() == 0) std::this_thread::yield();
  }
};

/// Blocks until `f` resolves or the watchdog fires; a timeout means a
/// promise was abandoned, which the serving stack must never do.
StatusOr<Prediction> MustResolve(std::future<StatusOr<Prediction>>& f) {
  EXPECT_EQ(f.wait_for(kWatchdog), std::future_status::ready)
      << "future abandoned";
  return f.get();
}

// Shared trained bundle (training is the slow part; once per process).
struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();

    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 2;
    b->config.train.batch_size = 8;

    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);

    Status s = b->registry.Adopt("ptc_mm", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("ptc_mm");
    DEEPMAP_CHECK(b->servable != nullptr);
    return b;
  }();
  return *bundle;
}

/// Cluster options for dispatch-mechanics tests: caching off so every
/// request travels the full queue/pipeline path deterministically.
ServeCluster::Options UncachedClusterOptions(size_t num_replicas) {
  ServeCluster::Options o;
  o.num_replicas = num_replicas;
  o.cache_capacity = 0;
  o.replica.num_threads = 1;
  return o;
}

// ---------------------------------------------------------------------------
// Prediction equivalence

TEST(ServeClusterTest, PredictionsBitIdenticalToSingleEngine) {
  TrainedBundle& b = Bundle();

  // Caching off on both sides: WL-equivalent (not identical) graphs share a
  // cache entry, and WHICH representative lands in the cache first depends
  // on dispatch order — a documented cache approximation that would mask
  // the compute-path equivalence this test pins.
  InferenceEngine::Options engine_options;
  engine_options.num_threads = 2;
  engine_options.cache_capacity = 0;
  InferenceEngine engine(b.servable, engine_options);

  ServeCluster::Options cluster_options = UncachedClusterOptions(3);
  ServeCluster cluster(b.servable, cluster_options);

  const int n = b.dataset.size();
  std::vector<std::future<StatusOr<Prediction>>> from_engine;
  std::vector<std::future<StatusOr<Prediction>>> from_cluster;
  for (int i = 0; i < n; ++i) {
    from_engine.push_back(engine.Submit(b.dataset.graph(i)));
    from_cluster.push_back(cluster.Submit(b.dataset.graph(i)));
  }
  for (int i = 0; i < n; ++i) {
    StatusOr<Prediction> e = MustResolve(from_engine[i]);
    StatusOr<Prediction> c = MustResolve(from_cluster[i]);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_EQ(c.value().label, e.value().label) << "graph " << i;
    ASSERT_EQ(c.value().probabilities.size(), e.value().probabilities.size());
    for (size_t p = 0; p < e.value().probabilities.size(); ++p) {
      // Replicas share one immutable CompiledModel: which replica served a
      // request must be unobservable in its probabilities, bit for bit.
      ASSERT_EQ(c.value().probabilities[p], e.value().probabilities[p])
          << "graph " << i << " class " << p;
    }
  }
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), n);
  EXPECT_EQ(cluster.metrics().total_outcomes(), n);
  EXPECT_EQ(cluster.cluster_metrics().dispatched(), n);
}

TEST(ServeClusterTest, SingleReplicaDegenerateMatchesEngine) {
  TrainedBundle& b = Bundle();

  InferenceEngine::Options engine_options;
  engine_options.cache_capacity = 0;
  InferenceEngine engine(b.servable, engine_options);
  ServeCluster cluster(b.servable, UncachedClusterOptions(1));

  const int n = std::min(b.dataset.size(), 12);
  for (int i = 0; i < n; ++i) {
    std::future<StatusOr<Prediction>> e = engine.Submit(b.dataset.graph(i));
    std::future<StatusOr<Prediction>> c = cluster.Submit(b.dataset.graph(i));
    StatusOr<Prediction> from_engine = MustResolve(e);
    StatusOr<Prediction> from_cluster = MustResolve(c);
    ASSERT_TRUE(from_engine.ok());
    ASSERT_TRUE(from_cluster.ok());
    EXPECT_EQ(from_cluster.value().label, from_engine.value().label);
    ASSERT_EQ(from_cluster.value().probabilities.size(),
              from_engine.value().probabilities.size());
    for (size_t p = 0; p < from_engine.value().probabilities.size(); ++p) {
      ASSERT_EQ(from_cluster.value().probabilities[p],
                from_engine.value().probabilities[p]);
    }
  }
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), n);
  EXPECT_EQ(cluster.cluster_metrics().stolen_requests(), 0);
}

TEST(ServeClusterTest, CacheHitBypassesReplicas) {
  TrainedBundle& b = Bundle();
  ServeCluster::Options options;
  options.num_replicas = 2;
  options.replica.num_threads = 1;
  ServeCluster cluster(b.servable, options);

  std::future<StatusOr<Prediction>> first = cluster.Submit(b.dataset.graph(0));
  ASSERT_TRUE(MustResolve(first).ok());
  cluster.Drain();
  const int64_t dispatched = cluster.cluster_metrics().dispatched();

  std::future<StatusOr<Prediction>> second =
      cluster.Submit(b.dataset.graph(0));
  ASSERT_TRUE(MustResolve(second).ok());
  EXPECT_EQ(cluster.metrics().cache_hits(), 1);
  // The hit resolved on the submitter's thread: nothing new was dispatched.
  EXPECT_EQ(cluster.cluster_metrics().dispatched(), dispatched);
}

// ---------------------------------------------------------------------------
// Work stealing

TEST(ServeClusterTest, IdleReplicaStealsFromParkedSibling) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster cluster(b.servable, UncachedClusterOptions(2));

  // Park whichever replica picks up the bait request; the failpoint is
  // one-shot, so the surviving replica keeps running batches.
  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);

  std::future<StatusOr<Prediction>> bait =
      cluster.SubmitToReplica(0, b.dataset.graph(0), RequestOptions{});
  gate.AwaitParked();
  // The bait itself may have been stolen by the then-idle sibling before
  // replica 0 woke, so measure steals from here on.
  const int64_t stolen_baseline = cluster.cluster_metrics().stolen_requests();

  // Load both queues. The parked replica cannot pop its share, so the live
  // one must steal every request queued on the parked side to resolve them.
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        cluster.SubmitToReplica(0, b.dataset.graph(1 + i), RequestOptions{}));
    futures.push_back(
        cluster.SubmitToReplica(1, b.dataset.graph(4 + i), RequestOptions{}));
  }
  for (auto& f : futures) {
    StatusOr<Prediction> result = MustResolve(f);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // One worker is still parked; the six requests were resolved anyway, and
  // exactly the parked replica's three arrived via steals.
  EXPECT_EQ(gate.parked.load(), 1);
  EXPECT_EQ(cluster.cluster_metrics().stolen_requests() - stolen_baseline, 3);
  EXPECT_GE(cluster.cluster_metrics().steals(), 1);

  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 7);
}

TEST(ServeClusterTest, StealingDisabledLeavesBacklogToOwner) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(2);
  options.replica.enable_work_stealing = false;
  ServeCluster cluster(b.servable, options);

  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);

  std::future<StatusOr<Prediction>> bait =
      cluster.SubmitToReplica(0, b.dataset.graph(0), RequestOptions{});
  gate.AwaitParked();

  // Requests behind the parked replica stay put until it resumes; the
  // sibling serves its own queue but never steals.
  std::future<StatusOr<Prediction>> behind_parked =
      cluster.SubmitToReplica(0, b.dataset.graph(1), RequestOptions{});
  std::future<StatusOr<Prediction>> on_live =
      cluster.SubmitToReplica(1, b.dataset.graph(2), RequestOptions{});
  // One of the two resolves while the other is pinned behind the gate —
  // but we cannot know which replica parked, so just require both resolve
  // after opening, with zero steals throughout.
  gate.Open();
  ASSERT_TRUE(MustResolve(behind_parked).ok());
  ASSERT_TRUE(MustResolve(on_live).ok());
  ASSERT_TRUE(MustResolve(bait).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.cluster_metrics().steals(), 0);
  EXPECT_EQ(cluster.cluster_metrics().stolen_requests(), 0);
}

// ---------------------------------------------------------------------------
// Continuous batching

TEST(ServeClusterTest, ContinuousBatchingAbsorbsArrivalsIntoInflightBatch) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster cluster(b.servable, UncachedClusterOptions(1));

  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);

  std::future<StatusOr<Prediction>> bait =
      cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked();

  // These arrive while the bait batch is (about to be) in flight. With the
  // worker parked they can only be served by joining that batch.
  std::vector<std::future<StatusOr<Prediction>>> late;
  for (int i = 1; i <= 5; ++i) {
    late.push_back(cluster.Submit(b.dataset.graph(i)));
  }
  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  for (auto& f : late) {
    StatusOr<Prediction> result = MustResolve(f);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  cluster.Drain();
  // All six went through one dispatch: 1 popped + 5 admitted mid-batch.
  EXPECT_EQ(cluster.cluster_metrics().continuous_admits(), 5);
  EXPECT_EQ(cluster.metrics().num_batches(), 1);
  EXPECT_DOUBLE_EQ(cluster.metrics().mean_batch_size(), 6.0);
  EXPECT_EQ(cluster.cluster_metrics().replica_requests(0), 6);
  EXPECT_EQ(cluster.cluster_metrics().replica_batches(0), 1);
}

TEST(ServeClusterTest, ContinuousBatchingOffDispatchesSeparateBatches) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(1);
  options.replica.continuous_batching = false;
  ServeCluster cluster(b.servable, options);

  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);

  std::future<StatusOr<Prediction>> bait = cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked();
  std::vector<std::future<StatusOr<Prediction>>> late;
  for (int i = 1; i <= 5; ++i) {
    late.push_back(cluster.Submit(b.dataset.graph(i)));
  }
  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  for (auto& f : late) ASSERT_TRUE(MustResolve(f).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.cluster_metrics().continuous_admits(), 0);
  // Bait ran alone; the five laggards came in at least one later batch.
  EXPECT_GE(cluster.metrics().num_batches(), 2);
}

// ---------------------------------------------------------------------------
// Per-tenant fair-share admission

TEST(ServeClusterTest, FairShareCapsNoisyTenantAdmitsQuietOne) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(1);
  options.replica.queue_capacity = 8;
  options.fair_share_watermark = 0.5;
  ServeCluster cluster(b.servable, options);

  // Park the only replica so queue depths are exact while we probe
  // admission decisions.
  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);
  std::future<StatusOr<Prediction>> bait = cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked();

  // Capacity 8, watermark 0.5: admission arms once more than 4 requests are
  // queued. Two active tenants ("" via the bait + "noisy") make the fair
  // share 8 / 2 = 4, so "noisy" is capped at its 5th in-flight request
  // (admitted at backlog 4, shed from backlog 5 on).
  RequestOptions noisy;
  noisy.tenant = "noisy";
  std::vector<std::future<StatusOr<Prediction>>> admitted;
  std::vector<Status> shed_statuses;
  for (int i = 0; i < 8; ++i) {
    std::future<StatusOr<Prediction>> f =
        cluster.Submit(b.dataset.graph(1 + i), noisy);
    if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      StatusOr<Prediction> r = f.get();
      ASSERT_FALSE(r.ok());
      shed_statuses.push_back(r.status());
    } else {
      admitted.push_back(std::move(f));
    }
  }
  EXPECT_EQ(admitted.size(), 5u);
  ASSERT_EQ(shed_statuses.size(), 3u);
  for (const Status& s : shed_statuses) {
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
    EXPECT_NE(s.message().find("fair-share"), std::string::npos)
        << s.ToString();
  }
  EXPECT_EQ(cluster.tenant_inflight("noisy"), 5);
  EXPECT_EQ(cluster.cluster_metrics().tenant_sheds(), 3);
  EXPECT_EQ(cluster.metrics().shed(), 3);

  // A tenant below its share is admitted even though admission is armed.
  RequestOptions quiet;
  quiet.tenant = "quiet";
  std::future<StatusOr<Prediction>> quiet_future =
      cluster.Submit(b.dataset.graph(9), quiet);
  EXPECT_EQ(quiet_future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "quiet tenant was rejected while under its fair share";
  EXPECT_EQ(cluster.tenant_inflight("quiet"), 1);

  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  for (auto& f : admitted) ASSERT_TRUE(MustResolve(f).ok());
  ASSERT_TRUE(MustResolve(quiet_future).ok());
  cluster.Drain();

  // Slots release on completion and outcomes account for every submission:
  // 1 bait + 5 noisy + 1 quiet OK, 3 shed.
  EXPECT_EQ(cluster.tenant_inflight("noisy"), 0);
  EXPECT_EQ(cluster.tenant_inflight("quiet"), 0);
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kOk), 7);
  EXPECT_EQ(cluster.metrics().outcome_count(ServeOutcome::kShed), 3);
  EXPECT_EQ(cluster.metrics().total_outcomes(), 10);
}

TEST(ServeClusterTest, QueueOverflowRejectsWithResourceExhausted) {
  TrainedBundle& b = Bundle();
  FailPointGuard guard;
  ServeCluster::Options options = UncachedClusterOptions(1);
  options.replica.queue_capacity = 2;
  ServeCluster cluster(b.servable, options);

  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.cluster.batch", spec);
  std::future<StatusOr<Prediction>> bait = cluster.Submit(b.dataset.graph(0));
  gate.AwaitParked();

  std::vector<std::future<StatusOr<Prediction>>> queued;
  queued.push_back(cluster.Submit(b.dataset.graph(1)));
  queued.push_back(cluster.Submit(b.dataset.graph(2)));
  std::future<StatusOr<Prediction>> overflow =
      cluster.Submit(b.dataset.graph(3));
  StatusOr<Prediction> rejected = MustResolve(overflow);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(cluster.metrics().rejected(), 1);

  gate.Open();
  ASSERT_TRUE(MustResolve(bait).ok());
  for (auto& f : queued) ASSERT_TRUE(MustResolve(f).ok());
  cluster.Drain();
  EXPECT_EQ(cluster.metrics().total_outcomes(), 4);
}

}  // namespace
}  // namespace deepmap
