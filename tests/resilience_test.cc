// Resilience tests for the serving stack: deadlines with stage attribution,
// admission-control load shedding, retry-with-backoff, graceful degradation,
// outcome accounting, and deterministic race/chaos coverage driven by fail
// points instead of sleeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/model.h"
#include "nn/serialization.h"
#include "serve/engine.h"

namespace deepmap {
namespace {

using serve::InferenceEngine;
using serve::MicroBatcher;
using serve::Prediction;
using serve::PredictionSource;
using serve::RequestOptions;
using serve::ServeOutcome;
using serve::ServeRequest;

constexpr auto kWatchdog = std::chrono::seconds(20);

/// Leaves the process-wide fail-point registry clean no matter how a test
/// exits, so one test's faults can never leak into the next.
struct FailPointGuard {
  ~FailPointGuard() { FailPointRegistry::Instance().DisableAll(); }
};

/// A gate that a fail-point hook can park a dispatcher thread on. Once
/// opened it stays open, so late evaluations (e.g. during shutdown drain)
/// never deadlock.
struct DispatchGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> parked{0};

  void Park() {
    ++parked;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void AwaitParked() {
    while (parked.load() == 0) std::this_thread::yield();
  }
};

/// Blocks until `f` resolves or the watchdog fires; a timeout means a
/// promise was abandoned, which the serving stack must never do.
StatusOr<Prediction> MustResolve(std::future<StatusOr<Prediction>>& f) {
  EXPECT_EQ(f.wait_for(kWatchdog), std::future_status::ready)
      << "future abandoned";
  return f.get();
}

// Shared trained bundle (training is the slow part; once per process).
struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
  serve::ModelRegistry registry;
  std::shared_ptr<serve::ServableModel> servable;
  int majority_label = 0;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();

    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 2;
    b->config.train.batch_size = 8;

    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);

    Status s = b->registry.Adopt("ptc_mm", b->dataset, b->config, *b->model);
    DEEPMAP_CHECK(s.ok());
    b->servable = b->registry.Get("ptc_mm");
    DEEPMAP_CHECK(b->servable != nullptr);

    // Majority class of the reference labels, first-maximal on ties —
    // matching how ServableModel derives its fallback prediction.
    std::map<int, int> counts;
    for (int label : b->dataset.labels()) ++counts[label];
    int best = 0;
    for (const auto& [label, count] : counts) {
      if (count > best) {
        best = count;
        b->majority_label = label;
      }
    }
    return b;
  }();
  return *bundle;
}

InferenceEngine::Options FastOptions() {
  InferenceEngine::Options options;
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 200;
  options.cache_capacity = 0;  // force the full pipeline unless a test opts in
  return options;
}

// ---------------------------------------------------------------------------
// Deadlines with stage attribution

TEST(DeadlineTest, ExpiredAtAdmissionIsRejectedBeforeQueueing) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, FastOptions());

  RequestOptions request;
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto f = engine.Submit(b.dataset.graph(0), request);
  StatusOr<Prediction> result = MustResolve(f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("stage=admission"),
            std::string::npos)
      << result.status().ToString();

  const serve::ServeMetrics& m = engine.metrics();
  EXPECT_EQ(m.deadline_exceeded("admission"), 1);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kDeadlineExceeded), 1);
  // The expired request never consumed a batch.
  EXPECT_EQ(m.num_batches(), 0);
}

TEST(DeadlineTest, ExpiryWhileQueuedIsAttributedToPreprocess) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, FastOptions());

  // Park the dispatcher (once) until the request's deadline has passed —
  // a deterministic stand-in for a backed-up queue, no sleeps in the
  // assertion path.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [deadline] {
    std::this_thread::sleep_until(deadline + std::chrono::milliseconds(2));
  };
  FailPointRegistry::Instance().Enable("serve.batcher.dispatch",
                                       std::move(spec));

  RequestOptions request;
  request.deadline = deadline;
  auto f = engine.Submit(b.dataset.graph(0), request);
  StatusOr<Prediction> result = MustResolve(f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("stage=preprocess"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(engine.metrics().deadline_exceeded("preprocess"), 1);
  // Skipped before preprocessing cost anything (0us recorded for the stage).
  EXPECT_EQ(engine.metrics().Latency("preprocess").max, 0.0);
}

TEST(DeadlineTest, ExpiryAfterPreprocessIsAttributedToForward) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, FastOptions());

  // Preprocessing finishes well inside the deadline; the sync point between
  // the pipeline stages then parks until it has expired, pinning the
  // forward-stage attribution deterministically.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  FailPointSpec spec = FailPointSpec::Once();
  spec.on_trigger = [deadline] {
    std::this_thread::sleep_until(deadline + std::chrono::milliseconds(2));
  };
  FailPointRegistry::Instance().Enable("serve.engine.before_forward",
                                       std::move(spec));

  RequestOptions request;
  request.deadline = deadline;
  auto f = engine.Submit(b.dataset.graph(0), request);
  StatusOr<Prediction> result = MustResolve(f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("stage=forward"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(engine.metrics().deadline_exceeded("forward"), 1);
  // Preprocessing ran; only the forward pass was abandoned.
  EXPECT_EQ(engine.metrics().stage_count("preprocess"), 1);
}

// ---------------------------------------------------------------------------
// MicroBatcher races, made deterministic with fail-point gates

ServeRequest MakeRequest(const graph::Graph& g) {
  ServeRequest r;
  r.graph = g;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(MicroBatcherRaceTest, QueueFullOverflowNeverAbandonsPromises) {
  FailPointGuard guard;
  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Always();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.batcher.dispatch",
                                       std::move(spec));

  MicroBatcher::Options options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.queue_capacity = 2;
  std::atomic<int> handled{0};
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch,
                                    size_t) {
    handled += static_cast<int>(batch.size());
    for (ServeRequest& r : batch) {
      Prediction p;
      p.label = 0;
      r.promise.set_value(std::move(p));
    }
  });

  graph::Graph g(1);
  std::vector<std::future<StatusOr<Prediction>>> accepted;

  // First request: dequeued by the dispatcher, which then parks in the fail
  // point hook *before* the handler runs — a deterministic stand-in for a
  // slow batch in flight.
  ServeRequest first = MakeRequest(g);
  accepted.push_back(first.promise.get_future());
  ASSERT_TRUE(batcher.Submit(std::move(first)).ok());
  gate.AwaitParked();

  // Fill the bounded queue behind the parked dispatcher, then overflow it.
  for (int i = 0; i < 2; ++i) {
    ServeRequest r = MakeRequest(g);
    accepted.push_back(r.promise.get_future());
    ASSERT_TRUE(batcher.Submit(std::move(r)).ok());
  }
  ServeRequest overflow = MakeRequest(g);
  auto overflow_future = overflow.promise.get_future();
  Status s = batcher.Submit(std::move(overflow));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(s.code()));
  // A failed Submit must leave the caller's promise untouched (the engine
  // still owns it and rejects through it).
  EXPECT_EQ(overflow_future.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);

  gate.Open();
  for (auto& f : accepted) EXPECT_TRUE(MustResolve(f).ok());
  EXPECT_EQ(handled.load(), 3);
}

TEST(MicroBatcherRaceTest, StopWhileRequestsEnqueuedDrainsEveryPromise) {
  FailPointGuard guard;
  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Once();  // park the first dispatch only
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.batcher.dispatch",
                                       std::move(spec));

  MicroBatcher::Options options;
  options.max_batch = 1;
  options.max_wait_us = 0;
  options.queue_capacity = 64;
  std::atomic<int> handled{0};
  auto batcher = std::make_unique<MicroBatcher>(
      options, [&](std::vector<ServeRequest>&& batch, size_t) {
        handled += static_cast<int>(batch.size());
        for (ServeRequest& r : batch) {
          Prediction p;
          p.label = 0;
          r.promise.set_value(std::move(p));
        }
      });

  graph::Graph g(1);
  std::vector<std::future<StatusOr<Prediction>>> futures;
  ServeRequest first = MakeRequest(g);
  futures.push_back(first.promise.get_future());
  ASSERT_TRUE(batcher->Submit(std::move(first)).ok());
  gate.AwaitParked();

  // Five more requests pile up behind the parked dispatch.
  for (int i = 0; i < 5; ++i) {
    ServeRequest r = MakeRequest(g);
    futures.push_back(r.promise.get_future());
    ASSERT_TRUE(batcher->Submit(std::move(r)).ok());
  }

  // Stop concurrently with the parked dispatch: it must wait for the
  // in-flight batch, then drain the queued five, never dropping a promise.
  std::thread stopper([&] { batcher->Stop(); });
  gate.Open();
  stopper.join();

  ServeRequest late = MakeRequest(g);
  Status s = batcher->Submit(std::move(late));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);  // permanent
  EXPECT_FALSE(IsRetryable(s.code()));

  for (auto& f : futures) EXPECT_TRUE(MustResolve(f).ok());
  EXPECT_EQ(handled.load(), 6);
  batcher.reset();
}

// ---------------------------------------------------------------------------
// Admission control, retry, degradation

TEST(AdmissionControlTest, FullQueueShedsDeterministically) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();

  DispatchGate gate;
  FailPointSpec spec = FailPointSpec::Always();
  spec.on_trigger = [&gate] { gate.Park(); };
  FailPointRegistry::Instance().Enable("serve.batcher.dispatch",
                                       std::move(spec));

  InferenceEngine::Options options = FastOptions();
  options.batcher.max_batch = 1;
  options.batcher.max_wait_us = 0;
  options.batcher.queue_capacity = 2;
  options.admission.queue_shed_watermark = 0.5;
  InferenceEngine engine(b.servable, options);

  std::vector<std::future<StatusOr<Prediction>>> accepted;
  // The dispatcher dequeues this request and parks, leaving the queue empty.
  accepted.push_back(engine.Submit(b.dataset.graph(0)));
  gate.AwaitParked();
  // Queue depth 0 then 1/2 = watermark exactly: shed probability still 0.
  accepted.push_back(engine.Submit(b.dataset.graph(1)));
  accepted.push_back(engine.Submit(b.dataset.graph(2)));
  // Depth 2/2: utilization 1.0 -> certain shed, before touching the queue.
  auto shed = engine.Submit(b.dataset.graph(3));
  StatusOr<Prediction> result = MustResolve(shed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("queue depth 2/2"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_TRUE(IsRetryable(result.status().code()));
  EXPECT_EQ(engine.metrics().shed(), 1);
  EXPECT_EQ(engine.metrics().outcome_count(ServeOutcome::kShed), 1);

  gate.Open();
  for (auto& f : accepted) EXPECT_TRUE(MustResolve(f).ok());
}

TEST(RetryTest, ClassifyRetriesTransientSubmitFault) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options = FastOptions();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_us = 50;
  InferenceEngine engine(b.servable, options);

  // First enqueue attempt fails with a transient injected fault; the retry
  // path must back off and succeed on the second attempt.
  FailPointRegistry::Instance().Enable("serve.batcher.submit",
                                       FailPointSpec::Once());
  StatusOr<Prediction> result = engine.Classify(b.dataset.graph(0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(engine.metrics().retries(), 1);
  // Both attempts were accounted: one rejected outcome, one ok.
  EXPECT_EQ(engine.metrics().outcome_count(ServeOutcome::kRejected), 1);
  EXPECT_EQ(engine.metrics().outcome_count(ServeOutcome::kOk), 1);

  // Client errors are not retryable: no further retries burned.
  StatusOr<Prediction> invalid = engine.Classify(graph::Graph());
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.metrics().retries(), 1);
}

TEST(DegradedModeTest, FallbackAnswersWithMajorityClassWhenModelPathFails) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options = FastOptions();
  options.enable_degraded = true;
  InferenceEngine engine(b.servable, options);

  FailPointRegistry::Instance().Enable("serve.preprocess",
                                       FailPointSpec::Always());
  auto f = engine.Submit(b.dataset.graph(0));
  StatusOr<Prediction> result = MustResolve(f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().source, PredictionSource::kFallback);
  EXPECT_EQ(result.value().label, b.majority_label);

  EXPECT_EQ(engine.metrics().degraded_fallback(), 1);
  EXPECT_EQ(engine.metrics().degraded(), 1);
  EXPECT_EQ(engine.metrics().outcome_count(ServeOutcome::kDegraded), 1);
}

TEST(DegradedModeTest, StaleCacheAnswerPreferredOverFallback) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options = FastOptions();
  options.cache_capacity = 64;
  options.enable_degraded = true;
  InferenceEngine engine(b.servable, options);

  // Warm the cache with a healthy answer.
  const graph::Graph& g = b.dataset.graph(0);
  StatusOr<Prediction> warm = engine.Classify(g);
  ASSERT_TRUE(warm.ok());

  // Now an injected cache outage (once) makes admission miss, and the
  // forward pass fails — degraded mode falls back to the (by then healthy
  // again) cache entry instead of the class prior.
  FailPointRegistry::Instance().Enable("serve.cache.lookup",
                                       FailPointSpec::Once());
  FailPointRegistry::Instance().Enable("serve.forward",
                                       FailPointSpec::Always());
  auto f = engine.Submit(g);
  StatusOr<Prediction> stale = MustResolve(f);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale.value().source, PredictionSource::kStaleCache);
  EXPECT_EQ(stale.value().label, warm.value().label);
  EXPECT_EQ(engine.metrics().degraded_stale(), 1);
  EXPECT_EQ(engine.metrics().degraded_fallback(), 0);
}

TEST(DegradedModeTest, DisabledByDefaultSurfacesTypedError) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine engine(b.servable, FastOptions());

  FailPointRegistry::Instance().Enable("serve.preprocess",
                                       FailPointSpec::Always());
  auto f = engine.Submit(b.dataset.graph(0));
  StatusOr<Prediction> result = MustResolve(f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("serve.preprocess"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(engine.metrics().outcome_count(ServeOutcome::kError), 1);
}

// ---------------------------------------------------------------------------
// ServeMetrics outcome accounting under mixed dispositions

TEST(ServeMetricsOutcomeTest, MixedOutcomesSumToSubmissions) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();

  DispatchGate gate;
  {
    FailPointSpec spec = FailPointSpec::Once();
    spec.on_trigger = [&gate] { gate.Park(); };
    FailPointRegistry::Instance().Enable("serve.batcher.dispatch",
                                         std::move(spec));
  }

  InferenceEngine::Options options = FastOptions();
  options.batcher.max_batch = 1;
  options.batcher.max_wait_us = 0;
  options.batcher.queue_capacity = 2;
  options.admission.queue_shed_watermark = 0.5;
  options.enable_degraded = true;
  InferenceEngine engine(b.servable, options);

  int64_t submitted = 0;
  std::vector<std::future<StatusOr<Prediction>>> pending;

  // Phase 1 (shed): park the first dispatch (dequeued, so the queue is
  // empty again), fill the queue to capacity, then submit into certain shed.
  pending.push_back(engine.Submit(b.dataset.graph(0)));
  ++submitted;
  gate.AwaitParked();
  pending.push_back(engine.Submit(b.dataset.graph(1)));
  ++submitted;
  pending.push_back(engine.Submit(b.dataset.graph(2)));
  ++submitted;
  pending.push_back(engine.Submit(b.dataset.graph(3)));  // depth 2/2: shed
  ++submitted;
  gate.Open();
  for (auto& f : pending) (void)MustResolve(f);
  pending.clear();
  engine.Drain();

  // Phase 2 (ok): a few healthy requests.
  for (int i = 0; i < 3; ++i) {
    StatusOr<Prediction> r = engine.Classify(b.dataset.graph(i));
    ++submitted;
    EXPECT_TRUE(r.ok());
  }

  // Phase 3 (deadline): already expired at admission.
  RequestOptions expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto f = engine.Submit(b.dataset.graph(0), expired);
  ++submitted;
  (void)MustResolve(f);

  // Phase 4 (degraded): one injected preprocessing fault.
  FailPointRegistry::Instance().Enable("serve.preprocess",
                                       FailPointSpec::Once());
  StatusOr<Prediction> degraded = engine.Classify(b.dataset.graph(3));
  ++submitted;
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.value().source, PredictionSource::kFallback);

  const serve::ServeMetrics& m = engine.metrics();
  // Exactly one outcome per submission — the accounting invariant.
  EXPECT_EQ(m.total_outcomes(), submitted);
  int64_t sum = 0;
  for (int i = 0; i < serve::kNumServeOutcomes; ++i) {
    sum += m.outcome_count(static_cast<ServeOutcome>(i));
  }
  EXPECT_EQ(sum, submitted);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kOk), 6);  // 3 queued + 3 healthy
  EXPECT_EQ(m.outcome_count(ServeOutcome::kShed), 1);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kDeadlineExceeded), 1);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kDegraded), 1);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kRejected), 0);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kError), 0);

  // Percentiles of every stage are order statistics: monotone by rank.
  for (const char* stage : {"queue", "preprocess", "forward", "total"}) {
    serve::LatencySummary latency = m.Latency(stage);
    if (latency.count == 0) continue;
    EXPECT_LE(latency.p50, latency.p95) << stage;
    EXPECT_LE(latency.p95, latency.p99) << stage;
    EXPECT_LE(latency.p99, latency.max) << stage;
    EXPECT_GE(latency.p50, 0.0) << stage;
  }
}

// ---------------------------------------------------------------------------
// Chaos acceptance: saturating producer + >=10% preprocessing faults

TEST(ChaosTest, EveryFutureResolvesUnderInjectedPreprocessFaults) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  InferenceEngine::Options options = FastOptions();
  options.batcher.max_batch = 8;
  options.batcher.max_wait_us = 100;
  InferenceEngine engine(b.servable, options);

  // 15% injected preprocessing faults, deterministic stream.
  FailPointRegistry::Instance().Enable(
      "serve.preprocess", FailPointSpec::Probability(0.15, 1234));

  constexpr int kRounds = 3;
  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int round = 0; round < kRounds; ++round) {
    for (const graph::Graph& g : b.dataset.graphs()) {
      futures.push_back(engine.Submit(g));  // saturating: never waits
    }
  }
  const int64_t submitted = static_cast<int64_t>(futures.size());

  int64_t ok = 0, unavailable = 0;
  for (auto& f : futures) {
    StatusOr<Prediction> result = MustResolve(f);
    if (result.ok()) {
      ++ok;
    } else {
      // Typed, attributed, retryable: never a bare crash or a hang.
      ASSERT_EQ(result.status().code(), StatusCode::kUnavailable)
          << result.status().ToString();
      ASSERT_NE(result.status().message().find("serve.preprocess"),
                std::string::npos)
          << result.status().ToString();
      EXPECT_TRUE(IsRetryable(result.status().code()));
      ++unavailable;
    }
  }
  engine.Drain();

  EXPECT_EQ(ok + unavailable, submitted);
  EXPECT_GT(unavailable, 0);  // the fault stream actually fired
  EXPECT_GT(ok, 0);           // ... and did not take the service down
  const serve::ServeMetrics& m = engine.metrics();
  EXPECT_EQ(m.total_outcomes(), submitted);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kOk), ok);
  EXPECT_EQ(m.outcome_count(ServeOutcome::kError), unavailable);
  EXPECT_GT(
      FailPointRegistry::Instance().triggers("serve.preprocess"), 0);
}

TEST(ChaosTest, RegistryLoadFaultIsTypedAndRecoverable) {
  FailPointGuard guard;
  TrainedBundle& b = Bundle();
  auto path = std::filesystem::temp_directory_path() /
              "resilience_test_registry.bin";
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  serve::ModelRegistry registry;
  FailPointRegistry::Instance().Enable("serve.registry.load",
                                       FailPointSpec::Once());
  Status s = registry.Load("m", b.dataset, b.config, path.string());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(registry.size(), 0u);  // failed load leaves no broken servable

  // The fault was transient; the retried load succeeds.
  ASSERT_TRUE(registry.Load("m", b.dataset, b.config, path.string()).ok());
  EXPECT_EQ(registry.size(), 1u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace deepmap
