#include "kernels/treepp.h"

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/kernel_svm.h"
#include "common/rng.h"
#include "core/deepmap.h"
#include "datasets/random_graphs.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;
using graph::GraphDataset;
using graph::Vertex;

TEST(TreePpTest, IsolatedVertexHasOnlyRootPath) {
  Graph g(1, /*label=*/3);
  auto features = VertexTreePpFeatureMaps(g);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_DOUBLE_EQ(features[0].TotalCount(), 1.0);
}

TEST(TreePpTest, PathCountMatchesBfsTreeSize) {
  // BFS tree of depth d rooted at v visits every vertex within distance d
  // exactly once; each contributes one path feature.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  TreePpConfig config;
  config.max_depth = 2;
  auto features = VertexTreePpFeatureMaps(g, config);
  EXPECT_DOUBLE_EQ(features[0].TotalCount(), 3.0);  // 0,1,2 within 2 hops
  EXPECT_DOUBLE_EQ(features[2].TotalCount(), 5.0);  // whole path
}

TEST(TreePpTest, DepthZeroIsLabelFeature) {
  Graph a = Graph::FromEdges(2, {{0, 1}}, {3, 3});
  TreePpConfig config;
  config.max_depth = 0;
  auto features = VertexTreePpFeatureMaps(a, config);
  // Both vertices have the same label -> identical single feature.
  EXPECT_DOUBLE_EQ(features[0].Dot(features[1]), 1.0);
}

TEST(TreePpTest, DistinguishesLabelSequences) {
  Graph a = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 1, 2});
  Graph b = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 2, 1});
  SparseFeatureMap fa = TreePpFeatureMap(a);
  SparseFeatureMap fb = TreePpFeatureMap(b);
  EXPECT_LT(fa.Dot(fb), fa.Dot(fa));
}

TEST(TreePpTest, PermutationInvariant) {
  Rng rng(13);
  Graph g = datasets::ErdosRenyi(9, 0.4, rng);
  for (Vertex v = 0; v < 9; ++v) g.SetLabel(v, static_cast<int>(rng.Index(3)));
  std::vector<Vertex> perm(9);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  SparseFeatureMap fg = TreePpFeatureMap(g);
  SparseFeatureMap fh = TreePpFeatureMap(g.Permuted(perm));
  EXPECT_NEAR(fg.Dot(fg), fh.Dot(fh), 1e-9);
  EXPECT_NEAR(fg.Dot(fg), fg.Dot(fh), 1e-9);
}

TEST(TreePpTest, KernelMatrixValid) {
  Rng rng(17);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    Graph g = datasets::ErdosRenyi(rng.UniformInt(4, 9), 0.4, rng);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      g.SetLabel(v, static_cast<int>(rng.Index(3)));
    }
    graphs.push_back(g);
    labels.push_back(i % 2);
  }
  GraphDataset ds("tpp", std::move(graphs), std::move(labels));
  Matrix k = TreePpKernelMatrix(ds);
  EXPECT_TRUE(IsPositiveSemidefinite(k, 1e-7));
  for (size_t i = 0; i < k.size(); ++i) EXPECT_NEAR(k[i][i], 1.0, 1e-9);
}

TEST(TreePpTest, RegisteredAsFourthFeatureMapKind) {
  EXPECT_EQ(FeatureMapKindName(FeatureMapKind::kTreePp), "TREEPP");
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 1, 0});
  GraphDataset ds("one", {g}, {0});
  VertexFeatureConfig config;
  config.kind = FeatureMapKind::kTreePp;
  config.treepp.max_depth = 2;
  auto features = ComputeDatasetVertexFeatures(ds, config);
  EXPECT_GT(features.dim(), 0);
  EXPECT_EQ(features.all()[0].size(), 3u);
}

TEST(TreePpTest, DeepMapTreePpLearnsSeparableData) {
  // DEEPMAP over Tree++ features (the paper: "DEEPMAP can be built on the
  // vertex feature maps of any substructures").
  Rng rng(3);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    Graph complete(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) complete.AddEdge(u, v);
    }
    graphs.push_back(cycle);
    labels.push_back(0);
    graphs.push_back(complete);
    labels.push_back(1);
  }
  GraphDataset ds("sep", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  core::DeepMapConfig config;
  config.features.kind = FeatureMapKind::kTreePp;
  config.features.treepp.max_depth = 2;
  config.receptive_field_size = 3;
  config.conv1_channels = 8;
  config.conv2_channels = 8;
  config.conv3_channels = 8;
  config.dense_units = 16;
  config.train.epochs = 25;
  config.train.batch_size = 8;
  core::DeepMapPipeline pipeline(ds, config);
  std::vector<int> train_idx, test_idx;
  for (int i = 0; i < ds.size(); ++i) {
    (i < 2 * ds.size() / 3 ? train_idx : test_idx).push_back(i);
  }
  auto result = pipeline.RunFold(train_idx, test_idx, 5);
  EXPECT_GT(result.test_accuracy, 0.85);
}

TEST(TreePpTest, KernelClassifiesSeparableData) {
  Rng rng(5);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    int n = 5 + static_cast<int>(rng.Index(3));
    Graph cycle(n);
    for (int v = 0; v < n; ++v) cycle.AddEdge(v, (v + 1) % n);
    Graph star(n);
    for (int v = 1; v < n; ++v) star.AddEdge(0, v);
    graphs.push_back(cycle);
    labels.push_back(0);
    graphs.push_back(star);
    labels.push_back(1);
  }
  GraphDataset ds("sep2", std::move(graphs), std::move(labels),
                  /*has_vertex_labels=*/false);
  ds.UseDegreesAsLabels();
  auto k = TreePpKernelMatrix(ds);
  auto cv = baselines::KernelSvmCrossValidate(k, ds.labels(), 4, 9);
  EXPECT_GT(cv.mean_accuracy, 90.0);
}

}  // namespace
}  // namespace deepmap::kernels
