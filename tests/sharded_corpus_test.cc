// ShardedTuCorpus: streaming round trip, corpus-wide label consistency,
// shard resumption across reopen, and strict manifest parsing.
#include "datasets/sharded_tu_corpus.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "graph/graph.h"

namespace deepmap::datasets {
namespace {

class ShardedCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("deepmap_corpus_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

graph::Graph RingGraph(int n, graph::Label label) {
  graph::Graph g;
  for (int v = 0; v < n; ++v) g.AddVertex(label);
  for (int v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

TEST_F(ShardedCorpusTest, StreamingRoundTripAcrossShards) {
  ShardedTuCorpusWriter::Options options;
  options.shard_size = 4;
  ShardedTuCorpusWriter writer(dir(), "RINGS", options);
  // 10 graphs -> shards of 4, 4, 2. Graph i is a ring of i+3 vertices, so
  // per-graph identity is visible in the vertex counts.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(RingGraph(i + 3, 0), i % 2).ok());
  }
  ASSERT_TRUE(writer.Finalize().ok());
  EXPECT_EQ(writer.shards_written(), 3);
  EXPECT_EQ(writer.graphs_written(), 10);

  auto corpus = ShardedTuCorpus::Open(dir(), "RINGS");
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ShardedTuCorpus& c = corpus.value();
  EXPECT_EQ(c.num_shards(), 3);
  EXPECT_EQ(c.total_graphs(), 10);
  EXPECT_EQ(c.num_classes(), 2);

  int seen = 0;
  while (!c.Done()) {
    auto batch = c.NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (int i = 0; i < batch.value().size(); ++i, ++seen) {
      EXPECT_EQ(batch.value().graph(i).NumVertices(), seen + 3);
      EXPECT_EQ(batch.value().graph(i).NumEdges(), seen + 3);
      EXPECT_EQ(batch.value().label(i), seen % 2);
    }
  }
  EXPECT_EQ(seen, 10);
  // Exhausted: another pull is a typed FailedPrecondition, not a crash.
  EXPECT_EQ(c.NextBatch().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ShardedCorpusTest, ClassLabelsAreConsistentAcrossShards) {
  // Raw labels {-1, 1, 7}, arranged so shard 0 sees only {-1} and shard 1
  // only {1, 7}. Per-shard compaction would map -1 -> 0 in shard 0 and
  // 1 -> 0 in shard 1; the corpus-wide remap must yield -1 -> 0, 1 -> 1,
  // 7 -> 2 everywhere.
  ShardedTuCorpusWriter::Options options;
  options.shard_size = 2;
  ShardedTuCorpusWriter writer(dir(), "SKEW", options);
  ASSERT_TRUE(writer.Append(RingGraph(3, 0), -1).ok());
  ASSERT_TRUE(writer.Append(RingGraph(4, 0), -1).ok());  // shard 0 flushed
  ASSERT_TRUE(writer.Append(RingGraph(5, 0), 1).ok());
  ASSERT_TRUE(writer.Append(RingGraph(6, 0), 7).ok());  // shard 1 flushed
  ASSERT_TRUE(writer.Finalize().ok());

  auto corpus = ShardedTuCorpus::Open(dir(), "SKEW");
  ASSERT_TRUE(corpus.ok());
  ShardedTuCorpus& c = corpus.value();
  EXPECT_EQ(c.num_classes(), 3);
  EXPECT_EQ(c.class_labels(), (std::vector<int>{-1, 1, 7}));

  auto shard0 = c.NextBatch();
  ASSERT_TRUE(shard0.ok());
  EXPECT_EQ(shard0.value().labels(), (std::vector<int>{0, 0}));
  auto shard1 = c.NextBatch();
  ASSERT_TRUE(shard1.ok());
  EXPECT_EQ(shard1.value().labels(), (std::vector<int>{1, 2}));
}

TEST_F(ShardedCorpusTest, SeekShardResumesAndSurvivesReopen) {
  ShardedTuCorpusWriter::Options options;
  options.shard_size = 3;
  ShardedTuCorpusWriter writer(dir(), "RESUME", options);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(writer.Append(RingGraph(i + 3, 0), 0).ok());
  }
  ASSERT_TRUE(writer.Finalize().ok());

  int checkpoint = 0;
  {
    auto corpus = ShardedTuCorpus::Open(dir(), "RESUME");
    ASSERT_TRUE(corpus.ok());
    ASSERT_TRUE(corpus.value().NextBatch().ok());  // consume shard 0
    checkpoint = corpus.value().next_shard();
    EXPECT_EQ(checkpoint, 1);
  }  // "process" exits; only the integer checkpoint survives

  auto corpus = ShardedTuCorpus::Open(dir(), "RESUME");
  ASSERT_TRUE(corpus.ok());
  ShardedTuCorpus& c = corpus.value();
  ASSERT_TRUE(c.SeekShard(checkpoint).ok());
  auto batch = c.NextBatch();
  ASSERT_TRUE(batch.ok());
  // Shard 1 starts at graph 3 (ring of 6 vertices).
  EXPECT_EQ(batch.value().graph(0).NumVertices(), 6);

  // Rewind replays from the start; seeking to num_shards() is Done.
  ASSERT_TRUE(c.SeekShard(0).ok());
  EXPECT_FALSE(c.Done());
  ASSERT_TRUE(c.SeekShard(c.num_shards()).ok());
  EXPECT_TRUE(c.Done());
  EXPECT_EQ(c.SeekShard(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.SeekShard(c.num_shards() + 1).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardedCorpusTest, AppendAfterFinalizeIsFailedPrecondition) {
  ShardedTuCorpusWriter writer(dir(), "DONE");
  ASSERT_TRUE(writer.Append(RingGraph(3, 0), 0).ok());
  ASSERT_TRUE(writer.Finalize().ok());
  EXPECT_EQ(writer.Append(RingGraph(3, 0), 0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.Finalize().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ShardedCorpusTest, FailedFlushIsStickyAndNeverReachesTheManifest) {
  // Shard writes land in a directory that does not exist, so the very first
  // flush fails. The failed shard must not be committed to the manifest
  // bookkeeping, and the writer must refuse all further work: a manifest
  // declaring a shard that is missing on disk would only surface later as a
  // confusing read-side mismatch.
  const std::string missing = dir() + "/no_such_subdir";
  ShardedTuCorpusWriter::Options options;
  options.shard_size = 1;
  ShardedTuCorpusWriter writer(missing, "LOST", options);

  Status s = writer.Append(RingGraph(3, 0), 0);  // shard_size 1: flushes now
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(writer.shards_written(), 0);  // failed shard not committed

  // Sticky: later Appends and Finalize replay the flush error, and no
  // manifest is written.
  EXPECT_EQ(writer.Append(RingGraph(4, 0), 0).code(), StatusCode::kIoError);
  EXPECT_EQ(writer.Finalize().code(), StatusCode::kIoError);
  EXPECT_FALSE(
      std::filesystem::exists(missing + "/LOST_manifest.txt"));
}

TEST_F(ShardedCorpusTest, MissingManifestIsIoError) {
  auto corpus = ShardedTuCorpus::Open(dir(), "NOPE");
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIoError);
}

TEST_F(ShardedCorpusTest, CorruptManifestIsInvalidArgument) {
  ShardedTuCorpusWriter writer(dir(), "CORRUPT");
  ASSERT_TRUE(writer.Append(RingGraph(3, 0), 0).ok());
  ASSERT_TRUE(writer.Finalize().ok());

  const std::string manifest = dir() + "/CORRUPT_manifest.txt";
  for (const char* bad : {
           "not a manifest\n",
           "tu_corpus v1\nname CORRUPT\nshard_size 12abc\n",
           "tu_corpus v1\nname CORRUPT\nshard_size 4096\nvertex_labels 1\n"
           "shards 2\ngraphs 1\nlabels 0\nshard 0 1\n",  // shard count lies
           "tu_corpus v1\nname CORRUPT\nshard_size 4096\nvertex_labels 1\n"
           "shards 1\ngraphs 5\nlabels 0\nshard 0 1\n",  // graph count lies
       }) {
    {
      std::ofstream f(manifest);
      f << bad;
    }
    auto corpus = ShardedTuCorpus::Open(dir(), "CORRUPT");
    ASSERT_FALSE(corpus.ok()) << bad;
    EXPECT_EQ(corpus.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST_F(ShardedCorpusTest, ShardDisagreeingWithManifestIsInvalidArgument) {
  ShardedTuCorpusWriter::Options options;
  options.shard_size = 2;
  ShardedTuCorpusWriter writer(dir(), "LIAR", options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.Append(RingGraph(3, 0), 0).ok());
  }
  ASSERT_TRUE(writer.Finalize().ok());
  // Truncate shard 0's graph_labels so the shard holds fewer graphs than
  // the manifest declares.
  {
    std::ofstream f(dir() + "/" + CorpusShardName("LIAR", 0) +
                    "_graph_labels.txt");
    f << "0\n";
  }
  auto corpus = ShardedTuCorpus::Open(dir(), "LIAR");
  ASSERT_TRUE(corpus.ok());
  auto batch = corpus.value().NextBatch();
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deepmap::datasets
