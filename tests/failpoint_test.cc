// Tests for the fail-point framework: trigger modes, determinism, env/spec
// parsing, counters, sync-point hooks, and the zero-cost disabled path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/parallel.h"

namespace deepmap {
namespace {

/// Leaves the process-wide registry clean no matter how a test exits.
struct FailPointGuard {
  ~FailPointGuard() { FailPointRegistry::Instance().DisableAll(); }
};

TEST(FailPointTest, DisabledPointsNeverTrigger) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  EXPECT_FALSE(registry.ShouldTrigger("never.enabled"));
  EXPECT_FALSE(DEEPMAP_FAILPOINT_TRIGGERED("never.enabled"));
  EXPECT_EQ(registry.evaluations("never.enabled"), 0);
  EXPECT_EQ(registry.triggers("never.enabled"), 0);
}

TEST(FailPointTest, AnyActiveTracksActivation) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.DisableAll();
  EXPECT_FALSE(FailPointRegistry::AnyActive());
  registry.Enable("a", FailPointSpec::Always());
  registry.Enable("b", FailPointSpec::Once());
  EXPECT_TRUE(FailPointRegistry::AnyActive());
  registry.Disable("a");
  EXPECT_TRUE(FailPointRegistry::AnyActive());
  registry.Disable("b");
  EXPECT_FALSE(FailPointRegistry::AnyActive());
  // Disabling an unknown name must not corrupt the active count.
  registry.Disable("b");
  EXPECT_FALSE(FailPointRegistry::AnyActive());
}

TEST(FailPointTest, AlwaysAndOnceModes) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.Enable("always", FailPointSpec::Always());
  registry.Enable("once", FailPointSpec::Once());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(registry.ShouldTrigger("always"));
    EXPECT_EQ(registry.ShouldTrigger("once"), i == 0);
  }
  EXPECT_EQ(registry.evaluations("always"), 5);
  EXPECT_EQ(registry.triggers("always"), 5);
  EXPECT_EQ(registry.evaluations("once"), 5);
  EXPECT_EQ(registry.triggers("once"), 1);
}

TEST(FailPointTest, EveryNthFiresOnMultiples) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.Enable("nth", FailPointSpec::EveryNth(3));
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    if (registry.ShouldTrigger("nth")) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST(FailPointTest, ProbabilityIsSeededAndDeterministic) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  auto run = [&](uint64_t seed) {
    registry.Enable("prob", FailPointSpec::Probability(0.3, seed));
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(registry.ShouldTrigger("prob"));
    }
    return pattern;
  };
  const std::vector<bool> first = run(7);
  const std::vector<bool> second = run(7);
  EXPECT_EQ(first, second);  // same seed -> identical firing pattern
  const std::vector<bool> other = run(8);
  EXPECT_NE(first, other);  // different stream
  // The rate is in the right ballpark (0.3 +- wide slack over 200 trials).
  const int count = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(count, 30);
  EXPECT_LT(count, 90);
}

TEST(FailPointTest, OnTriggerHookRunsOnFiringOnly) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  std::atomic<int> hook_runs{0};
  FailPointSpec spec = FailPointSpec::EveryNth(2);
  spec.on_trigger = [&] { ++hook_runs; };
  registry.Enable("hooked", std::move(spec));
  for (int i = 0; i < 6; ++i) registry.ShouldTrigger("hooked");
  EXPECT_EQ(hook_runs.load(), 3);
}

TEST(FailPointTest, SpecStringParsing) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  EXPECT_TRUE(registry.EnableFromString("s1", "always").ok());
  EXPECT_TRUE(registry.EnableFromString("s2", "once").ok());
  EXPECT_TRUE(registry.EnableFromString("s3", "every:4").ok());
  EXPECT_TRUE(registry.EnableFromString("s4", "p:0.5").ok());
  EXPECT_TRUE(registry.EnableFromString("s5", "p:0.25:99").ok());
  EXPECT_EQ(registry.ActiveNames().size(), 5u);
  EXPECT_TRUE(registry.EnableFromString("s5", "off").ok());
  EXPECT_FALSE(registry.IsEnabled("s5"));

  EXPECT_FALSE(registry.EnableFromString("bad", "sometimes").ok());
  EXPECT_FALSE(registry.EnableFromString("bad", "every:0").ok());
  EXPECT_FALSE(registry.EnableFromString("bad", "every:x").ok());
  EXPECT_FALSE(registry.EnableFromString("bad", "p:1.5").ok());
  EXPECT_FALSE(registry.EnableFromString("bad", "p:0.5:zz").ok());
  EXPECT_FALSE(registry.EnableFromString("", "always").ok());
  EXPECT_FALSE(registry.IsEnabled("bad"));
}

TEST(FailPointTest, LoadFromEnvParsesMultipleEntries) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  ::setenv("DEEPMAP_FAILPOINTS", "env.a=always; env.b=p:0.1:3 ;env.c=every:2",
           1);
  ASSERT_TRUE(registry.LoadFromEnv().ok());
  EXPECT_TRUE(registry.IsEnabled("env.a"));
  EXPECT_TRUE(registry.IsEnabled("env.b"));
  EXPECT_TRUE(registry.IsEnabled("env.c"));

  ::setenv("DEEPMAP_FAILPOINTS", "missing-equals", 1);
  EXPECT_FALSE(registry.LoadFromEnv().ok());
  ::unsetenv("DEEPMAP_FAILPOINTS");
  EXPECT_TRUE(registry.LoadFromEnv().ok());  // unset -> no-op
}

TEST(FailPointTest, ReEnableResetsCountersAndState) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.Enable("reset", FailPointSpec::Once());
  EXPECT_TRUE(registry.ShouldTrigger("reset"));
  EXPECT_FALSE(registry.ShouldTrigger("reset"));
  registry.Enable("reset", FailPointSpec::Once());  // re-arm
  EXPECT_EQ(registry.evaluations("reset"), 0);
  EXPECT_TRUE(registry.ShouldTrigger("reset"));
}

TEST(FailPointTest, InjectedErrorIsTypedAndAttributed) {
  FailPointGuard guard;
  FailPointRegistry::Instance().Enable("site.name",
                                       FailPointSpec::Always());
  auto fallible = []() -> Status {
    DEEPMAP_INJECT_FAULT("site.name");
    return Status::Ok();
  };
  Status s = fallible();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("site.name"), std::string::npos);
  EXPECT_TRUE(IsRetryable(s.code()));
}

TEST(FailPointTest, ThreadPoolDelayFaultPreservesSemantics) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.Enable("pool.task.delay", FailPointSpec::EveryNth(2));
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { ++done; });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 16);  // delays never drop or reorder completions
  EXPECT_GT(registry.triggers("pool.task.delay"), 0);
}

TEST(FailPointTest, ConcurrentEvaluationIsSafe) {
  FailPointGuard guard;
  FailPointRegistry& registry = FailPointRegistry::Instance();
  registry.Enable("contended", FailPointSpec::Probability(0.5, 11));
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        if (registry.ShouldTrigger("contended")) ++fired;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.evaluations("contended"), 2000);
  EXPECT_EQ(registry.triggers("contended"), fired.load());
}

}  // namespace
}  // namespace deepmap
