// Tests for the pluggable inference-backend layer: fp32 reference
// bit-identity through explicit backend selection, the int8 quantized
// backend's accuracy + scalar/AVX2 equivalence, ModelRegistry backend error
// paths (unknown names, guardrail fallback, sidecar tag persistence), and
// the deepmap_serve_backend_* metrics those paths emit.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/deepmap.h"
#include "datasets/registry.h"
#include "nn/inference_backend.h"
#include "nn/int8_backend.h"
#include "nn/model.h"
#include "nn/serialization.h"
#include "serve/model_registry.h"

namespace deepmap {
namespace {

using serve::CompiledModel;
using serve::ForwardScratch;
using serve::ModelRegistry;

std::filesystem::path TempFile(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

struct TrainedBundle {
  graph::GraphDataset dataset;
  core::DeepMapConfig config;
  std::unique_ptr<core::DeepMapPipeline> pipeline;
  std::unique_ptr<core::DeepMapModel> model;
};

TrainedBundle& Bundle() {
  static TrainedBundle* bundle = [] {
    auto* b = new TrainedBundle();
    datasets::DatasetOptions options;
    options.min_graphs = 30;
    auto dataset_or = datasets::MakeDataset("PTC_MM", options);
    DEEPMAP_CHECK(dataset_or.ok());
    b->dataset = std::move(dataset_or).value();
    b->config.features.kind = kernels::FeatureMapKind::kWlSubtree;
    b->config.features.wl.iterations = 2;
    b->config.features.max_dense_dim = 32;
    b->config.train.epochs = 3;
    b->config.train.batch_size = 8;
    b->pipeline =
        std::make_unique<core::DeepMapPipeline>(b->dataset, b->config);
    b->model = std::make_unique<core::DeepMapModel>(
        b->pipeline->feature_dim(), b->pipeline->sequence_length(),
        b->pipeline->num_classes(), b->config);
    nn::TrainClassifier(*b->model, b->pipeline->inputs(),
                        b->dataset.labels(), b->config.train);
    return b;
  }();
  return *bundle;
}

// ---------------------------------------------------------------------------
// Backend factory

TEST(InferenceBackendTest, FactoryKnowsFp32AndInt8) {
  const std::vector<std::string> names = nn::InferenceBackendNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "fp32");
  EXPECT_EQ(names[1], "int8");
  for (const std::string& name : names) {
    auto backend = nn::MakeInferenceBackend(name);
    ASSERT_TRUE(backend.ok()) << name;
    EXPECT_EQ(backend.value()->name(), name);
  }
}

TEST(InferenceBackendTest, FactoryRejectsUnknownNameWithKnownList) {
  auto backend = nn::MakeInferenceBackend("int4");
  ASSERT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
  // The error must name the offender and the valid choices.
  EXPECT_NE(backend.status().message().find("int4"), std::string::npos);
  EXPECT_NE(backend.status().message().find("fp32"), std::string::npos);
  EXPECT_NE(backend.status().message().find("int8"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fp32 reference backend: the refactor must not move a single bit

TEST(BackendBitIdentityTest, ExplicitFp32OptionsMatchTrainingStack) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.backend = "fp32";
  ASSERT_TRUE(
      registry.Adopt("fp32", b.dataset, b.config, *b.model, options).ok());
  auto servable = registry.Get("fp32");
  ASSERT_NE(servable, nullptr);
  EXPECT_STREQ(servable->backend_name(), "fp32");
  EXPECT_EQ(servable->backend_report().requested, "fp32");
  EXPECT_FALSE(servable->backend_report().fell_back);

  ForwardScratch scratch;
  for (int i = 0; i < b.dataset.size(); ++i) {
    const nn::Tensor& input = b.pipeline->inputs()[i];
    nn::Tensor offline = b.model->Forward(input, false);
    nn::Tensor served = servable->compiled().Logits(input, &scratch);
    ASSERT_EQ(served.NumElements(), offline.NumElements());
    for (int c = 0; c < offline.NumElements(); ++c) {
      ASSERT_EQ(served.data()[c], offline.data()[c])
          << "graph " << i << " logit " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// int8 quantized backend

TEST(Int8BackendTest, SurvivesGuardrailAndAgreesWithFp32) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.backend = "int8";
  options.calibration_graphs = 32;
  options.max_argmax_disagreement = 0.25;  // generous: this asserts accuracy
                                           // is sane, not a tuned bound
  ASSERT_TRUE(
      registry.Adopt("int8", b.dataset, b.config, *b.model, options).ok());
  auto servable = registry.Get("int8");
  ASSERT_NE(servable, nullptr);

  const serve::BackendReport& report = servable->backend_report();
  EXPECT_EQ(report.requested, "int8");
  EXPECT_EQ(report.active, "int8");
  EXPECT_FALSE(report.fell_back);
  EXPECT_STREQ(servable->backend_name(), "int8");
  EXPECT_GT(report.calibration_size, 0);
  EXPECT_LE(report.argmax_disagreements,
            static_cast<int>(0.25 * report.calibration_size));
  EXPECT_GT(report.max_abs_logit_diff, 0.0f);  // quantization is not exact
  EXPECT_EQ(registry.backend_loads(), 1);
  EXPECT_EQ(registry.backend_fallbacks(), 0);
}

TEST(Int8BackendTest, PackedWeightsSmallerThanFp32) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.calibration_graphs = 0;
  options.backend = "fp32";
  ASSERT_TRUE(
      registry.Adopt("fp32", b.dataset, b.config, *b.model, options).ok());
  options.backend = "int8";
  ASSERT_TRUE(
      registry.Adopt("int8", b.dataset, b.config, *b.model, options).ok());
  // int8 values are stored widened to int16: 2 bytes/weight vs 4 for fp32.
  EXPECT_LT(registry.Get("int8")->compiled().PackedWeightBytes(),
            registry.Get("fp32")->compiled().PackedWeightBytes());
}

TEST(Int8BackendTest, ScalarAndAvx2KernelsBitIdentical) {
  if (!nn::Int8Backend::CpuHasAvx2()) {
    GTEST_SKIP() << "no AVX2 on this host";
  }
  TrainedBundle& b = Bundle();
  nn::Int8Backend avx2(/*force_scalar=*/false);
  nn::Int8Backend scalar(/*force_scalar=*/true);
  ASSERT_TRUE(avx2.using_avx2());
  ASSERT_FALSE(scalar.using_avx2());

  auto vec_cm = CompiledModel::Compile(*b.model, b.config,
                                       b.pipeline->feature_dim(),
                                       b.pipeline->sequence_length(),
                                       b.pipeline->num_classes(), &avx2);
  auto sca_cm = CompiledModel::Compile(*b.model, b.config,
                                       b.pipeline->feature_dim(),
                                       b.pipeline->sequence_length(),
                                       b.pipeline->num_classes(), &scalar);
  ASSERT_TRUE(vec_cm.ok());
  ASSERT_TRUE(sca_cm.ok());

  ForwardScratch vec_scratch, sca_scratch;
  for (int i = 0; i < b.dataset.size(); ++i) {
    const nn::Tensor& input = b.pipeline->inputs()[i];
    nn::Tensor vec = vec_cm.value().Logits(input, &vec_scratch);
    nn::Tensor sca = sca_cm.value().Logits(input, &sca_scratch);
    ASSERT_EQ(vec.NumElements(), sca.NumElements());
    ASSERT_EQ(std::memcmp(vec.data(), sca.data(),
                          sizeof(float) * static_cast<size_t>(
                                              vec.NumElements())),
              0)
        << "graph " << i;
  }
}

// ---------------------------------------------------------------------------
// Registry error paths + guardrail fallback

TEST(RegistryBackendTest, UnknownBackendNameIsInvalidArgument) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.backend = "bf16";
  Status s = registry.Adopt("nope", b.dataset, b.config, *b.model, options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("bf16"), std::string::npos) << s.ToString();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.backend_loads(), 0);
}

TEST(RegistryBackendTest, GuardrailFallbackIsObservable) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.backend = "int8";
  options.calibration_graphs = 16;
  options.max_argmax_disagreement = -1.0;  // force the fallback path
  ASSERT_TRUE(
      registry.Adopt("forced", b.dataset, b.config, *b.model, options).ok());
  auto servable = registry.Get("forced");
  ASSERT_NE(servable, nullptr);

  const serve::BackendReport& report = servable->backend_report();
  EXPECT_EQ(report.requested, "int8");
  EXPECT_EQ(report.active, "fp32");
  EXPECT_TRUE(report.fell_back);
  EXPECT_STREQ(servable->backend_name(), "fp32");
  EXPECT_EQ(registry.backend_fallbacks(), 1);

  // After falling back, the servable is the exact fp32 reference.
  ForwardScratch scratch;
  const nn::Tensor& input = b.pipeline->inputs()[0];
  nn::Tensor offline = b.model->Forward(input, false);
  nn::Tensor served = servable->compiled().Logits(input, &scratch);
  for (int c = 0; c < offline.NumElements(); ++c) {
    ASSERT_EQ(served.data()[c], offline.data()[c]);
  }

  // The fallback is visible in the Prometheus exposition.
  std::ostringstream out;
  registry.metrics().WritePrometheusText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("deepmap_serve_backend_fallback_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("deepmap_serve_backend_loads_total"), std::string::npos);
}

TEST(RegistryBackendTest, ZeroCalibrationDisablesGuardrail) {
  TrainedBundle& b = Bundle();
  ModelRegistry registry;
  ModelRegistry::Options options;
  options.backend = "int8";
  options.calibration_graphs = 0;
  options.max_argmax_disagreement = -1.0;  // would force fallback if checked
  ASSERT_TRUE(
      registry.Adopt("unchecked", b.dataset, b.config, *b.model, options).ok());
  auto servable = registry.Get("unchecked");
  ASSERT_NE(servable, nullptr);
  EXPECT_STREQ(servable->backend_name(), "int8");
  EXPECT_FALSE(servable->backend_report().fell_back);
  EXPECT_EQ(servable->backend_report().calibration_size, 0);
  EXPECT_EQ(registry.backend_fallbacks(), 0);
}

// ---------------------------------------------------------------------------
// Backend sidecar tag persistence

TEST(RegistryBackendTest, PersistedTagRestoresBackendOnPlainLoad) {
  TrainedBundle& b = Bundle();
  auto path = TempFile("backend_test_tagged_model.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  {
    ModelRegistry registry;
    ModelRegistry::Options options;
    options.backend = "int8";
    options.calibration_graphs = 0;
    options.persist_backend_tag = true;
    ASSERT_TRUE(
        registry.Load("tagged", b.dataset, b.config, path.string(), options)
            .ok());
  }
  const std::string tag_path = ModelRegistry::BackendTagPath(path.string());
  ASSERT_TRUE(std::filesystem::exists(tag_path));
  auto tag = ModelRegistry::ReadBackendTag(path.string());
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(tag.value(), "int8");

  // A plain Load (no options) must pick the persisted backend up.
  ModelRegistry reloaded;
  ASSERT_TRUE(
      reloaded.Load("reloaded", b.dataset, b.config, path.string()).ok());
  auto servable = reloaded.Get("reloaded");
  ASSERT_NE(servable, nullptr);
  EXPECT_EQ(servable->backend_report().requested, "int8");

  std::filesystem::remove(path);
  std::filesystem::remove(tag_path);
}

TEST(RegistryBackendTest, MissingTagDefaultsToFp32) {
  TrainedBundle& b = Bundle();
  auto path = TempFile("backend_test_untagged_model.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());

  ModelRegistry registry;
  ASSERT_TRUE(
      registry.Load("untagged", b.dataset, b.config, path.string()).ok());
  EXPECT_STREQ(registry.Get("untagged")->backend_name(), "fp32");
  std::filesystem::remove(path);
}

TEST(RegistryBackendTest, CorruptTagFailsLoudlyOnPlainLoad) {
  TrainedBundle& b = Bundle();
  auto path = TempFile("backend_test_corrupt_tag_model.bin");
  ASSERT_TRUE(nn::SaveParameters(b.model->Params(), path.string()).ok());
  const std::string tag_path = ModelRegistry::BackendTagPath(path.string());
  {
    std::ofstream tag(tag_path);
    tag << "int9000\n";
  }

  ModelRegistry registry;
  Status s = registry.Load("corrupt", b.dataset, b.config, path.string());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("int9000"), std::string::npos) << s.ToString();
  EXPECT_EQ(registry.size(), 0u);

  // An explicit backend choice overrides the corrupt tag entirely.
  ModelRegistry::Options options;
  options.backend = "fp32";
  EXPECT_TRUE(
      registry.Load("explicit", b.dataset, b.config, path.string(), options)
          .ok());

  std::filesystem::remove(path);
  std::filesystem::remove(tag_path);
}

TEST(RegistryBackendTest, WriteBackendTagValidatesName) {
  auto path = TempFile("backend_test_tag_validate.bin");
  Status s = ModelRegistry::WriteBackendTag(path.string(), "fp64");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      std::filesystem::exists(ModelRegistry::BackendTagPath(path.string())));
}

}  // namespace
}  // namespace deepmap
