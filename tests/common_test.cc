#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"

namespace deepmap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad r");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad r");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int x = rng.UniformInt(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(4);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng b = a.Fork();
  // Forked stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 20) == b.UniformInt(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ParallelTest, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(hits.size(), [&](size_t i) { hits[i]++; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, SingleThreadRunsInline) {
  int sum = 0;
  ParallelFor(10, [&](size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelTest, ZeroItemsIsNoop) {
  ParallelFor(0, [&](size_t) { FAIL(); }, 4);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] { count++; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, FormatAccuracy) {
  EXPECT_EQ(FormatAccuracy(54.53, 6.16), "54.53+-6.16");
}

TEST(TableTest, PrintAligned) {
  Table t({"Dataset", "Acc"});
  t.AddRow({"SYNTHIE", "54.53"});
  t.AddRow({"KKI", "62.92"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("SYNTHIE"), std::string::npos);
  EXPECT_NE(out.find("62.92"), std::string::npos);
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "z"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"x,y\",z"), std::string::npos);
}

}  // namespace
}  // namespace deepmap
