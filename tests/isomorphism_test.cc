#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::graph {
namespace {

Graph CycleGraph(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

TEST(CanonicalCodeTest, InvariantUnderPermutation) {
  Rng rng(42);
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}},
                             {0, 1, 0, 1, 0, 1});
  std::string base = CanonicalCode(g);
  std::vector<Vertex> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 20; ++trial) {
    rng.Shuffle(perm);
    EXPECT_EQ(CanonicalCode(g.Permuted(perm)), base);
  }
}

TEST(CanonicalCodeTest, DistinguishesLabels) {
  Graph a = Graph::FromEdges(2, {{0, 1}}, {0, 0});
  Graph b = Graph::FromEdges(2, {{0, 1}}, {0, 1});
  EXPECT_NE(CanonicalCode(a), CanonicalCode(b));
}

TEST(CanonicalCodeTest, DistinguishesStructure) {
  Graph path = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NE(CanonicalCode(path), CanonicalCode(star));
}

TEST(CanonicalEdgeMaskTest, CountsNonIsomorphicSize3Graphlets) {
  // Figure 1 of the paper: exactly 4 non-isomorphic graphs on 3 vertices.
  std::set<uint32_t> masks;
  for (uint32_t mask = 0; mask < 8; ++mask) {
    masks.insert(CanonicalEdgeMask(GraphFromEdgeMask(3, mask)));
  }
  EXPECT_EQ(masks.size(), 4u);
}

TEST(CanonicalEdgeMaskTest, CountsNonIsomorphicSize4Graphlets) {
  std::set<uint32_t> masks;
  for (uint32_t mask = 0; mask < (1u << 6); ++mask) {
    masks.insert(CanonicalEdgeMask(GraphFromEdgeMask(4, mask)));
  }
  EXPECT_EQ(masks.size(), 11u);
}

TEST(CanonicalEdgeMaskTest, CountsNonIsomorphicSize5Graphlets) {
  std::set<uint32_t> masks;
  for (uint32_t mask = 0; mask < (1u << 10); ++mask) {
    masks.insert(CanonicalEdgeMask(GraphFromEdgeMask(5, mask)));
  }
  EXPECT_EQ(masks.size(), 34u);
}

TEST(GraphFromEdgeMaskTest, RoundTripsEdges) {
  Graph g = GraphFromEdgeMask(4, 0b101001);
  EXPECT_EQ(g.NumEdges(), 3);
  uint32_t mask = 0;
  for (const auto& [u, v] : g.EdgeList()) {
    mask |= uint32_t{1} << PairBitIndex(u, v, 4);
  }
  EXPECT_EQ(mask, 0b101001u);
}

TEST(TestIsomorphismTest, IsomorphicSmall) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Graph h = g.Permuted({3, 1, 4, 0, 2});
  EXPECT_EQ(TestIsomorphism(g, h), IsoResult::kIsomorphic);
  EXPECT_TRUE(AreIsomorphic(g, h));
}

TEST(TestIsomorphismTest, DifferentEdgeCounts) {
  Graph a(3);
  a.AddEdge(0, 1);
  Graph b(3);
  EXPECT_EQ(TestIsomorphism(a, b), IsoResult::kNonIsomorphic);
}

TEST(TestIsomorphismTest, SameDegreesDifferentStructure) {
  // C6 vs two triangles: both 2-regular on 6 vertices.
  Graph c6 = CycleGraph(6);
  Graph two_triangles =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(TestIsomorphism(c6, two_triangles), IsoResult::kNonIsomorphic);
}

TEST(TestIsomorphismTest, LabelMultisetMismatch) {
  Graph a = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 0, 1});
  Graph b = Graph::FromEdges(3, {{0, 1}, {1, 2}}, {0, 1, 1});
  EXPECT_EQ(TestIsomorphism(a, b), IsoResult::kNonIsomorphic);
}

TEST(TestIsomorphismTest, LargeIsomorphicIsPossibly) {
  Rng rng(7);
  Graph g(12);
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) {
      if (rng.Bernoulli(0.3)) g.AddEdge(i, j);
    }
  }
  std::vector<Vertex> perm(12);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  Graph h = g.Permuted(perm);
  IsoResult result = TestIsomorphism(g, h);
  EXPECT_NE(result, IsoResult::kNonIsomorphic);
}

TEST(TestIsomorphismTest, LargeNonIsomorphicDetectedByWl) {
  // C12 vs two C6: same degree sequence; WL colors also match for regular
  // graphs, but component-based fingerprints differ after enough rounds only
  // via... they do NOT differ under 1-WL. Use a non-regular example instead.
  Graph a(12);
  for (int i = 0; i + 1 < 12; ++i) a.AddEdge(i, i + 1);  // path P12
  Graph b(12);
  for (int i = 1; i < 12; ++i) b.AddEdge(0, i);  // star S11
  EXPECT_EQ(TestIsomorphism(a, b), IsoResult::kNonIsomorphic);
}

TEST(WlFingerprintTest, PermutationInvariant) {
  Rng rng(9);
  Graph g = Graph::FromEdges(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}, {5, 6}},
      {0, 1, 1, 0, 2, 2, 0});
  std::vector<Vertex> perm(7);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  EXPECT_EQ(WlFingerprint(g, 3), WlFingerprint(g.Permuted(perm), 3));
}

TEST(WlFingerprintTest, ZeroIterationsIsLabelHistogram) {
  Graph a = Graph::FromEdges(3, {{0, 1}}, {2, 1, 0});
  Graph b = Graph::FromEdges(3, {{1, 2}}, {0, 2, 1});
  EXPECT_EQ(WlFingerprint(a, 0), WlFingerprint(b, 0));
}

TEST(WlFingerprintTest, CannotSeparateRegularPair) {
  // Classic 1-WL blind spot: C6 vs 2xC3 (both 2-regular, same size).
  Graph c6 = CycleGraph(6);
  Graph two_triangles =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(WlFingerprint(c6, 3), WlFingerprint(two_triangles, 3));
}

}  // namespace
}  // namespace deepmap::graph
