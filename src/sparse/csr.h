// Immutable CSR sparse matrix — the storage format of the sparse graph
// substrate (docs/sparse.md).
//
// Invariants (checked by CheckInvariants, fuzzed in tests/graph_fuzz_test.cc):
//   - row_ptr has rows()+1 entries, row_ptr[0] == 0, monotonically
//     non-decreasing, row_ptr[rows()] == nnz().
//   - Column indices within each row are strictly increasing (sorted, unique)
//     and in [0, cols()).
//   - No explicit zeros: a stored value is never 0.0. This mirrors the dense
//     GraphOp's `s == 0.0` skip, so iterating a CSR row touches exactly the
//     elements the dense loop would, in the same ascending-column order —
//     the root of the substrate's 0-ULP equivalence contract.
//
// Values are double: the dense operator stored doubles and cast to float at
// the multiply (`static_cast<float>(s) * x`), and the sparse kernels must
// reproduce that rounding exactly.
#ifndef DEEPMAP_SPARSE_CSR_H_
#define DEEPMAP_SPARSE_CSR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deepmap::sparse {

/// One explicit entry for the triplet builder.
struct Triplet {
  int32_t row = 0;
  int32_t col = 0;
  double value = 0.0;
};

/// Immutable compressed-sparse-row matrix of doubles.
class SparseMatrix {
 public:
  /// Empty 0 x 0 matrix.
  SparseMatrix() = default;

  /// n x n identity.
  static SparseMatrix Identity(int n);

  /// Builds from (row, col, value) triplets in any order. Duplicate (row,
  /// col) pairs are summed (in the order given); entries whose final value
  /// is exactly 0.0 are dropped.
  static SparseMatrix FromTriplets(int rows, int cols,
                                   std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_.size()); }

  /// CSR arrays. row_ptr()[i] .. row_ptr()[i+1] index the entries of row i.
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col() const { return col_; }
  const std::vector<double>& val() const { return val_; }

  /// Entry (i, j); 0.0 when not stored. O(log row-degree).
  double At(int i, int j) const;

  /// Transpose (counting sort over columns; result keeps all invariants).
  SparseMatrix Transpose() const;

  /// Sparse-sparse product this * other. For every output element the
  /// k-reduction accumulates in ascending k order — the same double-add
  /// chain as the dense GraphOp::Compose loop, so results are bit-identical
  /// to dense composition. O(rows + flops) time, O(other.cols()) scratch.
  SparseMatrix Multiply(const SparseMatrix& other) const;

  /// Heap bytes held by the three CSR arrays (capacity is trimmed).
  size_t MemoryBytes() const;

  /// CHECK-fails unless all structural invariants hold (see file comment).
  void CheckInvariants() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_{0};
  std::vector<int32_t> col_;
  std::vector<double> val_;
};

/// Exact structural + value equality.
bool operator==(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace deepmap::sparse

#endif  // DEEPMAP_SPARSE_CSR_H_
