// Immutable sparse linear operator over a graph's vertex set — the CSR
// counterpart of the dense nn::GraphOp matrix, and the default backing of
// every GNN propagation in the library (GCN/GIN/diffusion/DGCNN/GraphSAGE
// via nn::GraphOp, GAT via the sparse::Pattern kernels).
//
// The operator matrix and its transpose are both materialized at
// construction (the backward pass applies S^T every step, so the transpose
// is on the training hot path; graphs are built once and applied many
// times). Apply/ApplyTranspose route through the SpMM kernel family and are
// bit-identical to the dense GraphOp loops; Compose/Power run as SpGEMM
// without ever materializing an O(n^2) intermediate.
#ifndef DEEPMAP_SPARSE_SPARSE_GRAPH_H_
#define DEEPMAP_SPARSE_SPARSE_GRAPH_H_

#include <cstdint>

#include "graph/graph.h"
#include "nn/tensor.h"
#include "sparse/csr.h"

namespace deepmap::sparse {

/// CSR graph operator with cached transpose. Immutable after construction.
class SparseGraph {
 public:
  /// Identity operator on n vertices.
  static SparseGraph Identity(int n);

  /// Symmetric GCN normalization D^-1/2 (A + I) D^-1/2.
  static SparseGraph GcnNorm(const graph::Graph& g);

  /// Row-normalized D_hat^-1 (A + I) (DGCNN's propagation rule).
  static SparseGraph RowNormAdj(const graph::Graph& g);

  /// Random-walk transition matrix D^-1 A (rows of isolated vertices are 0).
  static SparseGraph Transition(const graph::Graph& g);

  /// (1 + eps) I + A — GIN's injective sum aggregation.
  static SparseGraph SumAdj(const graph::Graph& g, double eps = 0.0);

  /// Wraps an arbitrary square matrix as an operator.
  static SparseGraph FromMatrix(SparseMatrix m);

  int n() const { return matrix_.rows(); }
  int64_t nnz() const { return matrix_.nnz(); }

  const SparseMatrix& matrix() const { return matrix_; }
  const SparseMatrix& transpose() const { return transpose_; }

  /// S x for x of shape [n, c]; returns [n, c].
  nn::Tensor Apply(const nn::Tensor& x) const;

  /// S^T g (the backward map), via the cached transpose.
  nn::Tensor ApplyTranspose(const nn::Tensor& g) const;

  /// Operator composition this * other, done sparsely (SpGEMM).
  SparseGraph Compose(const SparseGraph& other) const;

  /// S^h (h >= 0; h == 0 gives the identity), done sparsely.
  SparseGraph Power(int h) const;

  /// Matrix entry (i, j); 0.0 when not stored.
  double entry(int i, int j) const { return matrix_.At(i, j); }

  /// Heap bytes of the operator incl. the cached transpose.
  size_t MemoryBytes() const {
    return matrix_.MemoryBytes() + transpose_.MemoryBytes();
  }

 private:
  explicit SparseGraph(SparseMatrix m);

  SparseMatrix matrix_;
  SparseMatrix transpose_;
};

}  // namespace deepmap::sparse

#endif  // DEEPMAP_SPARSE_SPARSE_GRAPH_H_
