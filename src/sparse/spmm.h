// Sparse kernel family for GNN propagation: SpMM (S·X), edge-weighted SpMM
// and its transpose (GAT aggregation fwd/bwd), and SDDMM (the GAT
// attention-score pattern). Follows the nn/gemm.* discipline: a runtime
// tuning struct, ParallelFor over row panels, and a determinism contract.
//
// Determinism contract: for every output element out[i][t] the reduction
// over row i's nonzeros is a single float accumulator chain in storage
// order (ascending column index for a SparseMatrix), regardless of the
// feature-column blocking or the thread count. Threads own disjoint row
// panels, so results are bit-identical to the reference dense loop —
// including NaN/Inf propagation — on all inputs. See docs/sparse.md.
#ifndef DEEPMAP_SPARSE_SPMM_H_
#define DEEPMAP_SPARSE_SPMM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "nn/tensor.h"
#include "sparse/csr.h"

namespace deepmap::sparse {

/// Runtime-tunable SpMM parameters. Rows are split into panels of
/// `row_block` rows (the parallel grain); features are processed in blocks
/// of `col_block` columns so the output panel stays register/L1-resident
/// while X rows are gathered. Neither affects results (see contract above).
struct SpmmTuning {
  int row_block = 256;   // rows per panel; also the ParallelFor grain
  int col_block = 64;    // feature columns per block
  /// nnz * feature-columns at or above which row panels are spread over
  /// ParallelFor; below it the kernel runs inline on the calling thread.
  long long parallel_min_work = 1LL << 16;
};

/// Replaces the process-wide tuning (tests/benches only; not thread-safe
/// against concurrent kernel calls). Values are clamped to be >= 1.
void SetSpmmTuning(const SpmmTuning& tuning);
SpmmTuning GetSpmmTuning();

/// out += S * x, where x is [S.cols(), c] and out is [S.rows(), c], both
/// row-major with leading dimensions ldx/ldo. Each stored s multiplies as
/// static_cast<float>(s) — the dense GraphOp's exact rounding.
void SpmmAccumulate(const SparseMatrix& s, const float* x, int ldx, int c,
                    float* out, int ldo);

/// S * x as a fresh zero-initialized [S.rows(), c] tensor.
nn::Tensor Spmm(const SparseMatrix& s, const nn::Tensor& x);

/// Sparsity pattern without values, rows in caller-defined (not necessarily
/// sorted) column order. Used where the per-edge ordering is semantic: GAT
/// neighborhoods are "self first, then sorted neighbors", and the softmax /
/// aggregation reductions follow that slot order bit-for-bit.
struct Pattern {
  int rows = 0;
  int cols = 0;
  std::vector<int64_t> row_ptr{0};
  std::vector<int32_t> col;

  int64_t nnz() const { return static_cast<int64_t>(col.size()); }
  size_t MemoryBytes() const;

  /// Pattern of the GAT neighborhood: row v lists v itself first, then
  /// N(v) in sorted order — one slot per attention logit.
  static Pattern SelfFirstNeighborhood(const graph::Graph& g);
};

/// out[i] += sum_slot edge_val[slot] * x[col[slot]] over row i's slots in
/// storage order; edge_val is indexed by slot (pattern nnz). The GAT
/// forward aggregation h_v = sum_u alpha_vu z_u.
void SpmmEdgeValues(const Pattern& p, const float* edge_val,
                    const nn::Tensor& x, nn::Tensor* out);

/// Transpose scatter: out[col[slot]] += edge_val[slot] * g[i] for every
/// slot of every row i, rows in ascending order. The GAT backward direct
/// path grad_z_u += alpha_vu * grad_h_v. Serial (scatter rows collide).
void SpmmEdgeValuesTranspose(const Pattern& p, const float* edge_val,
                             const nn::Tensor& g, nn::Tensor* out);

/// SDDMM: for every stored slot (i, j) returns dot(a[i], b[j]) accumulated
/// in double over ascending feature index. The GAT attention-score pattern
/// dL/dalpha_vu = grad_h_v . z_u.
std::vector<double> Sddmm(const Pattern& p, const nn::Tensor& a,
                          const nn::Tensor& b);

}  // namespace deepmap::sparse

#endif  // DEEPMAP_SPARSE_SPMM_H_
