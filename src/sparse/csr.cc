#include "sparse/csr.h"

#include <algorithm>

#include "common/check.h"

// NOTE: like nn/graph_conv.cc (the dense reference), this translation unit
// is compiled with -ffp-contract=off so the double multiply-add chains in
// Multiply round exactly like the dense Compose loop.

namespace deepmap::sparse {

SparseMatrix SparseMatrix::Identity(int n) {
  DEEPMAP_CHECK_GE(n, 0);
  SparseMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(static_cast<size_t>(n) + 1);
  m.col_.resize(n);
  m.val_.resize(n);
  for (int i = 0; i < n; ++i) {
    m.row_ptr_[i] = i;
    m.col_[i] = i;
    m.val_[i] = 1.0;
  }
  m.row_ptr_[n] = n;
  return m;
}

SparseMatrix SparseMatrix::FromTriplets(int rows, int cols,
                                        std::vector<Triplet> triplets) {
  DEEPMAP_CHECK_GE(rows, 0);
  DEEPMAP_CHECK_GE(cols, 0);
  for (const Triplet& t : triplets) {
    DEEPMAP_CHECK_GE(t.row, 0);
    DEEPMAP_CHECK_LT(t.row, rows);
    DEEPMAP_CHECK_GE(t.col, 0);
    DEEPMAP_CHECK_LT(t.col, cols);
  }
  std::stable_sort(triplets.begin(), triplets.end(),
                   [](const Triplet& a, const Triplet& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_.reserve(triplets.size());
  m.val_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      m.col_.push_back(triplets[i].col);
      m.val_.push_back(sum);
      ++m.row_ptr_[static_cast<size_t>(triplets[i].row) + 1];
    }
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.col_.shrink_to_fit();
  m.val_.shrink_to_fit();
  return m;
}

double SparseMatrix::At(int i, int j) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, rows_);
  DEEPMAP_CHECK_GE(j, 0);
  DEEPMAP_CHECK_LT(j, cols_);
  const int32_t* begin = col_.data() + row_ptr_[i];
  const int32_t* end = col_.data() + row_ptr_[i + 1];
  const int32_t* it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return val_[static_cast<size_t>(it - col_.data())];
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  t.col_.resize(col_.size());
  t.val_.resize(val_.size());
  for (int32_t c : col_) ++t.row_ptr_[static_cast<size_t>(c) + 1];
  for (int c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  // Row-major scan fills each transposed row in ascending original-row
  // order, so the result's columns come out sorted without a second pass.
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const int64_t dst = cursor[col_[k]]++;
      t.col_[dst] = r;
      t.val_[dst] = val_[k];
    }
  }
  return t;
}

SparseMatrix SparseMatrix::Multiply(const SparseMatrix& other) const {
  DEEPMAP_CHECK_EQ(cols_, other.rows_);
  SparseMatrix out;
  out.rows_ = rows_;
  out.cols_ = other.cols_;
  out.row_ptr_.assign(static_cast<size_t>(rows_) + 1, 0);
  // Row-at-a-time SpGEMM with a dense accumulator row + occupancy marks,
  // both reused across rows (O(other.cols()) scratch total).
  std::vector<double> acc(other.cols_, 0.0);
  std::vector<char> seen(other.cols_, 0);
  std::vector<int32_t> touched;
  for (int i = 0; i < rows_; ++i) {
    touched.clear();
    // Ascending k (this row's columns are sorted), so every acc[j] is the
    // same double-add chain the dense i-k-j Compose loop produces.
    for (int64_t ka = row_ptr_[i]; ka < row_ptr_[i + 1]; ++ka) {
      const int32_t k = col_[ka];
      const double a = val_[ka];
      for (int64_t kb = other.row_ptr_[k]; kb < other.row_ptr_[k + 1]; ++kb) {
        const int32_t j = other.col_[kb];
        if (!seen[j]) {
          seen[j] = 1;
          touched.push_back(j);
        }
        acc[j] += a * other.val_[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int32_t j : touched) {
      if (acc[j] != 0.0) {  // exact cancellations are dropped, like dense
        out.col_.push_back(j);
        out.val_.push_back(acc[j]);
        ++out.row_ptr_[static_cast<size_t>(i) + 1];
      }
      acc[j] = 0.0;
      seen[j] = 0;
    }
  }
  for (int r = 0; r < rows_; ++r) out.row_ptr_[r + 1] += out.row_ptr_[r];
  out.col_.shrink_to_fit();
  out.val_.shrink_to_fit();
  return out;
}

size_t SparseMatrix::MemoryBytes() const {
  return row_ptr_.capacity() * sizeof(int64_t) +
         col_.capacity() * sizeof(int32_t) + val_.capacity() * sizeof(double);
}

void SparseMatrix::CheckInvariants() const {
  DEEPMAP_CHECK_EQ(row_ptr_.size(), static_cast<size_t>(rows_) + 1);
  DEEPMAP_CHECK_EQ(row_ptr_.front(), 0);
  DEEPMAP_CHECK_EQ(row_ptr_.back(), nnz());
  DEEPMAP_CHECK_EQ(col_.size(), val_.size());
  for (int r = 0; r < rows_; ++r) {
    DEEPMAP_CHECK_LE(row_ptr_[r], row_ptr_[r + 1]);
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      DEEPMAP_CHECK_GE(col_[k], 0);
      DEEPMAP_CHECK_LT(col_[k], cols_);
      if (k > row_ptr_[r]) DEEPMAP_CHECK_LT(col_[k - 1], col_[k]);
      DEEPMAP_CHECK(val_[k] != 0.0);
    }
  }
}

bool operator==(const SparseMatrix& a, const SparseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         a.row_ptr() == b.row_ptr() && a.col() == b.col() &&
         a.val() == b.val();
}

}  // namespace deepmap::sparse
