#include "sparse/sparse_graph.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sparse/spmm.h"

namespace deepmap::sparse {
namespace {

// Emits row v of an (A + weighted I)-shaped operator in ascending column
// order: the self entry interleaved into the sorted neighbor list. Values
// are computed with the exact double expressions of the dense constructions
// so the stored operator matches the dense matrix entry-for-entry.
template <typename DiagFn, typename OffFn>
void EmitRow(const graph::Graph& g, graph::Vertex v, bool with_diag,
             DiagFn diag, OffFn off, std::vector<Triplet>* out) {
  bool diag_emitted = !with_diag;
  for (graph::Vertex u : g.Neighbors(v)) {
    if (!diag_emitted && v < u) {
      out->push_back({v, v, diag(v)});
      diag_emitted = true;
    }
    out->push_back({v, u, off(v, u)});
  }
  if (!diag_emitted) out->push_back({v, v, diag(v)});
}

template <typename DiagFn, typename OffFn>
SparseMatrix BuildAdjShaped(const graph::Graph& g, bool with_diag, DiagFn diag,
                            OffFn off) {
  const int n = g.NumVertices();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(with_diag ? n : 0) +
                   2 * static_cast<size_t>(g.NumEdges()));
  for (graph::Vertex v = 0; v < n; ++v) {
    EmitRow(g, v, with_diag, diag, off, &triplets);
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

}  // namespace

SparseGraph::SparseGraph(SparseMatrix m) : matrix_(std::move(m)) {
  DEEPMAP_CHECK_EQ(matrix_.rows(), matrix_.cols());
  transpose_ = matrix_.Transpose();
}

SparseGraph SparseGraph::Identity(int n) {
  return SparseGraph(SparseMatrix::Identity(n));
}

SparseGraph SparseGraph::GcnNorm(const graph::Graph& g) {
  const int n = g.NumVertices();
  std::vector<double> inv_sqrt_deg(n);
  for (int v = 0; v < n; ++v) {
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.Degree(v) + 1));
  }
  return SparseGraph(BuildAdjShaped(
      g, /*with_diag=*/true,
      [&](graph::Vertex v) { return inv_sqrt_deg[v] * inv_sqrt_deg[v]; },
      [&](graph::Vertex v, graph::Vertex u) {
        return inv_sqrt_deg[v] * inv_sqrt_deg[u];
      }));
}

SparseGraph SparseGraph::RowNormAdj(const graph::Graph& g) {
  return SparseGraph(BuildAdjShaped(
      g, /*with_diag=*/true,
      [&](graph::Vertex v) {
        return 1.0 / static_cast<double>(g.Degree(v) + 1);
      },
      [&](graph::Vertex v, graph::Vertex u) {
        return 1.0 / static_cast<double>(g.Degree(v) + 1);
      }));
}

SparseGraph SparseGraph::Transition(const graph::Graph& g) {
  return SparseGraph(BuildAdjShaped(
      g, /*with_diag=*/false, [](graph::Vertex) { return 0.0; },
      [&](graph::Vertex v, graph::Vertex u) {
        return 1.0 / static_cast<double>(g.Degree(v));
      }));
}

SparseGraph SparseGraph::SumAdj(const graph::Graph& g, double eps) {
  return SparseGraph(BuildAdjShaped(
      g, /*with_diag=*/true, [&](graph::Vertex) { return 1.0 + eps; },
      [](graph::Vertex, graph::Vertex) { return 1.0; }));
}

SparseGraph SparseGraph::FromMatrix(SparseMatrix m) {
  return SparseGraph(std::move(m));
}

nn::Tensor SparseGraph::Apply(const nn::Tensor& x) const {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), n());
  return Spmm(matrix_, x);
}

nn::Tensor SparseGraph::ApplyTranspose(const nn::Tensor& g) const {
  DEEPMAP_CHECK_EQ(g.rank(), 2);
  DEEPMAP_CHECK_EQ(g.dim(0), n());
  return Spmm(transpose_, g);
}

SparseGraph SparseGraph::Compose(const SparseGraph& other) const {
  DEEPMAP_CHECK_EQ(n(), other.n());
  return SparseGraph(matrix_.Multiply(other.matrix_));
}

SparseGraph SparseGraph::Power(int h) const {
  DEEPMAP_CHECK_GE(h, 0);
  SparseMatrix result = SparseMatrix::Identity(n());
  for (int i = 0; i < h; ++i) result = result.Multiply(matrix_);
  return SparseGraph(std::move(result));
}

}  // namespace deepmap::sparse
