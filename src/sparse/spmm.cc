#include "sparse/spmm.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"

// NOTE: compiled with -ffp-contract=off (see src/CMakeLists.txt), like
// nn/gemm.cc: every multiply and add rounds individually so the blocked /
// parallel kernel reproduces the dense reference loop bit-for-bit.

namespace deepmap::sparse {
namespace {

SpmmTuning g_tuning;

// Cached instrument handles — SpMM runs per layer per sample, so the
// per-call cost must stay at a few relaxed fetch_adds (same budget as the
// GEMM counters; the serve hot path never reaches these kernels).
obs::Counter& SpmmCallsTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_sparse_spmm_calls_total",
      "sparse matrix-times-dense-features kernel invocations");
  return counter;
}

obs::Counter& SpmmMacsTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_sparse_spmm_macs_total",
      "multiply-accumulate operations (nnz * feature columns) issued to the "
      "sparse kernels");
  return counter;
}

obs::Histogram& SpmmSeconds() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Default().GetHistogram(
          "deepmap_sparse_spmm_seconds", {},
          "wall time of one sparse propagation kernel call");
  return histogram;
}

obs::Counter& SddmmCallsTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_sparse_sddmm_calls_total",
      "sampled dense-dense matrix product (attention-score) invocations");
  return counter;
}

class ScopedKernelStats {
 public:
  ScopedKernelStats(obs::Counter& calls, int64_t macs) {
    calls.Increment();
    SpmmMacsTotal().Increment(macs);
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedKernelStats() {
    SpmmSeconds().Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// One row panel over one feature block: the out panel stays cache-resident
// while rows of x are gathered. Per output element the k-chain is complete
// (ascending storage order) — blocking never splits a reduction.
inline void SpmmPanel(const SparseMatrix& s, const float* x, int ldx,
                      float* out, int ldo, int row_begin, int row_end, int t0,
                      int t1) {
  const int64_t* row_ptr = s.row_ptr().data();
  const int32_t* col = s.col().data();
  const double* val = s.val().data();
  for (int i = row_begin; i < row_end; ++i) {
    float* out_row = out + static_cast<size_t>(i) * ldo;
    for (int64_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float sv = static_cast<float>(val[k]);
      const float* x_row = x + static_cast<size_t>(col[k]) * ldx;
      for (int t = t0; t < t1; ++t) out_row[t] += sv * x_row[t];
    }
  }
}

}  // namespace

void SetSpmmTuning(const SpmmTuning& tuning) {
  g_tuning.row_block = std::max(1, tuning.row_block);
  g_tuning.col_block = std::max(1, tuning.col_block);
  g_tuning.parallel_min_work = std::max(1LL, tuning.parallel_min_work);
}

SpmmTuning GetSpmmTuning() { return g_tuning; }

void SpmmAccumulate(const SparseMatrix& s, const float* x, int ldx, int c,
                    float* out, int ldo) {
  DEEPMAP_CHECK_GE(c, 0);
  const SpmmTuning tuning = g_tuning;
  ScopedKernelStats stats(SpmmCallsTotal(), s.nnz() * c);
  const int rows = s.rows();
  const size_t num_panels =
      (static_cast<size_t>(rows) + tuning.row_block - 1) / tuning.row_block;
  auto run_panel = [&](size_t panel) {
    const int row_begin = static_cast<int>(panel) * tuning.row_block;
    const int row_end = std::min(rows, row_begin + tuning.row_block);
    for (int t0 = 0; t0 < c; t0 += tuning.col_block) {
      const int t1 = std::min(c, t0 + tuning.col_block);
      SpmmPanel(s, x, ldx, out, ldo, row_begin, row_end, t0, t1);
    }
  };
  const long long work = static_cast<long long>(s.nnz()) * std::max(c, 1);
  if (work >= tuning.parallel_min_work && num_panels > 1) {
    ParallelFor(num_panels, run_panel);
  } else {
    for (size_t p = 0; p < num_panels; ++p) run_panel(p);
  }
}

nn::Tensor Spmm(const SparseMatrix& s, const nn::Tensor& x) {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), s.cols());
  const int c = x.dim(1);
  nn::Tensor out({s.rows(), c});
  SpmmAccumulate(s, x.data(), c, c, out.data(), c);
  return out;
}

size_t Pattern::MemoryBytes() const {
  return row_ptr.capacity() * sizeof(int64_t) +
         col.capacity() * sizeof(int32_t);
}

Pattern Pattern::SelfFirstNeighborhood(const graph::Graph& g) {
  const int n = g.NumVertices();
  Pattern p;
  p.rows = n;
  p.cols = n;
  p.row_ptr.resize(static_cast<size_t>(n) + 1);
  p.col.reserve(static_cast<size_t>(n) + 2 * static_cast<size_t>(g.NumEdges()));
  p.row_ptr[0] = 0;
  for (int v = 0; v < n; ++v) {
    p.col.push_back(v);  // self slot first; attention indexes rely on it
    for (graph::Vertex u : g.Neighbors(v)) p.col.push_back(u);
    p.row_ptr[v + 1] = static_cast<int64_t>(p.col.size());
  }
  return p;
}

void SpmmEdgeValues(const Pattern& p, const float* edge_val,
                    const nn::Tensor& x, nn::Tensor* out) {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), p.cols);
  DEEPMAP_CHECK_EQ(out->dim(0), p.rows);
  const int c = x.dim(1);
  DEEPMAP_CHECK_EQ(out->dim(1), c);
  ScopedKernelStats stats(SpmmCallsTotal(), p.nnz() * c);
  for (int i = 0; i < p.rows; ++i) {
    float* out_row = out->data() + static_cast<size_t>(i) * c;
    for (int64_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) {
      const float w = edge_val[k];
      const float* x_row = x.data() + static_cast<size_t>(p.col[k]) * c;
      for (int t = 0; t < c; ++t) out_row[t] += w * x_row[t];
    }
  }
}

void SpmmEdgeValuesTranspose(const Pattern& p, const float* edge_val,
                             const nn::Tensor& g, nn::Tensor* out) {
  DEEPMAP_CHECK_EQ(g.rank(), 2);
  DEEPMAP_CHECK_EQ(g.dim(0), p.rows);
  DEEPMAP_CHECK_EQ(out->dim(0), p.cols);
  const int c = g.dim(1);
  DEEPMAP_CHECK_EQ(out->dim(1), c);
  ScopedKernelStats stats(SpmmCallsTotal(), p.nnz() * c);
  for (int i = 0; i < p.rows; ++i) {
    const float* g_row = g.data() + static_cast<size_t>(i) * c;
    for (int64_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) {
      const float w = edge_val[k];
      float* out_row = out->data() + static_cast<size_t>(p.col[k]) * c;
      for (int t = 0; t < c; ++t) out_row[t] += w * g_row[t];
    }
  }
}

std::vector<double> Sddmm(const Pattern& p, const nn::Tensor& a,
                          const nn::Tensor& b) {
  DEEPMAP_CHECK_EQ(a.rank(), 2);
  DEEPMAP_CHECK_EQ(b.rank(), 2);
  DEEPMAP_CHECK_EQ(a.dim(0), p.rows);
  DEEPMAP_CHECK_EQ(b.dim(0), p.cols);
  const int c = a.dim(1);
  DEEPMAP_CHECK_EQ(b.dim(1), c);
  SddmmCallsTotal().Increment();
  SpmmMacsTotal().Increment(p.nnz() * c);
  std::vector<double> out(static_cast<size_t>(p.nnz()), 0.0);
  for (int i = 0; i < p.rows; ++i) {
    const float* a_row = a.data() + static_cast<size_t>(i) * c;
    for (int64_t k = p.row_ptr[i]; k < p.row_ptr[i + 1]; ++k) {
      const float* b_row = b.data() + static_cast<size_t>(p.col[k]) * c;
      double dot = 0.0;
      for (int t = 0; t < c; ++t) {
        dot += static_cast<double>(a_row[t]) * b_row[t];
      }
      out[k] = dot;
    }
  }
  return out;
}

}  // namespace deepmap::sparse
