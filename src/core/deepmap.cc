#include "core/deepmap.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace deepmap::core {

std::string ReadoutKindName(ReadoutKind readout) {
  switch (readout) {
    case ReadoutKind::kSum:
      return "sum";
    case ReadoutKind::kMean:
      return "mean";
    case ReadoutKind::kConcat:
      return "concat";
  }
  return "?";
}

nn::Tensor BuildDeepMapInput(const graph::Graph& g,
                             const kernels::DatasetVertexFeatures& features,
                             int graph_index, int sequence_length, int r,
                             AlignmentMeasure alignment, Rng* rng) {
  DEEPMAP_CHECK_GE(sequence_length, g.NumVertices());
  const int m = features.dim();
  nn::Tensor input({sequence_length * r, m});

  const std::vector<double> centrality = ComputeCentrality(g, alignment, rng);
  const std::vector<graph::Vertex> sequence =
      GenerateVertexSequence(g, centrality, sequence_length);

  // Densify every vertex once up front: a vertex appears in up to r
  // receptive fields, and DenseRow allocates and probes the vocabulary on
  // each call, so the per-(slot, pos) lookups the loop used to do dominated
  // the build. The rows are pure functions of (graph, vertex), so hoisting
  // them is value-identical.
  const int n = g.NumVertices();
  std::vector<std::vector<float>> rows(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    const std::vector<double> dense = features.DenseRow(graph_index, v);
    std::vector<float>& row = rows[static_cast<size_t>(v)];
    row.resize(dense.size());
    for (size_t c = 0; c < dense.size(); ++c) {
      row[c] = static_cast<float>(dense[c]);
    }
  }

  for (int slot = 0; slot < sequence_length; ++slot) {
    const graph::Vertex v = sequence[slot];
    if (v == kDummyVertex) continue;  // r zero rows (Algorithm 1 line 19)
    const std::vector<graph::Vertex> field =
        BuildReceptiveField(g, v, r, centrality);
    for (int pos = 0; pos < r; ++pos) {
      const graph::Vertex u = field[pos];
      if (u == kDummyVertex) continue;  // zero row
      const std::vector<float>& row = rows[static_cast<size_t>(u)];
      float* dst = input.data() + (static_cast<size_t>(slot) * r + pos) * m;
      std::copy(row.begin(), row.end(), dst);
    }
  }
  return input;
}

std::vector<nn::Tensor> BuildDeepMapInputs(
    const graph::GraphDataset& dataset,
    const kernels::DatasetVertexFeatures& features,
    const DeepMapConfig& config) {
  const int w = std::max(1, dataset.MaxVertices());
  std::vector<nn::Tensor> inputs(static_cast<size_t>(dataset.size()));
  // One task per graph. Each graph draws from its own RNG stream derived
  // from (config.seed, graph_index) — not from a generator shared across
  // graphs — so the outputs are independent of iteration order and
  // byte-identical for every thread count (the stream only matters for
  // AlignmentMeasure::kRandom; the other measures never sample).
  ParallelFor(static_cast<size_t>(dataset.size()), [&](size_t g) {
    Rng rng(config.seed ^ (0x5eedULL + g * 0x9E3779B97F4A7C15ULL));
    inputs[g] = BuildDeepMapInput(dataset.graph(static_cast<int>(g)), features,
                                  static_cast<int>(g), w,
                                  config.receptive_field_size,
                                  config.alignment, &rng);
  });
  return inputs;
}

DeepMapModel::DeepMapModel(int feature_dim, int sequence_length,
                           int num_classes, const DeepMapConfig& config)
    : rng_(config.seed) {
  DEEPMAP_CHECK_GT(feature_dim, 0);
  DEEPMAP_CHECK_GT(sequence_length, 0);
  DEEPMAP_CHECK_GT(num_classes, 0);
  const int r = config.receptive_field_size;
  net_.Emplace<nn::Conv1D>(feature_dim, config.conv1_channels, r, r, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Conv1D>(config.conv1_channels, config.conv2_channels, 1, 1,
                           rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Conv1D>(config.conv2_channels, config.conv3_channels, 1, 1,
                           rng_)
      .Emplace<nn::Relu>();
  int readout_dim = config.conv3_channels;
  switch (config.readout) {
    case ReadoutKind::kSum:
      net_.Emplace<nn::SumPool>();
      break;
    case ReadoutKind::kMean:
      net_.Emplace<nn::MeanPool>();
      break;
    case ReadoutKind::kConcat:
      net_.Emplace<nn::Flatten>();
      readout_dim = config.conv3_channels * sequence_length;
      break;
  }
  net_.Emplace<nn::Dense>(readout_dim, config.dense_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.dense_units, num_classes, rng_);
}

nn::Tensor DeepMapModel::Forward(const nn::Tensor& input, bool training) {
  return net_.Forward(input, training);
}

void DeepMapModel::Backward(const nn::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

std::vector<nn::Param> DeepMapModel::Params() { return net_.Params(); }

DeepMapPipeline::DeepMapPipeline(const graph::GraphDataset& dataset,
                                 const DeepMapConfig& config)
    : dataset_(&dataset),
      config_(config),
      features_(kernels::ComputeDatasetVertexFeatures(dataset,
                                                      config.features)),
      sequence_length_(std::max(1, dataset.MaxVertices())),
      num_classes_(dataset.NumClasses()) {
  inputs_ = BuildDeepMapInputs(dataset, features_, config_);
}

EvaluationResult DeepMapPipeline::RunFold(
    const std::vector<int>& train_indices,
    const std::vector<int>& test_indices, uint64_t fold_seed) const {
  std::vector<nn::Tensor> train_inputs, test_inputs;
  std::vector<int> train_labels, test_labels;
  train_inputs.reserve(train_indices.size());
  for (int i : train_indices) {
    train_inputs.push_back(inputs_[i]);
    train_labels.push_back(dataset_->label(i));
  }
  test_inputs.reserve(test_indices.size());
  for (int i : test_indices) {
    test_inputs.push_back(inputs_[i]);
    test_labels.push_back(dataset_->label(i));
  }

  DeepMapConfig fold_config = config_;
  fold_config.seed = fold_seed;
  fold_config.train.seed = fold_seed + 1;
  DeepMapModel model(features_.dim(), sequence_length_, num_classes_,
                     fold_config);
  EvaluationResult result;
  result.history =
      nn::TrainClassifier(model, train_inputs, train_labels, fold_config.train);
  result.test_accuracy = nn::EvaluateAccuracy(model, test_inputs, test_labels);
  return result;
}

}  // namespace deepmap::core
