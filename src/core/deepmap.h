// DEEPMAP: the paper's primary contribution. Learns a deep graph
// representation by running a 1-D CNN over aligned vertex sequences whose
// positions carry the kernel vertex feature maps of BFS receptive fields.
//
// Architecture (paper Fig. 4): input [w*r, m] ->
//   Conv1D(m -> 32, kernel r, stride r) + ReLU   (one output per vertex slot)
//   Conv1D(32 -> 16, kernel 1) + ReLU
//   Conv1D(16 -> 8, kernel 1) + ReLU
//   summation layer over the w slots (Eq. 7)     [8]
//   Dense(8 -> 128) + ReLU, Dropout(0.5), Dense(128 -> C) softmax
// where m = vertex-feature dimension, w = max #vertices in the dataset,
// r = receptive-field size.
#ifndef DEEPMAP_CORE_DEEPMAP_H_
#define DEEPMAP_CORE_DEEPMAP_H_

#include <memory>
#include <vector>

#include "core/alignment.h"
#include "core/receptive_field.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"
#include "nn/model.h"

namespace deepmap::core {

/// Graph-level readout after the convolution stack (Sec. 6 discusses sum vs
/// concatenation; mean is included for the ablation).
enum class ReadoutKind { kSum, kMean, kConcat };

std::string ReadoutKindName(ReadoutKind readout);

/// Full DEEPMAP configuration. Defaults reproduce the paper's single
/// architecture (Section 5.1).
struct DeepMapConfig {
  /// Which vertex feature maps to use (DEEPMAP-GK / -SP / -WL).
  kernels::VertexFeatureConfig features;
  /// Receptive-field size r.
  int receptive_field_size = 5;
  /// Vertex-alignment measure (paper: eigenvector centrality).
  AlignmentMeasure alignment = AlignmentMeasure::kEigenvector;
  /// Convolution channel widths.
  int conv1_channels = 32;
  int conv2_channels = 16;
  int conv3_channels = 8;
  /// Dense layer width (paper: 128) and dropout rate (paper: 0.5).
  int dense_units = 128;
  double dropout_rate = 0.5;
  ReadoutKind readout = ReadoutKind::kSum;
  /// Optimization settings (paper: RMSprop, lr 0.01, plateau x0.5 / 5).
  nn::TrainConfig train;
  /// Seed for model init / dropout / graphlet sampling.
  uint64_t seed = 42;
};

/// Builds the CNN input Phi'_g for one graph: a [w*r, m] tensor where slot i
/// holds the dense feature rows of the receptive field of the i-th vertex in
/// the aligned sequence (zero rows for dummy vertices / padding).
nn::Tensor BuildDeepMapInput(const graph::Graph& g,
                             const kernels::DatasetVertexFeatures& features,
                             int graph_index, int sequence_length, int r,
                             AlignmentMeasure alignment, Rng* rng);

/// Inputs for every graph of the dataset (sequence_length = max |V|).
std::vector<nn::Tensor> BuildDeepMapInputs(
    const graph::GraphDataset& dataset,
    const kernels::DatasetVertexFeatures& features,
    const DeepMapConfig& config);

/// The DEEPMAP network (Fig. 4). Satisfies the trainer's Model concept with
/// Sample = nn::Tensor.
class DeepMapModel {
 public:
  /// `feature_dim` = m, `sequence_length` = w, `num_classes` = C.
  DeepMapModel(int feature_dim, int sequence_length, int num_classes,
               const DeepMapConfig& config);

  nn::Tensor Forward(const nn::Tensor& input, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

  int64_t NumParameters() { return net_.NumParameters(); }

 private:
  Rng rng_;
  nn::Sequential net_;
};

/// Result of one train/test split.
struct EvaluationResult {
  double test_accuracy = 0.0;
  nn::TrainHistory history;
};

/// End-to-end DEEPMAP pipeline over one dataset: computes vertex feature
/// maps and CNN inputs once, then trains/evaluates per fold.
class DeepMapPipeline {
 public:
  DeepMapPipeline(const graph::GraphDataset& dataset,
                  const DeepMapConfig& config);

  /// Dense feature dimension m.
  int feature_dim() const { return features_.dim(); }
  /// Sequence length w.
  int sequence_length() const { return sequence_length_; }
  int num_classes() const { return num_classes_; }

  const std::vector<nn::Tensor>& inputs() const { return inputs_; }
  const kernels::DatasetVertexFeatures& features() const { return features_; }

  /// Trains a fresh model on `train_indices`, evaluates on `test_indices`.
  EvaluationResult RunFold(const std::vector<int>& train_indices,
                           const std::vector<int>& test_indices,
                           uint64_t fold_seed) const;

 private:
  const graph::GraphDataset* dataset_;  // not owned
  DeepMapConfig config_;
  kernels::DatasetVertexFeatures features_;
  std::vector<nn::Tensor> inputs_;
  int sequence_length_;
  int num_classes_;
};

}  // namespace deepmap::core

#endif  // DEEPMAP_CORE_DEEPMAP_H_
