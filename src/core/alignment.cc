#include "core/alignment.h"

#include "common/check.h"

namespace deepmap::core {

std::string AlignmentMeasureName(AlignmentMeasure measure) {
  switch (measure) {
    case AlignmentMeasure::kEigenvector:
      return "eigenvector";
    case AlignmentMeasure::kDegree:
      return "degree";
    case AlignmentMeasure::kPageRank:
      return "pagerank";
    case AlignmentMeasure::kBetweenness:
      return "betweenness";
    case AlignmentMeasure::kRandom:
      return "random";
  }
  return "?";
}

std::vector<double> ComputeCentrality(const graph::Graph& g,
                                      AlignmentMeasure measure, Rng* rng) {
  switch (measure) {
    case AlignmentMeasure::kEigenvector:
      return graph::EigenvectorCentrality(g);
    case AlignmentMeasure::kDegree:
      return graph::DegreeCentrality(g);
    case AlignmentMeasure::kPageRank:
      return graph::PageRankCentrality(g);
    case AlignmentMeasure::kBetweenness:
      return graph::BetweennessCentrality(g);
    case AlignmentMeasure::kRandom: {
      DEEPMAP_CHECK(rng != nullptr);
      std::vector<double> scores(g.NumVertices());
      for (double& s : scores) s = rng->Uniform();
      return scores;
    }
  }
  return {};
}

std::vector<graph::Vertex> GenerateVertexSequence(
    const graph::Graph& g, const std::vector<double>& centrality,
    int target_length) {
  DEEPMAP_CHECK_EQ(centrality.size(), static_cast<size_t>(g.NumVertices()));
  DEEPMAP_CHECK_GE(target_length, g.NumVertices());
  std::vector<graph::Vertex> sequence =
      graph::SortByCentralityDescending(centrality);
  sequence.resize(static_cast<size_t>(target_length), kDummyVertex);
  return sequence;
}

}  // namespace deepmap::core
