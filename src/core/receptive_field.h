// Receptive-field construction (the paper's Section 4.1, step 2).
//
// The receptive field of a vertex v is v plus up to r-1 neighbors gathered
// by BFS hop expansion: if the one-hop neighborhood has >= r-1 vertices,
// take the r-1 with the highest centrality; otherwise take all of it and
// continue with two-hop neighbors, and so on. The resulting field is sorted
// by descending centrality and padded with kDummyVertex to exactly r slots.
#ifndef DEEPMAP_CORE_RECEPTIVE_FIELD_H_
#define DEEPMAP_CORE_RECEPTIVE_FIELD_H_

#include <vector>

#include "core/alignment.h"
#include "graph/graph.h"

namespace deepmap::core {

/// Builds the size-r receptive field of `v`. `centrality` must have one
/// score per vertex of `g`. The returned vector has exactly r entries; the
/// tail is kDummyVertex when fewer than r vertices are reachable.
std::vector<graph::Vertex> BuildReceptiveField(
    const graph::Graph& g, graph::Vertex v, int r,
    const std::vector<double>& centrality);

/// Receptive fields for every vertex of `g` in one pass.
std::vector<std::vector<graph::Vertex>> BuildAllReceptiveFields(
    const graph::Graph& g, int r, const std::vector<double>& centrality);

}  // namespace deepmap::core

#endif  // DEEPMAP_CORE_RECEPTIVE_FIELD_H_
