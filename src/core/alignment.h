// Vertex alignment across graphs (the paper's Section 4.1, step 1).
//
// DEEPMAP orders each graph's vertices by descending eigenvector centrality
// so that sequences are aligned across graphs; degree / PageRank / random
// orderings are provided for the alignment ablation. Sequences are padded
// with dummy vertices (id kDummyVertex) to the dataset-wide maximum length w.
#ifndef DEEPMAP_CORE_ALIGNMENT_H_
#define DEEPMAP_CORE_ALIGNMENT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/centrality.h"
#include "graph/graph.h"

namespace deepmap::core {

/// Sentinel id for padding positions in a vertex sequence.
inline constexpr graph::Vertex kDummyVertex = -1;

/// Which vertex-importance measure drives the alignment.
enum class AlignmentMeasure {
  kEigenvector,
  kDegree,
  kPageRank,
  kBetweenness,
  kRandom
};

/// Human-readable measure name.
std::string AlignmentMeasureName(AlignmentMeasure measure);

/// Centrality scores under the chosen measure. `rng` is only used by
/// kRandom (may be null otherwise).
std::vector<double> ComputeCentrality(const graph::Graph& g,
                                      AlignmentMeasure measure, Rng* rng);

/// The aligned vertex sequence of one graph: all vertices sorted by
/// descending centrality (stable id tie-break), padded with kDummyVertex up
/// to `target_length` (>= |V|; pass |V| for no padding).
std::vector<graph::Vertex> GenerateVertexSequence(
    const graph::Graph& g, const std::vector<double>& centrality,
    int target_length);

}  // namespace deepmap::core

#endif  // DEEPMAP_CORE_ALIGNMENT_H_
