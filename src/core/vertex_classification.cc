#include "core/vertex_classification.h"

#include <algorithm>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace deepmap::core {

VertexClassifierModel::VertexClassifierModel(
    int feature_dim, int num_classes, const VertexClassifierConfig& config)
    : rng_(config.seed) {
  DEEPMAP_CHECK_GT(feature_dim, 0);
  DEEPMAP_CHECK_GT(num_classes, 0);
  const int r = config.receptive_field_size;
  net_.Emplace<nn::Conv1D>(feature_dim, config.conv_channels, r, r, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Flatten>()  // [1, C] -> [C]
      .Emplace<nn::Dense>(config.conv_channels, config.dense_units, rng_)
      .Emplace<nn::Relu>()
      .Emplace<nn::Dropout>(config.dropout_rate, rng_)
      .Emplace<nn::Dense>(config.dense_units, num_classes, rng_);
}

nn::Tensor VertexClassifierModel::Forward(const nn::Tensor& input,
                                          bool training) {
  return net_.Forward(input, training);
}

void VertexClassifierModel::Backward(const nn::Tensor& grad_logits) {
  net_.Backward(grad_logits);
}

std::vector<nn::Param> VertexClassifierModel::Params() {
  return net_.Params();
}

VertexClassifierPipeline::VertexClassifierPipeline(
    const graph::GraphDataset& dataset,
    std::vector<std::vector<int>> vertex_labels,
    const VertexClassifierConfig& config)
    : dataset_(&dataset),
      config_(config),
      vertex_labels_(std::move(vertex_labels)),
      features_(kernels::ComputeDatasetVertexFeatures(dataset,
                                                      config.features)) {
  DEEPMAP_CHECK_EQ(vertex_labels_.size(), static_cast<size_t>(dataset.size()));
  const int r = config_.receptive_field_size;
  const int m = features_.dim();
  Rng rng(config_.seed + 0xf00d);
  for (int g = 0; g < dataset.size(); ++g) {
    const graph::Graph& graph = dataset.graph(g);
    DEEPMAP_CHECK_EQ(vertex_labels_[g].size(),
                     static_cast<size_t>(graph.NumVertices()));
    const std::vector<double> centrality =
        ComputeCentrality(graph, config_.alignment, &rng);
    for (graph::Vertex v = 0; v < graph.NumVertices(); ++v) {
      num_classes_ = std::max(num_classes_, vertex_labels_[g][v] + 1);
      std::vector<graph::Vertex> field =
          BuildReceptiveField(graph, v, r, centrality);
      // Unlike graph classification (where fields are summed anyway), the
      // classified vertex must be identifiable in its sample: move v to the
      // front of the centrality-sorted field.
      for (size_t pos = 0; pos < field.size(); ++pos) {
        if (field[pos] == v) {
          std::rotate(field.begin(), field.begin() + pos,
                      field.begin() + pos + 1);
          break;
        }
      }
      nn::Tensor input({r, m});
      for (int pos = 0; pos < r; ++pos) {
        if (field[pos] == kDummyVertex) continue;
        const std::vector<double> row = features_.DenseRow(g, field[pos]);
        for (int c = 0; c < m; ++c) {
          input.at(pos, c) = static_cast<float>(row[c]);
        }
      }
      refs_.push_back(VertexRef{g, v});
      inputs_.push_back(std::move(input));
    }
  }
}

int VertexClassifierPipeline::label(size_t ref_index) const {
  DEEPMAP_CHECK_LT(ref_index, refs_.size());
  const VertexRef& ref = refs_[ref_index];
  return vertex_labels_[ref.graph][ref.vertex];
}

double VertexClassifierPipeline::TrainAndEvaluate(
    const std::vector<int>& train_ref_indices,
    const std::vector<int>& test_ref_indices, uint64_t seed) const {
  std::vector<nn::Tensor> train_inputs, test_inputs;
  std::vector<int> train_labels, test_labels;
  for (int i : train_ref_indices) {
    train_inputs.push_back(inputs_[i]);
    train_labels.push_back(label(i));
  }
  for (int i : test_ref_indices) {
    test_inputs.push_back(inputs_[i]);
    test_labels.push_back(label(i));
  }
  VertexClassifierConfig fold_config = config_;
  fold_config.seed = seed;
  fold_config.train.seed = seed + 1;
  VertexClassifierModel model(features_.dim(), num_classes_, fold_config);
  nn::TrainClassifier(model, train_inputs, train_labels, fold_config.train);
  return nn::EvaluateAccuracy(model, test_inputs, test_labels);
}

}  // namespace deepmap::core
