// Vertex-level classification with deep vertex feature maps.
//
// The paper's conclusion notes that "the learned deep feature map of each
// vertex can also be considered as vertex embedding and used for vertex
// classification". This module realizes that extension: every vertex
// becomes one training sample whose input is the feature-map block of its
// BFS receptive field ([r, m], exactly one DEEPMAP slot), classified by a
// small CNN head.
#ifndef DEEPMAP_CORE_VERTEX_CLASSIFICATION_H_
#define DEEPMAP_CORE_VERTEX_CLASSIFICATION_H_

#include <vector>

#include "core/alignment.h"
#include "core/receptive_field.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"
#include "nn/model.h"

namespace deepmap::core {

/// Configuration for the vertex classifier.
struct VertexClassifierConfig {
  kernels::VertexFeatureConfig features;
  int receptive_field_size = 5;
  AlignmentMeasure alignment = AlignmentMeasure::kEigenvector;
  int conv_channels = 32;
  int dense_units = 64;
  double dropout_rate = 0.5;
  nn::TrainConfig train;
  uint64_t seed = 42;
};

/// Identifies one vertex of one graph.
struct VertexRef {
  int graph;
  graph::Vertex vertex;
};

/// The per-vertex CNN: Conv1D(m -> C, kernel r) + ReLU + Flatten +
/// Dense + ReLU + Dropout + Dense softmax head. Model concept with
/// Sample = nn::Tensor of shape [r, m].
class VertexClassifierModel {
 public:
  VertexClassifierModel(int feature_dim, int num_classes,
                        const VertexClassifierConfig& config);

  nn::Tensor Forward(const nn::Tensor& input, bool training);
  void Backward(const nn::Tensor& grad_logits);
  std::vector<nn::Param> Params();

 private:
  Rng rng_;
  nn::Sequential net_;
};

/// End-to-end vertex-classification pipeline over a dataset with per-vertex
/// labels (vertex_labels[g][v] in [0, C)).
class VertexClassifierPipeline {
 public:
  VertexClassifierPipeline(const graph::GraphDataset& dataset,
                           std::vector<std::vector<int>> vertex_labels,
                           const VertexClassifierConfig& config);

  int feature_dim() const { return features_.dim(); }
  int num_classes() const { return num_classes_; }

  /// All vertices as (graph, vertex) refs, in graph-major order.
  const std::vector<VertexRef>& vertices() const { return refs_; }

  /// The [r, m] input tensor of one vertex.
  const nn::Tensor& input(size_t ref_index) const {
    return inputs_[ref_index];
  }

  /// Label of one vertex ref.
  int label(size_t ref_index) const;

  /// Trains on the refs at `train_ref_indices`, evaluates accuracy on
  /// `test_ref_indices` (indices into vertices()).
  double TrainAndEvaluate(const std::vector<int>& train_ref_indices,
                          const std::vector<int>& test_ref_indices,
                          uint64_t seed) const;

 private:
  const graph::GraphDataset* dataset_;  // not owned
  VertexClassifierConfig config_;
  std::vector<std::vector<int>> vertex_labels_;
  kernels::DatasetVertexFeatures features_;
  std::vector<VertexRef> refs_;
  std::vector<nn::Tensor> inputs_;
  int num_classes_ = 0;
};

}  // namespace deepmap::core

#endif  // DEEPMAP_CORE_VERTEX_CLASSIFICATION_H_
