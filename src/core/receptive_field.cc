#include "core/receptive_field.h"

#include <algorithm>

#include "common/check.h"

namespace deepmap::core {

std::vector<graph::Vertex> BuildReceptiveField(
    const graph::Graph& g, graph::Vertex v, int r,
    const std::vector<double>& centrality) {
  DEEPMAP_CHECK_GT(r, 0);
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(v, g.NumVertices());
  DEEPMAP_CHECK_EQ(centrality.size(), static_cast<size_t>(g.NumVertices()));

  auto by_centrality_desc = [&](graph::Vertex a, graph::Vertex b) {
    if (centrality[a] != centrality[b]) return centrality[a] > centrality[b];
    return a < b;
  };

  std::vector<graph::Vertex> field{v};
  std::vector<bool> taken(g.NumVertices(), false);
  taken[v] = true;
  // BFS hop expansion: `hop` holds the current frontier.
  std::vector<graph::Vertex> hop{v};
  while (static_cast<int>(field.size()) < r && !hop.empty()) {
    std::vector<graph::Vertex> next_hop;
    for (graph::Vertex u : hop) {
      for (graph::Vertex w : g.Neighbors(u)) {
        if (!taken[w]) {
          taken[w] = true;
          next_hop.push_back(w);
        }
      }
    }
    const int room = r - static_cast<int>(field.size());
    if (static_cast<int>(next_hop.size()) > room) {
      // Keep the top-`room` by centrality (the paper's top r-1 rule applied
      // within the hop that overflows the field). partial_sort suffices: the
      // comparator is a strict total order, so the kept set is the same as a
      // full sort's, and the field is re-sorted below anyway. On dense
      // graphs (hop size >> r) this is the hot path of input building.
      std::partial_sort(next_hop.begin(),
                        next_hop.begin() + static_cast<size_t>(room),
                        next_hop.end(), by_centrality_desc);
      next_hop.resize(static_cast<size_t>(room));
    }
    field.insert(field.end(), next_hop.begin(), next_hop.end());
    hop = std::move(next_hop);
  }
  // The field is presented in descending centrality order.
  std::sort(field.begin(), field.end(), by_centrality_desc);
  field.resize(static_cast<size_t>(r), kDummyVertex);
  return field;
}

std::vector<std::vector<graph::Vertex>> BuildAllReceptiveFields(
    const graph::Graph& g, int r, const std::vector<double>& centrality) {
  std::vector<std::vector<graph::Vertex>> fields;
  fields.reserve(g.NumVertices());
  for (graph::Vertex v = 0; v < g.NumVertices(); ++v) {
    fields.push_back(BuildReceptiveField(g, v, r, centrality));
  }
  return fields;
}

}  // namespace deepmap::core
