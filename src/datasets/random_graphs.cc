#include "datasets/random_graphs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "graph/algorithms.h"

namespace deepmap::datasets {

using graph::Graph;
using graph::Vertex;

Graph ErdosRenyi(int n, double p, Rng& rng) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
    }
  }
  return g;
}

Graph BarabasiAlbert(int n, int edges_per_vertex, Rng& rng) {
  DEEPMAP_CHECK_GE(n, edges_per_vertex + 1);
  DEEPMAP_CHECK_GE(edges_per_vertex, 1);
  Graph g(n);
  // Start from a small clique.
  for (int i = 0; i <= edges_per_vertex; ++i) {
    for (int j = i + 1; j <= edges_per_vertex; ++j) g.AddEdge(i, j);
  }
  // Degree-proportional sampling via the repeated-endpoints trick.
  std::vector<Vertex> endpoints;
  for (const auto& [u, v] : g.EdgeList()) {
    endpoints.push_back(u);
    endpoints.push_back(v);
  }
  for (int v = edges_per_vertex + 1; v < n; ++v) {
    int added = 0;
    int guard = 0;
    while (added < edges_per_vertex && guard < 100 * edges_per_vertex) {
      Vertex target = endpoints[rng.Index(endpoints.size())];
      if (g.AddEdge(v, target)) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++added;
      }
      ++guard;
    }
  }
  return g;
}

Graph RMat(int n, int edges_per_vertex, Rng& rng, const RMatOptions& options) {
  DEEPMAP_CHECK_GT(n, 0);
  DEEPMAP_CHECK_GE(edges_per_vertex, 1);
  DEEPMAP_CHECK_GT(options.a, 0.0);
  DEEPMAP_CHECK_GT(options.b, 0.0);
  DEEPMAP_CHECK_GT(options.c, 0.0);
  DEEPMAP_CHECK_LT(options.a + options.b + options.c, 1.0);
  int levels = 0;
  while ((1 << levels) < n) ++levels;
  Graph g(n);
  const long long target = static_cast<long long>(n) * edges_per_vertex;
  // Duplicates concentrate on the hot quadrant, so allow a generous number
  // of redraws before giving up (dense corners saturate eventually).
  const long long max_attempts = 20 * target + 100;
  long long placed = 0;
  for (long long attempt = 0; placed < target && attempt < max_attempts;
       ++attempt) {
    int u = 0;
    int v = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.Uniform();
      u <<= 1;
      v <<= 1;
      if (r < options.a) {
        // top-left quadrant: both bits stay 0
      } else if (r < options.a + options.b) {
        v |= 1;
      } else if (r < options.a + options.b + options.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u >= n || v >= n) continue;  // padded matrix corner; redraw
    if (g.AddEdge(u, v)) ++placed;
  }
  return g;
}

Graph WattsStrogatz(int n, int k, double beta, Rng& rng) {
  DEEPMAP_CHECK_GE(n, 2 * k + 1);
  // Ring lattice, then rewire each lattice edge with probability beta to a
  // random vertex that is not already a neighbor of u.
  Graph lattice(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 1; j <= k; ++j) lattice.AddEdge(i, (i + j) % n);
  }
  Graph out(n);
  for (const auto& [u, v] : lattice.EdgeList()) {
    if (rng.Bernoulli(beta)) {
      int guard = 0;
      Vertex w = v;
      while (guard++ < 50) {
        Vertex candidate =
            static_cast<Vertex>(rng.Index(static_cast<size_t>(n)));
        if (candidate != u && !out.HasEdge(u, candidate)) {
          w = candidate;
          break;
        }
      }
      out.AddEdge(u, w);
    } else {
      out.AddEdge(u, v);
    }
  }
  return out;
}

Graph RandomGeometric(int n, double radius, Rng& rng) {
  std::vector<std::pair<double, double>> points(n);
  for (auto& [x, y] : points) {
    x = rng.Uniform();
    y = rng.Uniform();
  }
  Graph g(n);
  const double r2 = radius * radius;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double dx = points[i].first - points[j].first;
      double dy = points[i].second - points[j].second;
      if (dx * dx + dy * dy <= r2) g.AddEdge(i, j);
    }
  }
  return g;
}

Graph SubsampleAndRewire(const Graph& seed, double keep_fraction,
                         double rewire_prob, Rng& rng) {
  const int n = seed.NumVertices();
  int keep = std::max(2, static_cast<int>(std::lround(n * keep_fraction)));
  keep = std::min(keep, n);
  auto kept_idx = rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                               static_cast<size_t>(keep));
  std::vector<Vertex> kept(kept_idx.begin(), kept_idx.end());
  std::sort(kept.begin(), kept.end());
  Graph sub = seed.InducedSubgraph(kept);
  // Rewire: each edge moves to a random non-edge with prob rewire_prob.
  Graph out(sub.NumVertices());
  for (Vertex v = 0; v < sub.NumVertices(); ++v) {
    out.SetLabel(v, sub.GetLabel(v));
  }
  for (const auto& [u, v] : sub.EdgeList()) {
    if (rewire_prob > 0.0 && rng.Bernoulli(rewire_prob)) {
      int guard = 0;
      bool placed = false;
      while (guard++ < 50) {
        Vertex a = static_cast<Vertex>(rng.Index(out.NumVertices()));
        Vertex b = static_cast<Vertex>(rng.Index(out.NumVertices()));
        if (a != b && !out.HasEdge(a, b)) {
          out.AddEdge(a, b);
          placed = true;
          break;
        }
      }
      if (!placed) out.AddEdge(u, v);
    } else {
      out.AddEdge(u, v);
    }
  }
  return out;
}

void AttachRing(Graph& g, Vertex anchor, int ring_size, int label_count,
                Rng& rng) {
  DEEPMAP_CHECK_GE(ring_size, 3);
  DEEPMAP_CHECK_GE(anchor, 0);
  DEEPMAP_CHECK_LT(anchor, g.NumVertices());
  std::vector<Vertex> ring;
  ring.reserve(ring_size);
  for (int i = 0; i < ring_size; ++i) {
    ring.push_back(g.AddVertex(
        static_cast<graph::Label>(rng.Index(static_cast<size_t>(label_count)))));
  }
  for (int i = 0; i < ring_size; ++i) {
    g.AddEdge(ring[i], ring[(i + 1) % ring_size]);
  }
  g.AddEdge(anchor, ring[0]);
}

Graph RandomTree(int n, int label_count, Rng& rng) {
  DEEPMAP_CHECK_GE(n, 1);
  Graph g;
  g.AddVertex(
      static_cast<graph::Label>(rng.Index(static_cast<size_t>(label_count))));
  for (int v = 1; v < n; ++v) {
    Vertex parent = static_cast<Vertex>(rng.Index(static_cast<size_t>(v)));
    Vertex child = g.AddVertex(
        static_cast<graph::Label>(rng.Index(static_cast<size_t>(label_count))));
    g.AddEdge(parent, child);
  }
  return g;
}

void MakeConnected(Graph& g, Rng& rng) {
  if (g.NumVertices() <= 1) return;
  for (;;) {
    std::vector<int> comp = graph::ConnectedComponents(g);
    int num_components = *std::max_element(comp.begin(), comp.end()) + 1;
    if (num_components <= 1) return;
    // Connect a random vertex of component 0 to one of another component.
    std::vector<Vertex> in0, rest;
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      (comp[v] == 0 ? in0 : rest).push_back(v);
    }
    g.AddEdge(in0[rng.Index(in0.size())], rest[rng.Index(rest.size())]);
  }
}

}  // namespace deepmap::datasets
