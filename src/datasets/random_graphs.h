// Random-graph building blocks for the synthetic benchmark generators.
#ifndef DEEPMAP_DATASETS_RANDOM_GRAPHS_H_
#define DEEPMAP_DATASETS_RANDOM_GRAPHS_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace deepmap::datasets {

/// Erdos-Renyi G(n, p): every pair is an edge independently with prob. p.
graph::Graph ErdosRenyi(int n, double p, Rng& rng);

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices with probability proportional to
/// degree. n must be >= edges_per_vertex + 1.
graph::Graph BarabasiAlbert(int n, int edges_per_vertex, Rng& rng);

/// Watts-Strogatz small world: ring lattice with k nearest neighbors per
/// side rewired with probability beta.
graph::Graph WattsStrogatz(int n, int k, double beta, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edge when
/// Euclidean distance <= radius.
graph::Graph RandomGeometric(int n, double radius, Rng& rng);

/// R-MAT parameters (Chakrabarti et al., SDM 2004): quadrant probabilities
/// (a, b, c, d = 1 - a - b - c); the defaults are the canonical skewed
/// setting producing power-law degree tails.
struct RMatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};

/// R-MAT power-law graph: n * edges_per_vertex edge placements drawn by
/// recursively descending adjacency-matrix quadrants with the RMatOptions
/// probabilities. Self loops and duplicates are discarded, so the realized
/// edge count lands slightly below the target. Deterministic for a given
/// rng state; n need not be a power of two (out-of-range placements are
/// redrawn). Feeds the web-scale SpMM bench (10^4-10^5 vertices).
graph::Graph RMat(int n, int edges_per_vertex, Rng& rng,
                  const RMatOptions& options = {});

/// Vertex subsample + edge rewiring of a seed graph: keeps `keep_fraction`
/// of the vertices (induced) and rewires each edge with prob. `rewire_prob`
/// to a random non-edge. The backbone of the SYNTHIE-style generator.
graph::Graph SubsampleAndRewire(const graph::Graph& seed, double keep_fraction,
                                double rewire_prob, Rng& rng);

/// Adds a cycle through `ring_size` fresh vertices attached to `anchor`
/// (molecule-style ring motif). Labels of new vertices are drawn uniformly
/// from [0, label_count).
void AttachRing(graph::Graph& g, graph::Vertex anchor, int ring_size,
                int label_count, Rng& rng);

/// Random labeled tree on n vertices (uniform attachment), labels uniform
/// in [0, label_count).
graph::Graph RandomTree(int n, int label_count, Rng& rng);

/// Connects `g` by adding a random edge between components until connected.
void MakeConnected(graph::Graph& g, Rng& rng);

}  // namespace deepmap::datasets

#endif  // DEEPMAP_DATASETS_RANDOM_GRAPHS_H_
