// Named registry of the 15 benchmark datasets (paper Table 1) backed by the
// synthetic generators, plus the paper's reference statistics for the
// Table 1 reproduction bench.
#ifndef DEEPMAP_DATASETS_REGISTRY_H_
#define DEEPMAP_DATASETS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/dataset.h"

namespace deepmap::datasets {

/// Reference statistics from the paper's Table 1.
struct PaperDatasetSpec {
  std::string name;
  int size;
  int num_classes;
  double avg_vertices;
  double avg_edges;
  int label_count;  // -1 means N/A (unlabeled)
};

/// All 15 benchmark specs in the paper's Table 1 order.
const std::vector<PaperDatasetSpec>& PaperDatasets();

/// Spec lookup by name.
StatusOr<PaperDatasetSpec> FindPaperDataset(const std::string& name);

/// Generation options.
struct DatasetOptions {
  /// Fraction of the paper's graph count to generate (benches default to a
  /// scaled-down run on this single-core machine; --full uses 1.0).
  double scale = 1.0;
  /// Lower bound on the generated graph count (keeps CV folds meaningful).
  int min_graphs = 40;
  uint64_t seed = 42;
  /// Apply the paper's degrees-as-labels rule to unlabeled datasets.
  bool degrees_as_labels = true;
};

/// Generates the synthetic stand-in for the named benchmark dataset.
StatusOr<graph::GraphDataset> MakeDataset(const std::string& name,
                                          const DatasetOptions& options = {});

/// Names of all registered datasets (Table 1 order).
std::vector<std::string> DatasetNames();

}  // namespace deepmap::datasets

#endif  // DEEPMAP_DATASETS_REGISTRY_H_
