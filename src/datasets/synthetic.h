// Synthetic stand-ins for the paper's Table 1 benchmark datasets.
//
// The original TU files are not available in this environment (DESIGN.md
// substitution #1). Each generator matches its dataset's generative family
// and Table 1 statistics (graph count, classes, avg |V|, avg |E|, label
// alphabet) while planting a class signal that the models under comparison
// can learn:
//   - SYNTHIE: subsamples + rewirings of two Erdos-Renyi seed graphs (the
//     construction the paper describes), 4 classes.
//   - KKI: random geometric "ROI" networks; classes differ in connection
//     radius; ~190 region labels with class-shifted distributions.
//   - Chemical (BZR_MD, COX2_MD, DHFR, NCI1, PTC_*): random molecules (tree
//     backbone + ring motifs), class-dependent motif frequency and atom-label
//     mix; BZR_MD/COX2_MD are emitted as complete graphs per the paper.
//   - Protein (ENZYMES, PROTEINS): secondary-structure chains (3 labels)
//     with class-dependent label transitions and spatial shortcut edges.
//   - Ego (IMDB-BINARY, IMDB-MULTI, COLLAB): overlapping-clique ego networks
//     whose clique count/size depends on the class; unlabeled.
#ifndef DEEPMAP_DATASETS_SYNTHETIC_H_
#define DEEPMAP_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "graph/dataset.h"

namespace deepmap::datasets {

/// SYNTHIE-like: 4 classes from two ER seeds x {low, high} rewiring.
graph::GraphDataset MakeSynthie(int num_graphs, uint64_t seed);

/// KKI-like brain networks: 2 classes, geometric connectivity.
graph::GraphDataset MakeKki(int num_graphs, uint64_t seed);

/// Parameters of the chemical-compound family.
struct ChemicalParams {
  std::string name;
  int num_classes = 2;
  double avg_vertices = 20.0;
  int label_count = 10;
  /// Emit complete graphs over the labeled atoms (BZR_MD / COX2_MD style).
  bool complete_graph = false;
  /// Ring-motif attachment probability per class (the topological signal).
  double ring_prob_base = 0.2;
  double ring_prob_step = 0.35;
  /// How far the per-class atom-label distribution is rotated.
  double label_shift = 0.3;
  /// Probability that an atom label is replaced by a uniform random label
  /// (keeps exact-match substructure kernels from saturating, mirroring the
  /// difficulty of the real screens).
  double label_noise = 0.35;
};

/// Chemical/molecular compound datasets.
graph::GraphDataset MakeChemical(const ChemicalParams& params, int num_graphs,
                                 uint64_t seed);

/// Parameters of the protein family (3 structure labels).
struct ProteinParams {
  std::string name;
  int num_classes = 2;
  double avg_vertices = 39.0;
  /// Shortcut-edge rate per backbone vertex, modulated per class.
  double shortcut_base = 0.5;
  double shortcut_step = 0.35;
};

/// Protein-structure datasets (ENZYMES, PROTEINS).
graph::GraphDataset MakeProtein(const ProteinParams& params, int num_graphs,
                                uint64_t seed);

/// Parameters of the ego-network family (unlabeled).
struct EgoParams {
  std::string name;
  int num_classes = 2;
  double avg_vertices = 20.0;
  /// Base number of overlapping groups (cliques); classes get base + class.
  int base_groups = 1;
  /// Density of within-group connections.
  double within_group_density = 0.9;
};

/// Collaboration ego networks (IMDB-BINARY, IMDB-MULTI, COLLAB).
graph::GraphDataset MakeEgo(const EgoParams& params, int num_graphs,
                            uint64_t seed);

}  // namespace deepmap::datasets

#endif  // DEEPMAP_DATASETS_SYNTHETIC_H_
