#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "datasets/random_graphs.h"

namespace deepmap::datasets {
namespace {

using graph::Graph;
using graph::GraphDataset;
using graph::Label;
using graph::Vertex;

// Balanced class assignment: class of graph i is i mod C (shuffled later by
// consumers if needed; generation order carries no other signal).
int ClassOf(int graph_index, int num_classes) {
  return graph_index % num_classes;
}

// Jitters a target size, keeping it >= min_size.
int JitterSize(double mean, double rel_std, int min_size, Rng& rng) {
  int n = static_cast<int>(std::lround(rng.Normal(mean, mean * rel_std)));
  return std::max(min_size, n);
}

// Plants the class signal as a centrality-label correlation: which label
// block occupies the structurally central vertices depends on the class,
// while the marginal label histogram stays (near-)identical across classes.
// This is the kind of high-order label-structure interaction the DEEPMAP
// paper's alignment mechanism targets, and that plain histogram matching
// cannot linearly separate.
//
// For small alphabets (<= 4) each class is an ordered (core-label,
// periphery-label) pair; for larger alphabets the alphabet is split into
// halves and the class orientation decides which half sits at the core.
// With probability `noise` a vertex label is uniform random instead.
void AssignCentralityCorrelatedLabels(Graph& g, int label_count,
                                      int num_classes, int cls, double noise,
                                      Rng& rng) {
  DEEPMAP_CHECK_GE(label_count, 2);
  const int n = g.NumVertices();
  if (n == 0) return;
  // Degree rank as the (cheap, degree-correlated) centrality proxy; the
  // median splits core from periphery.
  std::vector<int> degrees(n);
  for (Vertex v = 0; v < n; ++v) degrees[v] = g.Degree(v);
  std::vector<int> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  const int median = sorted[n / 2];

  auto sample_block = [&](bool core) -> Label {
    if (label_count <= 4) {
      const Label core_label = static_cast<Label>(cls % label_count);
      const Label periph_label = static_cast<Label>(
          (cls + 1 + cls / label_count) % label_count);
      return core ? core_label : periph_label;
    }
    const int half = label_count / 2;
    // Orientation: even classes put the low half at the core.
    const bool low_at_core = (cls % 2) == 0;
    const bool use_low = core == low_at_core;
    const int start = use_low ? 0 : half;
    const int size = use_low ? half : label_count - half;
    // Zipf rank within the block: a handful of labels dominate, so the
    // block identity is statistically visible even from small samples of a
    // large alphabet (cf. KKI's 190 ROI labels).
    double total = 0.0;
    for (int l = 0; l < size; ++l) total += 1.0 / (1.0 + l);
    double u = rng.Uniform() * total;
    int rank = 0;
    for (; rank < size - 1; ++rank) {
      u -= 1.0 / (1.0 + rank);
      if (u <= 0.0) break;
    }
    // Mild rotation by class gives multiclass datasets extra separation.
    const int rotation = (cls / 2) * std::max(1, size / num_classes);
    return static_cast<Label>(start + (rank + rotation) % size);
  };

  for (Vertex v = 0; v < n; ++v) {
    if (rng.Bernoulli(noise)) {
      g.SetLabel(v, static_cast<Label>(
                        rng.Index(static_cast<size_t>(label_count))));
    } else {
      g.SetLabel(v, sample_block(degrees[v] > median ||
                                 (degrees[v] == median && v % 2 == 0)));
    }
  }
}

}  // namespace

GraphDataset MakeSynthie(int num_graphs, uint64_t seed) {
  DEEPMAP_CHECK_GT(num_graphs, 0);
  Rng rng(seed);
  // Two ER seed graphs (the paper's construction); B is denser than A so the
  // seed identity is statistically recoverable from subsamples.
  Graph seed_a = ErdosRenyi(110, 0.030, rng);
  Graph seed_b = ErdosRenyi(110, 0.042, rng);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    int cls = ClassOf(i, 4);
    const Graph& base = (cls < 2) ? seed_a : seed_b;
    double rewire = (cls % 2 == 0) ? 0.05 : 0.45;
    double keep = rng.Uniform(0.78, 0.95);
    graphs.push_back(SubsampleAndRewire(base, keep, rewire, rng));
    labels.push_back(cls);
  }
  return GraphDataset("SYNTHIE", std::move(graphs), std::move(labels),
                      /*has_vertex_labels=*/false);
}

GraphDataset MakeKki(int num_graphs, uint64_t seed) {
  DEEPMAP_CHECK_GT(num_graphs, 0);
  Rng rng(seed);
  constexpr int kLabelCount = 190;  // ROI atlas size (Table 1)
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    int cls = ClassOf(i, 2);
    int n = JitterSize(27.0, 0.25, 8, rng);
    // ADHD-vs-control stand-in: diseased networks are less integrated
    // (smaller connection radius -> fewer functional correlations).
    double radius = (cls == 0) ? 0.225 : 0.195;
    Graph g = RandomGeometric(n, radius, rng);
    // ROI labels: which regions are functional hubs depends on the class.
    AssignCentralityCorrelatedLabels(g, kLabelCount, 2, cls, /*noise=*/0.3,
                                     rng);
    graphs.push_back(std::move(g));
    labels.push_back(cls);
  }
  return GraphDataset("KKI", std::move(graphs), std::move(labels));
}

GraphDataset MakeChemical(const ChemicalParams& params, int num_graphs,
                          uint64_t seed) {
  DEEPMAP_CHECK_GT(num_graphs, 0);
  Rng rng(seed);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    int cls = ClassOf(i, params.num_classes);
    double ring_prob = std::min(
        0.95, params.ring_prob_base + cls * params.ring_prob_step);
    // Backbone tree holds most atoms; ring motifs add the rest (expected
    // totals calibrated against Table 1 averages).
    int backbone = JitterSize(params.avg_vertices * 0.85, 0.2, 3, rng);
    Graph g = RandomTree(backbone, params.label_count, rng);
    // Ring motifs (aromatic-cycle stand-ins): a weak topological signal.
    int ring_budget = static_cast<int>(std::lround(params.avg_vertices * 0.3));
    while (ring_budget >= 3) {
      if (!rng.Bernoulli(ring_prob)) break;
      int ring_size = std::min(ring_budget, rng.UniformInt(3, 6));
      if (ring_size < 3) break;
      Vertex anchor = static_cast<Vertex>(rng.Index(g.NumVertices()));
      AttachRing(g, anchor, ring_size, params.label_count, rng);
      ring_budget -= ring_size;
    }
    // Primary class signal: which atom-label block sits at the structural
    // core (see AssignCentralityCorrelatedLabels).
    AssignCentralityCorrelatedLabels(g, params.label_count,
                                     params.num_classes, cls,
                                     params.label_noise, rng);
    if (params.complete_graph) {
      // BZR_MD / COX2_MD: explicit-distance complete graphs over the atoms.
      Graph complete(g.NumVertices());
      for (Vertex v = 0; v < g.NumVertices(); ++v) {
        complete.SetLabel(v, g.GetLabel(v));
      }
      for (Vertex u = 0; u < complete.NumVertices(); ++u) {
        for (Vertex v = u + 1; v < complete.NumVertices(); ++v) {
          complete.AddEdge(u, v);
        }
      }
      g = std::move(complete);
    }
    graphs.push_back(std::move(g));
    labels.push_back(cls);
  }
  return GraphDataset(params.name, std::move(graphs), std::move(labels));
}

GraphDataset MakeProtein(const ProteinParams& params, int num_graphs,
                         uint64_t seed) {
  DEEPMAP_CHECK_GT(num_graphs, 0);
  Rng rng(seed);
  constexpr int kStructureLabels = 3;  // helix / sheet / turn
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    int cls = ClassOf(i, params.num_classes);
    int n = JitterSize(params.avg_vertices, 0.3, 4, rng);
    Graph g(n);
    // Backbone: amino-acid-sequence neighbors.
    for (Vertex v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
    // Spatial shortcuts (3-nearest-in-space stand-in): a weak per-class
    // rate difference.
    double shortcut_rate =
        params.shortcut_base +
        params.shortcut_step * (cls % std::max(2, params.num_classes / 2));
    int shortcuts = static_cast<int>(std::lround(shortcut_rate * n));
    for (int s = 0; s < shortcuts; ++s) {
      Vertex u = static_cast<Vertex>(rng.Index(n));
      int span = rng.UniformInt(2, std::max(2, n / 4));
      Vertex v = std::min<Vertex>(n - 1, u + span);
      if (u != v) g.AddEdge(u, v);
    }
    // Primary class signal: which secondary-structure label occupies the
    // contact-rich core (6 enzyme classes = 6 ordered label pairs).
    AssignCentralityCorrelatedLabels(g, kStructureLabels, params.num_classes,
                                     cls, /*noise=*/0.25, rng);
    graphs.push_back(std::move(g));
    labels.push_back(cls);
  }
  return GraphDataset(params.name, std::move(graphs), std::move(labels));
}

GraphDataset MakeEgo(const EgoParams& params, int num_graphs, uint64_t seed) {
  DEEPMAP_CHECK_GT(num_graphs, 0);
  Rng rng(seed);
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(num_graphs);
  for (int i = 0; i < num_graphs; ++i) {
    int cls = ClassOf(i, params.num_classes);
    int n = JitterSize(params.avg_vertices, 0.3, 5, rng);
    // Class c splits collaborators of the ego into (base_groups + c)
    // overlapping near-cliques ("movies" / "papers").
    int groups = params.base_groups + cls;
    Graph g(n);
    const Vertex ego = 0;
    for (Vertex v = 1; v < n; ++v) g.AddEdge(ego, v);
    // Assign every non-ego vertex to 1-2 groups.
    std::vector<std::vector<Vertex>> members(groups);
    for (Vertex v = 1; v < n; ++v) {
      members[rng.Index(static_cast<size_t>(groups))].push_back(v);
      if (rng.Bernoulli(0.25)) {
        members[rng.Index(static_cast<size_t>(groups))].push_back(v);
      }
    }
    for (const auto& group : members) {
      for (size_t a = 0; a < group.size(); ++a) {
        for (size_t b = a + 1; b < group.size(); ++b) {
          if (rng.Bernoulli(params.within_group_density)) {
            g.AddEdge(group[a], group[b]);
          }
        }
      }
    }
    graphs.push_back(std::move(g));
    labels.push_back(cls);
  }
  return GraphDataset(params.name, std::move(graphs), std::move(labels),
                      /*has_vertex_labels=*/false);
}

}  // namespace deepmap::datasets
