#include "datasets/sharded_tu_corpus.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "graph/tu_format.h"

namespace deepmap::datasets {
namespace {

constexpr char kManifestMagic[] = "tu_corpus";
constexpr char kManifestVersion[] = "v1";

std::string ManifestPath(const std::string& directory,
                         const std::string& name) {
  return directory + "/" + name + "_manifest.txt";
}

}  // namespace

std::string CorpusShardName(const std::string& name, int index) {
  return name + "-s" + std::to_string(index);
}

ShardedTuCorpusWriter::ShardedTuCorpusWriter(std::string directory,
                                             std::string name,
                                             const Options& options)
    : directory_(std::move(directory)),
      name_(std::move(name)),
      options_(options) {
  if (options_.shard_size < 1) options_.shard_size = 1;
  buffer_.reserve(static_cast<size_t>(options_.shard_size));
}

Status ShardedTuCorpusWriter::Append(const graph::Graph& g, int label) {
  if (finalized_) {
    return Status::FailedPrecondition("corpus already finalized");
  }
  if (!flush_error_.ok()) return flush_error_;
  buffer_.push_back(g);
  buffer_labels_.push_back(label);
  auto it = std::lower_bound(label_set_.begin(), label_set_.end(), label);
  if (it == label_set_.end() || *it != label) label_set_.insert(it, label);
  ++graphs_written_;
  if (static_cast<int>(buffer_.size()) >= options_.shard_size) {
    return FlushShard();
  }
  return Status::Ok();
}

Status ShardedTuCorpusWriter::FlushShard() {
  graph::GraphDataset shard(CorpusShardName(name_, shards_written_),
                            std::move(buffer_), std::move(buffer_labels_),
                            options_.has_vertex_labels);
  buffer_.clear();
  buffer_labels_.clear();
  // Commit the shard into the manifest bookkeeping only once its bytes are
  // on disk; a failed write must not leave Finalize declaring a shard that
  // is missing or truncated. The failure is sticky — the flushed graphs are
  // gone, so the writer refuses further Appends and Finalize.
  if (Status s = graph::WriteTuDataset(shard, directory_); !s.ok()) {
    flush_error_ = s;
    return s;
  }
  shard_counts_.push_back(shard.size());
  ++shards_written_;
  return Status::Ok();
}

Status ShardedTuCorpusWriter::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("corpus already finalized");
  }
  if (!flush_error_.ok()) return flush_error_;
  finalized_ = true;
  if (!buffer_.empty()) {
    if (Status s = FlushShard(); !s.ok()) return s;
  }

  std::ofstream out(ManifestPath(directory_, name_));
  if (!out) {
    return Status::IoError("cannot create manifest under " + directory_);
  }
  out << kManifestMagic << ' ' << kManifestVersion << '\n';
  out << "name " << name_ << '\n';
  out << "shard_size " << options_.shard_size << '\n';
  out << "vertex_labels " << (options_.has_vertex_labels ? 1 : 0) << '\n';
  out << "shards " << shards_written_ << '\n';
  out << "graphs " << graphs_written_ << '\n';
  out << "labels";
  for (int label : label_set_) out << ' ' << label;
  out << '\n';
  for (size_t i = 0; i < shard_counts_.size(); ++i) {
    out << "shard " << i << ' ' << shard_counts_[i] << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("short write of corpus manifest");
  return Status::Ok();
}

StatusOr<ShardedTuCorpus> ShardedTuCorpus::Open(const std::string& directory,
                                                const std::string& name) {
  const std::string path = ManifestPath(directory, name);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  ShardedTuCorpus corpus;
  corpus.directory_ = directory;
  corpus.name_ = name;

  auto malformed = [&path](const std::string& line) {
    return Status::InvalidArgument("malformed manifest line '" + line +
                                   "' in " + path);
  };

  int declared_shards = -1;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    auto fields = Split(trimmed, ' ');
    if (first) {
      if (fields.size() != 2 || fields[0] != kManifestMagic ||
          fields[1] != kManifestVersion) {
        return Status::InvalidArgument("not a " + std::string(kManifestMagic) +
                                       " " + kManifestVersion +
                                       " manifest: " + path);
      }
      first = false;
      continue;
    }
    const std::string& key = fields[0];
    if (key == "name") {
      if (fields.size() != 2 || fields[1] != name) return malformed(trimmed);
    } else if (key == "shard_size") {
      if (fields.size() != 2 ||
          !ParseFullInt(fields[1], &corpus.shard_size_) ||
          corpus.shard_size_ < 1) {
        return malformed(trimmed);
      }
    } else if (key == "vertex_labels") {
      int flag = 0;
      if (fields.size() != 2 || !ParseFullInt(fields[1], &flag) ||
          (flag != 0 && flag != 1)) {
        return malformed(trimmed);
      }
      corpus.has_vertex_labels_ = flag == 1;
    } else if (key == "shards") {
      if (fields.size() != 2 || !ParseFullInt(fields[1], &declared_shards) ||
          declared_shards < 0) {
        return malformed(trimmed);
      }
    } else if (key == "graphs") {
      if (fields.size() != 2 ||
          !ParseFullInt64(fields[1], &corpus.total_graphs_) ||
          corpus.total_graphs_ < 0) {
        return malformed(trimmed);
      }
    } else if (key == "labels") {
      for (size_t i = 1; i < fields.size(); ++i) {
        int label = 0;
        if (!ParseFullInt(fields[i], &label)) return malformed(trimmed);
        corpus.label_set_.push_back(label);
      }
      if (!std::is_sorted(corpus.label_set_.begin(),
                          corpus.label_set_.end()) ||
          std::adjacent_find(corpus.label_set_.begin(),
                             corpus.label_set_.end()) !=
              corpus.label_set_.end()) {
        return malformed(trimmed);
      }
    } else if (key == "shard") {
      int index = 0;
      int count = 0;
      if (fields.size() != 3 || !ParseFullInt(fields[1], &index) ||
          !ParseFullInt(fields[2], &count) ||
          index != static_cast<int>(corpus.shard_counts_.size()) ||
          count < 1) {
        return malformed(trimmed);
      }
      corpus.shard_counts_.push_back(count);
    } else {
      return malformed(trimmed);
    }
  }
  if (first) {
    return Status::InvalidArgument("empty manifest: " + path);
  }
  if (declared_shards != static_cast<int>(corpus.shard_counts_.size())) {
    return Status::InvalidArgument("manifest shard count mismatch in " +
                                   path);
  }
  int64_t declared_total = 0;
  for (int count : corpus.shard_counts_) declared_total += count;
  if (declared_total != corpus.total_graphs_) {
    return Status::InvalidArgument("manifest graph count mismatch in " +
                                   path);
  }
  if (corpus.shard_size_ < 1) {
    return Status::InvalidArgument("manifest missing shard_size in " + path);
  }
  return corpus;
}

Status ShardedTuCorpus::SeekShard(int shard) {
  if (shard < 0 || shard > num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  next_shard_ = shard;
  return Status::Ok();
}

StatusOr<graph::GraphDataset> ShardedTuCorpus::NextBatch() {
  if (Done()) {
    return Status::FailedPrecondition("corpus exhausted (use SeekShard to "
                                      "rewind)");
  }
  const int shard = next_shard_;
  // Raw labels on the way in; the corpus-wide remap below keeps class ids
  // identical across shards regardless of which labels each shard saw.
  graph::TuReadOptions read_options;
  read_options.compact_graph_labels = false;
  read_options.compact_vertex_labels = false;
  auto dataset = graph::ReadTuDataset(
      directory_, CorpusShardName(name_, shard), read_options);
  if (!dataset.ok()) return dataset.status();
  if (dataset.value().size() != shard_counts_[shard]) {
    return Status::InvalidArgument(
        "shard " + std::to_string(shard) + " holds " +
        std::to_string(dataset.value().size()) + " graphs, manifest says " +
        std::to_string(shard_counts_[shard]));
  }

  std::unordered_map<int, int> remap;
  remap.reserve(label_set_.size());
  for (size_t i = 0; i < label_set_.size(); ++i) {
    remap[label_set_[i]] = static_cast<int>(i);
  }
  std::vector<int> labels;
  labels.reserve(static_cast<size_t>(dataset.value().size()));
  for (int raw : dataset.value().labels()) {
    auto it = remap.find(raw);
    if (it == remap.end()) {
      return Status::InvalidArgument(
          "shard " + std::to_string(shard) + " has class label " +
          std::to_string(raw) + " absent from the manifest label set");
    }
    labels.push_back(it->second);
  }
  graph::GraphDataset remapped(
      dataset.value().name(),
      std::move(dataset.value().mutable_graphs()), std::move(labels),
      has_vertex_labels_);
  ++next_shard_;
  return remapped;
}

}  // namespace deepmap::datasets
