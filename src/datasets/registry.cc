#include "datasets/registry.h"

#include <algorithm>
#include <cmath>

#include "datasets/synthetic.h"

namespace deepmap::datasets {
namespace {

using graph::GraphDataset;

const PaperDatasetSpec kSpecs[] = {
    {"SYNTHIE", 400, 4, 95.00, 172.93, -1},
    {"KKI", 83, 2, 26.96, 48.42, 190},
    {"BZR_MD", 306, 2, 21.30, 225.06, 8},
    {"COX2_MD", 303, 2, 26.28, 335.12, 7},
    {"DHFR", 467, 2, 42.43, 44.54, 9},
    {"NCI1", 4110, 2, 17.93, 19.79, 37},
    {"PTC_MM", 336, 2, 13.97, 14.32, 20},
    {"PTC_MR", 344, 2, 14.29, 14.69, 18},
    {"PTC_FM", 349, 2, 14.11, 14.48, 18},
    {"PTC_FR", 351, 2, 14.56, 15.00, 19},
    {"ENZYMES", 600, 6, 32.63, 62.14, 3},
    {"PROTEINS", 1113, 2, 39.06, 72.82, 3},
    {"IMDB-BINARY", 1000, 2, 19.77, 96.53, -1},
    {"IMDB-MULTI", 1500, 3, 13.00, 65.94, -1},
    {"COLLAB", 5000, 3, 74.49, 2457.78, -1},
};

int ScaledCount(const PaperDatasetSpec& spec, const DatasetOptions& options) {
  int count = static_cast<int>(std::lround(spec.size * options.scale));
  count = std::max(count, options.min_graphs);
  count = std::min(count, spec.size);
  // Round up to a multiple of the class count so classes stay balanced.
  int rem = count % spec.num_classes;
  if (rem != 0) count += spec.num_classes - rem;
  return count;
}

GraphDataset Generate(const PaperDatasetSpec& spec, int count, uint64_t seed) {
  const std::string& name = spec.name;
  if (name == "SYNTHIE") return MakeSynthie(count, seed);
  if (name == "KKI") return MakeKki(count, seed);
  if (name == "BZR_MD") {
    return MakeChemical({.name = name,
                         .num_classes = 2,
                         .avg_vertices = 21.3,
                         .label_count = 8,
                         .complete_graph = true},
                        count, seed);
  }
  if (name == "COX2_MD") {
    return MakeChemical({.name = name,
                         .num_classes = 2,
                         .avg_vertices = 26.3,
                         .label_count = 7,
                         .complete_graph = true},
                        count, seed);
  }
  if (name == "DHFR") {
    return MakeChemical({.name = name,
                         .num_classes = 2,
                         .avg_vertices = 42.4,
                         .label_count = 9},
                        count, seed);
  }
  if (name == "NCI1") {
    return MakeChemical({.name = name,
                         .num_classes = 2,
                         .avg_vertices = 17.9,
                         .label_count = 37},
                        count, seed);
  }
  if (name.rfind("PTC_", 0) == 0) {
    // The four PTC screens share a family; the label alphabet and slight
    // size differences come from the spec. Carcinogenicity screens are
    // noisy, so the planted signal is weak (paper accuracies ~60-70%).
    return MakeChemical({.name = name,
                         .num_classes = 2,
                         .avg_vertices = spec.avg_vertices,
                         .label_count = spec.label_count,
                         .ring_prob_base = 0.2,
                         .ring_prob_step = 0.2,
                         .label_shift = 0.18,
                         .label_noise = 0.45},
                        count, seed);
  }
  if (name == "ENZYMES") {
    return MakeProtein({.name = name,
                        .num_classes = 6,
                        .avg_vertices = 32.6,
                        .shortcut_base = 0.5,
                        .shortcut_step = 0.25},
                       count, seed);
  }
  if (name == "PROTEINS") {
    return MakeProtein({.name = name,
                        .num_classes = 2,
                        .avg_vertices = 39.1,
                        .shortcut_base = 0.55,
                        .shortcut_step = 0.35},
                       count, seed);
  }
  if (name == "IMDB-BINARY") {
    return MakeEgo({.name = name,
                    .num_classes = 2,
                    .avg_vertices = 19.8,
                    .base_groups = 1,
                    .within_group_density = 0.55},
                   count, seed);
  }
  if (name == "IMDB-MULTI") {
    return MakeEgo({.name = name,
                    .num_classes = 3,
                    .avg_vertices = 13.0,
                    .base_groups = 1,
                    .within_group_density = 0.95},
                   count, seed);
  }
  if (name == "COLLAB") {
    return MakeEgo({.name = name,
                    .num_classes = 3,
                    .avg_vertices = 74.5,
                    .base_groups = 1,
                    .within_group_density = 0.97},
                   count, seed);
  }
  DEEPMAP_CHECK(false);  // registry and Generate() must stay in sync
  return GraphDataset();
}

}  // namespace

const std::vector<PaperDatasetSpec>& PaperDatasets() {
  static const std::vector<PaperDatasetSpec>& specs =
      *new std::vector<PaperDatasetSpec>(std::begin(kSpecs), std::end(kSpecs));
  return specs;
}

StatusOr<PaperDatasetSpec> FindPaperDataset(const std::string& name) {
  for (const PaperDatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

StatusOr<graph::GraphDataset> MakeDataset(const std::string& name,
                                          const DatasetOptions& options) {
  auto spec = FindPaperDataset(name);
  if (!spec.ok()) return spec.status();
  int count = ScaledCount(spec.value(), options);
  GraphDataset dataset = Generate(spec.value(), count, options.seed);
  if (options.degrees_as_labels && !dataset.has_vertex_labels()) {
    dataset.UseDegreesAsLabels();
  }
  return dataset;
}

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  names.reserve(PaperDatasets().size());
  for (const PaperDatasetSpec& spec : PaperDatasets()) {
    names.push_back(spec.name);
  }
  return names;
}

}  // namespace deepmap::datasets
