// ShardedTuCorpus: million-graph corpora as TU-format shards behind a
// manifest, streamed one shard at a time.
//
// The training/eval stack loads a whole GraphDataset into memory, which
// caps corpus size at available RAM. This pair splits a corpus into
// fixed-size TU shards (each a self-contained dataset readable by
// ReadTuDataset) plus one manifest:
//
//   <name>_manifest.txt       corpus metadata (strictly parsed)
//   <name>-s<k>_A.txt, ...    shard k in plain TU format
//
// The writer buffers at most one shard of graphs before flushing, and the
// reader's NextBatch() materializes exactly one shard, so peak resident
// graph memory on both sides is bounded by shard_size regardless of corpus
// size (the property bench/dynamic_serve measures).
//
// Label consistency: ReadTuDataset normally compacts class labels per
// dataset, which would remap the same raw label differently in shards
// covering different label subsets. Shards are therefore written and read
// with RAW labels (TuReadOptions compaction off); the manifest records the
// corpus-wide sorted raw label set and NextBatch remaps every shard against
// it, so label ids agree across shards and with a hypothetical whole-corpus
// load. Vertex labels are passed through raw for the same reason.
//
// Resumption: shards are independently addressable. next_shard() names the
// next shard NextBatch will load; SeekShard() repositions, so a consumer
// can checkpoint an index and resume in a fresh process.
#ifndef DEEPMAP_DATASETS_SHARDED_TU_CORPUS_H_
#define DEEPMAP_DATASETS_SHARDED_TU_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/dataset.h"
#include "graph/graph.h"

namespace deepmap::datasets {

/// Shard file-name prefix of shard `index` ("<name>-s<index>").
std::string CorpusShardName(const std::string& name, int index);

/// Streaming writer: Append graphs one at a time, Finalize writes the
/// manifest. Holds at most one shard of graphs in memory.
class ShardedTuCorpusWriter {
 public:
  struct Options {
    /// Graphs per shard (the final shard may be smaller).
    int shard_size = 4096;
    /// Write node-label files (set false for unlabeled corpora).
    bool has_vertex_labels = true;
  };

  ShardedTuCorpusWriter(std::string directory, std::string name,
                        const Options& options);
  ShardedTuCorpusWriter(std::string directory, std::string name)
      : ShardedTuCorpusWriter(std::move(directory), std::move(name),
                              Options()) {}

  /// Buffers one graph; flushes a full shard to disk. `label` is the raw
  /// class label (any int; compaction happens corpus-wide at read time).
  Status Append(const graph::Graph& g, int label);

  /// Flushes the partial shard (if any) and writes the manifest. Must be
  /// called exactly once; Append after Finalize is FailedPrecondition.
  /// A failed shard flush is sticky: the buffered graphs are lost, so every
  /// later Append and Finalize returns the flush error and no manifest is
  /// written (the manifest never declares a shard whose write failed).
  Status Finalize();

  int shards_written() const { return shards_written_; }
  int64_t graphs_written() const { return graphs_written_; }

 private:
  Status FlushShard();

  std::string directory_;
  std::string name_;
  Options options_;
  std::vector<graph::Graph> buffer_;
  std::vector<int> buffer_labels_;
  std::vector<int> shard_counts_;
  std::vector<int> label_set_;  // sorted distinct raw labels
  int shards_written_ = 0;
  int64_t graphs_written_ = 0;
  bool finalized_ = false;
  Status flush_error_;  // first failed flush; sticky once set
};

/// Pull-based reader over a written corpus.
class ShardedTuCorpus {
 public:
  /// Parses the manifest (strictly: any malformed field is
  /// InvalidArgument; a missing manifest is IoError). Loads no shard.
  static StatusOr<ShardedTuCorpus> Open(const std::string& directory,
                                        const std::string& name);

  int num_shards() const { return static_cast<int>(shard_counts_.size()); }
  int64_t total_graphs() const { return total_graphs_; }
  int shard_size() const { return shard_size_; }
  int num_classes() const { return static_cast<int>(label_set_.size()); }
  /// Sorted distinct raw class labels; a graph's compact label is its
  /// index here.
  const std::vector<int>& class_labels() const { return label_set_; }
  /// Declared graph count of one shard.
  int shard_count(int shard) const { return shard_counts_[shard]; }

  /// Index of the shard the next NextBatch() call loads.
  int next_shard() const { return next_shard_; }
  bool Done() const { return next_shard_ >= num_shards(); }

  /// Repositions the stream (0 <= shard <= num_shards(); passing
  /// num_shards() makes Done() true immediately).
  Status SeekShard(int shard);

  /// Loads shard next_shard() as a GraphDataset (class labels remapped to
  /// the corpus-wide [0, num_classes()) range, vertex labels raw) and
  /// advances. FailedPrecondition once Done(); a shard that disagrees with
  /// its manifest entry is InvalidArgument.
  StatusOr<graph::GraphDataset> NextBatch();

 private:
  ShardedTuCorpus() = default;

  std::string directory_;
  std::string name_;
  int shard_size_ = 0;
  int64_t total_graphs_ = 0;
  bool has_vertex_labels_ = true;
  std::vector<int> shard_counts_;
  std::vector<int> label_set_;
  int next_shard_ = 0;
};

}  // namespace deepmap::datasets

#endif  // DEEPMAP_DATASETS_SHARDED_TU_CORPUS_H_
