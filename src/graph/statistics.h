// Descriptive graph statistics beyond Table 1's columns: density, clustering,
// degree assortativity. Used by the CLI's `stats` command and the dataset
// generators' calibration tests.
#ifndef DEEPMAP_GRAPH_STATISTICS_H_
#define DEEPMAP_GRAPH_STATISTICS_H_

#include "graph/dataset.h"
#include "graph/graph.h"

namespace deepmap::graph {

/// |E| / C(|V|, 2); 0 for graphs with < 2 vertices.
double Density(const Graph& g);

/// Global clustering coefficient: 3 * #triangles / #connected-triples
/// (0 when there are no triples).
double GlobalClusteringCoefficient(const Graph& g);

/// Average of the per-vertex local clustering coefficients (vertices with
/// degree < 2 count as 0).
double AverageLocalClustering(const Graph& g);

/// Pearson correlation of the degrees at the two ends of each edge
/// (degree assortativity, Newman 2002). 0 for degenerate cases.
double DegreeAssortativity(const Graph& g);

/// Extended per-dataset aggregate statistics (means over graphs).
struct ExtendedStats {
  double density = 0.0;
  double clustering = 0.0;       // mean global clustering coefficient
  double assortativity = 0.0;    // mean degree assortativity
  double components = 0.0;       // mean connected-component count
  double diameter = 0.0;         // mean diameter (largest component)
};

ExtendedStats ComputeExtendedStats(const GraphDataset& dataset);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_STATISTICS_H_
