#include "graph/dynamic_graph.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "graph/isomorphism.h"

namespace deepmap::graph {

DynamicGraph::DynamicGraph(Graph base, const DynamicGraphOptions& options)
    : graph_(std::move(base)), options_(options) {
  DEEPMAP_CHECK_GE(options_.wl_iterations, 0);
  levels_ = WlHashColors(graph_, options_.wl_iterations);
  digest_sum_ = 0;
  for (uint64_t h : levels_.back()) digest_sum_ += WlHashDigestLeaf(h);
  dist_.assign(graph_.NumVertices(), -1);
}

Status DynamicGraph::Apply(const EdgeUpdate& update) {
  Status s = ApplyImpl(update);
  if (s.ok()) ++updates_applied_;
  return s;
}

Status DynamicGraph::ApplyImpl(const EdgeUpdate& update) {
  const Vertex u = update.u;
  const Vertex v = update.v;
  const int n = graph_.NumVertices();
  if (u < 0 || v < 0 || u >= n || v >= n) {
    return Status::InvalidArgument(
        "edge update endpoint out of range [0, " + std::to_string(n) + ")");
  }
  if (u == v) {
    return Status::InvalidArgument("edge update is a self loop");
  }
  if (update.insert && graph_.HasEdge(u, v)) {
    return Status::InvalidArgument("inserting already-present edge");
  }
  if (!update.insert && !graph_.HasEdge(u, v)) {
    return Status::InvalidArgument("removing absent edge");
  }

  // The changed set must be collected in whichever graph CONTAINS the edge:
  // level-h hashes depend on edges incident to each vertex's radius-(h-1)
  // ball, and only distances measured with the edge present bound which
  // balls the edge is incident to. Removal never shrinks distances, so for
  // deletes the pre-removal ball covers the post-removal one.
  const int radius = options_.wl_iterations - 1;
  auto collect_ball = [&] {
    if (radius < 0) return;  // wl_iterations == 0: labels only, no repair
    dist_[u] = 0;
    visited_.push_back(u);
    dist_[v] = 0;
    visited_.push_back(v);
    for (size_t head = 0; head < visited_.size(); ++head) {
      const Vertex w = visited_[head];
      if (dist_[w] == radius) continue;
      for (Vertex x : graph_.Neighbors(w)) {
        if (dist_[x] < 0) {
          dist_[x] = dist_[w] + 1;
          visited_.push_back(x);
        }
      }
    }
  };

  if (update.insert) {
    DEEPMAP_CHECK(graph_.AddEdge(u, v));
    collect_ball();
  } else {
    collect_ball();
    DEEPMAP_CHECK(graph_.RemoveEdge(u, v));
  }

  // Level by level: a vertex at distance d from the delta can first feel it
  // at level d+1, so level t repairs exactly the dist <= t-1 slice. Reads
  // at level t only touch levels_[t-1], which the previous pass finished.
  for (int t = 1; t <= options_.wl_iterations; ++t) {
    const bool top = t == options_.wl_iterations;
    for (Vertex w : visited_) {
      if (dist_[w] <= t - 1) {
        const uint64_t fresh = WlHashStep(graph_, w, levels_[t - 1]);
        if (top) {
          // The digest is a modular leaf sum over the top level, so it
          // repairs in O(1) per recolored vertex alongside the hashes.
          digest_sum_ -= WlHashDigestLeaf(levels_[t][w]);
          digest_sum_ += WlHashDigestLeaf(fresh);
        }
        levels_[t][w] = fresh;
      }
    }
  }
  for (Vertex w : visited_) dist_[w] = -1;
  visited_.clear();

  fingerprint_dirty_ = true;
  centrality_dirty_ = true;
  return Status::Ok();
}

Status DynamicGraph::ApplyAll(const std::vector<EdgeUpdate>& updates) {
  // The counter is committed once, after the whole batch lands: a failed
  // batch — prefix applied, then rolled back — leaves updates_applied()
  // unchanged, matching the graph it describes.
  for (size_t i = 0; i < updates.size(); ++i) {
    Status s = ApplyImpl(updates[i]);
    if (s.ok()) continue;
    // All-or-nothing: undo the applied prefix in reverse. Each inverse must
    // succeed — it reverts a mutation this loop just made.
    for (size_t j = i; j-- > 0;) {
      EdgeUpdate inverse = updates[j];
      inverse.insert = !inverse.insert;
      Status undo = ApplyImpl(inverse);
      DEEPMAP_CHECK(undo.ok());
    }
    return s;
  }
  updates_applied_ += static_cast<int64_t>(updates.size());
  return Status::Ok();
}

const std::vector<uint64_t>& DynamicGraph::Hashes(int level) const {
  DEEPMAP_CHECK_GE(level, 0);
  DEEPMAP_CHECK_LE(level, options_.wl_iterations);
  return levels_[static_cast<size_t>(level)];
}

const std::string& DynamicGraph::Fingerprint() {
  if (fingerprint_dirty_) {
    fingerprint_ = WlHashFingerprintFromDigest(
        options_.wl_iterations,
        WlHashDigestFromSum(digest_sum_, graph_.NumVertices(),
                            options_.wl_iterations));
    fingerprint_dirty_ = false;
  }
  return fingerprint_;
}

const std::vector<double>& DynamicGraph::Centrality() {
  if (centrality_dirty_ || !centrality_valid_) {
    CentralityOptions options = options_.centrality;
    options.warm_start = centrality_valid_ ? &centrality_ : nullptr;
    options.iterations_used = &last_centrality_iterations_;
    centrality_ = EigenvectorCentrality(graph_, options);
    centrality_valid_ = true;
    centrality_dirty_ = false;
  }
  return centrality_;
}

}  // namespace deepmap::graph
