#include "graph/statistics.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"

namespace deepmap::graph {

double Density(const Graph& g) {
  const int64_t n = g.NumVertices();
  if (n < 2) return 0.0;
  return static_cast<double>(g.NumEdges()) / (n * (n - 1) / 2.0);
}

double GlobalClusteringCoefficient(const Graph& g) {
  int64_t triples = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    int64_t d = g.Degree(v);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) / triples;
}

double AverageLocalClustering(const Graph& g) {
  if (g.NumVertices() == 0) return 0.0;
  double total = 0.0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    const auto& neighbors = g.Neighbors(v);
    const int d = static_cast<int>(neighbors.size());
    if (d < 2) continue;
    int links = 0;
    for (int i = 0; i < d; ++i) {
      for (int j = i + 1; j < d; ++j) {
        if (g.HasEdge(neighbors[i], neighbors[j])) ++links;
      }
    }
    total += 2.0 * links / (static_cast<double>(d) * (d - 1));
  }
  return total / g.NumVertices();
}

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation over the 2m directed edge endpoints.
  const auto edges = g.EdgeList();
  if (edges.size() < 2) return 0.0;
  double sum_x = 0, sum_xx = 0, sum_xy = 0;
  const double count = 2.0 * edges.size();
  for (const auto& [u, v] : edges) {
    double du = g.Degree(u);
    double dv = g.Degree(v);
    sum_x += du + dv;
    sum_xx += du * du + dv * dv;
    sum_xy += 2.0 * du * dv;
  }
  double mean = sum_x / count;
  double var = sum_xx / count - mean * mean;
  double cov = sum_xy / count - mean * mean;
  if (var <= 1e-12) return 0.0;
  return cov / var;
}

ExtendedStats ComputeExtendedStats(const GraphDataset& dataset) {
  ExtendedStats stats;
  if (dataset.size() == 0) return stats;
  for (const Graph& g : dataset.graphs()) {
    stats.density += Density(g);
    stats.clustering += GlobalClusteringCoefficient(g);
    stats.assortativity += DegreeAssortativity(g);
    stats.components += NumConnectedComponents(g);
    stats.diameter += Diameter(g);
  }
  const double n = dataset.size();
  stats.density /= n;
  stats.clustering /= n;
  stats.assortativity /= n;
  stats.components /= n;
  stats.diameter /= n;
  return stats;
}

}  // namespace deepmap::graph
