// Core graph type: undirected, vertex-labeled, simple (no self loops or
// multi-edges). This is the substrate every kernel, feature map, and model in
// the library operates on.
#ifndef DEEPMAP_GRAPH_GRAPH_H_
#define DEEPMAP_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace deepmap::graph {

/// Vertex index within a graph.
using Vertex = int32_t;

/// Vertex label (non-negative small integer; the paper's Sigma).
using Label = int32_t;

/// Undirected labeled graph with contiguous vertex ids [0, NumVertices()).
///
/// Adjacency lists are kept sorted, enabling O(log d) HasEdge and
/// deterministic iteration. Vertices carry integer labels; unlabeled datasets
/// assign degrees as labels (see GraphDataset::UseDegreesAsLabels).
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `num_vertices` vertices, all labeled `label`.
  explicit Graph(int num_vertices, Label label = 0);

  /// Builds a graph from an edge list. Duplicate and self-loop edges are
  /// ignored. `labels` must be empty or have size `num_vertices`.
  static Graph FromEdges(int num_vertices,
                         const std::vector<std::pair<Vertex, Vertex>>& edges,
                         const std::vector<Label>& labels = {});

  /// Adds a vertex with the given label; returns its id.
  Vertex AddVertex(Label label = 0);

  /// Adds undirected edge {u, v}. Returns false (and does nothing) for self
  /// loops or already-present edges.
  bool AddEdge(Vertex u, Vertex v);

  /// Removes undirected edge {u, v}. Returns false (and does nothing) for
  /// self loops or absent edges. Exact inverse of AddEdge, so an
  /// insert/remove pair restores the graph bit-for-bit (what DynamicGraph's
  /// delta rollback relies on).
  bool RemoveEdge(Vertex u, Vertex v);

  int NumVertices() const { return static_cast<int>(adjacency_.size()); }
  int NumEdges() const { return num_edges_; }

  bool HasEdge(Vertex u, Vertex v) const;

  /// Sorted neighbor list of v.
  const std::vector<Vertex>& Neighbors(Vertex v) const;

  int Degree(Vertex v) const { return static_cast<int>(Neighbors(v).size()); }

  Label GetLabel(Vertex v) const;
  void SetLabel(Vertex v, Label label);

  /// All vertex labels, indexed by vertex.
  const std::vector<Label>& Labels() const { return labels_; }

  /// Each undirected edge exactly once, as (u, v) with u < v, sorted.
  std::vector<std::pair<Vertex, Vertex>> EdgeList() const;

  /// Largest label value + 1 (0 for the empty graph).
  Label LabelAlphabetSize() const;

  /// Induced subgraph on `vertices` (order defines new vertex ids).
  Graph InducedSubgraph(const std::vector<Vertex>& vertices) const;

  /// New graph with vertices renamed by `perm`: vertex v becomes perm[v].
  /// `perm` must be a permutation of [0, NumVertices()).
  Graph Permuted(const std::vector<Vertex>& perm) const;

  /// Human-readable summary, e.g. "Graph(n=5, m=6, labels=3)".
  std::string ToString() const;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<Label> labels_;
  int num_edges_ = 0;
};

/// Equality: identical vertex count, labels, and adjacency (NOT isomorphism).
bool operator==(const Graph& a, const Graph& b);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_GRAPH_H_
