// Vertex centrality measures. Eigenvector centrality (power iteration) is
// DEEPMAP's vertex-alignment measure; degree and PageRank centrality are
// provided for the alignment ablation.
#ifndef DEEPMAP_GRAPH_CENTRALITY_H_
#define DEEPMAP_GRAPH_CENTRALITY_H_

#include <vector>

#include "graph/graph.h"

namespace deepmap::graph {

/// Options for iterative centrality computations.
struct CentralityOptions {
  int max_iterations = 200;
  double tolerance = 1e-10;
  /// PageRank damping factor.
  double damping = 0.85;
  /// EigenvectorCentrality warm start: when non-null and sized to the graph,
  /// the power iteration starts from this vector (renormalized per
  /// component, entries clamped to >= 0) instead of the uniform positive
  /// start. The fixed point is unchanged; starting near the previous answer
  /// after a small edge delta typically converges in 1-2 rounds instead of
  /// tens (see graph/dynamic_graph.h). Null (the default) leaves the cold
  /// path bit-identical to the historical behavior.
  const std::vector<double>* warm_start = nullptr;
  /// When non-null, receives the number of power-iteration rounds executed
  /// (0 for the edgeless early-outs). Lets benches report warm-vs-cold work.
  int* iterations_used = nullptr;
};

/// Eigenvector centrality via power iteration on the adjacency matrix,
/// L2-normalized, all entries >= 0. Isolated vertices get value 0 unless the
/// whole graph has no edges, in which case the vector is uniform.
///
/// On disconnected graphs the iteration is normalized per connected
/// component: each component with edges converges to its own dominant
/// eigenvector (equal L2 mass per component after the final global rescale),
/// so no component's values decay to zero just because another component has
/// a larger spectral radius. Within-component orderings are therefore exact,
/// and cross-component comparisons are on an equal-mass footing.
std::vector<double> EigenvectorCentrality(
    const Graph& g, const CentralityOptions& options = {});

/// Degree of each vertex as a double (ablation baseline).
std::vector<double> DegreeCentrality(const Graph& g);

/// PageRank with uniform teleport, L1-normalized (ablation baseline).
std::vector<double> PageRankCentrality(const Graph& g,
                                       const CentralityOptions& options = {});

/// Exact betweenness centrality via Brandes' algorithm, O(|V||E|).
/// PATCHY-SAN's canonical labeling is often approximated with betweenness;
/// provided for the alignment ablation.
std::vector<double> BetweennessCentrality(const Graph& g);

/// Vertex ids sorted by descending centrality. Ties are broken by ascending
/// vertex id, making the order deterministic.
std::vector<Vertex> SortByCentralityDescending(
    const std::vector<double>& centrality);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_CENTRALITY_H_
