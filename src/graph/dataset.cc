#include "graph/dataset.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace deepmap::graph {

GraphDataset::GraphDataset(std::string name, std::vector<Graph> graphs,
                           std::vector<int> labels, bool has_vertex_labels)
    : name_(std::move(name)),
      graphs_(std::move(graphs)),
      labels_(std::move(labels)),
      has_vertex_labels_(has_vertex_labels) {
  DEEPMAP_CHECK_EQ(graphs_.size(), labels_.size());
}

const Graph& GraphDataset::graph(int i) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, size());
  return graphs_[i];
}

int GraphDataset::label(int i) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, size());
  return labels_[i];
}

int GraphDataset::NumClasses() const {
  int max_label = -1;
  for (int y : labels_) {
    DEEPMAP_CHECK_GE(y, 0);
    max_label = std::max(max_label, y);
  }
  return max_label + 1;
}

int GraphDataset::MaxVertices() const {
  int w = 0;
  for (const Graph& g : graphs_) w = std::max(w, g.NumVertices());
  return w;
}

int GraphDataset::MaxDegree() const {
  int d = 0;
  for (const Graph& g : graphs_) {
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      d = std::max(d, g.Degree(v));
    }
  }
  return d;
}

int GraphDataset::NumVertexLabels() const {
  std::set<Label> labels;
  for (const Graph& g : graphs_) {
    labels.insert(g.Labels().begin(), g.Labels().end());
  }
  return static_cast<int>(labels.size());
}

void GraphDataset::UseDegreesAsLabels() {
  for (Graph& g : graphs_) {
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      g.SetLabel(v, static_cast<Label>(g.Degree(v)));
    }
  }
  has_vertex_labels_ = true;
}

int GraphDataset::CompactVertexLabels() {
  std::map<Label, Label> remap;
  for (const Graph& g : graphs_) {
    for (Label l : g.Labels()) {
      remap.try_emplace(l, static_cast<Label>(remap.size()));
    }
  }
  for (Graph& g : graphs_) {
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      g.SetLabel(v, remap.at(g.GetLabel(v)));
    }
  }
  return static_cast<int>(remap.size());
}

DatasetStats GraphDataset::Stats() const {
  DatasetStats stats;
  stats.size = size();
  stats.num_classes = NumClasses();
  stats.has_vertex_labels = has_vertex_labels_;
  double total_v = 0;
  double total_e = 0;
  for (const Graph& g : graphs_) {
    total_v += g.NumVertices();
    total_e += g.NumEdges();
  }
  if (!graphs_.empty()) {
    stats.avg_vertices = total_v / graphs_.size();
    stats.avg_edges = total_e / graphs_.size();
  }
  stats.num_vertex_labels = NumVertexLabels();
  return stats;
}

GraphDataset GraphDataset::Subset(const std::vector<int>& indices,
                                  const std::string& suffix) const {
  std::vector<Graph> graphs;
  std::vector<int> labels;
  graphs.reserve(indices.size());
  labels.reserve(indices.size());
  for (int i : indices) {
    graphs.push_back(graph(i));
    labels.push_back(label(i));
  }
  return GraphDataset(name_ + suffix, std::move(graphs), std::move(labels),
                      has_vertex_labels_);
}

}  // namespace deepmap::graph
