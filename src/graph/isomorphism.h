// Graph isomorphism utilities: exact canonicalization for small graphs
// (used to identify graphlets), the Weisfeiler-Lehman isomorphism test for
// larger graphs, and a combined tester.
#ifndef DEEPMAP_GRAPH_ISOMORPHISM_H_
#define DEEPMAP_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace deepmap::graph {

/// Largest vertex count for which exact (brute-force) canonicalization runs.
inline constexpr int kMaxExactCanonicalVertices = 8;

/// Canonical form of a labeled graph with <= kMaxExactCanonicalVertices
/// vertices: the lexicographically smallest (labels, adjacency-bits) encoding
/// over all vertex permutations. Two small graphs are isomorphic iff their
/// canonical codes are equal.
std::string CanonicalCode(const Graph& g);

/// Canonical edge-set bitmask of an *unlabeled* graph with <= 8 vertices.
/// Bit for pair (i, j), i < j, is at position PairBitIndex(i, j, n). The mask
/// is minimized over all permutations; isomorphic unlabeled graphs (ignoring
/// labels) share a mask. Used to identify graphlets.
uint32_t CanonicalEdgeMask(const Graph& g);

/// Bit position of pair (i, j), i < j, within an n-vertex edge mask.
int PairBitIndex(int i, int j, int n);

/// Builds the unlabeled n-vertex graph whose edges are given by `mask`.
Graph GraphFromEdgeMask(int n, uint32_t mask);

/// Result of an isomorphism test.
enum class IsoResult {
  kIsomorphic,         // definitely isomorphic (exact test)
  kNonIsomorphic,      // definitely not isomorphic
  kPossiblyIsomorphic  // WL test could not distinguish (large graphs only)
};

/// Exact for graphs up to kMaxExactCanonicalVertices vertices; falls back to
/// invariants + the 1-WL color-refinement test for larger graphs (which can
/// return kPossiblyIsomorphic but never a wrong definite answer).
IsoResult TestIsomorphism(const Graph& a, const Graph& b);

/// Convenience: TestIsomorphism == kIsomorphic. Requires both graphs small
/// enough for the exact test.
bool AreIsomorphic(const Graph& a, const Graph& b);

/// Stable fingerprint of the multiset of 1-WL colors after `iterations`
/// refinement rounds (starting from vertex labels). Equal for isomorphic
/// graphs; unequal implies non-isomorphic.
std::string WlFingerprint(const Graph& g, int iterations);

// ---------------------------------------------------------------------------
// Hash-based WL refinement.
//
// WlFingerprint compresses each round's signatures into dense color ids by
// sorted rank, which makes colors a GLOBAL function of the graph: one new
// signature class shifts every later rank, so an edge delta can relabel
// vertices arbitrarily far from the endpoints. The hash-based variant below
// replaces rank compression with a 64-bit mix, making every vertex's
// level-h value a pure function of its radius-h neighborhood (labels +
// edges). That locality is what lets graph::DynamicGraph maintain the
// refinement incrementally: an edge insert/delete can only change level-h
// values within distance h-1 of the touched endpoints.

/// Level-0 hash of a vertex label.
uint64_t WlHashBase(Label label);

/// Level-h hash of `v` from the full level-(h-1) value vector: mixes the
/// vertex's own previous hash with the sorted multiset of its neighbors'
/// previous hashes (order-independent). Exposed for the incremental
/// updater and its equivalence tests.
uint64_t WlHashStep(const Graph& g, Vertex v,
                    const std::vector<uint64_t>& prev);

/// Full refinement: hashes[h][v] for h = 0..iterations. Row 0 hashes the
/// vertex labels; row h applies WlHashStep to row h-1.
std::vector<std::vector<uint64_t>> WlHashColors(const Graph& g,
                                                int iterations);

/// Per-value leaf mix of the digest. The digest is a modular sum of these
/// over the level's values (wrapped by WlHashDigestFromSum), so an
/// incremental maintainer updates it in O(1) per recolored vertex by
/// subtracting the stale leaf and adding the fresh one.
uint64_t WlHashDigestLeaf(uint64_t value);

/// Digest from a precomputed leaf sum (the incremental path).
uint64_t WlHashDigestFromSum(uint64_t leaf_sum, int num_vertices,
                             int iterations);

/// Order-independent digest of one level's value multiset: the commutative
/// leaf-sum combine above, so it needs no sort and agrees with the
/// incrementally maintained digest bit-for-bit.
uint64_t WlHashDigest(const std::vector<uint64_t>& values, int num_vertices,
                      int iterations);

/// Renders a digest as the fingerprint string "wh<iterations>:<16 hex
/// digits>" (shared by the full and incremental paths so the two can never
/// drift).
std::string WlHashFingerprintFromDigest(int iterations, uint64_t digest);

/// Permutation-invariant fingerprint over the final refinement level.
/// Isomorphic graphs (and graphs 1-WL cannot separate) always collide;
/// distinct WL classes collide with probability ~2^-64. Cheaper than
/// WlFingerprint (no signature dictionaries) and incrementally
/// maintainable — the prediction-cache key is built on it.
std::string WlHashFingerprint(const Graph& g, int iterations);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_ISOMORPHISM_H_
