// Graph isomorphism utilities: exact canonicalization for small graphs
// (used to identify graphlets), the Weisfeiler-Lehman isomorphism test for
// larger graphs, and a combined tester.
#ifndef DEEPMAP_GRAPH_ISOMORPHISM_H_
#define DEEPMAP_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace deepmap::graph {

/// Largest vertex count for which exact (brute-force) canonicalization runs.
inline constexpr int kMaxExactCanonicalVertices = 8;

/// Canonical form of a labeled graph with <= kMaxExactCanonicalVertices
/// vertices: the lexicographically smallest (labels, adjacency-bits) encoding
/// over all vertex permutations. Two small graphs are isomorphic iff their
/// canonical codes are equal.
std::string CanonicalCode(const Graph& g);

/// Canonical edge-set bitmask of an *unlabeled* graph with <= 8 vertices.
/// Bit for pair (i, j), i < j, is at position PairBitIndex(i, j, n). The mask
/// is minimized over all permutations; isomorphic unlabeled graphs (ignoring
/// labels) share a mask. Used to identify graphlets.
uint32_t CanonicalEdgeMask(const Graph& g);

/// Bit position of pair (i, j), i < j, within an n-vertex edge mask.
int PairBitIndex(int i, int j, int n);

/// Builds the unlabeled n-vertex graph whose edges are given by `mask`.
Graph GraphFromEdgeMask(int n, uint32_t mask);

/// Result of an isomorphism test.
enum class IsoResult {
  kIsomorphic,         // definitely isomorphic (exact test)
  kNonIsomorphic,      // definitely not isomorphic
  kPossiblyIsomorphic  // WL test could not distinguish (large graphs only)
};

/// Exact for graphs up to kMaxExactCanonicalVertices vertices; falls back to
/// invariants + the 1-WL color-refinement test for larger graphs (which can
/// return kPossiblyIsomorphic but never a wrong definite answer).
IsoResult TestIsomorphism(const Graph& a, const Graph& b);

/// Convenience: TestIsomorphism == kIsomorphic. Requires both graphs small
/// enough for the exact test.
bool AreIsomorphic(const Graph& a, const Graph& b);

/// Stable fingerprint of the multiset of 1-WL colors after `iterations`
/// refinement rounds (starting from vertex labels). Equal for isomorphic
/// graphs; unequal implies non-isomorphic.
std::string WlFingerprint(const Graph& g, int iterations);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_ISOMORPHISM_H_
