#include "graph/graph.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace deepmap::graph {

Graph::Graph(int num_vertices, Label label) {
  DEEPMAP_CHECK_GE(num_vertices, 0);
  adjacency_.resize(num_vertices);
  labels_.assign(num_vertices, label);
}

Graph Graph::FromEdges(int num_vertices,
                       const std::vector<std::pair<Vertex, Vertex>>& edges,
                       const std::vector<Label>& labels) {
  Graph g(num_vertices);
  if (!labels.empty()) {
    DEEPMAP_CHECK_EQ(labels.size(), static_cast<size_t>(num_vertices));
    g.labels_ = labels;
  }
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  return g;
}

Vertex Graph::AddVertex(Label label) {
  adjacency_.emplace_back();
  labels_.push_back(label);
  return static_cast<Vertex>(adjacency_.size() - 1);
}

bool Graph::AddEdge(Vertex u, Vertex v) {
  DEEPMAP_CHECK_GE(u, 0);
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(u, NumVertices());
  DEEPMAP_CHECK_LT(v, NumVertices());
  if (u == v) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(Vertex u, Vertex v) {
  DEEPMAP_CHECK_GE(u, 0);
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(u, NumVertices());
  DEEPMAP_CHECK_LT(v, NumVertices());
  if (u == v) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --num_edges_;
  return true;
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  const auto& nu = adjacency_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

const std::vector<Vertex>& Graph::Neighbors(Vertex v) const {
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(v, NumVertices());
  return adjacency_[v];
}

Label Graph::GetLabel(Vertex v) const {
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(v, NumVertices());
  return labels_[v];
}

void Graph::SetLabel(Vertex v, Label label) {
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(v, NumVertices());
  labels_[v] = label;
}

std::vector<std::pair<Vertex, Vertex>> Graph::EdgeList() const {
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(num_edges_);
  for (Vertex u = 0; u < NumVertices(); ++u) {
    for (Vertex v : adjacency_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Label Graph::LabelAlphabetSize() const {
  Label max_label = -1;
  for (Label l : labels_) max_label = std::max(max_label, l);
  return max_label + 1;
}

Graph Graph::InducedSubgraph(const std::vector<Vertex>& vertices) const {
  Graph sub(static_cast<int>(vertices.size()));
  std::vector<Vertex> position(NumVertices(), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    Vertex v = vertices[i];
    DEEPMAP_CHECK_GE(v, 0);
    DEEPMAP_CHECK_LT(v, NumVertices());
    DEEPMAP_CHECK_EQ(position[v], -1);  // no duplicates
    position[v] = static_cast<Vertex>(i);
    sub.SetLabel(static_cast<Vertex>(i), labels_[v]);
  }
  for (Vertex v : vertices) {
    for (Vertex w : adjacency_[v]) {
      if (position[w] >= 0 && position[v] < position[w]) {
        sub.AddEdge(position[v], position[w]);
      }
    }
  }
  return sub;
}

Graph Graph::Permuted(const std::vector<Vertex>& perm) const {
  DEEPMAP_CHECK_EQ(perm.size(), static_cast<size_t>(NumVertices()));
  Graph out(NumVertices());
  for (Vertex v = 0; v < NumVertices(); ++v) {
    DEEPMAP_CHECK_GE(perm[v], 0);
    DEEPMAP_CHECK_LT(perm[v], NumVertices());
    out.SetLabel(perm[v], labels_[v]);
  }
  for (Vertex u = 0; u < NumVertices(); ++u) {
    for (Vertex v : adjacency_[u]) {
      if (u < v) out.AddEdge(perm[u], perm[v]);
    }
  }
  return out;
}

std::string Graph::ToString() const {
  std::ostringstream os;
  os << "Graph(n=" << NumVertices() << ", m=" << NumEdges()
     << ", labels=" << LabelAlphabetSize() << ")";
  return os.str();
}

bool operator==(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices()) return false;
  if (a.NumEdges() != b.NumEdges()) return false;
  if (a.Labels() != b.Labels()) return false;
  for (Vertex v = 0; v < a.NumVertices(); ++v) {
    if (a.Neighbors(v) != b.Neighbors(v)) return false;
  }
  return true;
}

}  // namespace deepmap::graph
