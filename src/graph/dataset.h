// GraphDataset: a collection of graphs with per-graph class labels, plus the
// dataset-level statistics reported in the paper's Table 1.
#ifndef DEEPMAP_GRAPH_DATASET_H_
#define DEEPMAP_GRAPH_DATASET_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace deepmap::graph {

/// Summary statistics matching the columns of the paper's Table 1.
struct DatasetStats {
  int size = 0;             // number of graphs
  int num_classes = 0;      // distinct class labels
  double avg_vertices = 0;  // average |V|
  double avg_edges = 0;     // average |E|
  int num_vertex_labels = 0;  // distinct vertex labels across the dataset
  bool has_vertex_labels = true;
};

/// A graph-classification dataset: graphs plus 0-based class labels.
class GraphDataset {
 public:
  GraphDataset() = default;
  GraphDataset(std::string name, std::vector<Graph> graphs,
               std::vector<int> labels, bool has_vertex_labels = true);

  const std::string& name() const { return name_; }
  int size() const { return static_cast<int>(graphs_.size()); }

  const std::vector<Graph>& graphs() const { return graphs_; }
  std::vector<Graph>& mutable_graphs() { return graphs_; }
  const Graph& graph(int i) const;

  const std::vector<int>& labels() const { return labels_; }
  int label(int i) const;

  bool has_vertex_labels() const { return has_vertex_labels_; }

  /// Number of distinct class labels (labels are required to be 0..C-1).
  int NumClasses() const;

  /// Largest vertex count over all graphs (the paper's w).
  int MaxVertices() const;

  /// Largest degree over all graphs.
  int MaxDegree() const;

  /// Distinct vertex-label count across all graphs.
  int NumVertexLabels() const;

  /// Replaces every vertex label with the vertex degree. The paper applies
  /// this to datasets without vertex labels. Marks the dataset labeled.
  void UseDegreesAsLabels();

  /// Remaps vertex labels to a dense range [0, k) preserving distinctness.
  /// Returns k.
  int CompactVertexLabels();

  /// Table 1-style statistics.
  DatasetStats Stats() const;

  /// Subset by graph indices (copies).
  GraphDataset Subset(const std::vector<int>& indices,
                      const std::string& suffix = "_subset") const;

 private:
  std::string name_;
  std::vector<Graph> graphs_;
  std::vector<int> labels_;
  bool has_vertex_labels_ = true;
};

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_DATASET_H_
