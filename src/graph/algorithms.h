// Classic graph algorithms used throughout the library: BFS, connected
// components, all-pairs shortest paths (the SP kernel substrate), diameter.
#ifndef DEEPMAP_GRAPH_ALGORITHMS_H_
#define DEEPMAP_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"

namespace deepmap::graph {

/// Distance value meaning "unreachable".
inline constexpr int kUnreachable = -1;

/// BFS hop distances from `source`; kUnreachable for disconnected vertices.
std::vector<int> BfsDistances(const Graph& g, Vertex source);

/// Vertices in BFS visitation order from `source` (neighbors expanded in
/// sorted order). Only reachable vertices are included.
std::vector<Vertex> BfsOrder(const Graph& g, Vertex source);

/// All-pairs hop distances via one BFS per vertex: O(n(n+m)).
/// result[u][v] == kUnreachable when v is not reachable from u.
std::vector<std::vector<int>> AllPairsShortestPaths(const Graph& g);

/// All-pairs distances via Floyd-Warshall: O(n^3). Used as a test oracle for
/// the BFS version and matches the complexity analysis quoted in the paper.
std::vector<std::vector<int>> FloydWarshallShortestPaths(const Graph& g);

/// Component id per vertex (ids are 0-based, assigned in vertex order).
std::vector<int> ConnectedComponents(const Graph& g);

/// Number of connected components.
int NumConnectedComponents(const Graph& g);

/// Longest finite shortest-path distance; 0 for graphs with < 2 vertices.
int Diameter(const Graph& g);

/// Degrees sorted descending (graph-isomorphism invariant).
std::vector<int> DegreeSequence(const Graph& g);

/// True if the graph has every possible edge.
bool IsCompleteGraph(const Graph& g);

/// True if the graph has no cycles (forest).
bool IsForest(const Graph& g);

/// Number of triangles (3-cycles) in the graph.
int64_t CountTriangles(const Graph& g);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_ALGORITHMS_H_
