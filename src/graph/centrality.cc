#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "graph/algorithms.h"

namespace deepmap::graph {

std::vector<double> EigenvectorCentrality(const Graph& g,
                                          const CentralityOptions& options) {
  const int n = g.NumVertices();
  if (options.iterations_used != nullptr) *options.iterations_used = 0;
  if (n == 0) return {};
  if (g.NumEdges() == 0) {
    // Adjacency matrix is zero: every vertex is equally (un)central.
    return std::vector<double>(n, 1.0 / std::sqrt(static_cast<double>(n)));
  }

  // The iteration must be normalized PER CONNECTED COMPONENT. Under a single
  // global normalization every component whose spectral radius is below the
  // graph-wide maximum decays geometrically toward zero (e.g. a triangle,
  // radius 3 on A+I, starves a K_{1,3} star, radius 1+sqrt(3)), so the
  // surviving values — and any centrality ordering built on them — reflect
  // which component happened to be densest, not vertex importance. Each
  // component with edges instead converges to its own dominant eigenvector
  // at unit norm; isolated vertices stay 0 per the header contract.
  const std::vector<int> component = ConnectedComponents(g);
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  std::vector<char> active(num_components, 0);
  std::vector<int> size(num_components, 0);
  for (Vertex v = 0; v < n; ++v) {
    ++size[component[v]];
    if (g.Degree(v) > 0) active[component[v]] = 1;
  }
  int num_active = 0;
  for (char a : active) num_active += a;

  std::vector<double> x(n, 0.0);
  std::vector<double> norm(num_components);
  const bool warm = options.warm_start != nullptr &&
                    options.warm_start->size() == static_cast<size_t>(n);
  if (warm) {
    // Start from the caller's previous vector, renormalized to unit L2 mass
    // per active component (the invariant the iteration maintains). A
    // component with no warm mass — e.g. one newly split off by an edge
    // delta — falls back to the uniform positive start so convergence to
    // its dominant eigenvector is still guaranteed.
    std::fill(norm.begin(), norm.end(), 0.0);
    for (Vertex v = 0; v < n; ++v) {
      const double w = std::max((*options.warm_start)[v], 0.0);
      norm[component[v]] += w * w;
    }
    for (Vertex v = 0; v < n; ++v) {
      const int c = component[v];
      if (!active[c]) continue;
      x[v] = norm[c] > 0.0
                 ? std::max((*options.warm_start)[v], 0.0) /
                       std::sqrt(norm[c])
                 : 1.0 / std::sqrt(static_cast<double>(size[c]));
    }
  } else {
    for (Vertex v = 0; v < n; ++v) {
      if (active[component[v]]) {
        x[v] = 1.0 / std::sqrt(static_cast<double>(size[component[v]]));
      }
    }
  }
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (options.iterations_used != nullptr) {
      *options.iterations_used = iter + 1;
    }
    // Iterate on A + I: same eigenvectors as A, but the top eigenvalue is
    // strictly dominant in magnitude, so the iteration also converges on
    // bipartite graphs (where A's spectrum is symmetric and plain power
    // iteration oscillates with period two).
    for (Vertex v = 0; v < n; ++v) {
      double sum = x[v];
      for (Vertex u : g.Neighbors(v)) sum += x[u];
      next[v] = sum;
    }
    std::fill(norm.begin(), norm.end(), 0.0);
    for (Vertex v = 0; v < n; ++v) {
      norm[component[v]] += next[v] * next[v];
    }
    bool renormalized = false;
    for (int c = 0; c < num_components; ++c) {
      if (!active[c]) continue;
      if (norm[c] > 0.0) {
        norm[c] = std::sqrt(norm[c]);
      } else {
        // Unreachable from the positive start above (A+I maps positive
        // vectors to positive vectors), but if a caller-visible zero ever
        // appears, restart that component from uniform instead of letting
        // the old global `break` freeze a half-converged vector.
        renormalized = true;
      }
    }
    double delta = 0.0;
    for (Vertex v = 0; v < n; ++v) {
      const int c = component[v];
      if (!active[c]) continue;
      next[v] = norm[c] > 0.0
                    ? next[v] / norm[c]
                    : 1.0 / std::sqrt(static_cast<double>(size[c]));
      delta = std::max(delta, std::fabs(next[v] - x[v]));
    }
    x.swap(next);
    if (!renormalized && delta < options.tolerance) break;
  }
  // Rescale so the full vector is L2-normalized (each active component
  // currently has unit norm). With one component this is the historical
  // behavior exactly.
  if (num_active > 0) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(num_active));
    for (double& value : x) value *= scale;
  }
  // Power iteration on a nonnegative matrix from a positive start stays
  // nonnegative; clamp tiny negative rounding noise.
  for (double& value : x) value = std::max(value, 0.0);
  return x;
}

std::vector<double> DegreeCentrality(const Graph& g) {
  std::vector<double> c(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    c[v] = static_cast<double>(g.Degree(v));
  }
  return c;
}

std::vector<double> PageRankCentrality(const Graph& g,
                                       const CentralityOptions& options) {
  const int n = g.NumVertices();
  if (n == 0) return {};
  const double d = options.damping;
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (Vertex v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) dangling += rank[v];
    }
    std::fill(next.begin(), next.end(),
              (1.0 - d) / n + d * dangling / n);
    for (Vertex v = 0; v < n; ++v) {
      if (g.Degree(v) == 0) continue;
      double share = d * rank[v] / g.Degree(v);
      for (Vertex u : g.Neighbors(v)) next[u] += share;
    }
    double delta = 0.0;
    for (int v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

std::vector<double> BetweennessCentrality(const Graph& g) {
  const int n = g.NumVertices();
  std::vector<double> centrality(n, 0.0);
  // Brandes' algorithm: one BFS per source with dependency accumulation.
  std::vector<int> dist(n);
  std::vector<double> sigma(n);  // number of shortest paths
  std::vector<double> delta(n);  // dependency
  std::vector<std::vector<Vertex>> predecessors(n);
  std::vector<Vertex> order;  // vertices in non-decreasing distance
  order.reserve(n);
  for (Vertex s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : predecessors) p.clear();
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    std::vector<Vertex> queue{s};
    for (size_t head = 0; head < queue.size(); ++head) {
      Vertex u = queue[head];
      order.push_back(u);
      for (Vertex w : g.Neighbors(u)) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          predecessors[w].push_back(u);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Vertex w = *it;
      for (Vertex u : predecessors[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  // Each unordered pair was counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

std::vector<Vertex> SortByCentralityDescending(
    const std::vector<double>& centrality) {
  std::vector<Vertex> order(centrality.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    if (centrality[a] != centrality[b]) return centrality[a] > centrality[b];
    return a < b;
  });
  return order;
}

}  // namespace deepmap::graph
