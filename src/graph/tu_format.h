// Reader/writer for the TU Dortmund graph-classification dataset format used
// by all benchmarks in the paper (DS_A.txt, DS_graph_indicator.txt,
// DS_graph_labels.txt, optional DS_node_labels.txt).
//
// The original benchmark files are not available in this environment, so the
// synthetic generators in src/datasets/ write this format and the loader
// round-trips it; dropping in real TU files works unchanged.
#ifndef DEEPMAP_GRAPH_TU_FORMAT_H_
#define DEEPMAP_GRAPH_TU_FORMAT_H_

#include <string>

#include "common/status.h"
#include "graph/dataset.h"

namespace deepmap::graph {

/// Loads dataset `name` from `directory` (expects files `name_A.txt`,
/// `name_graph_indicator.txt`, `name_graph_labels.txt` and optionally
/// `name_node_labels.txt`). Graph class labels are compacted to [0, C);
/// vertex labels are compacted to a dense range. When no node-label file is
/// present the dataset is marked unlabeled (callers typically then apply
/// UseDegreesAsLabels, as the paper does).
StatusOr<GraphDataset> ReadTuDataset(const std::string& directory,
                                     const std::string& name);

/// Writes `dataset` in TU format into `directory` (created by caller).
/// Node labels are written unless the dataset is marked unlabeled.
Status WriteTuDataset(const GraphDataset& dataset,
                      const std::string& directory);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_TU_FORMAT_H_
