// Reader/writer for the TU Dortmund graph-classification dataset format used
// by all benchmarks in the paper (DS_A.txt, DS_graph_indicator.txt,
// DS_graph_labels.txt, optional DS_node_labels.txt).
//
// The original benchmark files are not available in this environment, so the
// synthetic generators in src/datasets/ write this format and the loader
// round-trips it; dropping in real TU files works unchanged.
#ifndef DEEPMAP_GRAPH_TU_FORMAT_H_
#define DEEPMAP_GRAPH_TU_FORMAT_H_

#include <string>

#include "common/status.h"
#include "graph/dataset.h"

namespace deepmap::graph {

/// Loader knobs. The defaults preserve the historical behavior (labels
/// compacted to dense ranges); the sharded corpus reader turns both off so
/// raw labels stay comparable across shards and remaps them globally.
struct TuReadOptions {
  /// Compact graph class labels to [0, C) by sorted order of raw labels.
  bool compact_graph_labels = true;
  /// Compact vertex labels to a dense range (when the dataset is labeled).
  bool compact_vertex_labels = true;
};

/// Loads dataset `name` from `directory` (expects files `name_A.txt`,
/// `name_graph_indicator.txt`, `name_graph_labels.txt` and optionally
/// `name_node_labels.txt`). With default options graph class labels are
/// compacted to [0, C) and vertex labels to a dense range. When no
/// node-label file is present the dataset is marked unlabeled (callers
/// typically then apply UseDegreesAsLabels, as the paper does). Every
/// integer field is parsed strictly: trailing garbage, extra columns, and
/// overflow are InvalidArgument, never silently truncated.
StatusOr<GraphDataset> ReadTuDataset(const std::string& directory,
                                     const std::string& name,
                                     const TuReadOptions& options);
StatusOr<GraphDataset> ReadTuDataset(const std::string& directory,
                                     const std::string& name);

/// Writes `dataset` in TU format into `directory` (created by caller).
/// Node labels are written unless the dataset is marked unlabeled. Stream
/// state is checked after the write loop and on flush, so a full disk (or
/// the "graph.tu.write" fail point) surfaces as IoError instead of a
/// silently truncated shard.
Status WriteTuDataset(const GraphDataset& dataset,
                      const std::string& directory);

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_TU_FORMAT_H_
