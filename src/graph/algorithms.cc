#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace deepmap::graph {

std::vector<int> BfsDistances(const Graph& g, Vertex source) {
  DEEPMAP_CHECK_GE(source, 0);
  DEEPMAP_CHECK_LT(source, g.NumVertices());
  std::vector<int> dist(g.NumVertices(), kUnreachable);
  std::deque<Vertex> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    Vertex u = queue.front();
    queue.pop_front();
    for (Vertex v : g.Neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<Vertex> BfsOrder(const Graph& g, Vertex source) {
  DEEPMAP_CHECK_GE(source, 0);
  DEEPMAP_CHECK_LT(source, g.NumVertices());
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<Vertex> order;
  std::deque<Vertex> queue;
  seen[source] = true;
  queue.push_back(source);
  while (!queue.empty()) {
    Vertex u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (Vertex v : g.Neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return order;
}

std::vector<std::vector<int>> AllPairsShortestPaths(const Graph& g) {
  std::vector<std::vector<int>> dist(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) dist[v] = BfsDistances(g, v);
  return dist;
}

std::vector<std::vector<int>> FloydWarshallShortestPaths(const Graph& g) {
  const int n = g.NumVertices();
  // Use a large sentinel that cannot overflow when two are added.
  const int kInf = 1 << 29;
  std::vector<std::vector<int>> dist(n, std::vector<int>(n, kInf));
  for (Vertex v = 0; v < n; ++v) {
    dist[v][v] = 0;
    for (Vertex u : g.Neighbors(v)) dist[v][u] = 1;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (dist[i][k] == kInf) continue;
      for (int j = 0; j < n; ++j) {
        int through = dist[i][k] + dist[k][j];
        if (through < dist[i][j]) dist[i][j] = through;
      }
    }
  }
  for (auto& row : dist) {
    for (int& d : row) {
      if (d >= kInf) d = kUnreachable;
    }
  }
  return dist;
}

std::vector<int> ConnectedComponents(const Graph& g) {
  std::vector<int> component(g.NumVertices(), -1);
  int next_id = 0;
  for (Vertex s = 0; s < g.NumVertices(); ++s) {
    if (component[s] != -1) continue;
    int id = next_id++;
    std::deque<Vertex> queue{s};
    component[s] = id;
    while (!queue.empty()) {
      Vertex u = queue.front();
      queue.pop_front();
      for (Vertex v : g.Neighbors(u)) {
        if (component[v] == -1) {
          component[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return component;
}

int NumConnectedComponents(const Graph& g) {
  const auto comp = ConnectedComponents(g);
  int max_id = -1;
  for (int c : comp) max_id = std::max(max_id, c);
  return max_id + 1;
}

int Diameter(const Graph& g) {
  int diameter = 0;
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (int d : BfsDistances(g, v)) diameter = std::max(diameter, d);
  }
  return diameter;
}

std::vector<int> DegreeSequence(const Graph& g) {
  std::vector<int> degrees(g.NumVertices());
  for (Vertex v = 0; v < g.NumVertices(); ++v) degrees[v] = g.Degree(v);
  std::sort(degrees.rbegin(), degrees.rend());
  return degrees;
}

bool IsCompleteGraph(const Graph& g) {
  int64_t n = g.NumVertices();
  return g.NumEdges() == n * (n - 1) / 2;
}

bool IsForest(const Graph& g) {
  return g.NumEdges() == g.NumVertices() - NumConnectedComponents(g);
}

int64_t CountTriangles(const Graph& g) {
  int64_t count = 0;
  for (Vertex u = 0; u < g.NumVertices(); ++u) {
    const auto& nu = g.Neighbors(u);
    for (Vertex v : nu) {
      if (v <= u) continue;
      // Triangles u < v < w with w adjacent to both.
      for (Vertex w : g.Neighbors(v)) {
        if (w > v && std::binary_search(nu.begin(), nu.end(), w)) ++count;
      }
    }
  }
  return count;
}

}  // namespace deepmap::graph
