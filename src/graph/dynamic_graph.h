// DynamicGraph: incremental edge insert/delete over Graph with incremental
// WL refinement and warm-started eigenvector centrality.
//
// The serving stack fingerprints every request graph with `wl_iterations`
// rounds of WL refinement and aligns vertices by eigenvector centrality.
// Recomputing both from scratch after every edge delta is O(k(|V|+|E|))
// hashing plus tens of power-iteration rounds; this class maintains them:
//
//  - WL hashes (graph/isomorphism.h, WlHashColors): each vertex's level-h
//    value is a pure function of its radius-h neighborhood, so an edge
//    delta on {u, v} can only change level-h values of vertices within
//    distance h-1 of an endpoint (distances measured in whichever graph
//    CONTAINS the edge — the new graph for inserts, the old one for
//    deletes). Apply() collects that ball with one bounded BFS and
//    recomputes only the affected (level, vertex) pairs, level by level.
//    The maintained state is always bit-identical to a full
//    WlHashColors/WlHashFingerprint recomputation — the equality the
//    dynamic test suite fuzzes.
//
//  - Eigenvector centrality: Centrality() reruns the power iteration but
//    warm-starts it from the previous converged vector
//    (CentralityOptions::warm_start), preserving the per-component
//    normalization. After a small delta the start is already near the fixed
//    point, so the iteration typically stops after 1-2 rounds instead of
//    tens. Values agree with a cold run up to the iteration tolerance (both
//    are the same dominant eigenvector); they are NOT bit-identical, which
//    is why the serving integration recomputes predictions through the full
//    pipeline on a cache miss instead of patching tensors.
//
// Deltas are strict: inserting a present edge, removing an absent one, self
// loops, and out-of-range endpoints are InvalidArgument. ApplyAll is
// all-or-nothing (a failed batch rolls back its applied prefix). The vertex
// set is fixed at construction.
//
// Not thread-safe; serve::DynamicGraphStore adds per-graph locking.
#ifndef DEEPMAP_GRAPH_DYNAMIC_GRAPH_H_
#define DEEPMAP_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/centrality.h"
#include "graph/graph.h"

namespace deepmap::graph {

/// One edge mutation.
struct EdgeUpdate {
  Vertex u = 0;
  Vertex v = 0;
  bool insert = true;

  static EdgeUpdate Insert(Vertex u, Vertex v) { return {u, v, true}; }
  static EdgeUpdate Remove(Vertex u, Vertex v) { return {u, v, false}; }
};

struct DynamicGraphOptions {
  /// WL refinement depth to maintain (matches the serving cache key's
  /// wl_iterations).
  int wl_iterations = 2;
  /// Power-iteration knobs for Centrality(); warm_start/iterations_used are
  /// managed internally and ignored here.
  CentralityOptions centrality;
};

/// A Graph plus incrementally maintained WL hashes and centrality.
class DynamicGraph {
 public:
  explicit DynamicGraph(Graph base, const DynamicGraphOptions& options = {});

  const Graph& graph() const { return graph_; }
  int wl_iterations() const { return options_.wl_iterations; }
  /// Edge updates committed to the graph. A failed ApplyAll batch counts
  /// zero: neither its rolled-back prefix nor the rollback itself shows up.
  int64_t updates_applied() const { return updates_applied_; }

  /// Applies one edge mutation and incrementally repairs the WL hashes.
  /// InvalidArgument (graph untouched) for out-of-range endpoints, self
  /// loops, inserting a present edge, or removing an absent one.
  Status Apply(const EdgeUpdate& update);

  /// Applies a delta atomically: on the first invalid update the already
  /// applied prefix is rolled back and the graph is exactly as before.
  Status ApplyAll(const std::vector<EdgeUpdate>& updates);

  /// Maintained per-vertex hashes at `level` (0..wl_iterations); always
  /// equal to WlHashColors(graph(), wl_iterations)[level].
  const std::vector<uint64_t>& Hashes(int level) const;

  /// Fingerprint of the current graph; always equal to
  /// WlHashFingerprint(graph(), wl_iterations). Cached between deltas.
  const std::string& Fingerprint();

  /// Eigenvector centrality of the current graph, warm-started from the
  /// previous call's result. Same fixed point as a cold
  /// EigenvectorCentrality run (values agree to the iteration tolerance).
  const std::vector<double>& Centrality();

  /// Power-iteration rounds the last Centrality() refresh executed (0 until
  /// the first call). A warm restart after a small delta needs 1-2 rounds;
  /// a cold run typically needs tens — the bench's speedup lever.
  int last_centrality_iterations() const {
    return last_centrality_iterations_;
  }

 private:
  /// Apply() minus the updates_applied_ bump; ApplyAll uses it so a rolled
  /// back batch (and its rollback) leaves the counter untouched.
  Status ApplyImpl(const EdgeUpdate& update);

  Graph graph_;
  DynamicGraphOptions options_;
  /// levels_[h][v]: maintained WL hash of v at refinement level h.
  std::vector<std::vector<uint64_t>> levels_;

  /// Running modular sum of WlHashDigestLeaf over levels_.back(): repaired
  /// in O(1) per recolored vertex, so Fingerprint() never rescans the graph.
  uint64_t digest_sum_ = 0;
  std::string fingerprint_;
  bool fingerprint_dirty_ = true;

  std::vector<double> centrality_;
  bool centrality_dirty_ = true;
  bool centrality_valid_ = false;  // true once centrality_ holds a result
  int last_centrality_iterations_ = 0;

  int64_t updates_applied_ = 0;

  // BFS scratch, sized |V| once: dist_[v] >= 0 only while v is in
  // visited_; reset after each repair.
  std::vector<int> dist_;
  std::vector<Vertex> visited_;
};

}  // namespace deepmap::graph

#endif  // DEEPMAP_GRAPH_DYNAMIC_GRAPH_H_
