#include "graph/tu_format.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace deepmap::graph {
namespace {

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    std::string trimmed = Trim(line);
    if (!trimmed.empty()) lines.push_back(std::move(trimmed));
  }
  return lines;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

StatusOr<std::vector<int>> ParseIntLines(const std::string& path) {
  auto lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<int> values;
  values.reserve(lines.value().size());
  for (const std::string& line : lines.value()) {
    // Full-token parse: "12abc", "1 2", and out-of-range values are all
    // rejected (std::stoi accepted the first two prefixes silently).
    int value = 0;
    if (!ParseFullInt(line, &value)) {
      return Status::InvalidArgument("bad integer '" + line + "' in " + path);
    }
    values.push_back(value);
  }
  return values;
}

}  // namespace

StatusOr<GraphDataset> ReadTuDataset(const std::string& directory,
                                     const std::string& name) {
  return ReadTuDataset(directory, name, TuReadOptions{});
}

StatusOr<GraphDataset> ReadTuDataset(const std::string& directory,
                                     const std::string& name,
                                     const TuReadOptions& options) {
  const std::string prefix = directory + "/" + name + "_";

  auto indicator = ParseIntLines(prefix + "graph_indicator.txt");
  if (!indicator.ok()) return indicator.status();
  auto graph_labels_raw = ParseIntLines(prefix + "graph_labels.txt");
  if (!graph_labels_raw.ok()) return graph_labels_raw.status();

  const std::vector<int>& ind = indicator.value();
  const int num_graphs = static_cast<int>(graph_labels_raw.value().size());
  if (num_graphs == 0) return Status::InvalidArgument("empty dataset " + name);

  // Vertices are 1-based and grouped by graph id (also 1-based, contiguous).
  std::vector<int> graph_of_vertex(ind.size());
  std::vector<int> local_id(ind.size());
  std::vector<int> graph_sizes(num_graphs, 0);
  for (size_t v = 0; v < ind.size(); ++v) {
    int gid = ind[v] - 1;
    if (gid < 0 || gid >= num_graphs) {
      return Status::InvalidArgument("graph_indicator out of range");
    }
    graph_of_vertex[v] = gid;
    local_id[v] = graph_sizes[gid]++;
  }

  std::vector<Graph> graphs;
  graphs.reserve(num_graphs);
  for (int g = 0; g < num_graphs; ++g) graphs.emplace_back(graph_sizes[g]);

  // Optional node labels.
  bool has_vertex_labels = FileExists(prefix + "node_labels.txt");
  if (has_vertex_labels) {
    auto node_labels = ParseIntLines(prefix + "node_labels.txt");
    if (!node_labels.ok()) return node_labels.status();
    if (node_labels.value().size() != ind.size()) {
      return Status::InvalidArgument("node_labels size mismatch");
    }
    for (size_t v = 0; v < ind.size(); ++v) {
      graphs[graph_of_vertex[v]].SetLabel(local_id[v],
                                          node_labels.value()[v]);
    }
  }

  // Edges: lines "u, v" with 1-based global vertex ids; files list both
  // directions, AddEdge dedups.
  auto edge_lines = ReadLines(prefix + "A.txt");
  if (!edge_lines.ok()) return edge_lines.status();
  for (const std::string& line : edge_lines.value()) {
    auto parts = Split(line, ',');
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad edge line '" + line + "'");
    }
    // ParseFullInt rejects stray extra columns ("1 2" inside one
    // comma-separated field) along with trailing garbage and overflow.
    int u, v;
    if (!ParseFullInt(parts[0], &u) || !ParseFullInt(parts[1], &v)) {
      return Status::InvalidArgument("bad edge line '" + line + "'");
    }
    --u;
    --v;
    if (u < 0 || v < 0 || u >= static_cast<int>(ind.size()) ||
        v >= static_cast<int>(ind.size())) {
      return Status::InvalidArgument("edge vertex id out of range");
    }
    if (graph_of_vertex[u] != graph_of_vertex[v]) {
      return Status::InvalidArgument("edge crosses graphs");
    }
    graphs[graph_of_vertex[u]].AddEdge(local_id[u], local_id[v]);
  }

  // Compact class labels to [0, C) preserving sorted order of raw labels.
  // The sharded-corpus reader disables this: per-shard compaction would
  // remap the same raw label to different ids in shards with different
  // label subsets.
  std::vector<int> labels;
  labels.reserve(num_graphs);
  if (options.compact_graph_labels) {
    std::map<int, int> class_remap;
    for (int raw : graph_labels_raw.value()) class_remap[raw] = 0;
    int next = 0;
    for (auto& [raw, compact] : class_remap) compact = next++;
    for (int raw : graph_labels_raw.value()) {
      labels.push_back(class_remap[raw]);
    }
  } else {
    labels = graph_labels_raw.value();
  }

  GraphDataset dataset(name, std::move(graphs), std::move(labels),
                       has_vertex_labels);
  if (has_vertex_labels && options.compact_vertex_labels) {
    dataset.CompactVertexLabels();
  }
  return dataset;
}

Status WriteTuDataset(const GraphDataset& dataset,
                      const std::string& directory) {
  const std::string prefix = directory + "/" + dataset.name() + "_";

  std::ofstream a(prefix + "A.txt");
  std::ofstream indicator(prefix + "graph_indicator.txt");
  std::ofstream graph_labels(prefix + "graph_labels.txt");
  if (!a || !indicator || !graph_labels) {
    return Status::IoError("cannot create TU files under " + directory);
  }
  std::ofstream node_labels;
  if (dataset.has_vertex_labels()) {
    node_labels.open(prefix + "node_labels.txt");
    if (!node_labels) return Status::IoError("cannot create node_labels file");
  }

  int vertex_offset = 0;  // global 1-based ids
  for (int gi = 0; gi < dataset.size(); ++gi) {
    const Graph& g = dataset.graph(gi);
    for (Vertex v = 0; v < g.NumVertices(); ++v) {
      indicator << (gi + 1) << '\n';
      if (dataset.has_vertex_labels()) node_labels << g.GetLabel(v) << '\n';
    }
    for (const auto& [u, v] : g.EdgeList()) {
      // TU files conventionally list both directions.
      a << (vertex_offset + u + 1) << ", " << (vertex_offset + v + 1) << '\n';
      a << (vertex_offset + v + 1) << ", " << (vertex_offset + u + 1) << '\n';
    }
    graph_labels << dataset.label(gi) << '\n';
    vertex_offset += g.NumVertices();
  }

  // A full disk does not fail operator<< loudly — it just sets badbit on
  // some later write (possibly only at flush). Check every stream after the
  // loop AND after an explicit flush, so a truncated shard is an IoError
  // here instead of a parse error (or silent corruption) on a later read.
  // The fail point simulates the out-of-space stream for tests.
  if (DEEPMAP_FAILPOINT_TRIGGERED("graph.tu.write")) {
    a.setstate(std::ios::badbit);
  }
  a.flush();
  indicator.flush();
  graph_labels.flush();
  if (!a || !indicator || !graph_labels) {
    return Status::IoError("short write of TU files under " + directory);
  }
  if (dataset.has_vertex_labels()) {
    node_labels.flush();
    if (!node_labels) {
      return Status::IoError("short write of node_labels under " + directory);
    }
  }
  return Status::Ok();
}

}  // namespace deepmap::graph
