#include "graph/isomorphism.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "graph/algorithms.h"

namespace deepmap::graph {
namespace {

// Encodes g under permutation perm (vertex v -> perm[v]) as label bytes
// followed by the upper-triangular adjacency bits packed into bytes.
std::string EncodeUnderPermutation(const Graph& g,
                                   const std::vector<Vertex>& inverse_perm) {
  const int n = g.NumVertices();
  std::string code;
  code.reserve(n + (n * (n - 1) / 2 + 7) / 8 + 1);
  for (int slot = 0; slot < n; ++slot) {
    // inverse_perm[slot] is the original vertex placed at position slot.
    Label label = g.GetLabel(inverse_perm[slot]);
    DEEPMAP_CHECK_LT(label, 256);
    code.push_back(static_cast<char>(label));
  }
  uint8_t bits = 0;
  int nbits = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      bits <<= 1;
      if (g.HasEdge(inverse_perm[i], inverse_perm[j])) bits |= 1;
      if (++nbits == 8) {
        code.push_back(static_cast<char>(bits));
        bits = 0;
        nbits = 0;
      }
    }
  }
  if (nbits > 0) code.push_back(static_cast<char>(bits << (8 - nbits)));
  return code;
}

}  // namespace

int PairBitIndex(int i, int j, int n) {
  DEEPMAP_CHECK_LT(i, j);
  DEEPMAP_CHECK_LT(j, n);
  // Row-major index over the strict upper triangle.
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

std::string CanonicalCode(const Graph& g) {
  const int n = g.NumVertices();
  DEEPMAP_CHECK_LE(n, kMaxExactCanonicalVertices);
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::string best;
  do {
    std::string code = EncodeUnderPermutation(g, perm);
    if (best.empty() || code < best) best = std::move(code);
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (n == 0) best = std::string(1, '\0');
  return best;
}

uint32_t CanonicalEdgeMask(const Graph& g) {
  const int n = g.NumVertices();
  DEEPMAP_CHECK_LE(n, 8);
  DEEPMAP_CHECK_GE(n, 1);
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  uint32_t best = ~uint32_t{0};
  do {
    uint32_t mask = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (g.HasEdge(perm[i], perm[j])) {
          mask |= uint32_t{1} << PairBitIndex(i, j, n);
        }
      }
    }
    best = std::min(best, mask);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

Graph GraphFromEdgeMask(int n, uint32_t mask) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (mask & (uint32_t{1} << PairBitIndex(i, j, n))) g.AddEdge(i, j);
    }
  }
  return g;
}

std::string WlFingerprint(const Graph& g, int iterations) {
  const int n = g.NumVertices();
  std::vector<int64_t> colors(n);
  for (Vertex v = 0; v < n; ++v) colors[v] = g.GetLabel(v);
  for (int iter = 0; iter < iterations; ++iter) {
    // Compressed ids are assigned by *sorted rank* of the signatures within
    // this round. By induction the previous round's ids are identical across
    // isomorphic graphs, so the sorted distinct-signature list (and therefore
    // the rank assignment) is identical too; the fingerprint is thus a true
    // isomorphism invariant.
    std::vector<std::vector<int64_t>> signatures(n);
    for (Vertex v = 0; v < n; ++v) {
      auto& signature = signatures[v];
      signature.reserve(g.Degree(v) + 1);
      signature.push_back(colors[v]);
      for (Vertex u : g.Neighbors(v)) signature.push_back(colors[u]);
      std::sort(signature.begin() + 1, signature.end());
    }
    std::map<std::vector<int64_t>, int64_t> rank;
    for (const auto& signature : signatures) rank.try_emplace(signature, 0);
    int64_t next_id = 0;
    for (auto& [signature, id] : rank) id = next_id++;
    for (Vertex v = 0; v < n; ++v) colors[v] = rank.at(signatures[v]);
  }
  std::vector<int64_t> sorted_colors = colors;
  std::sort(sorted_colors.begin(), sorted_colors.end());
  std::ostringstream os;
  os << "h" << iterations << ":";
  for (int64_t c : sorted_colors) os << c << '|';
  return os.str();
}

namespace {

// splitmix64 finalizer: a cheap bijective 64-bit mixer with full avalanche.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Domain-separation tags so a label, an own-hash, and a neighbor multiset
// can never collide structurally.
constexpr uint64_t kWlLabelTag = 0x77316c6162656c00ULL;
constexpr uint64_t kWlOwnTag = 0x77316f776e000000ULL;
constexpr uint64_t kWlDigestTag = 0x77316469676573ULL;
constexpr uint64_t kWlDigestLeafTag = 0x77316c65616600ULL;

}  // namespace

uint64_t WlHashBase(Label label) {
  return Mix64(kWlLabelTag ^ static_cast<uint64_t>(
                                 static_cast<int64_t>(label)));
}

uint64_t WlHashStep(const Graph& g, Vertex v,
                    const std::vector<uint64_t>& prev) {
  // Chain the mixer over (own hash, sorted neighbor hashes). Sorting makes
  // the chain a multiset function of the neighborhood, so the value is
  // invariant under any relabeling that preserves the radius-h structure.
  std::vector<uint64_t> neighborhood;
  neighborhood.reserve(g.Degree(v));
  for (Vertex u : g.Neighbors(v)) neighborhood.push_back(prev[u]);
  std::sort(neighborhood.begin(), neighborhood.end());
  uint64_t acc = Mix64(prev[v] ^ kWlOwnTag);
  for (uint64_t h : neighborhood) acc = Mix64(acc ^ h);
  return acc;
}

std::vector<std::vector<uint64_t>> WlHashColors(const Graph& g,
                                                int iterations) {
  const int n = g.NumVertices();
  std::vector<std::vector<uint64_t>> levels(iterations + 1);
  levels[0].resize(n);
  for (Vertex v = 0; v < n; ++v) levels[0][v] = WlHashBase(g.GetLabel(v));
  for (int h = 1; h <= iterations; ++h) {
    levels[h].resize(n);
    for (Vertex v = 0; v < n; ++v) {
      levels[h][v] = WlHashStep(g, v, levels[h - 1]);
    }
  }
  return levels;
}

uint64_t WlHashDigestLeaf(uint64_t value) {
  return Mix64(value ^ kWlDigestLeafTag);
}

uint64_t WlHashDigestFromSum(uint64_t leaf_sum, int num_vertices,
                             int iterations) {
  const uint64_t seed =
      Mix64(kWlDigestTag ^ static_cast<uint64_t>(num_vertices) ^
            (static_cast<uint64_t>(iterations) << 32));
  return Mix64(seed ^ leaf_sum);
}

uint64_t WlHashDigest(const std::vector<uint64_t>& values, int num_vertices,
                      int iterations) {
  // Commutative combine: a modular sum of per-value mixes is a multiset
  // function (no sort), and the incremental updater can maintain the sum
  // under recolorings in O(1) per changed vertex.
  uint64_t sum = 0;
  for (uint64_t h : values) sum += WlHashDigestLeaf(h);
  return WlHashDigestFromSum(sum, num_vertices, iterations);
}

std::string WlHashFingerprintFromDigest(int iterations, uint64_t digest) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wh%d:%016llx", iterations,
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string WlHashFingerprint(const Graph& g, int iterations) {
  auto levels = WlHashColors(g, iterations);
  return WlHashFingerprintFromDigest(
      iterations,
      WlHashDigest(levels.back(), g.NumVertices(), iterations));
}

IsoResult TestIsomorphism(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices()) return IsoResult::kNonIsomorphic;
  if (a.NumEdges() != b.NumEdges()) return IsoResult::kNonIsomorphic;
  if (DegreeSequence(a) != DegreeSequence(b)) {
    return IsoResult::kNonIsomorphic;
  }
  {
    std::vector<Label> la = a.Labels();
    std::vector<Label> lb = b.Labels();
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    if (la != lb) return IsoResult::kNonIsomorphic;
  }
  if (a.NumVertices() <= kMaxExactCanonicalVertices) {
    return CanonicalCode(a) == CanonicalCode(b) ? IsoResult::kIsomorphic
                                                : IsoResult::kNonIsomorphic;
  }
  const int rounds = std::max(3, a.NumVertices() / 2);
  if (WlFingerprint(a, rounds) != WlFingerprint(b, rounds)) {
    return IsoResult::kNonIsomorphic;
  }
  return IsoResult::kPossiblyIsomorphic;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  IsoResult result = TestIsomorphism(a, b);
  DEEPMAP_CHECK(result != IsoResult::kPossiblyIsomorphic);
  return result == IsoResult::kIsomorphic;
}

}  // namespace deepmap::graph
