#include "eval/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "baselines/dcnn.h"
#include "baselines/dgcnn.h"
#include "baselines/dgk.h"
#include "baselines/gin.h"
#include "baselines/gntk.h"
#include "baselines/kernel_svm.h"
#include "baselines/patchysan.h"
#include "baselines/retgk.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace deepmap::eval {
namespace {

[[noreturn]] void Usage(const char* flag) {
  std::fprintf(stderr,
               "unknown flag '%s'\n"
               "usage: bench [--full] [--scale=F] [--folds=N] [--epochs=N]\n"
               "             [--seed=N] [--datasets=A,B|all]\n",
               flag);
  std::exit(2);
}

bool ParseValueFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

BenchOptions BenchOptions::FromArgs(int argc, char** argv) {
  BenchOptions options;
  const char* env_full = std::getenv("DEEPMAP_BENCH_FULL");
  if (env_full != nullptr && std::string(env_full) == "1") {
    options.full = true;
  }
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--full") == 0) {
      options.full = true;
    } else if (ParseValueFlag(argv[i], "--scale", &value)) {
      options.scale = std::stod(value);
    } else if (ParseValueFlag(argv[i], "--folds", &value)) {
      options.folds = std::stoi(value);
    } else if (ParseValueFlag(argv[i], "--epochs", &value)) {
      options.epochs = std::stoi(value);
    } else if (ParseValueFlag(argv[i], "--seed", &value)) {
      options.seed = std::stoull(value);
    } else if (ParseValueFlag(argv[i], "--datasets", &value)) {
      options.datasets = Split(value, ',');
    } else {
      Usage(argv[i]);
    }
  }
  if (options.full) {
    options.scale = 1.0;
    options.folds = 10;
    options.epochs = 100;
    options.batch_size = 32;  // paper selects from {32, 256}
    options.max_dense_dim = 256;
  }
  return options;
}

void BenchOptions::PrintBanner(const std::string& bench_name) const {
  std::printf("== %s ==\n", bench_name.c_str());
  std::printf(
      "mode=%s scale=%.2f folds=%d epochs=%d seed=%llu max_dense_dim=%d\n",
      full ? "FULL (paper protocol)" : "scaled-down (pass --full for paper "
                                       "protocol)",
      scale, folds, epochs, static_cast<unsigned long long>(seed),
      max_dense_dim);
}

datasets::DatasetOptions BenchOptions::dataset_options() const {
  datasets::DatasetOptions opts;
  opts.scale = scale;
  opts.min_graphs = min_graphs;
  opts.seed = seed;
  return opts;
}

std::vector<std::string> BenchOptions::SelectedDatasets(
    const std::vector<std::string>& defaults) const {
  if (datasets.empty()) return defaults;
  if (datasets.size() == 1 && datasets[0] == "all") {
    return datasets::DatasetNames();
  }
  return datasets;
}

std::string GnnKindName(GnnKind kind) {
  switch (kind) {
    case GnnKind::kDgcnn:
      return "DGCNN";
    case GnnKind::kGin:
      return "GIN";
    case GnnKind::kDcnn:
      return "DCNN";
    case GnnKind::kPatchySan:
      return "PATCHYSAN";
  }
  return "?";
}

kernels::VertexFeatureConfig DefaultFeatureConfig(
    kernels::FeatureMapKind kind, const BenchOptions& options) {
  kernels::VertexFeatureConfig config;
  config.kind = kind;
  config.graphlet.k = options.full ? 5 : 4;
  config.graphlet.samples_per_vertex = 20;  // paper: 20 samples of size 5
  config.wl.iterations = 3;
  config.max_dense_dim = options.max_dense_dim;
  config.seed = options.seed;
  return config;
}

core::DeepMapConfig DefaultDeepMapConfig(kernels::FeatureMapKind kind,
                                         const BenchOptions& options) {
  core::DeepMapConfig config;
  config.features = DefaultFeatureConfig(kind, options);
  config.receptive_field_size = 5;
  config.train.epochs = options.epochs;
  config.train.batch_size = options.batch_size;
  config.train.learning_rate = 0.01;  // paper: RMSprop lr 0.01
  config.seed = options.seed;
  return config;
}

MethodRun RunDeepMap(const graph::GraphDataset& dataset,
                     const core::DeepMapConfig& config,
                     const BenchOptions& options) {
  core::DeepMapPipeline pipeline(dataset, config);
  MethodRun run;
  double total_epoch_seconds = 0.0;
  int total_epochs = 0;
  run.cv = CrossValidate(
      dataset.labels(), options.folds, options.seed,
      [&](const FoldSplit& split, int fold) {
        core::EvaluationResult result = pipeline.RunFold(
            split.train_indices, split.test_indices,
            options.seed + 1000 + static_cast<uint64_t>(fold));
        for (const nn::EpochStats& e : result.history.epochs) {
          total_epoch_seconds += e.seconds;
          ++total_epochs;
        }
        return result.test_accuracy;
      });
  if (total_epochs > 0) {
    run.mean_epoch_ms = 1e3 * total_epoch_seconds / total_epochs;
  }
  return run;
}

MethodRun RunDeepMap(const graph::GraphDataset& dataset,
                     kernels::FeatureMapKind kind,
                     const BenchOptions& options) {
  return RunDeepMap(dataset, DefaultDeepMapConfig(kind, options), options);
}

MethodRun RunGraphKernel(const graph::GraphDataset& dataset,
                         kernels::FeatureMapKind kind,
                         const BenchOptions& options) {
  MethodRun run;
  run.cv = baselines::GraphKernelBaseline(
      dataset, DefaultFeatureConfig(kind, options), options.folds,
      options.seed);
  return run;
}

namespace {

MethodRun RunPrecomputedKernel(const kernels::Matrix& gram,
                               const std::vector<int>& labels,
                               const BenchOptions& options) {
  MethodRun run;
  run.cv = baselines::KernelSvmCrossValidate(gram, labels, options.folds,
                                             options.seed);
  return run;
}

}  // namespace

MethodRun RunDgk(const graph::GraphDataset& dataset,
                 const BenchOptions& options) {
  baselines::DgkConfig config;
  config.features =
      DefaultFeatureConfig(kernels::FeatureMapKind::kWlSubtree, options);
  config.seed = options.seed;
  return RunPrecomputedKernel(baselines::DgkKernelMatrix(dataset, config),
                              dataset.labels(), options);
}

MethodRun RunRetGk(const graph::GraphDataset& dataset,
                   const BenchOptions& options) {
  baselines::RetGkConfig config;
  return RunPrecomputedKernel(
      baselines::RetGkKernelMatrix(dataset, config), dataset.labels(),
      options);
}

MethodRun RunGntk(const graph::GraphDataset& dataset,
                  const BenchOptions& options) {
  baselines::GntkConfig config;
  return RunPrecomputedKernel(
      baselines::GntkKernelMatrix(dataset, config), dataset.labels(),
      options);
}

namespace {

// Generic fold loop for a GNN baseline over prebuilt samples.
template <typename Model, typename Sample, typename MakeModel>
MethodRun RunGnnFolds(const std::vector<Sample>& samples,
                      const std::vector<int>& labels,
                      const BenchOptions& options, MakeModel make_model) {
  nn::TrainConfig train;
  train.epochs = options.epochs;
  train.batch_size = options.batch_size;
  train.learning_rate = 0.01;
  MethodRun run;
  double total_epoch_seconds = 0.0;
  int total_epochs = 0;
  run.cv = CrossValidate(
      labels, options.folds, options.seed,
      [&](const FoldSplit& split, int fold) {
        Model model = make_model(options.seed + 500 + fold);
        std::vector<Sample> train_samples, test_samples;
        std::vector<int> train_labels, test_labels;
        for (int i : split.train_indices) {
          train_samples.push_back(samples[i]);
          train_labels.push_back(labels[i]);
        }
        for (int i : split.test_indices) {
          test_samples.push_back(samples[i]);
          test_labels.push_back(labels[i]);
        }
        nn::TrainConfig fold_train = train;
        fold_train.seed = options.seed + 900 + fold;
        auto history =
            nn::TrainClassifier(model, train_samples, train_labels,
                                fold_train);
        for (const nn::EpochStats& e : history.epochs) {
          total_epoch_seconds += e.seconds;
          ++total_epochs;
        }
        return nn::EvaluateAccuracy(model, test_samples, test_labels);
      });
  if (total_epochs > 0) {
    run.mean_epoch_ms = 1e3 * total_epoch_seconds / total_epochs;
  }
  return run;
}

}  // namespace

MethodRun RunGnn(const graph::GraphDataset& dataset, GnnKind kind,
                 bool use_vertex_feature_maps, const BenchOptions& options) {
  // Input features: one-hot labels (Table 3) or WL vertex feature maps
  // (Table 4).
  std::optional<kernels::DatasetVertexFeatures> features;
  baselines::VertexFeatureProvider provider;
  if (use_vertex_feature_maps) {
    features = kernels::ComputeDatasetVertexFeatures(
        dataset,
        DefaultFeatureConfig(kernels::FeatureMapKind::kWlSubtree, options));
    provider = baselines::FeatureMapProvider(*features);
  } else {
    provider = baselines::OneHotProvider(dataset);
  }
  const int num_classes = dataset.NumClasses();
  switch (kind) {
    case GnnKind::kDgcnn: {
      auto samples = baselines::BuildDgcnnSamples(dataset, provider);
      baselines::DgcnnConfig config;
      config.sortpool_k =
          std::max(2, static_cast<int>(dataset.Stats().avg_vertices * 0.6));
      return RunGnnFolds<baselines::DgcnnModel>(
          samples, dataset.labels(), options, [&](uint64_t seed) {
            baselines::DgcnnConfig c = config;
            c.seed = seed;
            return baselines::DgcnnModel(provider.dim, num_classes, c);
          });
    }
    case GnnKind::kGin: {
      auto samples = baselines::BuildGinSamples(dataset, provider);
      return RunGnnFolds<baselines::GinModel>(
          samples, dataset.labels(), options, [&](uint64_t seed) {
            baselines::GinConfig c;
            c.seed = seed;
            return baselines::GinModel(provider.dim, num_classes, c);
          });
    }
    case GnnKind::kDcnn: {
      const int hops = 3;
      auto samples = baselines::BuildDcnnSamples(dataset, provider, hops);
      return RunGnnFolds<baselines::DcnnModel>(
          samples, dataset.labels(), options, [&](uint64_t seed) {
            baselines::DcnnConfig c;
            c.seed = seed;
            return baselines::DcnnModel(provider.dim, hops, num_classes, c);
          });
    }
    case GnnKind::kPatchySan: {
      baselines::PatchySanConfig config;
      config.sequence_length =
          baselines::DefaultPatchySanSequenceLength(dataset);
      config.field_size = 5;
      auto samples =
          baselines::BuildPatchySanInputs(dataset, provider, config);
      return RunGnnFolds<baselines::PatchySanModel>(
          samples, dataset.labels(), options, [&](uint64_t seed) {
            baselines::PatchySanConfig c = config;
            c.seed = seed;
            return baselines::PatchySanModel(provider.dim, num_classes, c);
          });
    }
  }
  return MethodRun{};
}

}  // namespace deepmap::eval
