#include "eval/paper_reference.h"

#include <array>
#include <map>

#include "common/string_util.h"

namespace deepmap::eval {
namespace {

constexpr int kNumDatasets = 15;

const char* const kDatasets[kNumDatasets] = {
    "SYNTHIE", "KKI",    "BZR_MD",  "COX2_MD",     "DHFR",
    "NCI1",    "PTC_MM", "PTC_MR",  "PTC_FM",      "PTC_FR",
    "ENZYMES", "PROTEINS", "IMDB-BINARY", "IMDB-MULTI", "COLLAB"};

int DatasetIndex(const std::string& name) {
  for (int i = 0; i < kNumDatasets; ++i) {
    if (name == kDatasets[i]) return i;
  }
  return -1;
}

constexpr double kNa = -1.0;  // sentinel for N/A cells

// Table 2: GK, DEEPMAP-GK, SP, DEEPMAP-SP, WL, DEEPMAP-WL.
constexpr double kTable2[kNumDatasets][6][2] = {
    {{23.68, 2.11}, {54.48, 4.34}, {50.73, 1.74}, {54.03, 2.38}, {50.88, 1.04}, {54.53, 6.16}},
    {{51.88, 3.19}, {56.77, 9.69}, {50.13, 3.46}, {62.92, 7.94}, {50.38, 2.77}, {61.65, 15.0}},
    {{49.27, 2.15}, {63.11, 10.0}, {68.60, 1.94}, {73.55, 5.76}, {59.67, 1.47}, {71.56, 6.66}},
    {{48.17, 1.88}, {52.44, 7.36}, {65.70, 1.66}, {72.28, 9.37}, {56.30, 1.55}, {69.66, 7.32}},
    {{61.01, 0.23}, {61.64, 2.07}, {77.80, 0.98}, {81.35, 4.08}, {82.39, 0.90}, {85.17, 2.19}},
    {{62.11, 0.19}, {63.26, 2.04}, {73.12, 0.29}, {79.90, 1.78}, {84.79, 0.22}, {83.07, 1.07}},
    {{50.82, 6.20}, {66.68, 5.71}, {62.18, 2.22}, {66.30, 4.87}, {67.18, 1.62}, {69.59, 7.39}},
    {{49.68, 2.03}, {63.38, 6.04}, {59.88, 2.02}, {67.73, 6.61}, {61.32, 0.89}, {63.59, 5.31}},
    {{51.94, 4.05}, {62.83, 6.23}, {61.38, 1.66}, {64.45, 5.04}, {64.44, 2.09}, {65.16, 5.62}},
    {{49.54, 6.00}, {65.82, 1.07}, {66.91, 1.46}, {68.39, 3.57}, {66.17, 1.02}, {67.82, 5.03}},
    {{23.88, 1.78}, {30.50, 3.88}, {41.07, 0.77}, {50.33, 4.70}, {51.98, 1.24}, {54.33, 6.11}},
    {{71.44, 0.25}, {73.77, 2.33}, {75.77, 0.58}, {76.19, 2.91}, {75.45, 0.20}, {75.47, 3.26}},
    {{67.03, 0.79}, {69.60, 4.80}, {72.20, 0.78}, {74.60, 4.74}, {72.26, 0.78}, {78.10, 5.26}},
    {{40.83, 0.57}, {42.80, 2.84}, {50.89, 0.90}, {48.33, 2.70}, {50.39, 0.49}, {53.33, 3.89}},
    {{72.84, 0.28}, {73.92, 2.03}, {kNa, kNa},    {kNa, kNa},    {78.90, 1.90}, {75.54, 2.78}},
};

// Table 3: DEEPMAP, DGCNN, GIN, DCNN, PATCHYSAN, DGK, RETGK, GNTK.
constexpr double kTable3[kNumDatasets][8][2] = {
    {{54.53, 6.16}, {47.50, 7.99}, {53.48, 3.64}, {54.18, 4.49}, {44.25, 14.36}, {52.43, 1.02}, {49.95, 1.96}, {53.98, 0.87}},
    {{62.92, 7.94}, {56.25, 18.8}, {60.34, 12.5}, {48.93, 7.50}, {43.75, 13.98}, {51.25, 4.17}, {48.50, 2.99}, {46.75, 5.75}},
    {{73.55, 5.76}, {64.67, 9.32}, {70.53, 8.00}, {59.61, 11.2}, {67.00, 9.48}, {58.50, 1.52}, {62.77, 1.69}, {66.47, 1.20}},
    {{72.28, 9.37}, {64.00, 8.86}, {65.97, 5.70}, {51.29, 5.31}, {65.33, 7.78}, {51.57, 1.71}, {59.47, 1.66}, {64.27, 1.55}},
    {{85.17, 2.19}, {70.67, 4.95}, {82.15, 4.02}, {59.80, 2.45}, {77.00, 3.59}, {64.13, 0.89}, {82.33, 0.66}, {73.48, 0.65}},
    {{83.07, 1.07}, {71.73, 2.14}, {82.70, 1.70}, {57.10, 0.69}, {78.60, 1.90}, {80.31, 0.46}, {84.50, 0.20}, {84.20, 1.50}},
    {{69.59, 7.39}, {62.12, 14.1}, {67.19, 7.41}, {63.04, 2.71}, {56.58, 9.01}, {67.09, 0.49}, {67.90, 1.40}, {65.94, 1.21}},
    {{67.73, 6.61}, {55.29, 9.38}, {62.57, 5.18}, {55.65, 4.92}, {55.25, 7.98}, {62.03, 1.68}, {62.50, 1.60}, {58.32, 1.00}},
    {{65.16, 5.62}, {60.29, 6.69}, {64.22, 2.36}, {63.50, 3.78}, {58.38, 9.27}, {64.47, 0.76}, {63.90, 1.30}, {63.85, 1.20}},
    {{68.39, 3.57}, {65.43, 11.3}, {66.97, 6.17}, {66.24, 3.83}, {61.00, 5.61}, {67.66, 0.32}, {67.80, 1.10}, {66.97, 0.56}},
    {{54.33, 6.11}, {43.83, 6.85}, {50.50, 6.01}, {17.50, 2.67}, {22.50, 7.08}, {53.43, 0.91}, {60.40, 0.80}, {32.35, 1.17}},
    {{76.19, 2.91}, {73.06, 4.81}, {76.20, 2.80}, {66.47, 1.10}, {75.90, 2.80}, {75.68, 0.54}, {75.80, 0.60}, {75.60, 4.20}},
    {{78.10, 5.26}, {70.03, 0.86}, {75.10, 5.10}, {71.38, 2.08}, {71.00, 2.29}, {66.96, 0.56}, {72.30, 0.60}, {76.90, 3.60}},
    {{53.33, 3.89}, {47.83, 0.85}, {52.30, 2.80}, {45.02, 1.73}, {45.23, 2.84}, {44.55, 0.52}, {48.70, 0.60}, {52.80, 4.60}},
    {{75.54, 2.78}, {73.76, 2.52}, {80.20, 1.90}, {76.24, 0.60}, {72.60, 2.20}, {73.09, 0.25}, {81.00, 0.30}, {83.60, 1.00}},
};

// Table 4: DEEPMAP, DGCNN, GIN, DCNN, PATCHYSAN (vertex-feature-map input).
constexpr double kTable4[kNumDatasets][5][2] = {
    {{54.53, 6.16}, {47.25, 7.86}, {53.68, 8.25}, {50.67, 4.41}, {42.00, 10.36}},
    {{62.92, 7.94}, {56.25, 18.87}, {64.93, 17.15}, {53.93, 7.22}, {48.75, 15.26}},
    {{73.55, 5.76}, {64.33, 8.90}, {73.00, 10.70}, {68.73, 3.46}, {67.33, 8.41}},
    {{72.28, 9.37}, {59.00, 9.30}, {65.76, 7.65}, {61.98, 4.99}, {62.00, 10.13}},
    {{85.17, 2.19}, {79.33, 5.56}, {80.16, 5.27}, {76.51, 6.47}, {71.00, 16.76}},
    {{83.07, 1.07}, {71.05, 2.03}, {75.38, 2.03}, {77.34, 0.98}, {80.14, 1.58}},
    {{69.59, 7.39}, {61.21, 12.27}, {68.40, 7.78}, {64.64, 2.74}, {62.00, 7.69}},
    {{67.73, 6.61}, {54.12, 7.74}, {64.87, 8.41}, {57.57, 4.26}, {58.88, 8.19}},
    {{65.16, 5.62}, {58.53, 6.86}, {61.89, 8.54}, {57.78, 4.07}, {58.38, 5.09}},
    {{68.39, 3.57}, {65.43, 11.38}, {66.08, 5.99}, {62.99, 4.17}, {58.25, 8.81}},
    {{54.33, 6.11}, {35.33, 5.02}, {37.50, 3.59}, {42.75, 1.81}, {25.17, 5.19}},
    {{76.19, 2.91}, {76.58, 4.37}, {75.10, 5.04}, {65.55, 3.36}, {65.50, 6.80}},
    {{78.10, 5.26}, {69.20, 5.73}, {74.10, 3.18}, {74.55, 2.50}, {68.70, 5.27}},
    {{53.33, 3.89}, {47.67, 4.41}, {49.87, 3.14}, {48.32, 3.40}, {43.33, 7.25}},
    {{75.54, 2.78}, {73.50, 2.10}, {71.68, 2.10}, {76.50, 1.26}, {72.38, 2.18}},
};

// Table 5: per-epoch runtime in milliseconds (DEEPMAP, DGCNN, GIN, DCNN,
// PATCHYSAN). A few rows of the source render with shuffled columns; they
// are reordered here so that GIN carries its documented >1s cost and
// DEEPMAP is the worst on NCI1/ENZYMES/IMDB-* as the text states.
constexpr double kTable5Ms[kNumDatasets][5] = {
    {166.7, 313.5, 1400.0, 338.5, 566.0},    // SYNTHIE
    {428.8, 61.5, 1100.0, 63.1, 343.9},      // KKI
    {99.2, 224.0, 1100.0, 93.3, 366.0},      // BZR_MD
    {106.9, 200.5, 1200.0, 95.0, 367.8},     // COX2_MD
    {564.2, 442.5, 1200.0, 375.8, 654.1},    // DHFR
    {7300.0, 3000.0, 1600.0, 3400.0, 2500.0},// NCI1
    {104.3, 212.5, 1100.0, 138.3, 381.2},    // PTC_MM
    {212.5, 213.0, 1100.0, 148.1, 390.5},    // PTC_MR
    {430.3, 217.5, 1100.0, 147.2, 382.9},    // PTC_FM
    {121.1, 219.5, 1100.0, 143.8, 385.0},    // PTC_FR
    {9900.0, 359.5, 1200.0, 279.1, 530.6},   // ENZYMES
    {334.1, 727.5, 1200.0, 1200.0, 887.2},   // PROTEINS
    {2900.0, 638.0, 1200.0, 514.0, 932.8},   // IMDB-BINARY
    {2600.0, 882.0, 1300.0, 665.7, 1100.0},  // IMDB-MULTI
    {8400.0, 6300.0, 10400.0, 4100.0, 3800.0},  // COLLAB
};

int MethodIndex(const std::vector<std::string>& methods,
                const std::string& method) {
  for (size_t i = 0; i < methods.size(); ++i) {
    if (methods[i] == method) return static_cast<int>(i);
  }
  return -1;
}

std::optional<PaperAccuracy> Lookup(const double cell[2]) {
  if (cell[0] == kNa) return std::nullopt;
  return PaperAccuracy{cell[0], cell[1]};
}

}  // namespace

const std::vector<std::string>& Table2Methods() {
  static const std::vector<std::string>& methods = *new std::vector<std::string>{
      "GK", "DEEPMAP-GK", "SP", "DEEPMAP-SP", "WL", "DEEPMAP-WL"};
  return methods;
}

const std::vector<std::string>& Table3Methods() {
  static const std::vector<std::string>& methods = *new std::vector<std::string>{
      "DEEPMAP", "DGCNN", "GIN", "DCNN", "PATCHYSAN", "DGK", "RETGK", "GNTK"};
  return methods;
}

const std::vector<std::string>& Table4Methods() {
  static const std::vector<std::string>& methods = *new std::vector<std::string>{
      "DEEPMAP", "DGCNN", "GIN", "DCNN", "PATCHYSAN"};
  return methods;
}

const std::vector<std::string>& Table5Methods() { return Table4Methods(); }

std::optional<PaperAccuracy> PaperTable2(const std::string& dataset,
                                         const std::string& method) {
  int d = DatasetIndex(dataset);
  int m = MethodIndex(Table2Methods(), method);
  if (d < 0 || m < 0) return std::nullopt;
  return Lookup(kTable2[d][m]);
}

std::optional<PaperAccuracy> PaperTable3(const std::string& dataset,
                                         const std::string& method) {
  int d = DatasetIndex(dataset);
  int m = MethodIndex(Table3Methods(), method);
  if (d < 0 || m < 0) return std::nullopt;
  return Lookup(kTable3[d][m]);
}

std::optional<PaperAccuracy> PaperTable4(const std::string& dataset,
                                         const std::string& method) {
  int d = DatasetIndex(dataset);
  int m = MethodIndex(Table4Methods(), method);
  if (d < 0 || m < 0) return std::nullopt;
  return Lookup(kTable4[d][m]);
}

std::optional<double> PaperTable5Ms(const std::string& dataset,
                                    const std::string& method) {
  int d = DatasetIndex(dataset);
  int m = MethodIndex(Table5Methods(), method);
  if (d < 0 || m < 0) return std::nullopt;
  return kTable5Ms[d][m];
}

std::string FormatPaperAccuracy(
    const std::optional<PaperAccuracy>& accuracy) {
  if (!accuracy.has_value()) return "N/A";
  return FormatAccuracy(accuracy->mean, accuracy->stddev);
}

}  // namespace deepmap::eval
