// Stratified k-fold cross-validation (the paper's 10-fold protocol).
#ifndef DEEPMAP_EVAL_CROSS_VALIDATION_H_
#define DEEPMAP_EVAL_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace deepmap::eval {

/// One train/test split (indices into the dataset).
struct FoldSplit {
  std::vector<int> train_indices;
  std::vector<int> test_indices;
};

/// Stratified folds: class proportions are preserved in every fold.
/// `labels[i]` is the class of sample i. Samples of each class are shuffled
/// with `seed`, then dealt round-robin across the k folds.
std::vector<FoldSplit> StratifiedKFold(const std::vector<int>& labels,
                                       int num_folds, uint64_t seed);

/// Aggregate of a cross-validation run (accuracies in percent).
struct CvResult {
  double mean_accuracy = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_accuracies;
};

/// Runs `run_fold(split, fold_index)` (returning accuracy in [0, 1]) for
/// every fold and aggregates to percent mean +- population stddev, matching
/// the paper's reporting.
CvResult CrossValidate(
    const std::vector<int>& labels, int num_folds, uint64_t seed,
    const std::function<double(const FoldSplit&, int)>& run_fold);

/// Parallel variant: folds run concurrently on up to `num_threads` threads
/// (0 = hardware concurrency). `run_fold` must be safe to call from
/// multiple threads for distinct folds (DeepMapPipeline::RunFold and the
/// other method runners are). Produces the same CvResult as the sequential
/// CrossValidate for the same inputs.
CvResult CrossValidateParallel(
    const std::vector<int>& labels, int num_folds, uint64_t seed,
    const std::function<double(const FoldSplit&, int)>& run_fold,
    size_t num_threads = 0);

}  // namespace deepmap::eval

#endif  // DEEPMAP_EVAL_CROSS_VALIDATION_H_
