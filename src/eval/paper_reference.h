// Reference numbers from the paper's evaluation section (Tables 2-5),
// printed next to measured values by the benchmark harnesses so shape
// comparisons (who wins, by roughly what factor) are immediate.
#ifndef DEEPMAP_EVAL_PAPER_REFERENCE_H_
#define DEEPMAP_EVAL_PAPER_REFERENCE_H_

#include <optional>
#include <string>
#include <vector>

namespace deepmap::eval {

/// Accuracy entry: mean +- std in percent.
struct PaperAccuracy {
  double mean;
  double stddev;
};

/// Method column names of Table 2 in paper order.
const std::vector<std::string>& Table2Methods();
/// Method column names of Table 3 in paper order.
const std::vector<std::string>& Table3Methods();
/// Method column names of Table 4 in paper order.
const std::vector<std::string>& Table4Methods();
/// Method column names of Table 5 in paper order.
const std::vector<std::string>& Table5Methods();

/// Reference accuracy from Table 2 (deep maps vs their kernels).
/// Methods: GK, DEEPMAP-GK, SP, DEEPMAP-SP, WL, DEEPMAP-WL.
/// nullopt when the paper reports N/A (e.g. SP on COLLAB).
std::optional<PaperAccuracy> PaperTable2(const std::string& dataset,
                                         const std::string& method);

/// Reference accuracy from Table 3 (DEEPMAP vs kernels and GNNs).
/// Methods: DEEPMAP, DGCNN, GIN, DCNN, PATCHYSAN, DGK, RETGK, GNTK.
std::optional<PaperAccuracy> PaperTable3(const std::string& dataset,
                                         const std::string& method);

/// Reference accuracy from Table 4 (GNNs fed vertex feature maps).
/// Methods: DEEPMAP, DGCNN, GIN, DCNN, PATCHYSAN.
std::optional<PaperAccuracy> PaperTable4(const std::string& dataset,
                                         const std::string& method);

/// Reference per-epoch runtime in milliseconds from Table 5. Column order
/// follows the printed table; a few rows are best-effort reorderings of the
/// source's garbled columns (see EXPERIMENTS.md).
std::optional<double> PaperTable5Ms(const std::string& dataset,
                                    const std::string& method);

/// Formats an optional accuracy as "54.53+-6.16" or "N/A".
std::string FormatPaperAccuracy(const std::optional<PaperAccuracy>& accuracy);

}  // namespace deepmap::eval

#endif  // DEEPMAP_EVAL_PAPER_REFERENCE_H_
