// Classification metrics.
#ifndef DEEPMAP_EVAL_METRICS_H_
#define DEEPMAP_EVAL_METRICS_H_

#include <vector>

namespace deepmap::eval {

/// Fraction of predictions equal to the true label, in [0, 1].
double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& truths);

/// Confusion matrix C[truth][prediction] over `num_classes` classes.
std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& predictions, const std::vector<int>& truths,
    int num_classes);

/// Macro-averaged F1 score in [0, 1] (classes absent from both vectors are
/// skipped).
double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& truths, int num_classes);

}  // namespace deepmap::eval

#endif  // DEEPMAP_EVAL_METRICS_H_
