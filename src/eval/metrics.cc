#include "eval/metrics.h"

#include "common/check.h"

namespace deepmap::eval {

double Accuracy(const std::vector<int>& predictions,
                const std::vector<int>& truths) {
  DEEPMAP_CHECK_EQ(predictions.size(), truths.size());
  if (predictions.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == truths[i]) ++correct;
  }
  return static_cast<double>(correct) / predictions.size();
}

std::vector<std::vector<int>> ConfusionMatrix(
    const std::vector<int>& predictions, const std::vector<int>& truths,
    int num_classes) {
  DEEPMAP_CHECK_EQ(predictions.size(), truths.size());
  std::vector<std::vector<int>> matrix(num_classes,
                                       std::vector<int>(num_classes, 0));
  for (size_t i = 0; i < predictions.size(); ++i) {
    DEEPMAP_CHECK_GE(truths[i], 0);
    DEEPMAP_CHECK_LT(truths[i], num_classes);
    DEEPMAP_CHECK_GE(predictions[i], 0);
    DEEPMAP_CHECK_LT(predictions[i], num_classes);
    matrix[truths[i]][predictions[i]]++;
  }
  return matrix;
}

double MacroF1(const std::vector<int>& predictions,
               const std::vector<int>& truths, int num_classes) {
  auto cm = ConfusionMatrix(predictions, truths, num_classes);
  double total_f1 = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    int tp = cm[c][c];
    int fp = 0, fn = 0;
    for (int o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fp += cm[o][c];
      fn += cm[c][o];
    }
    if (tp + fp + fn == 0) continue;  // class absent entirely
    double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0;
    double recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0;
    double f1 = precision + recall > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0;
    total_f1 += f1;
    ++counted;
  }
  return counted > 0 ? total_f1 / counted : 0.0;
}

}  // namespace deepmap::eval
