// Experiment harness shared by all bench binaries: command-line options,
// scaled-down defaults for this single-core environment, and one runner per
// method family (DEEPMAP variants, kernel+SVM baselines, DGK/RetGK/GNTK,
// and the four GNN baselines with either input kind).
#ifndef DEEPMAP_EVAL_EXPERIMENT_H_
#define DEEPMAP_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/deepmap.h"
#include "datasets/registry.h"
#include "eval/cross_validation.h"
#include "graph/dataset.h"
#include "kernels/vertex_feature_map.h"

namespace deepmap::eval {

/// Options common to every bench binary.
///
/// Defaults are scaled down (fewer graphs, folds, epochs) so the whole bench
/// suite completes on a single core; pass --full (or set
/// DEEPMAP_BENCH_FULL=1) for the paper-scale protocol (10-fold CV, full
/// dataset sizes, longer training).
struct BenchOptions {
  bool full = false;
  double scale = 0.12;
  int min_graphs = 80;
  int folds = 3;
  int epochs = 24;
  int batch_size = 8;
  /// Feature-hashing cap on the dense vertex-feature dimension.
  int max_dense_dim = 96;
  uint64_t seed = 42;
  /// Dataset-name filter; empty means the bench's own default list.
  std::vector<std::string> datasets;

  /// Parses --full, --scale=, --folds=, --epochs=, --seed=, --datasets=a,b
  /// plus the DEEPMAP_BENCH_FULL env var. Unknown flags abort with usage.
  static BenchOptions FromArgs(int argc, char** argv);

  /// Prints the run configuration header.
  void PrintBanner(const std::string& bench_name) const;

  datasets::DatasetOptions dataset_options() const;

  /// The datasets this run covers: the --datasets filter if given (the
  /// special value "all" selects all 15), otherwise `defaults`.
  std::vector<std::string> SelectedDatasets(
      const std::vector<std::string>& defaults) const;
};

/// Which GNN baseline to run.
enum class GnnKind { kDgcnn, kGin, kDcnn, kPatchySan };

std::string GnnKindName(GnnKind kind);

/// Result of one method on one dataset.
struct MethodRun {
  CvResult cv;
  /// Mean wall-clock per training epoch (Table 5 metric); 0 for SVM-based
  /// methods, which have no epochs.
  double mean_epoch_ms = 0.0;
};

/// Feature-map configuration used across methods for a given family.
kernels::VertexFeatureConfig DefaultFeatureConfig(
    kernels::FeatureMapKind kind, const BenchOptions& options);

/// DEEPMAP configuration the benches share (paper architecture).
core::DeepMapConfig DefaultDeepMapConfig(kernels::FeatureMapKind kind,
                                         const BenchOptions& options);

/// DEEPMAP-{GK,SP,WL} with k-fold CV.
MethodRun RunDeepMap(const graph::GraphDataset& dataset,
                     const core::DeepMapConfig& config,
                     const BenchOptions& options);

/// Convenience overload with the default config for `kind`.
MethodRun RunDeepMap(const graph::GraphDataset& dataset,
                     kernels::FeatureMapKind kind,
                     const BenchOptions& options);

/// GK/SP/WL + C-SVM baseline.
MethodRun RunGraphKernel(const graph::GraphDataset& dataset,
                         kernels::FeatureMapKind kind,
                         const BenchOptions& options);

/// DGK baseline (WL substructures).
MethodRun RunDgk(const graph::GraphDataset& dataset,
                 const BenchOptions& options);

/// RetGK baseline.
MethodRun RunRetGk(const graph::GraphDataset& dataset,
                   const BenchOptions& options);

/// GNTK baseline.
MethodRun RunGntk(const graph::GraphDataset& dataset,
                  const BenchOptions& options);

/// One of the four GNN baselines. `use_vertex_feature_maps` selects the
/// Table 4 input (kernel vertex feature maps, WL by default) instead of the
/// Table 3 one-hot labels.
MethodRun RunGnn(const graph::GraphDataset& dataset, GnnKind kind,
                 bool use_vertex_feature_maps, const BenchOptions& options);

}  // namespace deepmap::eval

#endif  // DEEPMAP_EVAL_EXPERIMENT_H_
