#include "eval/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace deepmap::eval {

std::vector<FoldSplit> StratifiedKFold(const std::vector<int>& labels,
                                       int num_folds, uint64_t seed) {
  DEEPMAP_CHECK_GE(num_folds, 2);
  DEEPMAP_CHECK_GE(static_cast<int>(labels.size()), num_folds);
  Rng rng(seed);
  int num_classes = 0;
  for (int y : labels) num_classes = std::max(num_classes, y + 1);

  // Shuffle within each class, then deal round-robin over folds.
  std::vector<std::vector<int>> fold_members(num_folds);
  int deal = 0;
  for (int c = 0; c < num_classes; ++c) {
    std::vector<int> members;
    for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
      if (labels[i] == c) members.push_back(i);
    }
    rng.Shuffle(members);
    for (int i : members) {
      fold_members[deal % num_folds].push_back(i);
      ++deal;
    }
  }

  std::vector<FoldSplit> splits(num_folds);
  for (int f = 0; f < num_folds; ++f) {
    splits[f].test_indices = fold_members[f];
    std::sort(splits[f].test_indices.begin(), splits[f].test_indices.end());
    for (int g = 0; g < num_folds; ++g) {
      if (g == f) continue;
      splits[f].train_indices.insert(splits[f].train_indices.end(),
                                     fold_members[g].begin(),
                                     fold_members[g].end());
    }
    std::sort(splits[f].train_indices.begin(), splits[f].train_indices.end());
  }
  return splits;
}

namespace {

CvResult Aggregate(std::vector<double> fold_accuracies) {
  CvResult result;
  result.fold_accuracies = std::move(fold_accuracies);
  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / result.fold_accuracies.size();
  double var = 0.0;
  for (double a : result.fold_accuracies) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev = std::sqrt(var / result.fold_accuracies.size());
  return result;
}

}  // namespace

CvResult CrossValidate(
    const std::vector<int>& labels, int num_folds, uint64_t seed,
    const std::function<double(const FoldSplit&, int)>& run_fold) {
  const std::vector<FoldSplit> splits =
      StratifiedKFold(labels, num_folds, seed);
  std::vector<double> accuracies;
  accuracies.reserve(splits.size());
  for (int f = 0; f < static_cast<int>(splits.size()); ++f) {
    accuracies.push_back(100.0 * run_fold(splits[f], f));
  }
  return Aggregate(std::move(accuracies));
}

CvResult CrossValidateParallel(
    const std::vector<int>& labels, int num_folds, uint64_t seed,
    const std::function<double(const FoldSplit&, int)>& run_fold,
    size_t num_threads) {
  const std::vector<FoldSplit> splits =
      StratifiedKFold(labels, num_folds, seed);
  std::vector<double> accuracies(splits.size(), 0.0);
  ParallelFor(
      splits.size(),
      [&](size_t f) {
        accuracies[f] =
            100.0 * run_fold(splits[f], static_cast<int>(f));
      },
      num_threads);
  return Aggregate(std::move(accuracies));
}

}  // namespace deepmap::eval
