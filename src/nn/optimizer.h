// First-order optimizers. The paper trains DEEPMAP with RMSprop (initial
// learning rate 0.01, halved after 5 epochs without loss improvement); SGD
// and Adam are provided for completeness and for baseline parity.
#ifndef DEEPMAP_NN_OPTIMIZER_H_
#define DEEPMAP_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace deepmap::nn {

/// Base optimizer interface: applies accumulated gradients to parameters.
class Optimizer {
 public:
  explicit Optimizer(double learning_rate) : learning_rate_(learning_rate) {}
  virtual ~Optimizer() = default;

  /// One update step; gradients are NOT zeroed (the trainer does that).
  virtual void Step(const std::vector<Param>& params) = 0;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  double learning_rate_;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);
  void Step(const std::vector<Param>& params) override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// RMSprop (Tieleman & Hinton), the paper's optimizer.
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(double learning_rate = 0.01, double decay = 0.9,
                   double epsilon = 1e-7);
  void Step(const std::vector<Param>& params) override;

 private:
  double decay_;
  double epsilon_;
  std::vector<Tensor> cache_;  // running mean of squared gradients
};

/// Adam (Kingma & Ba).
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate = 0.001, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);
  void Step(const std::vector<Param>& params) override;

 private:
  double beta1_, beta2_, epsilon_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Which optimizer a training config selects.
enum class OptimizerKind { kSgd, kRmsProp, kAdam };

/// Factory for a fresh optimizer of the given kind.
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_OPTIMIZER_H_
