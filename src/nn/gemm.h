// Shared dense single-precision matrix-multiply core.
//
// Every matrix product in the library (nn::MatMul* and the im2col-lowered
// nn::Conv1D) routes through GemmAccumulate: one cache-blocked,
// register-tiled SGEMM with an optional ParallelFor split over row panels.
//
// Determinism contract: for every output element C[i][j] the k-reduction is
// a single accumulator chain in ascending k order, regardless of tile sizes,
// the small/blocked path split, or the number of threads. Threads own
// disjoint row panels, vector lanes hold independent output elements, and
// gemm.cc is compiled with -ffp-contract=off (no FMA contraction), so the
// result is bit-identical to the naive triple loop on all inputs — including
// NaN/Inf propagation and signed zeros. See docs/performance.md.
#ifndef DEEPMAP_NN_GEMM_H_
#define DEEPMAP_NN_GEMM_H_

namespace deepmap::nn {

/// Runtime-tunable blocking parameters. The register micro-tile is
/// kGemmMR x nr; nr must be one of {8, 16, 32}. MC/KC/NC are the cache
/// panel sizes (rows, depth, columns). Exposed so tests can force odd tile
/// sizes and benches can sweep them; the defaults are tuned for ~1 MiB L2.
struct GemmTuning {
  int mc = 128;    // row-panel height; also the parallel split granularity
  int kc = 256;    // depth-panel size (B panel rows kept hot in cache)
  int nc = 4096;   // column-panel width
  int nr = 32;     // micro-tile width (8, 16, or 32)
  /// m*n*k below which the packed/blocked path is skipped entirely.
  long long small_flops = 1LL << 15;
  /// m*n*k at or above which row panels are spread over ParallelFor.
  long long parallel_min_flops = 1LL << 22;
};

/// Micro-tile height (compile-time constant; see gemm.cc).
inline constexpr int kGemmMR = 4;

/// Replaces the process-wide tuning (tests/benches only; not thread-safe
/// against concurrent GemmAccumulate calls). Values are clamped to be >= 1
/// and nr is snapped to the nearest supported width.
void SetGemmTuning(const GemmTuning& tuning);
GemmTuning GetGemmTuning();

/// C += op(A) * op(B), all row-major.
///   op(A) is m x k: element (i,p) is a[i*lda + p], or a[p*lda + i] when
///   transpose_a is set; op(B) is k x n, analogously with ldb. C is m x n
///   with leading dimension ldc and is accumulated into (callers zero-fill
///   or bias-fill it first, which fixes the "bias first vs last" reduction
///   order per call site).
void GemmAccumulate(bool transpose_a, bool transpose_b, int m, int n, int k,
                    const float* a, int lda, const float* b, int ldb,
                    float* c, int ldc);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_GEMM_H_
