// Pooling / readout layers over the sequence axis.
//
// SumPool implements the paper's summation layer (Eq. 7): it makes the graph
// representation invariant to trailing dummy vertices (whose rows are zero)
// and to vertex count. MeanPool and Flatten/SortPooling back the readout
// ablation and the DGCNN baseline respectively.
#ifndef DEEPMAP_NN_POOLING_H_
#define DEEPMAP_NN_POOLING_H_

#include <vector>

#include "nn/layer.h"

namespace deepmap::nn {

/// Sums over the sequence axis: [L, C] -> [C].
class SumPool : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  int cached_length_ = 0;
};

/// Averages over the sequence axis: [L, C] -> [C].
class MeanPool : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  int cached_length_ = 0;
};

/// Flattens [L, C] -> [L*C] (the concatenation readout discussed in Sec. 6).
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::vector<int> cached_shape_;
};

/// DGCNN's SortPooling: sorts rows by the LAST channel (descending) and
/// keeps the top k rows; shorter inputs are zero-padded to k. Output [k, C].
class SortPooling : public Layer {
 public:
  explicit SortPooling(int k);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  int k_;
  int cached_length_ = 0;
  int cached_channels_ = 0;
  std::vector<int> kept_rows_;  // source row of each kept output row
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_POOLING_H_
