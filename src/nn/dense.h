// Dense (fully-connected) layer: y = x W^T + b.
//
// Accepts rank-1 inputs [Din] (one vector) or rank-2 inputs [L, Din] (the
// same affine map applied to every row), which is how GNN baselines apply
// per-vertex transforms.
#ifndef DEEPMAP_NN_DENSE_H_
#define DEEPMAP_NN_DENSE_H_

#include "nn/layer.h"

namespace deepmap::nn {

/// Affine layer with Glorot-initialized weights.
class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param>* params) override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  Tensor& weights() { return weights_; }
  Tensor& bias() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weights_;       // [out, in]
  Tensor bias_;          // [out]
  Tensor weights_grad_;  // [out, in]
  Tensor bias_grad_;     // [out]
  // Input snapshot for Backward; only kept for training-mode Forward calls
  // (inference skips the copy, and Backward CHECKs that a cache exists).
  Tensor cached_input_;  // [L, in] (rank-1 inputs are lifted to L = 1)
  bool input_was_rank1_ = false;
  bool has_cached_input_ = false;
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_DENSE_H_
