// Int8 quantized inference backend with an AVX2 dot-product micro-kernel.
//
// Weights are quantized per output channel (row) with a symmetric scale
// s_o = maxabs(W[o]) / 127, rounded to nearest (ties to even via lrintf) and
// clamped to [-127, 127]; activations are quantized per input vector with
// the same symmetric scheme at forward time. Quantized values are stored
// widened to int16 (still 2x smaller than fp32) so the AVX2 kernel feeds
// madd_epi16 straight from memory. Each output accumulates the exact
// s8 x s8 integer dot in int32 — no saturation: |q| <= 127 bounds every
// pair-sum below 2^15 and realistic column counts keep the int32 total far
// from overflow — then applies the fp32 epilogue
//     y[o] (+|=) (s_o * s_x) * acc [+ bias[o]].
// The integer dot is exact in either kernel, and the epilogue is shared
// scalar code, so the scalar and AVX2 paths produce bit-identical floats;
// only wall time differs. CPU dispatch happens once at construction via
// __builtin_cpu_supports — the AVX2 kernel is gated per-function with a
// target attribute so this file still builds and runs on plain x86-64.
//
// Accuracy: quantization error is bounded but real. Serving callers select
// this backend through serve::ModelRegistry, whose calibration guardrail
// compares int8 logits against fp32 and falls back when argmax disagreement
// exceeds budget. Do not use it where bit-exact logits are required.
#ifndef DEEPMAP_NN_INT8_BACKEND_H_
#define DEEPMAP_NN_INT8_BACKEND_H_

#include <cstdint>

#include "nn/inference_backend.h"

namespace deepmap::nn {

class Int8Backend final : public InferenceBackend {
 public:
  /// `force_scalar` pins the scalar kernel even on AVX2 hardware (tests use
  /// this to prove scalar/AVX2 bit-identity).
  explicit Int8Backend(bool force_scalar = false);

  /// True when this process can run the AVX2 kernel.
  static bool CpuHasAvx2();

  /// True when this instance dispatched to the AVX2 kernel.
  bool using_avx2() const { return using_avx2_; }

  const char* name() const override { return "int8"; }
  std::unique_ptr<PackedWeights> Pack(const Tensor& weights) const override;
  void AccumulateDot(const PackedWeights& w, int col0, int cols,
                     const float* x, float* y) const override;
  void ConvForward(const PackedWeights& w, const float* bias, const float* x,
                   float* y) const override;
  void DenseForward(const PackedWeights& w, const float* bias, const float* x,
                    float* y) const override;

 private:
  /// Fused int8 mat-vec: exact int32 dots of `rows` weight rows (stride
  /// apart) against one quantized activation vector, followed by the fp32
  /// epilogue y[o] = base + (scales[o] * sx) * sum with base = bias[o], or
  /// y[o] += ... when bias is null. The epilogue is element-wise, so the
  /// scalar and SIMD variants stay bit-identical.
  using MatVecFn = void (*)(const int16_t* w, size_t stride, int rows,
                            const int16_t* x, int cols, const float* scales,
                            float sx, const float* bias, float* y);
  /// Symmetric per-vector activation quantization; returns the scale.
  using QuantizeFn = float (*)(const float* x, int n, int16_t* out);

  MatVecFn mat_vec_;
  QuantizeFn quantize_;
  bool using_avx2_;
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_INT8_BACKEND_H_
