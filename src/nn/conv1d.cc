#include "nn/conv1d.h"

#include "nn/gemm.h"

namespace deepmap::nn {

Conv1D::Conv1D(int in_channels, int out_channels, int kernel_size, int stride,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      weights_({out_channels, kernel_size * in_channels}),
      bias_({out_channels}),
      weights_grad_({out_channels, kernel_size * in_channels}),
      bias_grad_({out_channels}) {
  DEEPMAP_CHECK_GT(kernel_size, 0);
  DEEPMAP_CHECK_GT(stride, 0);
  GlorotInit(weights_, kernel_size * in_channels, out_channels, rng);
}

int Conv1D::OutputLength(int input_length) const {
  DEEPMAP_CHECK_GE(input_length, kernel_size_);
  return (input_length - kernel_size_) / stride_ + 1;
}

// The convolution is lowered onto the blocked GEMM (nn/gemm.h) via a
// zero-copy im2col view: row p of the [out_length, kernel*Cin] patch matrix
// is the window starting at input row p*stride, i.e. the input buffer itself
// read with leading dimension stride*Cin. For DEEPMAP's layers (stride ==
// kernel and pointwise 1x1) the view is exact; overlapping strides
// (stride < kernel) alias rows, which is fine for reads.
//
// Reduction order matches the historical per-window dot (bias first, then
// ascending (position, channel) terms), so outputs — and the serve path's
// compiled logits — stay bit-identical.

Tensor Conv1D::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  DEEPMAP_CHECK_EQ(input.dim(1), in_channels_);
  if (training) {
    cached_input_ = input;
    has_cached_input_ = true;
  } else {
    // Inference never runs Backward; skipping the cache copy keeps serving
    // allocation-free. Dropping any stale cache makes a Backward after an
    // inference Forward fail loudly instead of using the wrong input.
    cached_input_ = Tensor();
    has_cached_input_ = false;
  }
  const int out_length = OutputLength(input.dim(0));
  const int window = kernel_size_ * in_channels_;
  Tensor out({out_length, out_channels_});
  for (int p = 0; p < out_length; ++p) {
    float* row = out.data() + static_cast<size_t>(p) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) row[o] = bias_.at(o);
  }
  GemmAccumulate(false, true, out_length, out_channels_, window, input.data(),
                 stride_ * in_channels_, weights_.data(), window, out.data(),
                 out_channels_);
  return out;
}

Tensor Conv1D::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK(has_cached_input_);
  DEEPMAP_CHECK_EQ(grad_output.rank(), 2);
  DEEPMAP_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int out_length = grad_output.dim(0);
  DEEPMAP_CHECK_EQ(out_length, OutputLength(cached_input_.dim(0)));
  const int window = kernel_size_ * in_channels_;
  const int patch_ld = stride_ * in_channels_;

  for (int p = 0; p < out_length; ++p) {
    const float* g = grad_output.data() + static_cast<size_t>(p) * out_channels_;
    for (int o = 0; o < out_channels_; ++o) bias_grad_.at(o) += g[o];
  }

  // dW += dOut^T * patches  ([Cout, L] x [L, window]).
  GemmAccumulate(true, false, out_channels_, window, out_length,
                 grad_output.data(), out_channels_, cached_input_.data(),
                 patch_ld, weights_grad_.data(), window);

  // dX = dOut * W  ([L, Cout] x [Cout, window]), written back through the
  // im2col view.
  Tensor grad_input({cached_input_.dim(0), in_channels_});
  if (stride_ >= kernel_size_) {
    // Non-overlapping windows: patch rows are disjoint in grad_input, so the
    // GEMM can write straight through the view.
    GemmAccumulate(false, false, out_length, window, out_channels_,
                   grad_output.data(), out_channels_, weights_.data(), window,
                   grad_input.data(), patch_ld);
  } else {
    // Overlapping windows alias rows; compute per-window gradients densely,
    // then scatter-add in ascending window order (col2im).
    Tensor cols({out_length, window});
    GemmAccumulate(false, false, out_length, window, out_channels_,
                   grad_output.data(), out_channels_, weights_.data(), window,
                   cols.data(), window);
    for (int p = 0; p < out_length; ++p) {
      float* gx = grad_input.data() + static_cast<size_t>(p) * patch_ld;
      const float* src = cols.data() + static_cast<size_t>(p) * window;
      for (int t = 0; t < window; ++t) gx[t] += src[t];
    }
  }
  return grad_input;
}

void Conv1D::CollectParams(std::vector<Param>* params) {
  params->push_back({&weights_, &weights_grad_});
  params->push_back({&bias_, &bias_grad_});
}

}  // namespace deepmap::nn
