#include "nn/conv1d.h"

namespace deepmap::nn {

Conv1D::Conv1D(int in_channels, int out_channels, int kernel_size, int stride,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      weights_({out_channels, kernel_size * in_channels}),
      bias_({out_channels}),
      weights_grad_({out_channels, kernel_size * in_channels}),
      bias_grad_({out_channels}) {
  DEEPMAP_CHECK_GT(kernel_size, 0);
  DEEPMAP_CHECK_GT(stride, 0);
  GlorotInit(weights_, kernel_size * in_channels, out_channels, rng);
}

int Conv1D::OutputLength(int input_length) const {
  DEEPMAP_CHECK_GE(input_length, kernel_size_);
  return (input_length - kernel_size_) / stride_ + 1;
}

Tensor Conv1D::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  DEEPMAP_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  const int out_length = OutputLength(input.dim(0));
  Tensor out({out_length, out_channels_});
  for (int p = 0; p < out_length; ++p) {
    const int start = p * stride_;
    for (int o = 0; o < out_channels_; ++o) {
      float sum = bias_.at(o);
      const float* w = weights_.data() +
                       static_cast<size_t>(o) * kernel_size_ * in_channels_;
      const float* x = input.data() +
                       static_cast<size_t>(start) * in_channels_;
      for (int t = 0; t < kernel_size_ * in_channels_; ++t) sum += w[t] * x[t];
      out.at(p, o) = sum;
    }
  }
  return out;
}

Tensor Conv1D::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.rank(), 2);
  DEEPMAP_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int out_length = grad_output.dim(0);
  DEEPMAP_CHECK_EQ(out_length, OutputLength(cached_input_.dim(0)));
  Tensor grad_input({cached_input_.dim(0), in_channels_});
  for (int p = 0; p < out_length; ++p) {
    const int start = p * stride_;
    const float* x = cached_input_.data() +
                     static_cast<size_t>(start) * in_channels_;
    float* gx = grad_input.data() + static_cast<size_t>(start) * in_channels_;
    for (int o = 0; o < out_channels_; ++o) {
      const float g = grad_output.at(p, o);
      if (g == 0.0f) continue;
      bias_grad_.at(o) += g;
      const size_t offset =
          static_cast<size_t>(o) * kernel_size_ * in_channels_;
      const float* w = weights_.data() + offset;
      float* gw = weights_grad_.data() + offset;
      for (int t = 0; t < kernel_size_ * in_channels_; ++t) {
        gw[t] += g * x[t];
        gx[t] += g * w[t];
      }
    }
  }
  return grad_input;
}

void Conv1D::CollectParams(std::vector<Param>* params) {
  params->push_back({&weights_, &weights_grad_});
  params->push_back({&bias_, &bias_grad_});
}

}  // namespace deepmap::nn
