#include "nn/gemm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// NOTE: this translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt). The micro-kernel below relies on every multiply and
// add being individually rounded so that vectorized lanes reproduce the
// scalar reference bit-for-bit; FMA contraction would change the rounding.

namespace deepmap::nn {
namespace {

GemmTuning g_tuning;

// Cached instrument handles: GEMM is called per layer per sample, so the
// per-call cost must stay at two relaxed fetch_adds.
obs::Counter& GemmCallsTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_nn_gemm_calls_total", "GemmAccumulate invocations");
  return counter;
}

obs::Counter& GemmMacsTotal() {
  static obs::Counter& counter = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_nn_gemm_macs_total",
      "multiply-accumulate operations (m*n*k) issued to the GEMM core");
  return counter;
}

inline int SnapNr(int nr) {
  if (nr <= 8) return 8;
  if (nr <= 16) return 16;
  return 32;
}

inline int CeilDiv(int a, int b) { return (a + b - 1) / b; }

// --- Small path -----------------------------------------------------------
//
// Unpacked loops for products too small to amortize packing. Loop order is
// chosen per transpose flag for contiguous inner access, but the reduction
// seen by each C element is always a single chain in ascending p, exactly
// like the blocked path.

void SmallGemm(bool transpose_a, bool transpose_b, int m, int n, int k,
               const float* a, int lda, const float* b, int ldb, float* c,
               int ldc) {
  if (!transpose_b) {
    // i-p-j: stream rows of B; C row stays hot.
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<size_t>(i) * ldc;
      for (int p = 0; p < k; ++p) {
        const float av = transpose_a ? a[static_cast<size_t>(p) * lda + i]
                                     : a[static_cast<size_t>(i) * lda + p];
        const float* brow = b + static_cast<size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    return;
  }
  // B transposed: rows of B are the k-dimension, so i-j-p dots two
  // contiguous vectors.
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<size_t>(i) * ldc;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<size_t>(j) * ldb;
      float acc = crow[j];
      if (transpose_a) {
        for (int p = 0; p < k; ++p) {
          acc += a[static_cast<size_t>(p) * lda + i] * brow[p];
        }
      } else {
        const float* arow = a + static_cast<size_t>(i) * lda;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      }
      crow[j] = acc;
    }
  }
}

// --- Packing --------------------------------------------------------------

// Packs op(B)[pc:pc+kc, jc:jc+nc] into nr-wide column tiles: tile t holds
// kc rows of nr consecutive columns, laid out [p][nr]. Columns past n are
// zero-filled; those lanes are discarded when the micro-kernel stores.
void PackB(bool transpose_b, const float* b, int ldb, int pc, int jc, int kc,
           int nc, int nr, std::vector<float>& bp) {
  const int num_tiles = CeilDiv(nc, nr);
  bp.resize(static_cast<size_t>(num_tiles) * kc * nr);
  for (int t = 0; t < num_tiles; ++t) {
    const int j0 = jc + t * nr;
    const int jw = std::min(nr, jc + nc - j0);
    float* dst = bp.data() + static_cast<size_t>(t) * kc * nr;
    for (int p = 0; p < kc; ++p, dst += nr) {
      if (!transpose_b) {
        const float* src = b + static_cast<size_t>(pc + p) * ldb + j0;
        for (int j = 0; j < jw; ++j) dst[j] = src[j];
      } else {
        for (int j = 0; j < jw; ++j) {
          dst[j] = b[static_cast<size_t>(j0 + j) * ldb + (pc + p)];
        }
      }
      for (int j = jw; j < nr; ++j) dst[j] = 0.0f;
    }
  }
}

// Packs op(A)[ic:ic+mc, pc:pc+kc] into kGemmMR-high row tiles laid out
// [p][kGemmMR]. Rows past m are zero-filled (computed, then discarded).
void PackA(bool transpose_a, const float* a, int lda, int ic, int pc, int mc,
           int kc, std::vector<float>& ap) {
  const int num_tiles = CeilDiv(mc, kGemmMR);
  ap.resize(static_cast<size_t>(num_tiles) * kc * kGemmMR);
  for (int t = 0; t < num_tiles; ++t) {
    const int i0 = ic + t * kGemmMR;
    const int iw = std::min(kGemmMR, ic + mc - i0);
    float* dst = ap.data() + static_cast<size_t>(t) * kc * kGemmMR;
    for (int p = 0; p < kc; ++p, dst += kGemmMR) {
      for (int i = 0; i < iw; ++i) {
        dst[i] = transpose_a ? a[static_cast<size_t>(pc + p) * lda + (i0 + i)]
                             : a[static_cast<size_t>(i0 + i) * lda + (pc + p)];
      }
      for (int i = iw; i < kGemmMR; ++i) dst[i] = 0.0f;
    }
  }
}

// --- Micro-kernel ---------------------------------------------------------
//
// acc[i][j] starts from C (zero in the padded fringe), accumulates kc
// ascending-p terms, and stores the valid region back. Fixed trip counts let
// the compiler unroll i/j fully and keep acc in vector registers.

template <int NR>
void MicroKernel(int kc, const float* ap, const float* bp, float* c, int ldc,
                 int mr_valid, int nr_valid) {
  float acc[kGemmMR][NR];
  if (mr_valid == kGemmMR && nr_valid == NR) {
    for (int i = 0; i < kGemmMR; ++i) {
      const float* crow = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < NR; ++j) acc[i][j] = crow[j];
    }
  } else {
    for (int i = 0; i < kGemmMR; ++i) {
      for (int j = 0; j < NR; ++j) {
        acc[i][j] = (i < mr_valid && j < nr_valid)
                        ? c[static_cast<size_t>(i) * ldc + j]
                        : 0.0f;
      }
    }
  }
  for (int p = 0; p < kc; ++p) {
    const float* arow = ap + static_cast<size_t>(p) * kGemmMR;
    const float* brow = bp + static_cast<size_t>(p) * NR;
    for (int i = 0; i < kGemmMR; ++i) {
      const float ai = arow[i];
      for (int j = 0; j < NR; ++j) acc[i][j] += ai * brow[j];
    }
  }
  if (mr_valid == kGemmMR && nr_valid == NR) {
    for (int i = 0; i < kGemmMR; ++i) {
      float* crow = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < NR; ++j) crow[j] = acc[i][j];
    }
  } else {
    for (int i = 0; i < mr_valid; ++i) {
      for (int j = 0; j < nr_valid; ++j) {
        c[static_cast<size_t>(i) * ldc + j] = acc[i][j];
      }
    }
  }
}

using MicroKernelFn = void (*)(int, const float*, const float*, float*, int,
                               int, int);

MicroKernelFn SelectMicroKernel(int nr) {
  switch (nr) {
    case 8:
      return MicroKernel<8>;
    case 16:
      return MicroKernel<16>;
    default:
      return MicroKernel<32>;
  }
}

}  // namespace

void SetGemmTuning(const GemmTuning& tuning) {
  GemmTuning t = tuning;
  t.mc = std::max(1, t.mc);
  t.kc = std::max(1, t.kc);
  t.nc = std::max(1, t.nc);
  t.nr = SnapNr(t.nr);
  t.small_flops = std::max(0LL, t.small_flops);
  t.parallel_min_flops = std::max(0LL, t.parallel_min_flops);
  g_tuning = t;
}

GemmTuning GetGemmTuning() { return g_tuning; }

void GemmAccumulate(bool transpose_a, bool transpose_b, int m, int n, int k,
                    const float* a, int lda, const float* b, int ldb, float* c,
                    int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  DEEPMAP_CHECK(a != nullptr);
  DEEPMAP_CHECK(b != nullptr);
  DEEPMAP_CHECK(c != nullptr);
  const GemmTuning tuning = g_tuning;
  const long long flops =
      static_cast<long long>(m) * static_cast<long long>(n) * k;
  GemmCallsTotal().Increment();
  GemmMacsTotal().Increment(flops);
  if (flops < tuning.small_flops) {
    SmallGemm(transpose_a, transpose_b, m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  // Span only on the blocked path: small products are too frequent and too
  // short to be useful trace events.
  DEEPMAP_TRACE_SPAN("nn.gemm", "nn");

  const int nr = tuning.nr;
  const MicroKernelFn kernel = SelectMicroKernel(nr);
  const size_t num_threads =
      flops >= tuning.parallel_min_flops ? DefaultNumThreads() : 1;

  std::vector<float> bp;
  for (int jc = 0; jc < n; jc += tuning.nc) {
    const int nc_eff = std::min(tuning.nc, n - jc);
    const int num_jr = CeilDiv(nc_eff, nr);
    for (int pc = 0; pc < k; pc += tuning.kc) {
      const int kc_eff = std::min(tuning.kc, k - pc);
      PackB(transpose_b, b, ldb, pc, jc, kc_eff, nc_eff, nr, bp);
      const int num_ic = CeilDiv(m, tuning.mc);
      ParallelFor(
          static_cast<size_t>(num_ic),
          [&](size_t blk) {
            const int ic = static_cast<int>(blk) * tuning.mc;
            const int mc_eff = std::min(tuning.mc, m - ic);
            std::vector<float> ap;
            PackA(transpose_a, a, lda, ic, pc, mc_eff, kc_eff, ap);
            for (int jr = 0; jr < num_jr; ++jr) {
              const float* btile =
                  bp.data() + static_cast<size_t>(jr) * kc_eff * nr;
              const int nr_valid = std::min(nr, nc_eff - jr * nr);
              const int num_ir = CeilDiv(mc_eff, kGemmMR);
              for (int ir = 0; ir < num_ir; ++ir) {
                const float* atile =
                    ap.data() + static_cast<size_t>(ir) * kc_eff * kGemmMR;
                const int mr_valid =
                    std::min(kGemmMR, mc_eff - ir * kGemmMR);
                float* ctile = c +
                               static_cast<size_t>(ic + ir * kGemmMR) * ldc +
                               (jc + jr * nr);
                kernel(kc_eff, atile, btile, ctile, ldc, mr_valid, nr_valid);
              }
            }
          },
          num_threads);
    }
  }
}

}  // namespace deepmap::nn
