#include "nn/graph_conv.h"

#include <cmath>

#include "common/check.h"

namespace deepmap::nn {

GraphOp::GraphOp(int n) : n_(n), matrix_(static_cast<size_t>(n) * n, 0.0) {
  DEEPMAP_CHECK_GE(n, 0);
}

GraphOp GraphOp::Identity(int n) {
  GraphOp op(n);
  for (int i = 0; i < n; ++i) op.matrix_[static_cast<size_t>(i) * n + i] = 1.0;
  return op;
}

GraphOp GraphOp::GcnNorm(const graph::Graph& g) {
  const int n = g.NumVertices();
  GraphOp op(n);
  std::vector<double> inv_sqrt_deg(n);
  for (int v = 0; v < n; ++v) {
    inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.Degree(v) + 1));
  }
  for (int v = 0; v < n; ++v) {
    op.matrix_[static_cast<size_t>(v) * n + v] =
        inv_sqrt_deg[v] * inv_sqrt_deg[v];
    for (graph::Vertex u : g.Neighbors(v)) {
      op.matrix_[static_cast<size_t>(v) * n + u] =
          inv_sqrt_deg[v] * inv_sqrt_deg[u];
    }
  }
  return op;
}

GraphOp GraphOp::RowNormAdj(const graph::Graph& g) {
  const int n = g.NumVertices();
  GraphOp op(n);
  for (int v = 0; v < n; ++v) {
    const double inv = 1.0 / static_cast<double>(g.Degree(v) + 1);
    op.matrix_[static_cast<size_t>(v) * n + v] = inv;
    for (graph::Vertex u : g.Neighbors(v)) {
      op.matrix_[static_cast<size_t>(v) * n + u] = inv;
    }
  }
  return op;
}

GraphOp GraphOp::Transition(const graph::Graph& g) {
  const int n = g.NumVertices();
  GraphOp op(n);
  for (int v = 0; v < n; ++v) {
    if (g.Degree(v) == 0) continue;
    const double inv = 1.0 / static_cast<double>(g.Degree(v));
    for (graph::Vertex u : g.Neighbors(v)) {
      op.matrix_[static_cast<size_t>(v) * n + u] = inv;
    }
  }
  return op;
}

GraphOp GraphOp::SumAdj(const graph::Graph& g, double eps) {
  const int n = g.NumVertices();
  GraphOp op(n);
  for (int v = 0; v < n; ++v) {
    op.matrix_[static_cast<size_t>(v) * n + v] = 1.0 + eps;
    for (graph::Vertex u : g.Neighbors(v)) {
      op.matrix_[static_cast<size_t>(v) * n + u] = 1.0;
    }
  }
  return op;
}

Tensor GraphOp::Apply(const Tensor& x) const {
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), n_);
  const int c = x.dim(1);
  Tensor out({n_, c});
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double s = matrix_[static_cast<size_t>(i) * n_ + j];
      if (s == 0.0) continue;
      for (int t = 0; t < c; ++t) {
        out.at(i, t) += static_cast<float>(s) * x.at(j, t);
      }
    }
  }
  return out;
}

Tensor GraphOp::ApplyTranspose(const Tensor& g) const {
  DEEPMAP_CHECK_EQ(g.rank(), 2);
  DEEPMAP_CHECK_EQ(g.dim(0), n_);
  const int c = g.dim(1);
  Tensor out({n_, c});
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double s = matrix_[static_cast<size_t>(i) * n_ + j];
      if (s == 0.0) continue;
      for (int t = 0; t < c; ++t) {
        out.at(j, t) += static_cast<float>(s) * g.at(i, t);
      }
    }
  }
  return out;
}

GraphOp GraphOp::Compose(const GraphOp& other) const {
  DEEPMAP_CHECK_EQ(n_, other.n_);
  GraphOp out(n_);
  for (int i = 0; i < n_; ++i) {
    for (int k = 0; k < n_; ++k) {
      const double a = matrix_[static_cast<size_t>(i) * n_ + k];
      if (a == 0.0) continue;
      for (int j = 0; j < n_; ++j) {
        out.matrix_[static_cast<size_t>(i) * n_ + j] +=
            a * other.matrix_[static_cast<size_t>(k) * n_ + j];
      }
    }
  }
  return out;
}

GraphOp GraphOp::Power(int h) const {
  DEEPMAP_CHECK_GE(h, 0);
  GraphOp result = Identity(n_);
  for (int i = 0; i < h; ++i) result = result.Compose(*this);
  return result;
}

double GraphOp::entry(int i, int j) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, n_);
  DEEPMAP_CHECK_GE(j, 0);
  DEEPMAP_CHECK_LT(j, n_);
  return matrix_[static_cast<size_t>(i) * n_ + j];
}

}  // namespace deepmap::nn
