#include "nn/graph_conv.h"

#include <atomic>
#include <cmath>
#include <functional>
#include <utility>

#include "common/check.h"

// NOTE: compiled with -ffp-contract=off (see src/CMakeLists.txt) so the
// dense reference loops below round exactly like the sparse kernels they
// are byte-compared against in tests/sparse_test.cc.

namespace deepmap::nn {
namespace {

GraphOp::Backend g_backend = GraphOp::Backend::kSparse;
std::atomic<int64_t> g_dense_cells{0};

// Legacy dense construction: n x n row-major matrix filled by `fill`.
std::shared_ptr<const std::vector<double>> MakeDense(
    int n, const std::function<void(std::vector<double>&)>& fill) {
  auto matrix =
      std::make_shared<std::vector<double>>(static_cast<size_t>(n) * n, 0.0);
  g_dense_cells.fetch_add(static_cast<int64_t>(n) * n,
                          std::memory_order_relaxed);
  fill(*matrix);
  return matrix;
}

}  // namespace

void GraphOp::SetDefaultBackend(Backend backend) { g_backend = backend; }

GraphOp::Backend GraphOp::DefaultBackend() { return g_backend; }

int64_t GraphOp::DenseCellsAllocated() {
  return g_dense_cells.load(std::memory_order_relaxed);
}

void GraphOp::ResetDenseCellsAllocated() {
  g_dense_cells.store(0, std::memory_order_relaxed);
}

GraphOp::GraphOp(std::shared_ptr<const sparse::SparseGraph> sparse)
    : n_(sparse->n()), sparse_(std::move(sparse)) {}

GraphOp::GraphOp(int n, std::shared_ptr<const std::vector<double>> dense)
    : n_(n), dense_(std::move(dense)) {
  DEEPMAP_CHECK_GE(n, 0);
}

GraphOp GraphOp::Identity(int n) {
  DEEPMAP_CHECK_GE(n, 0);
  if (g_backend == Backend::kSparse) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse::SparseGraph::Identity(n)));
  }
  return GraphOp(n, MakeDense(n, [n](std::vector<double>& m) {
                   for (int i = 0; i < n; ++i) {
                     m[static_cast<size_t>(i) * n + i] = 1.0;
                   }
                 }));
}

GraphOp GraphOp::GcnNorm(const graph::Graph& g) {
  if (g_backend == Backend::kSparse) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse::SparseGraph::GcnNorm(g)));
  }
  const int n = g.NumVertices();
  return GraphOp(n, MakeDense(n, [&g, n](std::vector<double>& m) {
                   std::vector<double> inv_sqrt_deg(n);
                   for (int v = 0; v < n; ++v) {
                     inv_sqrt_deg[v] =
                         1.0 / std::sqrt(static_cast<double>(g.Degree(v) + 1));
                   }
                   for (int v = 0; v < n; ++v) {
                     m[static_cast<size_t>(v) * n + v] =
                         inv_sqrt_deg[v] * inv_sqrt_deg[v];
                     for (graph::Vertex u : g.Neighbors(v)) {
                       m[static_cast<size_t>(v) * n + u] =
                           inv_sqrt_deg[v] * inv_sqrt_deg[u];
                     }
                   }
                 }));
}

GraphOp GraphOp::RowNormAdj(const graph::Graph& g) {
  if (g_backend == Backend::kSparse) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse::SparseGraph::RowNormAdj(g)));
  }
  const int n = g.NumVertices();
  return GraphOp(n, MakeDense(n, [&g, n](std::vector<double>& m) {
                   for (int v = 0; v < n; ++v) {
                     const double inv =
                         1.0 / static_cast<double>(g.Degree(v) + 1);
                     m[static_cast<size_t>(v) * n + v] = inv;
                     for (graph::Vertex u : g.Neighbors(v)) {
                       m[static_cast<size_t>(v) * n + u] = inv;
                     }
                   }
                 }));
}

GraphOp GraphOp::Transition(const graph::Graph& g) {
  if (g_backend == Backend::kSparse) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse::SparseGraph::Transition(g)));
  }
  const int n = g.NumVertices();
  return GraphOp(n, MakeDense(n, [&g, n](std::vector<double>& m) {
                   for (int v = 0; v < n; ++v) {
                     if (g.Degree(v) == 0) continue;
                     const double inv = 1.0 / static_cast<double>(g.Degree(v));
                     for (graph::Vertex u : g.Neighbors(v)) {
                       m[static_cast<size_t>(v) * n + u] = inv;
                     }
                   }
                 }));
}

GraphOp GraphOp::SumAdj(const graph::Graph& g, double eps) {
  if (g_backend == Backend::kSparse) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse::SparseGraph::SumAdj(g, eps)));
  }
  const int n = g.NumVertices();
  return GraphOp(n, MakeDense(n, [&g, n, eps](std::vector<double>& m) {
                   for (int v = 0; v < n; ++v) {
                     m[static_cast<size_t>(v) * n + v] = 1.0 + eps;
                     for (graph::Vertex u : g.Neighbors(v)) {
                       m[static_cast<size_t>(v) * n + u] = 1.0;
                     }
                   }
                 }));
}

int64_t GraphOp::nnz() const {
  if (sparse_) return sparse_->nnz();
  return static_cast<int64_t>(n_) * n_;
}

const sparse::SparseGraph& GraphOp::sparse() const {
  DEEPMAP_CHECK(sparse_ != nullptr);
  return *sparse_;
}

Tensor GraphOp::Apply(const Tensor& x) const {
  if (sparse_) return sparse_->Apply(x);
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(0), n_);
  const std::vector<double>& matrix = *dense_;
  const int c = x.dim(1);
  Tensor out({n_, c});
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double s = matrix[static_cast<size_t>(i) * n_ + j];
      if (s == 0.0) continue;
      for (int t = 0; t < c; ++t) {
        out.at(i, t) += static_cast<float>(s) * x.at(j, t);
      }
    }
  }
  return out;
}

Tensor GraphOp::ApplyTranspose(const Tensor& g) const {
  if (sparse_) return sparse_->ApplyTranspose(g);
  DEEPMAP_CHECK_EQ(g.rank(), 2);
  DEEPMAP_CHECK_EQ(g.dim(0), n_);
  const std::vector<double>& matrix = *dense_;
  const int c = g.dim(1);
  Tensor out({n_, c});
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      const double s = matrix[static_cast<size_t>(i) * n_ + j];
      if (s == 0.0) continue;
      for (int t = 0; t < c; ++t) {
        out.at(j, t) += static_cast<float>(s) * g.at(i, t);
      }
    }
  }
  return out;
}

GraphOp GraphOp::Compose(const GraphOp& other) const {
  DEEPMAP_CHECK_EQ(n_, other.n_);
  DEEPMAP_CHECK_EQ(is_sparse(), other.is_sparse());
  if (sparse_) {
    return GraphOp(std::make_shared<const sparse::SparseGraph>(
        sparse_->Compose(*other.sparse_)));
  }
  const std::vector<double>& a_matrix = *dense_;
  const std::vector<double>& b_matrix = *other.dense_;
  const int n = n_;
  return GraphOp(
      n, MakeDense(n, [&a_matrix, &b_matrix, n](std::vector<double>& m) {
        for (int i = 0; i < n; ++i) {
          for (int k = 0; k < n; ++k) {
            const double a = a_matrix[static_cast<size_t>(i) * n + k];
            if (a == 0.0) continue;
            for (int j = 0; j < n; ++j) {
              m[static_cast<size_t>(i) * n + j] +=
                  a * b_matrix[static_cast<size_t>(k) * n + j];
            }
          }
        }
      }));
}

GraphOp GraphOp::Power(int h) const {
  DEEPMAP_CHECK_GE(h, 0);
  if (sparse_) {
    return GraphOp(
        std::make_shared<const sparse::SparseGraph>(sparse_->Power(h)));
  }
  // Dense identity built directly (not via Identity()) so a dense operator
  // keeps composing densely even after the default backend is switched.
  const int n = n_;
  GraphOp result(n, MakeDense(n, [n](std::vector<double>& m) {
                   for (int i = 0; i < n; ++i) {
                     m[static_cast<size_t>(i) * n + i] = 1.0;
                   }
                 }));
  for (int i = 0; i < h; ++i) result = result.Compose(*this);
  return result;
}

double GraphOp::entry(int i, int j) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, n_);
  DEEPMAP_CHECK_GE(j, 0);
  DEEPMAP_CHECK_LT(j, n_);
  if (sparse_) return sparse_->entry(i, j);
  return (*dense_)[static_cast<size_t>(i) * n_ + j];
}

}  // namespace deepmap::nn
