// One-dimensional convolution over a vertex sequence.
//
// Input [L, Cin] (sequence length x channels), output [Lout, Cout] with
// Lout = (L - kernel) / stride + 1. DEEPMAP's first layer uses kernel = r,
// stride = r so each vertex's receptive field maps to one output position;
// the following layers use kernel = stride = 1 (pointwise).
#ifndef DEEPMAP_NN_CONV1D_H_
#define DEEPMAP_NN_CONV1D_H_

#include "nn/layer.h"

namespace deepmap::nn {

/// 1-D convolution layer (no padding).
class Conv1D : public Layer {
 public:
  Conv1D(int in_channels, int out_channels, int kernel_size, int stride,
         Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  void CollectParams(std::vector<Param>* params) override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel_size() const { return kernel_size_; }
  int stride() const { return stride_; }

  /// Output length for an input of length `input_length`.
  int OutputLength(int input_length) const;

 private:
  int in_channels_;
  int out_channels_;
  int kernel_size_;
  int stride_;
  Tensor weights_;       // [out_channels, kernel * in_channels]
  Tensor bias_;          // [out_channels]
  Tensor weights_grad_;
  Tensor bias_grad_;
  // Input snapshot for Backward; only kept for training-mode Forward calls
  // (inference skips the copy, and Backward CHECKs that a cache exists).
  Tensor cached_input_;  // [L, in_channels]
  bool has_cached_input_ = false;
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_CONV1D_H_
