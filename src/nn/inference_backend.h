// Pluggable execution backends for the serving-time forward pass.
//
// The logical forward graph of a DEEPMAP network (conv stack -> readout ->
// dense head) is fixed at training time, but *how* each matrix-vector
// product executes is a deployment decision: exact fp32 for bit-identical
// parity with the training stack, or a quantized SIMD kernel that trades a
// bounded amount of accuracy for throughput. InferenceBackend is that seam:
// serve::CompiledModel packs every weight matrix once through
// Pack() and then drives the per-slot forward pass exclusively through the
// backend's AccumulateDot / ConvForward / DenseForward / Relu primitives.
//
// Contracts:
//   - Fp32RefBackend (the default, reachable via Fp32Backend()) reproduces
//     the training layers' accumulation order exactly: one ascending-index
//     accumulator chain per output element, bias-first for convolutions,
//     bias-last for dense layers. Routed through it, compiled logits stay
//     bit-identical to DeepMapModel::Forward — the perf_equiv/serve suites
//     pin this.
//   - Other backends (nn/int8_backend.h) may round differently; callers that
//     need an accuracy guarantee wrap them in a guardrail (see
//     serve::ModelRegistry) instead of assuming bit-equality.
//   - Backends are immutable after construction and thread-safe: one packed
//     weight set may be shared by any number of concurrent forward passes.
#ifndef DEEPMAP_NN_INFERENCE_BACKEND_H_
#define DEEPMAP_NN_INFERENCE_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace deepmap::nn {

/// Backend-specific prepared form of one row-major [rows, cols] weight
/// matrix. Opaque to callers; produced by InferenceBackend::Pack and only
/// meaningful to the backend that packed it.
class PackedWeights {
 public:
  PackedWeights(int rows, int cols) : rows_(rows), cols_(cols) {}
  virtual ~PackedWeights() = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Resident bytes of the packed representation (bench/inspection).
  virtual size_t MemoryBytes() const = 0;

 private:
  int rows_;
  int cols_;
};

/// Kernel-execution strategy for the inference forward pass.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  /// Stable identifier ("fp32", "int8") used for registry selection,
  /// persistence tags, and bench labels.
  virtual const char* name() const = 0;

  /// Packs a rank-2 row-major weight tensor for this backend.
  virtual std::unique_ptr<PackedWeights> Pack(const Tensor& weights) const = 0;

  /// y[o] += sum_{c in [0, cols)} W[o][col0 + c] * x[c] for every output
  /// row o. The column window (col0, cols) is how the conv1 stage visits
  /// one receptive-field position of its [c1, r*m] kernel while skipping
  /// leading exact-zero features; callers pre-fill y with the bias.
  virtual void AccumulateDot(const PackedWeights& w, int col0, int cols,
                             const float* x, float* y) const = 0;

  /// Pointwise convolution: y[o] = bias[o] + dot(W[o], x) with the bias
  /// folded in *first*, matching nn::Conv1D's accumulation order.
  virtual void ConvForward(const PackedWeights& w, const float* bias,
                           const float* x, float* y) const = 0;

  /// Dense layer: y[o] = dot(W[o], x) + bias[o] with the bias added *last*,
  /// matching nn::Dense's accumulation order.
  virtual void DenseForward(const PackedWeights& w, const float* bias,
                            const float* x, float* y) const = 0;

  /// In-place ReLU mirroring nn::Relu: strictly-negative values clamp to
  /// 0.0f; -0.0f passes through unchanged.
  virtual void Relu(float* x, int n) const;
};

/// Exact fp32 reference backend: the training layers' loops, verbatim.
class Fp32RefBackend final : public InferenceBackend {
 public:
  const char* name() const override { return "fp32"; }
  std::unique_ptr<PackedWeights> Pack(const Tensor& weights) const override;
  void AccumulateDot(const PackedWeights& w, int col0, int cols,
                     const float* x, float* y) const override;
  void ConvForward(const PackedWeights& w, const float* bias, const float* x,
                   float* y) const override;
  void DenseForward(const PackedWeights& w, const float* bias, const float* x,
                    float* y) const override;
};

/// Process-wide immutable fp32 reference backend; the default when no
/// backend is supplied and the fallback target of accuracy guardrails.
const InferenceBackend& Fp32Backend();

/// Registered backend names, in preference-documentation order.
std::vector<std::string> InferenceBackendNames();

/// Constructs a backend by name ("fp32" or "int8"); InvalidArgument (naming
/// the known backends) for anything else.
StatusOr<std::unique_ptr<InferenceBackend>> MakeInferenceBackend(
    const std::string& name);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_INFERENCE_BACKEND_H_
