// Finite-difference gradient verification used by the test suite to certify
// every layer's backward pass.
#ifndef DEEPMAP_NN_GRADIENT_CHECK_H_
#define DEEPMAP_NN_GRADIENT_CHECK_H_

#include <functional>
#include <vector>

#include "nn/layer.h"

namespace deepmap::nn {

/// Outcome of a gradient check.
struct GradientCheckResult {
  /// Largest |analytic - numeric| over all checked coordinates.
  double max_abs_error = 0.0;
  /// Largest |analytic - numeric| / max(1, |analytic|, |numeric|).
  double max_rel_error = 0.0;
  int coordinates_checked = 0;
};

/// Verifies analytic parameter gradients against central finite differences.
///
/// `loss` evaluates the scalar loss at the current parameter values.
/// `forward_backward` must (re)compute the analytic gradients into each
/// Param's grad tensor (zeroing first). Each parameter coordinate is
/// perturbed by +-epsilon.
GradientCheckResult CheckParameterGradients(
    const std::vector<Param>& params, const std::function<double()>& loss,
    const std::function<void()>& forward_backward, double epsilon = 1e-2);

/// Verifies an input gradient: `analytic_grad` vs central differences of
/// `loss` as the entries of `input` are perturbed.
GradientCheckResult CheckInputGradient(Tensor& input,
                                       const Tensor& analytic_grad,
                                       const std::function<double()>& loss,
                                       double epsilon = 1e-2);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_GRADIENT_CHECK_H_
