#include "nn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/failpoint.h"

namespace deepmap::nn {
namespace {

constexpr char kMagic[4] = {'D', 'M', 'N', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const std::vector<Param>& params,
                      const std::string& path) {
  // Crash-safe write: stream into a sibling temp file, then atomically
  // rename over `path`. A crash or failure mid-write leaves the previous
  // model file intact (the temp file may linger, like after a real crash,
  // and is simply overwritten by the next save).
  const std::string temp = path + ".tmp";
  std::ofstream out(temp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + temp + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(params.size()));
  // Simulated crash after the header: the temp file is abandoned truncated
  // and the destination must remain untouched and loadable.
  if (DEEPMAP_FAILPOINT_TRIGGERED("nn.save.short_write")) {
    out.close();
    return Status::IoError("injected short write to " + temp);
  }
  for (const Param& p : params) {
    const Tensor& t = *p.value;
    WritePod(out, static_cast<uint32_t>(t.rank()));
    for (int d = 0; d < t.rank(); ++d) {
      WritePod(out, static_cast<uint32_t>(t.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(sizeof(float)) * t.NumElements());
  }
  out.flush();
  if (!out) return Status::IoError("short write to " + temp);
  out.close();
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::IoError("cannot rename " + temp + " to " + path);
  }
  return Status::Ok();
}

Status LoadParameters(const std::vector<Param>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a DEEPMAP model file");
  }
  uint32_t version = 0, count = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported model file version");
  }
  if (!ReadPod(in, &count) || count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch (file has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()) + ")");
  }
  // Stage into temporaries first so a shape mismatch leaves the model
  // untouched.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const Param& p = params[i];
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) {
      return Status::IoError("truncated file: missing rank of parameter " +
                             std::to_string(i));
    }
    if (rank != static_cast<uint32_t>(p.value->rank())) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " rank mismatch (file has " +
          std::to_string(rank) + ", model expects " +
          std::to_string(p.value->rank()) + ", " + p.value->ShapeString() +
          ")");
    }
    std::vector<int> shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t dim = 0;
      if (!ReadPod(in, &dim)) {
        return Status::IoError("truncated file: missing shape of parameter " +
                               std::to_string(i));
      }
      if (dim != static_cast<uint32_t>(p.value->dim(static_cast<int>(d)))) {
        return Status::InvalidArgument(
            "parameter " + std::to_string(i) + " shape mismatch at dim " +
            std::to_string(d) + " (file has " + std::to_string(dim) +
            ", model expects " +
            std::to_string(p.value->dim(static_cast<int>(d))) + ", " +
            p.value->ShapeString() + ")");
      }
      shape[d] = static_cast<int>(dim);
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float)) * t.NumElements());
    if (!in) {
      return Status::IoError("truncated file: short read of parameter " +
                             std::to_string(i) + " data from " + path);
    }
    staged.push_back(std::move(t));
  }
  // A well-formed file ends exactly after the last tensor; trailing bytes
  // mean the file does not describe this architecture (or is corrupt).
  char extra = 0;
  in.read(&extra, 1);
  if (in.gcount() != 0) {
    return Status::InvalidArgument(path +
                                   " has trailing bytes after the last "
                                   "parameter; file/model mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    *params[i].value = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace deepmap::nn
