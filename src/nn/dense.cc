#include "nn/dense.h"

namespace deepmap::nn {

Dense::Dense(int in_features, int out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}),
      weights_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  GlorotInit(weights_, in_features, out_features, rng);
}

Tensor Dense::Forward(const Tensor& input, bool training) {
  input_was_rank1_ = input.rank() == 1;
  Tensor reshaped;
  if (input_was_rank1_) reshaped = input.Reshaped({1, in_features_});
  const Tensor& x = input_was_rank1_ ? reshaped : input;
  DEEPMAP_CHECK_EQ(x.rank(), 2);
  DEEPMAP_CHECK_EQ(x.dim(1), in_features_);
  // [L, in] x [out, in]^T -> [L, out]
  Tensor out = MatMulTransposedB(x, weights_);
  for (int l = 0; l < out.dim(0); ++l) {
    for (int o = 0; o < out_features_; ++o) out.at(l, o) += bias_.at(o);
  }
  if (!training) {
    // Inference never runs Backward; skip the cache copy (mirrors Conv1D).
    cached_input_ = Tensor();
    has_cached_input_ = false;
  } else if (input_was_rank1_) {
    cached_input_ = std::move(reshaped);
    has_cached_input_ = true;
  } else {
    cached_input_ = x;
    has_cached_input_ = true;
  }
  if (input_was_rank1_) return out.Reshaped({out_features_});
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK(has_cached_input_);
  Tensor grad = grad_output.rank() == 1
                    ? grad_output.Reshaped({1, out_features_})
                    : grad_output;
  DEEPMAP_CHECK_EQ(grad.dim(1), out_features_);
  DEEPMAP_CHECK_EQ(grad.dim(0), cached_input_.dim(0));
  // dW = grad^T x  ([out, L] x [L, in]).
  weights_grad_.Add(MatMulTransposedA(grad, cached_input_));
  for (int l = 0; l < grad.dim(0); ++l) {
    for (int o = 0; o < out_features_; ++o) {
      bias_grad_.at(o) += grad.at(l, o);
    }
  }
  // dX = grad W  ([L, out] x [out, in]).
  Tensor grad_input = MatMul(grad, weights_);
  if (input_was_rank1_) return grad_input.Reshaped({in_features_});
  return grad_input;
}

void Dense::CollectParams(std::vector<Param>* params) {
  params->push_back({&weights_, &weights_grad_});
  params->push_back({&bias_, &bias_grad_});
}

}  // namespace deepmap::nn
