// Linear graph propagation operators used by the GNN baselines.
//
// Each operator is a fixed (per-graph) dense n x n matrix S; applying it to
// vertex features X [n, c] gives S X, and the backward pass applies S^T.
// Provided constructions:
//   - GcnNorm:      D^-1/2 (A + I) D^-1/2            (GCN / GIN-style)
//   - RowNormAdj:   D_hat^-1 (A + I)                  (DGCNN propagation)
//   - Transition:   D^-1 A                            (random-walk, DCNN)
//   - SumAdj:       A + eps-weighted I                (GIN aggregation)
// plus Power() for the diffusion hops P^h that DCNN stacks.
#ifndef DEEPMAP_NN_GRAPH_CONV_H_
#define DEEPMAP_NN_GRAPH_CONV_H_

#include <vector>

#include "graph/graph.h"
#include "nn/tensor.h"

namespace deepmap::nn {

/// Dense linear operator over a graph's vertex set.
class GraphOp {
 public:
  /// Identity operator on n vertices.
  static GraphOp Identity(int n);

  /// Symmetric GCN normalization D^-1/2 (A + I) D^-1/2.
  static GraphOp GcnNorm(const graph::Graph& g);

  /// Row-normalized D_hat^-1 (A + I) (DGCNN's propagation rule).
  static GraphOp RowNormAdj(const graph::Graph& g);

  /// Random-walk transition matrix D^-1 A (rows of isolated vertices are 0).
  static GraphOp Transition(const graph::Graph& g);

  /// (1 + eps) I + A — GIN's injective sum aggregation.
  static GraphOp SumAdj(const graph::Graph& g, double eps = 0.0);

  int n() const { return n_; }

  /// S x for x of shape [n, c]; returns [n, c].
  Tensor Apply(const Tensor& x) const;

  /// S^T g (the backward map).
  Tensor ApplyTranspose(const Tensor& g) const;

  /// Operator composition: this * other.
  GraphOp Compose(const GraphOp& other) const;

  /// S^h (h >= 0; h == 0 gives the identity).
  GraphOp Power(int h) const;

  /// Matrix entry (i, j).
  double entry(int i, int j) const;

 private:
  explicit GraphOp(int n);

  int n_ = 0;
  std::vector<double> matrix_;  // row-major n x n
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_GRAPH_CONV_H_
