// Linear graph propagation operators used by the GNN baselines.
//
// Each operator is a fixed (per-graph) linear map S over the vertex set;
// applying it to vertex features X [n, c] gives S X, and the backward pass
// applies S^T. Provided constructions:
//   - GcnNorm:      D^-1/2 (A + I) D^-1/2            (GCN / GIN-style)
//   - RowNormAdj:   D_hat^-1 (A + I)                  (DGCNN propagation)
//   - Transition:   D^-1 A                            (random-walk, DCNN)
//   - SumAdj:       A + eps-weighted I                (GIN aggregation)
// plus Power() for the diffusion hops P^h that DCNN stacks.
//
// GraphOp is a facade over the sparse substrate (src/sparse/): by default
// the operator is a CSR sparse::SparseGraph and Apply/ApplyTranspose run
// the parallel SpMM kernels — O(nnz) memory and flops instead of the dense
// O(n^2) matrix. The legacy dense row-major matrix survives behind an
// explicit opt-out (SetDefaultBackend(Backend::kDense)) as the reference
// implementation for the 0-ULP sparse-vs-dense equivalence suite
// (tests/sparse_test.cc); both paths produce bit-identical tensors.
#ifndef DEEPMAP_NN_GRAPH_CONV_H_
#define DEEPMAP_NN_GRAPH_CONV_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/tensor.h"
#include "sparse/sparse_graph.h"

namespace deepmap::nn {

/// Linear operator over a graph's vertex set (sparse by default; see file
/// comment). Cheap to copy — backends are immutable and shared.
class GraphOp {
 public:
  enum class Backend {
    kSparse,  // CSR + SpMM kernels (the default)
    kDense,   // legacy n x n row-major matrix (testing opt-out)
  };

  /// Backend used by all subsequently constructed operators. Testing-only
  /// escape hatch; not thread-safe against concurrent construction.
  static void SetDefaultBackend(Backend backend);
  static Backend DefaultBackend();

  /// Dense matrix cells (doubles) allocated by GraphOp constructions since
  /// the last Reset. Lets tests pin that a code path stays on the sparse
  /// backend and never materializes an O(n^2) intermediate.
  static int64_t DenseCellsAllocated();
  static void ResetDenseCellsAllocated();

  /// Identity operator on n vertices.
  static GraphOp Identity(int n);

  /// Symmetric GCN normalization D^-1/2 (A + I) D^-1/2.
  static GraphOp GcnNorm(const graph::Graph& g);

  /// Row-normalized D_hat^-1 (A + I) (DGCNN's propagation rule).
  static GraphOp RowNormAdj(const graph::Graph& g);

  /// Random-walk transition matrix D^-1 A (rows of isolated vertices are 0).
  static GraphOp Transition(const graph::Graph& g);

  /// (1 + eps) I + A — GIN's injective sum aggregation.
  static GraphOp SumAdj(const graph::Graph& g, double eps = 0.0);

  int n() const { return n_; }

  /// Stored nonzeros (n^2 for a dense-backend operator).
  int64_t nnz() const;

  /// True when this operator is backed by the sparse substrate.
  bool is_sparse() const { return sparse_ != nullptr; }

  /// The sparse backing; CHECK-fails on a dense-backend operator.
  const sparse::SparseGraph& sparse() const;

  /// S x for x of shape [n, c]; returns [n, c].
  Tensor Apply(const Tensor& x) const;

  /// S^T g (the backward map).
  Tensor ApplyTranspose(const Tensor& g) const;

  /// Operator composition: this * other (both operands must share a
  /// backend). Sparse operators compose via SpGEMM and never materialize a
  /// dense intermediate.
  GraphOp Compose(const GraphOp& other) const;

  /// S^h (h >= 0; h == 0 gives the identity).
  GraphOp Power(int h) const;

  /// Matrix entry (i, j).
  double entry(int i, int j) const;

 private:
  explicit GraphOp(std::shared_ptr<const sparse::SparseGraph> sparse);
  GraphOp(int n, std::shared_ptr<const std::vector<double>> dense);

  int n_ = 0;
  std::shared_ptr<const sparse::SparseGraph> sparse_;
  std::shared_ptr<const std::vector<double>> dense_;  // row-major n x n
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_GRAPH_CONV_H_
