#include "nn/optimizer.h"

#include <cmath>

namespace deepmap::nn {
namespace {

// Lazily sizes per-parameter state tensors to match `params`.
void EnsureState(std::vector<Tensor>& state, const std::vector<Param>& params) {
  if (state.size() == params.size()) return;
  DEEPMAP_CHECK(state.empty());  // parameter set must not change mid-training
  state.reserve(params.size());
  for (const Param& p : params) state.emplace_back(p.value->shape());
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum)
    : Optimizer(learning_rate), momentum_(momentum) {}

void Sgd::Step(const std::vector<Param>& params) {
  EnsureState(velocity_, params);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = *params[i].value;
    const Tensor& grad = *params[i].grad;
    Tensor& vel = velocity_[i];
    for (int t = 0; t < value.NumElements(); ++t) {
      float v = static_cast<float>(momentum_) * vel.data()[t] -
                static_cast<float>(learning_rate_) * grad.data()[t];
      vel.data()[t] = v;
      value.data()[t] += v;
    }
  }
}

RmsProp::RmsProp(double learning_rate, double decay, double epsilon)
    : Optimizer(learning_rate), decay_(decay), epsilon_(epsilon) {}

void RmsProp::Step(const std::vector<Param>& params) {
  EnsureState(cache_, params);
  const float rho = static_cast<float>(decay_);
  const float lr = static_cast<float>(learning_rate_);
  const float eps = static_cast<float>(epsilon_);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = *params[i].value;
    const Tensor& grad = *params[i].grad;
    Tensor& cache = cache_[i];
    for (int t = 0; t < value.NumElements(); ++t) {
      float g = grad.data()[t];
      cache.data()[t] = rho * cache.data()[t] + (1.0f - rho) * g * g;
      value.data()[t] -= lr * g / (std::sqrt(cache.data()[t]) + eps);
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::Step(const std::vector<Param>& params) {
  EnsureState(m_, params);
  EnsureState(v_, params);
  ++t_;
  const double correction1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double correction2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = *params[i].value;
    const Tensor& grad = *params[i].grad;
    for (int t = 0; t < value.NumElements(); ++t) {
      float g = grad.data()[t];
      m_[i].data()[t] = b1 * m_[i].data()[t] + (1.0f - b1) * g;
      v_[i].data()[t] = b2 * v_[i].data()[t] + (1.0f - b2) * g * g;
      double m_hat = m_[i].data()[t] / correction1;
      double v_hat = v_[i].data()[t] / correction2;
      value.data()[t] -= static_cast<float>(
          learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_));
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<Sgd>(learning_rate);
    case OptimizerKind::kRmsProp:
      return std::make_unique<RmsProp>(learning_rate);
    case OptimizerKind::kAdam:
      return std::make_unique<Adam>(learning_rate);
  }
  return nullptr;
}

}  // namespace deepmap::nn
