#include "nn/model.h"

namespace deepmap::nn {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Param> Sequential::Params() {
  std::vector<Param> params;
  for (auto& layer : layers_) layer->CollectParams(&params);
  return params;
}

int64_t Sequential::NumParameters() {
  int64_t total = 0;
  for (const Param& p : Params()) total += p.value->NumElements();
  return total;
}

}  // namespace deepmap::nn
