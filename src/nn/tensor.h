// Dense float tensor (row-major), rank 1-3. The numeric container for the
// from-scratch neural-network substrate (the paper trained with Keras; this
// environment has no GPU/BLAS, so everything is explicit loops over Tensor).
#ifndef DEEPMAP_NN_TENSOR_H_
#define DEEPMAP_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace deepmap::nn {

/// Row-major dense float tensor with small-rank shape.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape (all dims > 0).
  explicit Tensor(std::vector<int> shape);

  // Copies are counted (see CopyCount) so hot paths can assert they move;
  // declaring the copy pair suppresses the implicit moves, so restate them.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  /// Tensor copy constructions/assignments process-wide since the last
  /// ResetCopyCount(). Lets tests assert a code path performs no hidden
  /// deep copies (e.g. the serving batcher).
  static long CopyCount();
  static void ResetCopyCount();

  /// Builds a tensor from flat data (size must match the shape's volume).
  static Tensor FromVector(std::vector<int> shape, std::vector<float> data);

  /// 1-D convenience constructor.
  static Tensor FromFlat(std::vector<float> data);

  int rank() const { return static_cast<int>(shape_.size()); }
  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int NumElements() const { return static_cast<int>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& flat() const { return data_; }

  /// Element accessors with bounds checks in debug-style CHECKs.
  float& at(int i);
  float at(int i) const;
  float& at(int i, int j);
  float at(int i, int j) const;
  float& at(int i, int j, int k);
  float at(int i, int j, int k) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  /// Reinterprets the flat data under a new shape of equal volume.
  Tensor Reshaped(std::vector<int> new_shape) const;

  /// this += other (shapes must match).
  void Add(const Tensor& other);

  /// this += scale * other.
  void AddScaled(const Tensor& other, float scale);

  /// Multiplies every element by `scale`.
  void Scale(float scale);

  /// Index of the largest element (flat); ties resolve to the first.
  int ArgMax() const;

  /// Largest absolute element value (0 for empty tensors).
  float MaxAbs() const;

  /// "Tensor[2x3]" style description.
  std::string ShapeString() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Row-major matrix product: out[i][j] = sum_k a[i][k] b[k][j].
/// a is [m, k], b is [k, n], result [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// a^T b where a is [k, m], b is [k, n]; result [m, n].
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// a b^T where a is [m, k], b is [n, k]; result [m, n].
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_TENSOR_H_
