// Layer interface for the sample-at-a-time neural-network substrate.
//
// Layers process ONE sample per Forward/Backward pair (mini-batching is done
// by the trainer via gradient accumulation); each layer caches whatever it
// needs between the calls. Parameters expose (value, grad) pairs that
// optimizers update in place.
#ifndef DEEPMAP_NN_LAYER_H_
#define DEEPMAP_NN_LAYER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace deepmap::nn {

/// A trainable parameter: the value tensor and its gradient accumulator.
struct Param {
  Tensor* value;
  Tensor* grad;
};

/// Base class of all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for one sample. `training` toggles
  /// train-only behavior (dropout) and input caching: only training-mode
  /// calls keep the state Backward needs, so Backward must follow a
  /// Forward(input, true). Inference calls skip the cache copy entirely
  /// (and invalidate any stale one, so a misplaced Backward fails loudly).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients (+=) and returns
  /// dLoss/dInput.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Appends this layer's parameters to `params`. Default: none.
  virtual void CollectParams(std::vector<Param>* params) {}
};

/// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void GlorotInit(Tensor& weights, int fan_in, int fan_out, Rng& rng);

/// He/Kaiming normal initialization: N(0, sqrt(2/fan_in)).
void HeInit(Tensor& weights, int fan_in, Rng& rng);

/// Zeroes the gradients of every parameter.
void ZeroGrads(const std::vector<Param>& params);

/// Scales the gradients of every parameter (e.g. 1/batch averaging).
void ScaleGrads(const std::vector<Param>& params, float scale);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_LAYER_H_
