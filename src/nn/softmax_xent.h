// Softmax + cross-entropy loss (combined for numerical stability).
#ifndef DEEPMAP_NN_SOFTMAX_XENT_H_
#define DEEPMAP_NN_SOFTMAX_XENT_H_

#include <vector>

#include "nn/tensor.h"

namespace deepmap::nn {

/// Numerically stable softmax of a rank-1 logits tensor.
Tensor Softmax(const Tensor& logits);

/// Loss value and gradient for one sample.
struct LossAndGrad {
  double loss;
  Tensor grad_logits;  // dLoss/dLogits, same shape as logits
};

/// -log softmax(logits)[label], with the standard (softmax - onehot) grad.
LossAndGrad SoftmaxCrossEntropy(const Tensor& logits, int label);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_SOFTMAX_XENT_H_
