// Inverted dropout: active only during training; outputs are scaled by
// 1/(1-p) so inference needs no rescaling (the paper uses rate 0.5 after the
// dense layer).
#ifndef DEEPMAP_NN_DROPOUT_H_
#define DEEPMAP_NN_DROPOUT_H_

#include "nn/layer.h"

namespace deepmap::nn {

/// Dropout layer with drop probability `rate`. The layer owns an
/// independent random stream forked from the constructor's generator, so
/// models holding Dropout layers stay safely movable.
class Dropout : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  double rate_;
  Rng rng_;            // owned, forked from the constructor argument
  Tensor mask_;        // scaled keep-mask of the last training forward
  bool was_training_ = false;
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_DROPOUT_H_
