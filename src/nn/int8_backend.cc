#include "nn/int8_backend.h"

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace deepmap::nn {
namespace {

/// Row-major quantized weights plus one symmetric fp32 scale per output row.
/// Values are int8-range ([-127, 127]) but stored widened to int16 so the
/// AVX2 kernel feeds madd_epi16 straight from 32-byte loads with no
/// sign-extension step in the hot loop — trading 2 bytes/weight (still 2x
/// smaller than fp32) for a meaningfully shorter inner loop.
class Int8Packed final : public PackedWeights {
 public:
  Int8Packed(const Tensor& w) : PackedWeights(w.dim(0), w.dim(1)) {
    const int rows = this->rows();
    const int cols = this->cols();
    // 16 lanes of zeroed slack let the AVX2 kernel read one full vector past
    // the last row's window: those lanes meet zero-padded activations, so
    // they contribute exactly 0 to the int32 sums.
    q_.resize(static_cast<size_t>(rows) * cols + 16);
    scales_.resize(static_cast<size_t>(rows));
    const float* src = w.data();
    for (int o = 0; o < rows; ++o) {
      const float* wo = src + static_cast<size_t>(o) * cols;
      float maxabs = 0.0f;
      for (int c = 0; c < cols; ++c) {
        const float a = std::fabs(wo[c]);
        if (a > maxabs) maxabs = a;
      }
      int16_t* qo = q_.data() + static_cast<size_t>(o) * cols;
      if (maxabs == 0.0f) {
        // Zero row: scale 0 and zeroed quants, so the fused epilogue's
        // (0 * sx) * 0 contributes exactly +0.0f.
        scales_[static_cast<size_t>(o)] = 0.0f;
        std::memset(qo, 0, static_cast<size_t>(cols) * sizeof(int16_t));
        continue;
      }
      scales_[static_cast<size_t>(o)] = maxabs / 127.0f;
      const float inv = 127.0f / maxabs;
      for (int c = 0; c < cols; ++c) {
        long v = std::lrintf(wo[c] * inv);
        if (v > 127) v = 127;
        if (v < -127) v = -127;
        qo[c] = static_cast<int16_t>(v);
      }
    }
  }

  const int16_t* data() const { return q_.data(); }
  const float* scales() const { return scales_.data(); }
  size_t MemoryBytes() const override {
    return q_.size() * sizeof(int16_t) + scales_.size() * sizeof(float);
  }

 private:
  std::vector<int16_t> q_;
  std::vector<float> scales_;
};

/// Rounds a column count up to the vector width the AVX2 kernel consumes.
constexpr int RoundUp16(int n) { return (n + 15) & ~15; }

/// Quantizes x[0, n) symmetrically to int8-range values (widened to int16,
/// matching the weight layout); returns the scale (0 when the vector is all
/// zeros, in which case `out` is zero-filled). Lanes [n, RoundUp16(n)) are
/// zeroed so the mat-vec kernel can run whole 16-lane steps with no scalar
/// column tail. lrintf under the default rounding mode rounds to nearest,
/// ties to even — the same rule the AVX2 cvtps2dq path uses, which is what
/// keeps the two quantizers bit-identical on finite inputs.
float QuantizeActivationsScalar(const float* x, int n, int16_t* out) {
  float maxabs = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > maxabs) maxabs = a;
  }
  for (int i = n; i < RoundUp16(n); ++i) out[i] = 0;
  if (maxabs == 0.0f) {
    std::memset(out, 0, static_cast<size_t>(n) * sizeof(int16_t));
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  const float inv = 127.0f / maxabs;
  for (int i = 0; i < n; ++i) {
    long v = std::lrintf(x[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    out[i] = static_cast<int16_t>(v);
  }
  return scale;
}

/// Per-thread scratch so forward passes stay allocation-free after warm-up.
/// Sized to RoundUp16(n) for the quantizers' zero padding.
int16_t* ActivationScratch(int n) {
  static thread_local std::vector<int16_t> buf;
  const int want = RoundUp16(n);
  if (static_cast<int>(buf.size()) < want) {
    buf.resize(static_cast<size_t>(want));
  }
  return buf.data();
}

/// Fused mat-vec reference kernel. The int32 dot is exact in any evaluation
/// order and the epilogue is element-wise fp32, so the scalar and AVX2
/// kernels produce bit-identical outputs; only wall time differs.
void MatVecScalar(const int16_t* w, size_t stride, int rows, const int16_t* x,
                  int cols, const float* scales, float sx, const float* bias,
                  float* y) {
  for (int o = 0; o < rows; ++o) {
    const int16_t* wo = w + static_cast<size_t>(o) * stride;
    int32_t sum = 0;
    for (int c = 0; c < cols; ++c) {
      sum += static_cast<int32_t>(wo[c]) * static_cast<int32_t>(x[c]);
    }
    const float contrib = (scales[o] * sx) * static_cast<float>(sum);
    y[o] = (bias ? bias[o] : y[o]) + contrib;
  }
}

#if defined(__x86_64__) || defined(_M_X64)
// |q| <= 127, so each madd pair-sum is <= 2*127*127 < 2^15 (no s16
// saturation) and the int32 lanes stay exact to ~65k-element rows —
// orders of magnitude beyond any DEEPMAP layer width.
//
// Rows are processed four at a time so each 16-wide activation load is
// reused across four weight rows, the four accumulators collapse in one
// hadd tree, and the fp32 epilogue runs 4-wide on the sums while they are
// still in-register. On the narrow DEEPMAP layers (8-128 columns) this
// amortization is what puts the kernel ahead of the fp32 reference; a
// dot-at-a-time variant loses its advantage to per-row reduction overhead.
//
// There is no scalar column tail: activations are zero-padded to a 16-lane
// multiple and the packed weights carry 16 lanes of slack, so the last step
// may read up to 15 weight lanes past the logical window — every such lane
// is multiplied by a zero activation and adds exactly 0 to the int32 sums.
// Every float op is element-wise (cvtdq2ps is exact for |sum| < 2^24), so
// the result matches MatVecScalar bit-for-bit.
__attribute__((target("avx2"))) void MatVecAvx2(const int16_t* w,
                                                size_t stride, int rows,
                                                const int16_t* x, int cols,
                                                const float* scales, float sx,
                                                const float* bias, float* y) {
  const __m128 vsx = _mm_set1_ps(sx);
  int o = 0;
  for (; o + 4 <= rows; o += 4) {
    const int16_t* w0 = w + static_cast<size_t>(o) * stride;
    const int16_t* w1 = w0 + stride;
    const int16_t* w2 = w1 + stride;
    const int16_t* w3 = w2 + stride;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (int c = 0; c < cols; c += 16) {
      const __m256i xv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + c));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(_mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(w0 + c)),
                                  xv));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(_mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(w1 + c)),
                                  xv));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(_mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(w2 + c)),
                                  xv));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(_mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(w3 + c)),
                                  xv));
    }
    // hadd tree: two levels of pairwise horizontal adds leave lane k of
    // (lo128 + hi128) holding the full sum of acc_k.
    const __m256i t01 = _mm256_hadd_epi32(acc0, acc1);
    const __m256i t23 = _mm256_hadd_epi32(acc2, acc3);
    const __m256i t = _mm256_hadd_epi32(t01, t23);
    const __m128i sums4 = _mm_add_epi32(_mm256_castsi256_si128(t),
                                        _mm256_extracti128_si256(t, 1));
    const __m128 contrib =
        _mm_mul_ps(_mm_mul_ps(_mm_loadu_ps(scales + o), vsx),
                   _mm_cvtepi32_ps(sums4));
    const __m128 base = bias ? _mm_loadu_ps(bias + o) : _mm_loadu_ps(y + o);
    _mm_storeu_ps(y + o, _mm_add_ps(base, contrib));
  }
  for (; o < rows; ++o) {
    const int16_t* wo = w + static_cast<size_t>(o) * stride;
    __m256i acc = _mm256_setzero_si256();
    for (int c = 0; c < cols; c += 16) {
      const __m256i xv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + c));
      const __m256i wv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wo + c));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wv, xv));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    const int32_t sum = _mm_cvtsi128_si32(s);
    const float contrib = (scales[o] * sx) * static_cast<float>(sum);
    y[o] = (bias ? bias[o] : y[o]) + contrib;
  }
}

// Vectorized activation quantization. cvtps2dq rounds to nearest, ties to
// even under the default MXCSR mode — exactly lrintf's rule — and
// |x * inv| <= 127 * (1 + eps) stays far below 127.5, so the saturating
// pack can never produce a value the scalar clamp would not: the two
// quantizers emit identical values for finite inputs.
__attribute__((target("avx2"))) float QuantizeActivationsAvx2(const float* x,
                                                              int n,
                                                              int16_t* out) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(abs_mask, _mm256_loadu_ps(x + i)));
  }
  alignas(32) float m8[8];
  _mm256_store_ps(m8, vmax);
  float maxabs = 0.0f;
  for (float v : m8) {
    if (v > maxabs) maxabs = v;
  }
  for (; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > maxabs) maxabs = a;
  }
  for (i = n; i < RoundUp16(n); ++i) out[i] = 0;
  if (maxabs == 0.0f) {
    std::memset(out, 0, static_cast<size_t>(n) * sizeof(int16_t));
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  const float inv = 127.0f / maxabs;
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv));
    const __m128i w16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), w16);
  }
  for (; i < n; ++i) {
    long v = std::lrintf(x[i] * inv);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    out[i] = static_cast<int16_t>(v);
  }
  return scale;
}
#endif  // x86-64

}  // namespace

bool Int8Backend::CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Int8Backend::Int8Backend(bool force_scalar) {
  using_avx2_ = !force_scalar && CpuHasAvx2();
#if defined(__x86_64__) || defined(_M_X64)
  mat_vec_ = using_avx2_ ? &MatVecAvx2 : &MatVecScalar;
  quantize_ = using_avx2_ ? &QuantizeActivationsAvx2 : &QuantizeActivationsScalar;
#else
  mat_vec_ = &MatVecScalar;
  quantize_ = &QuantizeActivationsScalar;
#endif
}

std::unique_ptr<PackedWeights> Int8Backend::Pack(const Tensor& w) const {
  DEEPMAP_CHECK_EQ(w.rank(), 2);
  return std::make_unique<Int8Packed>(w);
}

void Int8Backend::AccumulateDot(const PackedWeights& w, int col0, int cols,
                                const float* x, float* y) const {
  const auto& p = static_cast<const Int8Packed&>(w);
  int16_t* qx = ActivationScratch(cols);
  const float sx = quantize_(x, cols, qx);
  if (sx == 0.0f) return;  // zero window contributes nothing
  mat_vec_(p.data() + col0, static_cast<size_t>(p.cols()), p.rows(), qx, cols,
           p.scales(), sx, /*bias=*/nullptr, y);
}

void Int8Backend::ConvForward(const PackedWeights& w, const float* bias,
                              const float* x, float* y) const {
  const auto& p = static_cast<const Int8Packed&>(w);
  const int cols = p.cols();
  const int rows = p.rows();
  int16_t* qx = ActivationScratch(cols);
  const float sx = quantize_(x, cols, qx);
  if (sx == 0.0f) {
    for (int o = 0; o < rows; ++o) y[o] = bias[o];
    return;
  }
  mat_vec_(p.data(), static_cast<size_t>(cols), rows, qx, cols, p.scales(), sx,
           bias, y);
}

void Int8Backend::DenseForward(const PackedWeights& w, const float* bias,
                               const float* x, float* y) const {
  const auto& p = static_cast<const Int8Packed&>(w);
  const int cols = p.cols();
  const int rows = p.rows();
  int16_t* qx = ActivationScratch(cols);
  const float sx = quantize_(x, cols, qx);
  if (sx == 0.0f) {
    for (int o = 0; o < rows; ++o) y[o] = bias[o];
    return;
  }
  mat_vec_(p.data(), static_cast<size_t>(cols), rows, qx, cols, p.scales(), sx,
           bias, y);
}

}  // namespace deepmap::nn
