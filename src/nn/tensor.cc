#include "nn/tensor.h"

#include <atomic>
#include <cmath>
#include <sstream>

#include "nn/gemm.h"

namespace deepmap::nn {
namespace {

std::atomic<long> g_copy_count{0};

int Volume(const std::vector<int>& shape) {
  int v = 1;
  for (int d : shape) {
    DEEPMAP_CHECK_GT(d, 0);
    v *= d;
  }
  return v;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(Volume(shape_)), 0.0f);
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  if (!data_.empty()) g_copy_count.fetch_add(1, std::memory_order_relaxed);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    shape_ = other.shape_;
    data_ = other.data_;
    if (!data_.empty()) g_copy_count.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

long Tensor::CopyCount() {
  return g_copy_count.load(std::memory_order_relaxed);
}

void Tensor::ResetCopyCount() {
  g_copy_count.store(0, std::memory_order_relaxed);
}

Tensor Tensor::FromVector(std::vector<int> shape, std::vector<float> data) {
  Tensor t;
  DEEPMAP_CHECK_EQ(static_cast<size_t>(Volume(shape)), data.size());
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::FromFlat(std::vector<float> data) {
  int n = static_cast<int>(data.size());
  return FromVector({n}, std::move(data));
}

int Tensor::dim(int i) const {
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, rank());
  return shape_[i];
}

float& Tensor::at(int i) {
  DEEPMAP_CHECK_EQ(rank(), 1);
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, shape_[0]);
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int i) const { return const_cast<Tensor*>(this)->at(i); }

float& Tensor::at(int i, int j) {
  DEEPMAP_CHECK_EQ(rank(), 2);
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, shape_[0]);
  DEEPMAP_CHECK_GE(j, 0);
  DEEPMAP_CHECK_LT(j, shape_[1]);
  return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float Tensor::at(int i, int j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int i, int j, int k) {
  DEEPMAP_CHECK_EQ(rank(), 3);
  DEEPMAP_CHECK_GE(i, 0);
  DEEPMAP_CHECK_LT(i, shape_[0]);
  DEEPMAP_CHECK_GE(j, 0);
  DEEPMAP_CHECK_LT(j, shape_[1]);
  DEEPMAP_CHECK_GE(k, 0);
  DEEPMAP_CHECK_LT(k, shape_[2]);
  return data_[(static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(int i, int j, int k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

void Tensor::Fill(float value) {
  for (float& x : data_) x = value;
}

Tensor Tensor::Reshaped(std::vector<int> new_shape) const {
  DEEPMAP_CHECK_EQ(Volume(new_shape), NumElements());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Add(const Tensor& other) {
  DEEPMAP_CHECK_EQ(NumElements(), other.NumElements());
  for (int i = 0; i < NumElements(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  DEEPMAP_CHECK_EQ(NumElements(), other.NumElements());
  for (int i = 0; i < NumElements(); ++i) data_[i] += scale * other.data_[i];
}

void Tensor::Scale(float scale) {
  for (float& x : data_) x *= scale;
}

int Tensor::ArgMax() const {
  DEEPMAP_CHECK_GT(NumElements(), 0);
  int best = 0;
  for (int i = 1; i < NumElements(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

// The three products lower onto the shared blocked GEMM (nn/gemm.h). The
// historical `av == 0.0f` fast-path skip is gone on purpose: it silently
// swallowed NaN/Inf (and -0.0f) contributions from the other operand, so a
// poisoned activation could exit a layer looking healthy. The GEMM visits
// every term; tensor_test pins NaN propagation.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DEEPMAP_CHECK_EQ(a.rank(), 2);
  DEEPMAP_CHECK_EQ(b.rank(), 2);
  DEEPMAP_CHECK_EQ(a.dim(1), b.dim(0));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  GemmAccumulate(false, false, m, n, k, a.data(), k, b.data(), n, out.data(),
                 n);
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  DEEPMAP_CHECK_EQ(a.rank(), 2);
  DEEPMAP_CHECK_EQ(b.rank(), 2);
  DEEPMAP_CHECK_EQ(a.dim(0), b.dim(0));
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  GemmAccumulate(true, false, m, n, k, a.data(), m, b.data(), n, out.data(),
                 n);
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  DEEPMAP_CHECK_EQ(a.rank(), 2);
  DEEPMAP_CHECK_EQ(b.rank(), 2);
  DEEPMAP_CHECK_EQ(a.dim(1), b.dim(1));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  GemmAccumulate(false, true, m, n, k, a.data(), k, b.data(), k, out.data(),
                 n);
  return out;
}

}  // namespace deepmap::nn
