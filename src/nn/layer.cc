#include "nn/layer.h"

#include <cmath>

namespace deepmap::nn {

void GlorotInit(Tensor& weights, int fan_in, int fan_out, Rng& rng) {
  DEEPMAP_CHECK_GT(fan_in + fan_out, 0);
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  for (int i = 0; i < weights.NumElements(); ++i) {
    weights.data()[i] = static_cast<float>(rng.Uniform(-a, a));
  }
}

void HeInit(Tensor& weights, int fan_in, Rng& rng) {
  DEEPMAP_CHECK_GT(fan_in, 0);
  const double stddev = std::sqrt(2.0 / fan_in);
  for (int i = 0; i < weights.NumElements(); ++i) {
    weights.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void ZeroGrads(const std::vector<Param>& params) {
  for (const Param& p : params) p.grad->Zero();
}

void ScaleGrads(const std::vector<Param>& params, float scale) {
  for (const Param& p : params) p.grad->Scale(scale);
}

}  // namespace deepmap::nn
