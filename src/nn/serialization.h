// Parameter (de)serialization: persist trained models to disk and reload
// them, e.g. to train once and serve classifications later.
//
// Format: "DMNN" magic + version, parameter count, then each tensor as
// rank, dims, raw little-endian float32 data. Loading requires the exact
// same parameter shapes (i.e. the same model architecture).
#ifndef DEEPMAP_NN_SERIALIZATION_H_
#define DEEPMAP_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace deepmap::nn {

/// Writes every parameter's value tensor to `path`. Crash-safe: the data is
/// streamed to `path + ".tmp"` and atomically renamed into place, so a
/// failure mid-save never corrupts an existing model file.
Status SaveParameters(const std::vector<Param>& params,
                      const std::string& path);

/// Reads parameters from `path` into the value tensors of `params`.
/// Fails (without partial writes) if the count or any shape differs.
Status LoadParameters(const std::vector<Param>& params,
                      const std::string& path);

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_SERIALIZATION_H_
