// Elementwise activation layers (shape-preserving, any rank).
#ifndef DEEPMAP_NN_ACTIVATIONS_H_
#define DEEPMAP_NN_ACTIVATIONS_H_

#include <vector>

#include "nn/layer.h"

namespace deepmap::nn {

/// Rectified linear unit: max(0, x).
class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent (used by the DGCNN baseline's graph convolutions).
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

/// Per-row L2 normalization of a [L, C] tensor: y_i = x_i / max(||x_i||, eps).
/// Stabilizes GNNs whose sum aggregation grows activations with vertex count
/// (GIN without batch normalization). Rows with tiny norm pass through
/// scaled by 1/eps-capped factor (identity-safe for zero rows).
class RowL2Normalize : public Layer {
 public:
  explicit RowL2Normalize(float epsilon = 1e-6f) : epsilon_(epsilon) {}

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  float epsilon_;
  Tensor cached_input_;
  std::vector<float> cached_norms_;
};

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_ACTIVATIONS_H_
