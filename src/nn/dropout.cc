#include "nn/dropout.h"

#include <cmath>

namespace deepmap::nn {

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.Fork()) {
  // rate == 1.0 is excluded (not clamped): the inverted-dropout keep scale
  // 1/(1-rate) is infinite there, so every surviving activation would be
  // inf/NaN. NaN is named explicitly — it also fails `rate >= 0.0`, but the
  // "(nan vs. 0)" message reads like a range problem instead of a poisoned
  // hyperparameter upstream.
  DEEPMAP_CHECK(!std::isnan(rate) && "dropout rate must not be NaN");
  DEEPMAP_CHECK_GE(rate, 0.0);
  DEEPMAP_CHECK_LT(rate, 1.0);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  was_training_ = training;
  if (!training || rate_ == 0.0) return input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_ = Tensor(input.shape());
  Tensor out = input;
  for (int i = 0; i < input.NumElements(); ++i) {
    if (rng_.Bernoulli(rate_)) {
      mask_.data()[i] = 0.0f;
      out.data()[i] = 0.0f;
    } else {
      mask_.data()[i] = keep_scale;
      out.data()[i] *= keep_scale;
    }
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!was_training_ || rate_ == 0.0) return grad_output;
  DEEPMAP_CHECK_EQ(grad_output.NumElements(), mask_.NumElements());
  Tensor grad = grad_output;
  for (int i = 0; i < grad.NumElements(); ++i) {
    grad.data()[i] *= mask_.data()[i];
  }
  return grad;
}

}  // namespace deepmap::nn
