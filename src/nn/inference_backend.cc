#include "nn/inference_backend.h"

#include <cstring>

#include "common/check.h"
#include "nn/int8_backend.h"

// NOTE: this file is compiled with -ffp-contract=off (see src/CMakeLists.txt)
// so the fp32 reference chains below can never be FMA-contracted away from
// the training layers' rounding.

namespace deepmap::nn {

void InferenceBackend::Relu(float* x, int n) const {
  for (int i = 0; i < n; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

namespace {

/// Plain row-major fp32 copy of the weight matrix.
class Fp32Packed final : public PackedWeights {
 public:
  Fp32Packed(const Tensor& w)
      : PackedWeights(w.dim(0), w.dim(1)),
        data_(w.data(), w.data() + w.NumElements()) {}

  const float* row(int o) const {
    return data_.data() + static_cast<size_t>(o) * cols();
  }
  size_t MemoryBytes() const override { return data_.size() * sizeof(float); }

 private:
  std::vector<float> data_;
};

}  // namespace

std::unique_ptr<PackedWeights> Fp32RefBackend::Pack(const Tensor& w) const {
  DEEPMAP_CHECK_EQ(w.rank(), 2);
  return std::make_unique<Fp32Packed>(w);
}

void Fp32RefBackend::AccumulateDot(const PackedWeights& w, int col0, int cols,
                                   const float* x, float* y) const {
  const auto& p = static_cast<const Fp32Packed&>(w);
  for (int o = 0; o < p.rows(); ++o) {
    const float* wo = p.row(o) + col0;
    float sum = y[o];
    for (int c = 0; c < cols; ++c) sum += wo[c] * x[c];
    y[o] = sum;
  }
}

void Fp32RefBackend::ConvForward(const PackedWeights& w, const float* bias,
                                 const float* x, float* y) const {
  const auto& p = static_cast<const Fp32Packed&>(w);
  const int in_channels = p.cols();
  for (int o = 0; o < p.rows(); ++o) {
    float sum = bias[o];
    const float* wo = p.row(o);
    for (int i = 0; i < in_channels; ++i) sum += wo[i] * x[i];
    y[o] = sum;
  }
}

void Fp32RefBackend::DenseForward(const PackedWeights& w, const float* bias,
                                  const float* x, float* y) const {
  const auto& p = static_cast<const Fp32Packed&>(w);
  const int in_features = p.cols();
  for (int o = 0; o < p.rows(); ++o) {
    float sum = 0.0f;
    const float* wo = p.row(o);
    for (int t = 0; t < in_features; ++t) sum += x[t] * wo[t];
    y[o] = sum + bias[o];
  }
}

const InferenceBackend& Fp32Backend() {
  static const Fp32RefBackend* kInstance = new Fp32RefBackend();
  return *kInstance;
}

std::vector<std::string> InferenceBackendNames() { return {"fp32", "int8"}; }

StatusOr<std::unique_ptr<InferenceBackend>> MakeInferenceBackend(
    const std::string& name) {
  if (name == "fp32") {
    return StatusOr<std::unique_ptr<InferenceBackend>>(
        std::make_unique<Fp32RefBackend>());
  }
  if (name == "int8") {
    return StatusOr<std::unique_ptr<InferenceBackend>>(
        std::make_unique<Int8Backend>());
  }
  std::string known;
  for (const std::string& n : InferenceBackendNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::InvalidArgument("unknown inference backend '" + name +
                                 "'; known backends: " + known);
}

}  // namespace deepmap::nn
