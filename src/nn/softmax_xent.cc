#include "nn/softmax_xent.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace deepmap::nn {

Tensor Softmax(const Tensor& logits) {
  DEEPMAP_CHECK_EQ(logits.rank(), 1);
  DEEPMAP_CHECK_GT(logits.NumElements(), 0);
  float max_logit = logits.data()[0];
  for (int i = 1; i < logits.NumElements(); ++i) {
    max_logit = std::max(max_logit, logits.data()[i]);
  }
  Tensor probs(logits.shape());
  double total = 0.0;
  for (int i = 0; i < logits.NumElements(); ++i) {
    double e = std::exp(static_cast<double>(logits.data()[i] - max_logit));
    probs.data()[i] = static_cast<float>(e);
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (int i = 0; i < probs.NumElements(); ++i) probs.data()[i] *= inv;
  return probs;
}

LossAndGrad SoftmaxCrossEntropy(const Tensor& logits, int label) {
  DEEPMAP_CHECK_GE(label, 0);
  DEEPMAP_CHECK_LT(label, logits.NumElements());
  Tensor probs = Softmax(logits);
  const double p = std::max(1e-12, static_cast<double>(probs.at(label)));
  LossAndGrad result{-std::log(p), probs};
  result.grad_logits.at(label) -= 1.0f;
  return result;
}

}  // namespace deepmap::nn
