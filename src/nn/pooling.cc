#include "nn/pooling.h"

#include <algorithm>
#include <numeric>

namespace deepmap::nn {

Tensor SumPool::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  cached_length_ = input.dim(0);
  Tensor out({input.dim(1)});
  for (int l = 0; l < input.dim(0); ++l) {
    for (int c = 0; c < input.dim(1); ++c) out.at(c) += input.at(l, c);
  }
  return out;
}

Tensor SumPool::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.rank(), 1);
  Tensor grad({cached_length_, grad_output.dim(0)});
  for (int l = 0; l < cached_length_; ++l) {
    for (int c = 0; c < grad_output.dim(0); ++c) {
      grad.at(l, c) = grad_output.at(c);
    }
  }
  return grad;
}

Tensor MeanPool::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  cached_length_ = input.dim(0);
  Tensor out({input.dim(1)});
  for (int l = 0; l < input.dim(0); ++l) {
    for (int c = 0; c < input.dim(1); ++c) out.at(c) += input.at(l, c);
  }
  out.Scale(1.0f / static_cast<float>(cached_length_));
  return out;
}

Tensor MeanPool::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.rank(), 1);
  const float inv = 1.0f / static_cast<float>(cached_length_);
  Tensor grad({cached_length_, grad_output.dim(0)});
  for (int l = 0; l < cached_length_; ++l) {
    for (int c = 0; c < grad_output.dim(0); ++c) {
      grad.at(l, c) = grad_output.at(c) * inv;
    }
  }
  return grad;
}

Tensor Flatten::Forward(const Tensor& input, bool training) {
  cached_shape_ = input.shape();
  return input.Reshaped({input.NumElements()});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshaped(cached_shape_);
}

SortPooling::SortPooling(int k) : k_(k) { DEEPMAP_CHECK_GT(k, 0); }

Tensor SortPooling::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  cached_length_ = input.dim(0);
  cached_channels_ = input.dim(1);
  const int last = cached_channels_ - 1;
  std::vector<int> order(cached_length_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return input.at(a, last) > input.at(b, last);
  });
  const int keep = std::min(k_, cached_length_);
  kept_rows_.assign(order.begin(), order.begin() + keep);
  Tensor out({k_, cached_channels_});
  for (int r = 0; r < keep; ++r) {
    for (int c = 0; c < cached_channels_; ++c) {
      out.at(r, c) = input.at(kept_rows_[r], c);
    }
  }
  return out;  // rows beyond `keep` stay zero (padding)
}

Tensor SortPooling::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.dim(0), k_);
  DEEPMAP_CHECK_EQ(grad_output.dim(1), cached_channels_);
  Tensor grad({cached_length_, cached_channels_});
  for (size_t r = 0; r < kept_rows_.size(); ++r) {
    for (int c = 0; c < cached_channels_; ++c) {
      grad.at(kept_rows_[r], c) += grad_output.at(static_cast<int>(r), c);
    }
  }
  return grad;
}

}  // namespace deepmap::nn
