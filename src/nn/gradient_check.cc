#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace deepmap::nn {
namespace {

void UpdateResult(GradientCheckResult& result, double analytic,
                  double numeric) {
  double abs_error = std::fabs(analytic - numeric);
  double scale = std::max({1.0, std::fabs(analytic), std::fabs(numeric)});
  result.max_abs_error = std::max(result.max_abs_error, abs_error);
  result.max_rel_error = std::max(result.max_rel_error, abs_error / scale);
  ++result.coordinates_checked;
}

}  // namespace

GradientCheckResult CheckParameterGradients(
    const std::vector<Param>& params, const std::function<double()>& loss,
    const std::function<void()>& forward_backward, double epsilon) {
  forward_backward();
  // Snapshot analytic gradients before perturbing anything.
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const Param& p : params) analytic.push_back(*p.grad);

  GradientCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = *params[pi].value;
    for (int i = 0; i < value.NumElements(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + static_cast<float>(epsilon);
      double loss_plus = loss();
      value.data()[i] = original - static_cast<float>(epsilon);
      double loss_minus = loss();
      value.data()[i] = original;
      double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      UpdateResult(result, analytic[pi].data()[i], numeric);
    }
  }
  return result;
}

GradientCheckResult CheckInputGradient(Tensor& input,
                                       const Tensor& analytic_grad,
                                       const std::function<double()>& loss,
                                       double epsilon) {
  GradientCheckResult result;
  for (int i = 0; i < input.NumElements(); ++i) {
    const float original = input.data()[i];
    input.data()[i] = original + static_cast<float>(epsilon);
    double loss_plus = loss();
    input.data()[i] = original - static_cast<float>(epsilon);
    double loss_minus = loss();
    input.data()[i] = original;
    double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    UpdateResult(result, analytic_grad.data()[i], numeric);
  }
  return result;
}

}  // namespace deepmap::nn
