#include "nn/activations.h"

#include <cmath>

namespace deepmap::nn {

Tensor Relu::Forward(const Tensor& input, bool training) {
  cached_input_ = input;
  Tensor out = input;
  for (int i = 0; i < out.NumElements(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
  }
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.NumElements(), cached_input_.NumElements());
  Tensor grad = grad_output;
  for (int i = 0; i < grad.NumElements(); ++i) {
    if (cached_input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
  return grad;
}

Tensor Tanh::Forward(const Tensor& input, bool training) {
  Tensor out = input;
  for (int i = 0; i < out.NumElements(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.NumElements(), cached_output_.NumElements());
  Tensor grad = grad_output;
  for (int i = 0; i < grad.NumElements(); ++i) {
    float y = cached_output_.data()[i];
    grad.data()[i] *= (1.0f - y * y);
  }
  return grad;
}

Tensor RowL2Normalize::Forward(const Tensor& input, bool training) {
  DEEPMAP_CHECK_EQ(input.rank(), 2);
  cached_input_ = input;
  const int rows = input.dim(0);
  const int cols = input.dim(1);
  cached_norms_.assign(rows, 0.0f);
  Tensor out = input;
  for (int i = 0; i < rows; ++i) {
    double sq = 0.0;
    for (int c = 0; c < cols; ++c) {
      sq += static_cast<double>(input.at(i, c)) * input.at(i, c);
    }
    float norm = std::max(epsilon_, static_cast<float>(std::sqrt(sq)));
    cached_norms_[i] = norm;
    for (int c = 0; c < cols; ++c) out.at(i, c) /= norm;
  }
  return out;
}

Tensor RowL2Normalize::Backward(const Tensor& grad_output) {
  DEEPMAP_CHECK_EQ(grad_output.rank(), 2);
  const int rows = cached_input_.dim(0);
  const int cols = cached_input_.dim(1);
  Tensor grad({rows, cols});
  for (int i = 0; i < rows; ++i) {
    const float norm = cached_norms_[i];
    // y = x / n with n = ||x||: dL/dx = (g - y <g, y>) / n.
    double dot = 0.0;
    for (int c = 0; c < cols; ++c) {
      dot += static_cast<double>(grad_output.at(i, c)) *
             cached_input_.at(i, c) / norm;
    }
    for (int c = 0; c < cols; ++c) {
      float y = cached_input_.at(i, c) / norm;
      grad.at(i, c) =
          (grad_output.at(i, c) - y * static_cast<float>(dot)) / norm;
    }
  }
  return grad;
}

}  // namespace deepmap::nn
