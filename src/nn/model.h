// Sequential model container and the generic sample-at-a-time trainer.
//
// The trainer is templated on (Model, Sample) so the same loop trains
// DEEPMAP's CNN (Sample = Tensor) and the GNN baselines (Sample = graph
// structure + vertex features). A Model must provide:
//   Tensor Forward(const Sample&, bool training);   // returns logits [C]
//   void Backward(const Tensor& grad_logits);       // accumulates grads
//   std::vector<Param> Params();
//
// Mini-batches are realized by gradient accumulation: the paper's batch
// sizes {32, 256} average gradients over that many samples before an
// optimizer step. Learning-rate plateau decay matches the paper: x0.5 after
// `plateau_patience` epochs without loss improvement.
#ifndef DEEPMAP_NN_MODEL_H_
#define DEEPMAP_NN_MODEL_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "nn/layer.h"
#include "nn/optimizer.h"
#include "nn/softmax_xent.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace deepmap::nn {

/// A linear stack of layers.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership). Returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  /// Constructs and appends a layer in place.
  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  size_t NumLayers() const { return layers_.size(); }

  Tensor Forward(const Tensor& input, bool training);

  /// Back-propagates through the stack; returns dLoss/dInput so models can
  /// chain further layers in front of the sequential block.
  Tensor Backward(const Tensor& grad_output);

  std::vector<Param> Params();

  /// Total number of trainable scalars.
  int64_t NumParameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Training hyperparameters (defaults follow the paper's Section 5.1).
struct TrainConfig {
  int epochs = 100;
  int batch_size = 32;
  double learning_rate = 0.01;
  OptimizerKind optimizer = OptimizerKind::kRmsProp;
  /// Plateau schedule: lr *= plateau_factor after plateau_patience epochs
  /// with no improvement in training loss.
  double plateau_factor = 0.5;
  int plateau_patience = 5;
  double min_learning_rate = 1e-5;
  uint64_t seed = 42;
  bool shuffle = true;
};

/// Per-epoch training statistics.
struct EpochStats {
  double loss = 0.0;
  double accuracy = 0.0;       // training accuracy this epoch
  double learning_rate = 0.0;
  double seconds = 0.0;        // wall-clock time of the epoch
};

/// Full training trace.
struct TrainHistory {
  std::vector<EpochStats> epochs;

  double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().loss;
  }
  double final_accuracy() const {
    return epochs.empty() ? 0.0 : epochs.back().accuracy;
  }
  /// Best (highest) training accuracy over all epochs.
  double best_accuracy() const {
    double best = 0.0;
    for (const EpochStats& e : epochs) best = std::max(best, e.accuracy);
    return best;
  }
  /// Mean wall-clock seconds per epoch (the paper's Table 5 metric).
  double mean_epoch_seconds() const {
    if (epochs.empty()) return 0.0;
    double total = 0.0;
    for (const EpochStats& e : epochs) total += e.seconds;
    return total / static_cast<double>(epochs.size());
  }
};

/// Argmax class prediction for one sample.
template <typename Model, typename Sample>
int Predict(Model& model, const Sample& sample) {
  return model.Forward(sample, /*training=*/false).ArgMax();
}

/// Fraction of samples classified correctly.
template <typename Model, typename Sample>
double EvaluateAccuracy(Model& model, const std::vector<Sample>& samples,
                        const std::vector<int>& labels) {
  DEEPMAP_CHECK_EQ(samples.size(), labels.size());
  if (samples.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (Predict(model, samples[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

/// Trains a softmax classifier with mini-batch gradient accumulation.
template <typename Model, typename Sample>
TrainHistory TrainClassifier(Model& model, const std::vector<Sample>& samples,
                             const std::vector<int>& labels,
                             const TrainConfig& config) {
  DEEPMAP_CHECK_EQ(samples.size(), labels.size());
  DEEPMAP_CHECK(!samples.empty());
  Rng rng(config.seed);
  std::vector<Param> params = model.Params();
  std::unique_ptr<Optimizer> optimizer =
      MakeOptimizer(config.optimizer, config.learning_rate);

  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), size_t{0});

  TrainHistory history;
  double best_loss = std::numeric_limits<double>::infinity();
  int epochs_since_improvement = 0;
  obs::Counter& epochs_total = obs::MetricsRegistry::Default().GetCounter(
      "deepmap_nn_train_epochs_total", "training epochs completed");
  obs::Histogram& epoch_seconds = obs::MetricsRegistry::Default().GetHistogram(
      "deepmap_nn_train_epoch_seconds", {},
      "wall time per training epoch (the paper's Table 5 metric)");
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedStageTimer epoch_span(&epoch_seconds, "train.epoch", "nn");
    epochs_total.Increment();
    Stopwatch timer;
    if (config.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    int correct = 0;
    size_t cursor = 0;
    while (cursor < order.size()) {
      size_t batch_end =
          std::min(order.size(), cursor + static_cast<size_t>(config.batch_size));
      ZeroGrads(params);
      int batch_count = 0;
      for (size_t b = cursor; b < batch_end; ++b) {
        const size_t i = order[b];
        Tensor logits = model.Forward(samples[i], /*training=*/true);
        LossAndGrad lg = SoftmaxCrossEntropy(logits, labels[i]);
        epoch_loss += lg.loss;
        if (logits.ArgMax() == labels[i]) ++correct;
        model.Backward(lg.grad_logits);
        ++batch_count;
      }
      ScaleGrads(params, 1.0f / static_cast<float>(batch_count));
      optimizer->Step(params);
      cursor = batch_end;
    }
    EpochStats stats;
    stats.loss = epoch_loss / static_cast<double>(samples.size());
    stats.accuracy =
        static_cast<double>(correct) / static_cast<double>(samples.size());
    stats.learning_rate = optimizer->learning_rate();
    stats.seconds = timer.ElapsedSeconds();
    history.epochs.push_back(stats);

    // Plateau learning-rate decay (paper: halve after 5 stagnant epochs).
    if (stats.loss + 1e-9 < best_loss) {
      best_loss = stats.loss;
      epochs_since_improvement = 0;
    } else if (++epochs_since_improvement >= config.plateau_patience) {
      double lr = std::max(config.min_learning_rate,
                           optimizer->learning_rate() * config.plateau_factor);
      optimizer->set_learning_rate(lr);
      epochs_since_improvement = 0;
    }
  }
  return history;
}

}  // namespace deepmap::nn

#endif  // DEEPMAP_NN_MODEL_H_
