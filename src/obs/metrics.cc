#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "common/check.h"

namespace deepmap::obs {
namespace {

/// Prometheus floats: enough digits to round-trip, no locale surprises.
std::string FormatValue(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool IsNameToken(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Registration-time naming lint: an invalid name is a programming error.
void CheckValidName(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    DEEPMAP_CHECK(status.ok());
  }
}

}  // namespace

size_t ThreadShardIndex() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) &
      (kMetricShards - 1);
  return shard;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::SetMax(double value) {
  double current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank, nearest-rank style: the smallest observation with at least
  // ceil(q * count) observations at or below it. The tiny epsilon guards
  // against inexact doubles like 0.95 * 20 landing just above the integer.
  int64_t target = static_cast<int64_t>(
      std::ceil(q * static_cast<double>(count) - 1e-9));
  target = std::clamp<int64_t>(target, 1, count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const int64_t in_bucket = bucket_counts[b];
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    const double upper =
        b < upper_bounds.size() ? upper_bounds[b] : upper_bounds.back();
    const double lower = b == 0 ? 0.0 : upper_bounds[b - 1];
    if (b >= upper_bounds.size()) return upper;  // +Inf bucket: clamp
    const double fraction =
        in_bucket == 0 ? 1.0
                       : static_cast<double>(target - cumulative) /
                             static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      name_(std::move(name)),
      help_(std::move(help)) {
  DEEPMAP_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    DEEPMAP_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<int64_t>>(upper_bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  // Buckets are `le` (inclusive upper bound) per the Prometheus exposition
  // format, hence lower_bound: a value equal to a bound belongs to that
  // bound's bucket. NaN is routed to +Inf explicitly — every ordering
  // comparison against NaN is false, so lower_bound would misfile it into
  // the first bucket.
  const size_t bucket =
      std::isnan(value)
          ? upper_bounds_.size()
          : static_cast<size_t>(
                std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                 value) -
                upper_bounds_.begin());
  Shard& shard = shards_[ThreadShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.bucket_counts.assign(upper_bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < shard.buckets.size(); ++b) {
      snap.bucket_counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  DEEPMAP_CHECK_GT(start, 0.0);
  DEEPMAP_CHECK_GT(factor, 1.0);
  DEEPMAP_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBounds() {
  static const std::vector<double> bounds =
      ExponentialBounds(1e-6, 1.25, 84);  // 1us .. ~110s
  return bounds;
}

Status ValidateMetricName(const std::string& name, const std::string& kind) {
  auto invalid = [&](const std::string& why) {
    return Status::InvalidArgument("metric name '" + name + "' (" + kind +
                                   "): " + why);
  };
  // Split on '_' and validate every token.
  std::vector<std::string> tokens;
  size_t begin = 0;
  while (begin <= name.size()) {
    size_t end = name.find('_', begin);
    if (end == std::string::npos) end = name.size();
    tokens.push_back(name.substr(begin, end - begin));
    begin = end + 1;
  }
  for (const std::string& token : tokens) {
    if (!IsNameToken(token)) {
      return invalid("must match deepmap_<subsystem>_<name> with lowercase "
                     "[a-z0-9] tokens separated by single underscores");
    }
  }
  if (tokens.size() < 3 || tokens[0] != "deepmap") {
    return invalid("must be deepmap_<subsystem>_<name>");
  }
  if (kind == "counter") {
    if (!EndsWith(name, "_total")) {
      return invalid("counters must end in _total");
    }
  } else if (kind == "histogram") {
    if (!EndsWith(name, "_seconds")) {
      return invalid("histograms record durations and must end in _seconds");
    }
  } else if (kind == "gauge") {
    if (EndsWith(name, "_total") || EndsWith(name, "_seconds")) {
      return invalid("gauges must not use the _total/_seconds suffixes");
    }
  } else {
    return Status::InvalidArgument("unknown metric kind '" + kind + "'");
  }
  return Status::Ok();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  CheckValidName(ValidateMetricName(name, "counter"));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    DEEPMAP_CHECK(kinds_.find(name) == kinds_.end());  // name used by another kind
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name, help)))
             .first;
    kinds_[name] = Kind::kCounter;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  CheckValidName(ValidateMetricName(name, "gauge"));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    DEEPMAP_CHECK(kinds_.find(name) == kinds_.end());
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name, help)))
             .first;
    kinds_[name] = Kind::kGauge;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const std::string& help) {
  CheckValidName(ValidateMetricName(name, "histogram"));
  if (upper_bounds.empty()) upper_bounds = Histogram::DefaultLatencyBounds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    DEEPMAP_CHECK(kinds_.find(name) == kinds_.end());
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(
                                name, help, std::move(upper_bounds))))
             .first;
    kinds_[name] = Kind::kHistogram;
  }
  return *it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return kinds_.find(name) != kinds_.end();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(kinds_.size());
  for (const auto& [name, kind] : kinds_) names.push_back(name);
  return names;
}

void MetricsRegistry::WritePrometheusText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, kind] : kinds_) {
    switch (kind) {
      case Kind::kCounter: {
        const Counter& c = *counters_.at(name);
        if (!c.help().empty()) os << "# HELP " << name << " " << c.help() << "\n";
        os << "# TYPE " << name << " counter\n";
        os << name << " " << c.Value() << "\n";
        break;
      }
      case Kind::kGauge: {
        const Gauge& g = *gauges_.at(name);
        if (!g.help().empty()) os << "# HELP " << name << " " << g.help() << "\n";
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << FormatValue(g.Value()) << "\n";
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *histograms_.at(name);
        if (!h.help().empty()) os << "# HELP " << name << " " << h.help() << "\n";
        os << "# TYPE " << name << " histogram\n";
        const HistogramSnapshot snap = h.Snapshot();
        int64_t cumulative = 0;
        for (size_t b = 0; b < snap.upper_bounds.size(); ++b) {
          cumulative += snap.bucket_counts[b];
          os << name << "_bucket{le=\"" << FormatValue(snap.upper_bounds[b])
             << "\"} " << cumulative << "\n";
        }
        cumulative += snap.bucket_counts.back();
        os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << name << "_sum " << FormatValue(snap.sum) << "\n";
        os << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
}

}  // namespace deepmap::obs
