// Nested-span tracing with steady-clock timing.
//
// A span is an RAII guard: construction stamps the start, destruction stamps
// the duration and appends one event to the tracer's buffer. While the
// tracer is disabled (the default) constructing a span is one relaxed atomic
// load and a branch — cheap enough to leave in serve admission, batch
// dispatch, thread-pool tasks, and the training loop permanently
// (bench/obs_overhead pins the budget). While enabled, recording takes a
// short mutex; spans are coarse (stages, epochs, batches), so contention is
// negligible next to the work they time.
//
// Export formats:
//   WriteChromeTrace   Chrome trace_event JSON ("X" complete events); open
//                      in chrome://tracing or https://ui.perfetto.dev
//   (metrics go through obs::MetricsRegistry — see obs/metrics.h)
//
// Nesting needs no explicit parent links: events carry (tid, ts, dur) and
// the viewers reconstruct the stack from containment on each thread track.
#ifndef DEEPMAP_OBS_TRACE_H_
#define DEEPMAP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace deepmap::obs {

/// One completed span. Timestamps are microseconds on the steady clock,
/// relative to the tracer's epoch (set when tracing was last enabled).
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // start, relative to the tracer epoch
  double dur_us = 0.0;  // duration
  int tid = 0;          // dense per-thread track id
};

/// Process-wide span collector. All methods are thread-safe.
class Tracer {
 public:
  /// Cap on buffered events; spans beyond it are counted (dropped_events)
  /// but not stored, so a forgotten --trace-out cannot eat the heap.
  static constexpr size_t kMaxEvents = 1 << 20;

  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts collecting; resets the epoch and clears prior events.
  void Enable();
  /// Stops collecting; buffered events stay readable until Enable/Clear.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Clear();
  size_t NumEvents() const;
  int64_t dropped_events() const;
  /// Copy of the buffered events (tests and custom exporters).
  std::vector<TraceEvent> Events() const;

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void WriteChromeTrace(std::ostream& os) const;

  /// RAII span. Records a TraceEvent on destruction when the owning tracer
  /// was enabled at construction (a span open across Disable is dropped).
  class Span {
   public:
    /// `name` must outlive the span (string literals at every call site);
    /// `category` groups events into chrome://tracing rows ("serve", "nn",
    /// "pool", ...).
    Span(Tracer& tracer, const char* name, const char* category = "")
        : tracer_(tracer), name_(name), category_(category),
          active_(tracer.enabled()) {
      if (active_) start_ = std::chrono::steady_clock::now();
    }
    ~Span() {
      if (active_) tracer_.Record(name_, category_, start_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Tracer& tracer_;
    const char* name_;
    const char* category_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  void Record(const char* name, const char* category,
              std::chrono::steady_clock::time_point start);

  /// Dense track id of the calling thread (assigned under mu_).
  int TrackId(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> track_ids_;
};

/// Spans a scope on the global tracer:
///   DEEPMAP_TRACE_SPAN("serve.batch", "serve");
/// The two-level concat is required so __LINE__ expands before pasting;
/// direct ##__LINE__ would name every span variable identically and break
/// scopes containing two spans.
#define DEEPMAP_TRACE_CONCAT_INNER(a, b) a##b
#define DEEPMAP_TRACE_CONCAT(a, b) DEEPMAP_TRACE_CONCAT_INNER(a, b)
#define DEEPMAP_TRACE_SPAN(name, category)                                  \
  ::deepmap::obs::Tracer::Span DEEPMAP_TRACE_CONCAT(deepmap_trace_span_,    \
                                                    __LINE__)(              \
      ::deepmap::obs::Tracer::Global(), (name), (category))

}  // namespace deepmap::obs

#endif  // DEEPMAP_OBS_TRACE_H_
