// ScopedStageTimer: times a scope into a Histogram (seconds) and, when the
// global tracer is enabled, also emits a span — the one-liner used at every
// instrumented pipeline stage:
//
//   obs::ScopedStageTimer timer(stage_seconds_, "serve.preprocess", "serve");
//
// The histogram observation always happens (two steady-clock reads plus one
// sharded atomic update); the span costs nothing extra while tracing is off.
#ifndef DEEPMAP_OBS_STAGE_TIMER_H_
#define DEEPMAP_OBS_STAGE_TIMER_H_

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace deepmap::obs {

class ScopedStageTimer {
 public:
  /// `histogram` may be null (trace-only span). `name`/`category` must be
  /// string literals (or otherwise outlive the timer).
  explicit ScopedStageTimer(Histogram* histogram, const char* name = "stage",
                            const char* category = "")
      : histogram_(histogram),
        span_(Tracer::Global(), name, category),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedStageTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start_)
                              .count());
    }
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Histogram* histogram_;
  Tracer::Span span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace deepmap::obs

#endif  // DEEPMAP_OBS_STAGE_TIMER_H_
