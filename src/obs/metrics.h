// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path cost model: an update is one relaxed atomic RMW on a per-thread
// shard (cache-line padded, so concurrent writers do not false-share); no
// lock, no map lookup, no allocation. The registry mutex is taken only at
// registration (cold) and scrape time; a scrape sums the shards, so readers
// never stall writers. This is what lets instrumentation live on the serve
// submit path, inside ThreadPool tasks, and at GEMM call sites while staying
// under the <2% overhead budget proved by bench/obs_overhead.
//
// Naming convention (enforced at registration, see ValidateMetricName and
// tools/check_metrics_names.py):
//   deepmap_<subsystem>_<name>_total    counters (monotone event counts)
//   deepmap_<subsystem>_<name>_seconds  histograms (durations, in seconds)
//   deepmap_<subsystem>_<name>          gauges (instantaneous values)
//
// Export: WritePrometheusText emits the standard text exposition format
// (counter/gauge/histogram with cumulative `le` buckets); docs/observability.md
// documents the scheme and scrape formats.
#ifndef DEEPMAP_OBS_METRICS_H_
#define DEEPMAP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace deepmap::obs {

/// Number of per-thread update shards per instrument (power of two). Threads
/// hash onto shards by a process-wide thread index, so up to kMetricShards
/// writers update disjoint cache lines.
inline constexpr size_t kMetricShards = 16;

/// This thread's shard index, assigned round-robin at first use.
size_t ThreadShardIndex();

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    cells_[ThreadShardIndex()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  /// Sum across shards (a scrape-time read; never blocks writers).
  int64_t Value() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_;
  std::string name_;
  std::string help_;
};

/// Instantaneous value. Set/Add/SetMax are lock-free; Add and SetMax make
/// gauges usable as running sums and high-water marks.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is higher (high-water mark).
  void SetMax(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  std::atomic<double> value_{0.0};
  std::string name_;
  std::string help_;
};

/// Point-in-time view of one histogram: per-bucket counts (not cumulative)
/// plus count/sum. bucket_counts.size() == upper_bounds.size() + 1; the last
/// bucket is the +Inf overflow.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank — the same estimator Prometheus'
  /// histogram_quantile uses. Returns 0 when empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram of double observations (by convention, seconds).
class Histogram {
 public:
  void Observe(double value);
  HistogramSnapshot Snapshot() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// `count` bucket upper bounds growing geometrically from `start` by
  /// `factor` (start, start*factor, ...). CHECKs start > 0, factor > 1.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);
  /// Default latency bounds: 1us to ~110s, factor 1.25 (84 buckets) — fine
  /// enough that interpolated percentiles track exact ones within a few
  /// percent on smooth data, wide enough for minute-scale training epochs.
  static const std::vector<double>& DefaultLatencyBounds();

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help,
            std::vector<double> upper_bounds);

  struct alignas(64) Shard {
    std::vector<std::atomic<int64_t>> buckets;  // upper_bounds.size() + 1
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> upper_bounds_;  // sorted, strictly increasing
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
  std::string help_;
};

/// Validates `name` against the deepmap_<subsystem>_<name> convention and the
/// kind-specific suffix rule (see file comment). `kind` is "counter",
/// "gauge", or "histogram".
Status ValidateMetricName(const std::string& name, const std::string& kind);

/// Name -> instrument map. Get* registers on first use and returns the same
/// instrument (stable address) on every later call; re-registering a name as
/// a different kind, or with an invalid name, is a CHECK failure (the
/// registration-time naming lint).
///
/// Default() is the process-wide registry used by library-internal
/// instrumentation (thread pool, GEMM, fail points, training). Subsystems
/// that need isolated counts — e.g. each InferenceEngine — construct their
/// own instance instead.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  /// Empty `upper_bounds` means Histogram::DefaultLatencyBounds(). Bounds of
  /// an already registered histogram are not changed.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {},
                          const std::string& help = "");

  /// True when `name` is already registered (any kind).
  bool Has(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// Prometheus text exposition format, instruments in name order. Safe to
  /// call while other threads are updating instruments.
  void WritePrometheusText(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;  // registration and iteration only
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace deepmap::obs

#endif  // DEEPMAP_OBS_METRICS_H_
