#include "obs/trace.h"

#include <cstdio>

namespace deepmap::obs {
namespace {

/// JSON string escaping for span names (quotes, backslashes, control chars).
void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

double MicrosSince(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_ids_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_ids_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

int64_t Tracer::dropped_events() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

int Tracer::TrackId(std::thread::id id) {
  auto it = track_ids_.find(id);
  if (it == track_ids_.end()) {
    it = track_ids_.emplace(id, static_cast<int>(track_ids_.size())).first;
  }
  return it->second;
}

void Tracer::Record(const char* name, const char* category,
                    std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;  // closed after Disable
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = MicrosSince(epoch_, start);
  event.dur_us = MicrosSince(start, end);
  event.tid = TrackId(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendJsonEscaped(os, event.name);
    os << "\",\"cat\":\"";
    AppendJsonEscaped(os, event.category.empty() ? std::string("deepmap")
                                                 : event.category);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d}",
                  event.ts_us, event.dur_us, event.tid);
    os << buf;
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace deepmap::obs
