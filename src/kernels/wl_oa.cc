#include "kernels/wl_oa.h"

#include <algorithm>

namespace deepmap::kernels {

double HistogramIntersection(const SparseFeatureMap& a,
                             const SparseFeatureMap& b) {
  // Walk the smaller histogram, probe the larger: min() is zero wherever a
  // feature is absent from either side.
  const SparseFeatureMap* small = &a;
  const SparseFeatureMap* large = &b;
  if (small->NumNonZero() > large->NumNonZero()) std::swap(small, large);
  double total = 0.0;
  for (const auto& [id, count] : small->entries()) {
    double other = large->Get(id);
    if (other > 0.0) total += std::min(count, other);
  }
  return total;
}

Matrix WlOptimalAssignmentKernelMatrix(const graph::GraphDataset& dataset,
                                       const WlConfig& config) {
  // Shared refinery so colors are comparable across graphs; the WL graph
  // feature map already concatenates per-iteration color counts, which is
  // exactly the histogram the OA closed form intersects.
  WlRefinement refinery(config);
  std::vector<SparseFeatureMap> histograms;
  histograms.reserve(dataset.size());
  for (const graph::Graph& g : dataset.graphs()) {
    histograms.push_back(WlFeatureMap(g, refinery));
  }
  const int n = dataset.size();
  Matrix k(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double value = HistogramIntersection(histograms[i], histograms[j]);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  NormalizeKernelMatrix(k);
  return k;
}

}  // namespace deepmap::kernels
