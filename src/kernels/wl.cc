#include "kernels/wl.h"

#include <algorithm>

#include "common/check.h"

namespace deepmap::kernels {

WlRefinement::WlRefinement(const WlConfig& config) : config_(config) {
  DEEPMAP_CHECK_GE(config.iterations, 0);
  dictionaries_.resize(config.iterations);
}

std::vector<std::vector<int64_t>> WlRefinement::Refine(const graph::Graph& g) {
  const int n = g.NumVertices();
  std::vector<std::vector<int64_t>> colors(config_.iterations + 1);
  colors[0].resize(n);
  for (graph::Vertex v = 0; v < n; ++v) colors[0][v] = g.GetLabel(v);
  // One reusable signature buffer per round: the dictionary lookup is by
  // value, so the buffer is only copied into the map on a miss (new color),
  // not once per vertex as the old move-into-try_emplace did.
  std::vector<int64_t> signature;
  for (int h = 1; h <= config_.iterations; ++h) {
    const std::vector<int64_t>& prev = colors[h - 1];
    auto& dict = dictionaries_[h - 1];
    colors[h].resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      signature.clear();
      signature.reserve(g.Degree(v) + 1);
      signature.push_back(prev[v]);
      for (graph::Vertex u : g.Neighbors(v)) signature.push_back(prev[u]);
      std::sort(signature.begin() + 1, signature.end());
      auto it = dict.find(signature);
      if (it == dict.end()) {
        it = dict.emplace(signature, static_cast<int64_t>(dict.size()))
                 .first;
      }
      colors[h][v] = it->second;
    }
  }
  return colors;
}

size_t WlRefinement::NumColorsAtIteration(int h) const {
  DEEPMAP_CHECK_GE(h, 1);
  DEEPMAP_CHECK_LE(h, config_.iterations);
  return dictionaries_[h - 1].size();
}

FeatureId PackWlFeature(int iteration, int64_t color) {
  DEEPMAP_CHECK_GE(iteration, 0);
  DEEPMAP_CHECK_LT(iteration, 1 << 8);
  DEEPMAP_CHECK_GE(color, 0);
  DEEPMAP_CHECK_LT(color, int64_t{1} << 48);
  return (static_cast<FeatureId>(iteration) << 48) |
         static_cast<FeatureId>(color);
}

std::vector<SparseFeatureMap> VertexWlFeatureMaps(const graph::Graph& g,
                                                  WlRefinement& refinery) {
  const auto colors = refinery.Refine(g);
  std::vector<SparseFeatureMap> features(g.NumVertices());
  for (int h = 0; h < static_cast<int>(colors.size()); ++h) {
    for (graph::Vertex v = 0; v < g.NumVertices(); ++v) {
      features[v].Add(PackWlFeature(h, colors[h][v]));
    }
  }
  return features;
}

SparseFeatureMap WlFeatureMap(const graph::Graph& g, WlRefinement& refinery) {
  return SumFeatureMaps(VertexWlFeatureMaps(g, refinery));
}

std::vector<std::vector<SparseFeatureMap>> VertexWlFeatureMapsForGraphs(
    const std::vector<graph::Graph>& graphs, const WlConfig& config) {
  WlRefinement refinery(config);
  std::vector<std::vector<SparseFeatureMap>> result;
  result.reserve(graphs.size());
  for (const graph::Graph& g : graphs) {
    result.push_back(VertexWlFeatureMaps(g, refinery));
  }
  return result;
}

}  // namespace deepmap::kernels
