// Shortest-path kernel (SP) feature maps (Borgwardt & Kriegel, ICDM 2005;
// the paper's Eq. 3): each shortest path is represented by the triplet
// (label(source), label(sink), length).
//
// Per-vertex maps (Definition 3) count the triplets of shortest paths with
// the vertex as source; summing over vertices (Eq. 7) counts every path from
// both endpoints, i.e. twice the classic SP feature map — a constant factor
// that cancels under kernel normalization.
#ifndef DEEPMAP_KERNELS_SHORTEST_PATH_H_
#define DEEPMAP_KERNELS_SHORTEST_PATH_H_

#include <vector>

#include "graph/graph.h"
#include "kernels/feature_map.h"

namespace deepmap::kernels {

/// Configuration for SP feature extraction.
struct ShortestPathConfig {
  /// Ignore paths longer than this (<= 0 means no cap). The paper's small
  /// world discussion caps interesting lengths around six.
  int max_length = 0;
};

/// Packs an SP triplet into a FeatureId. Label order is canonicalized
/// (min, max) so that a path contributes the same feature from either end.
FeatureId PackSpTriplet(graph::Label a, graph::Label b, int length);

/// Per-vertex SP feature maps: features[v] counts triplets of shortest paths
/// from v to every other reachable vertex.
std::vector<SparseFeatureMap> VertexSpFeatureMaps(
    const graph::Graph& g, const ShortestPathConfig& config = {});

/// Graph-level SP feature map (sum of the per-vertex maps, Eq. 7).
SparseFeatureMap SpFeatureMap(const graph::Graph& g,
                              const ShortestPathConfig& config = {});

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_SHORTEST_PATH_H_
