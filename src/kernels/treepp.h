// Tree++ path-pattern feature maps (Ye, Wang, Redberg & Singh, TKDE 2019 —
// the paper's reference [8], by the same authors).
//
// Tree++ builds a truncated BFS tree of depth d rooted at every vertex and
// uses the label sequences of root-to-node paths in that tree as features,
// comparing graphs at multiple granularities (one feature block per depth).
// This implementation provides the path-pattern core as a fourth vertex
// feature map family: psi(v, p) counts the BFS-tree paths rooted at v whose
// label sequence is p, for every depth 0..max_depth.
//
// (The full Tree++ "super path" extension additionally hashes the BFS trees
// of the vertices on each path; the path-pattern core is what DEEPMAP
// consumes as per-vertex features.)
#ifndef DEEPMAP_KERNELS_TREEPP_H_
#define DEEPMAP_KERNELS_TREEPP_H_

#include <vector>

#include "graph/dataset.h"
#include "graph/graph.h"
#include "kernels/feature_map.h"
#include "kernels/kernel_matrix.h"

namespace deepmap::kernels {

/// Tree++ configuration.
struct TreePpConfig {
  /// Depth of the truncated BFS tree (path length cap).
  int max_depth = 3;
};

/// Per-vertex Tree++ path-pattern feature maps: features[v] counts the
/// label-sequence paths of the depth-limited BFS tree rooted at v. Feature
/// ids are stable hashes of (depth, label sequence).
std::vector<SparseFeatureMap> VertexTreePpFeatureMaps(
    const graph::Graph& g, const TreePpConfig& config = {});

/// Graph-level Tree++ feature map (Eq. 7 sum of the vertex maps).
SparseFeatureMap TreePpFeatureMap(const graph::Graph& g,
                                  const TreePpConfig& config = {});

/// Tree++ kernel matrix over a dataset (cosine-normalized).
Matrix TreePpKernelMatrix(const graph::GraphDataset& dataset,
                          const TreePpConfig& config = {});

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_TREEPP_H_
