// Gram-matrix construction from graph feature maps, cosine normalization,
// and a positive-semidefiniteness check (R-convolution kernels are PSD by
// construction; the check is a test/diagnostic facility).
#ifndef DEEPMAP_KERNELS_KERNEL_MATRIX_H_
#define DEEPMAP_KERNELS_KERNEL_MATRIX_H_

#include <vector>

#include "kernels/feature_map.h"

namespace deepmap::kernels {

using Matrix = std::vector<std::vector<double>>;

/// Gram matrix K[i][j] = <phi_i, phi_j>. When `normalize` is set, applies
/// cosine normalization K'[i][j] = K[i][j] / sqrt(K[i][i] K[j][j]) (entries
/// with zero self-similarity are left as 0). The upper-triangle sweep runs
/// over ParallelFor (rows are independent), and each entry is computed
/// identically for any thread count — including DEEPMAP_NUM_THREADS=1 — so
/// results are deterministic.
Matrix GramMatrix(const std::vector<SparseFeatureMap>& maps,
                  bool normalize = true);

/// Cosine-normalizes an arbitrary symmetric kernel matrix in place.
void NormalizeKernelMatrix(Matrix& k);

/// True if the symmetric matrix is PSD up to `tolerance`, established via a
/// pivoted LDL^T factorization (all pivots >= -tolerance).
bool IsPositiveSemidefinite(const Matrix& k, double tolerance = 1e-8);

/// RBF kernel matrix from dense vectors: exp(-gamma * ||x - y||^2).
Matrix RbfKernelMatrix(const std::vector<std::vector<double>>& rows,
                       double gamma);

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_KERNEL_MATRIX_H_
