// Sparse feature maps (the paper's Definitions 2 and 3) and the vocabulary
// that maps observed substructure ids to dense column indices.
//
// Feature ids are canonical 64-bit keys derived from the substructure itself
// (graphlet catalog index, packed shortest-path triplet, WL color), so maps
// computed for different graphs are directly comparable without any shared
// mutable state; the Vocabulary is only needed to densify maps for the CNN.
#ifndef DEEPMAP_KERNELS_FEATURE_MAP_H_
#define DEEPMAP_KERNELS_FEATURE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace deepmap::kernels {

/// Canonical identifier of an atomic substructure.
using FeatureId = uint64_t;

/// Sparse multiset of substructure counts: the phi(.) of Definitions 2/3.
/// Entries are kept in id order, so iteration is deterministic.
class SparseFeatureMap {
 public:
  SparseFeatureMap() = default;

  /// Adds `count` occurrences of feature `id`.
  void Add(FeatureId id, double count = 1.0);

  /// Count for `id` (0 when absent).
  double Get(FeatureId id) const;

  /// Number of distinct features present.
  size_t NumNonZero() const { return counts_.size(); }

  bool empty() const { return counts_.empty(); }

  /// Sorted (id, count) view.
  const std::map<FeatureId, double>& entries() const { return counts_; }

  /// Elementwise sum (Eq. 7: a graph map is the sum of its vertex maps).
  SparseFeatureMap& operator+=(const SparseFeatureMap& other);

  /// Inner product <phi(a), phi(b)> — the R-convolution kernel value.
  double Dot(const SparseFeatureMap& other) const;

  /// Euclidean norm sqrt(<phi, phi>).
  double L2Norm() const;

  /// Sum of all counts.
  double TotalCount() const;

 private:
  std::map<FeatureId, double> counts_;
};

/// Sum of the vertex feature maps of one graph (Eq. 7).
SparseFeatureMap SumFeatureMaps(const std::vector<SparseFeatureMap>& maps);

/// Maps the FeatureIds observed in a dataset to dense columns [0, size()).
/// Build once over the reference (training) collection, then densify any map
/// against it; unseen ids are dropped (or hashed, see DensifyHashed).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Registers every id in `map`.
  void AddAll(const SparseFeatureMap& map);

  /// Dense column of `id`, or -1 if unseen.
  int64_t ColumnOf(FeatureId id) const;

  size_t size() const { return columns_.size(); }

  /// Dense vector of length size(); unseen ids are dropped.
  std::vector<double> Densify(const SparseFeatureMap& map) const;

 private:
  std::map<FeatureId, int64_t> columns_;
};

/// Dense vector of length `dim` via modulo feature hashing (id % dim).
/// Collisions add; used to bound CNN input width when vocabularies are huge.
std::vector<double> DensifyHashed(const SparseFeatureMap& map, size_t dim);

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_FEATURE_MAP_H_
