#include "kernels/random_walk.h"

#include "common/check.h"
#include "graph/algorithms.h"

namespace deepmap::kernels {

graph::Graph HighOrderGraph(const graph::Graph& g, int order) {
  DEEPMAP_CHECK_GE(order, 1);
  if (order == 1) return g;
  graph::Graph high(g.NumVertices());
  for (graph::Vertex v = 0; v < g.NumVertices(); ++v) {
    high.SetLabel(v, g.GetLabel(v));
  }
  const auto dist = graph::AllPairsShortestPaths(g);
  for (graph::Vertex u = 0; u < g.NumVertices(); ++u) {
    for (graph::Vertex v = u + 1; v < g.NumVertices(); ++v) {
      if (dist[u][v] == order) high.AddEdge(u, v);
    }
  }
  return high;
}

double RandomWalkKernelValue(const graph::Graph& g1_in,
                             const graph::Graph& g2_in,
                             const RandomWalkConfig& config) {
  DEEPMAP_CHECK_GE(config.max_length, 0);
  const graph::Graph g1 = HighOrderGraph(g1_in, config.order);
  const graph::Graph g2 = HighOrderGraph(g2_in, config.order);
  const int n1 = g1.NumVertices();
  const int n2 = g2.NumVertices();
  if (n1 == 0 || n2 == 0) return 0.0;

  // x[u][v]: number of label-matching walks ending at the product vertex
  // (u, v), built iteratively (dynamic programming on the product graph —
  // never materialized).
  std::vector<std::vector<double>> x(n1, std::vector<double>(n2, 0.0));
  double total = 0.0;
  for (int u = 0; u < n1; ++u) {
    for (int v = 0; v < n2; ++v) {
      if (g1.GetLabel(u) == g2.GetLabel(v)) {
        x[u][v] = 1.0;
        total += 1.0;  // length-0 walks
      }
    }
  }
  double weight = 1.0;
  std::vector<std::vector<double>> next(n1, std::vector<double>(n2, 0.0));
  for (int step = 1; step <= config.max_length; ++step) {
    weight *= config.lambda;
    for (auto& row : next) std::fill(row.begin(), row.end(), 0.0);
    for (int u = 0; u < n1; ++u) {
      for (int v = 0; v < n2; ++v) {
        if (x[u][v] == 0.0) continue;
        const double walks = x[u][v];
        for (graph::Vertex nu : g1.Neighbors(u)) {
          for (graph::Vertex nv : g2.Neighbors(v)) {
            if (g1.GetLabel(nu) == g2.GetLabel(nv)) {
              next[nu][nv] += walks;
            }
          }
        }
      }
    }
    x.swap(next);
    double level = 0.0;
    for (const auto& row : x) {
      for (double value : row) level += value;
    }
    total += weight * level;
    if (level == 0.0) break;  // no walks can extend further
  }
  return total;
}

Matrix RandomWalkKernelMatrix(const graph::GraphDataset& dataset,
                              const RandomWalkConfig& config) {
  const int n = dataset.size();
  // Precompute high-order views once.
  std::vector<graph::Graph> views;
  views.reserve(n);
  for (int i = 0; i < n; ++i) {
    views.push_back(HighOrderGraph(dataset.graph(i), config.order));
  }
  RandomWalkConfig first_order = config;
  first_order.order = 1;  // views are already high-order
  Matrix k(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double value = RandomWalkKernelValue(views[i], views[j], first_order);
      k[i][j] = value;
      k[j][i] = value;
    }
  }
  NormalizeKernelMatrix(k);
  return k;
}

}  // namespace deepmap::kernels
