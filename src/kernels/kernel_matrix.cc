#include "kernels/kernel_matrix.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace deepmap::kernels {
namespace {

// Flattened (sorted id, count) view of a SparseFeatureMap. The Gram sweep
// dots every pair of maps; sorted arrays turn each dot into a cache-friendly
// two-pointer merge instead of O(s log L) std::map probes. The merge adds
// matched products in ascending id order — the same order Dot() visits them
// — so the entries are bit-identical to the historical implementation.
struct FlatMap {
  std::vector<FeatureId> ids;
  std::vector<double> counts;
};

FlatMap Flatten(const SparseFeatureMap& map) {
  FlatMap flat;
  flat.ids.reserve(map.NumNonZero());
  flat.counts.reserve(map.NumNonZero());
  for (const auto& [id, count] : map.entries()) {
    flat.ids.push_back(id);
    flat.counts.push_back(count);
  }
  return flat;
}

double FlatDot(const FlatMap& a, const FlatMap& b) {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.ids.size() && j < b.ids.size()) {
    if (a.ids[i] < b.ids[j]) {
      ++i;
    } else if (a.ids[i] > b.ids[j]) {
      ++j;
    } else {
      dot += a.counts[i] * b.counts[j];
      ++i;
      ++j;
    }
  }
  return dot;
}

}  // namespace

Matrix GramMatrix(const std::vector<SparseFeatureMap>& maps, bool normalize) {
  const size_t n = maps.size();
  Matrix k(n, std::vector<double>(n, 0.0));
  std::vector<FlatMap> flat(n);
  for (size_t i = 0; i < n; ++i) flat[i] = Flatten(maps[i]);
  // Upper-triangle sweep, one task per row. Each task writes k[i][j] and the
  // mirror k[j][i] for j >= i; those cells belong to no other task, so the
  // result is identical for any thread count. Tasks are folded (0, n-1, 1,
  // n-2, ...) so the contiguous chunks ParallelFor hands each thread pair
  // long rows with short ones.
  ParallelFor(n, [&](size_t task) {
    const size_t i = (task % 2 == 0) ? task / 2 : n - 1 - task / 2;
    for (size_t j = i; j < n; ++j) {
      double value = FlatDot(flat[i], flat[j]);
      k[i][j] = value;
      k[j][i] = value;
    }
  });
  if (normalize) NormalizeKernelMatrix(k);
  return k;
}

void NormalizeKernelMatrix(Matrix& k) {
  const size_t n = k.size();
  std::vector<double> inv_sqrt_diag(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    DEEPMAP_CHECK_EQ(k[i].size(), n);
    if (k[i][i] > 0.0) inv_sqrt_diag[i] = 1.0 / std::sqrt(k[i][i]);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      k[i][j] *= inv_sqrt_diag[i] * inv_sqrt_diag[j];
    }
  }
}

bool IsPositiveSemidefinite(const Matrix& k, double tolerance) {
  const size_t n = k.size();
  // LDL^T without pivoting, tolerating zero pivots: PSD iff all pivots are
  // >= -tolerance (columns under a ~zero pivot must also be ~zero).
  Matrix a = k;
  std::vector<double> d(n, 0.0);
  std::vector<std::vector<double>> l(n, std::vector<double>(n, 0.0));
  for (size_t j = 0; j < n; ++j) {
    double dj = a[j][j];
    for (size_t s = 0; s < j; ++s) dj -= l[j][s] * l[j][s] * d[s];
    d[j] = dj;
    if (dj < -tolerance) return false;
    l[j][j] = 1.0;
    for (size_t i = j + 1; i < n; ++i) {
      double lij = a[i][j];
      for (size_t s = 0; s < j; ++s) lij -= l[i][s] * l[j][s] * d[s];
      if (std::fabs(dj) <= tolerance) {
        // Zero pivot: the rest of the column must be ~zero or the matrix is
        // indefinite.
        if (std::fabs(lij) > 1e-6) return false;
        l[i][j] = 0.0;
      } else {
        l[i][j] = lij / dj;
      }
    }
  }
  return true;
}

Matrix RbfKernelMatrix(const std::vector<std::vector<double>>& rows,
                       double gamma) {
  const size_t n = rows.size();
  Matrix k(n, std::vector<double>(n, 0.0));
  // Same folded upper-triangle parallel sweep as GramMatrix.
  ParallelFor(n, [&](size_t task) {
    const size_t i = (task % 2 == 0) ? task / 2 : n - 1 - task / 2;
    for (size_t j = i; j < n; ++j) {
      DEEPMAP_CHECK_EQ(rows[i].size(), rows[j].size());
      double squared = 0.0;
      for (size_t t = 0; t < rows[i].size(); ++t) {
        double diff = rows[i][t] - rows[j][t];
        squared += diff * diff;
      }
      double value = std::exp(-gamma * squared);
      k[i][j] = value;
      k[j][i] = value;
    }
  });
  return k;
}

}  // namespace deepmap::kernels
