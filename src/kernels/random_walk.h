// Random-walk graph kernels, including the extension proposed as future
// work in the paper's Section 6.
//
// The classic k-step random-walk kernel (Gartner et al. 2003; Kashima et
// al. 2003) counts common label-sequence walks of two graphs:
//   K(G1, G2) = sum over walks of length <= k, weighted by lambda^len,
// computed on the direct product graph. Because the walk follows the
// FIRST-ORDER transition structure, the paper observes it "cannot capture
// the high-order complex interactions between vertices" and proposes
// conducting the walk on a HIGH-ORDER transition matrix. HighOrderRandomWalk
// implements that: walks step through the `order`-th power of the adjacency
// structure (neighbors reachable in exactly `order` hops), so one step
// already spans a multi-hop interaction.
#ifndef DEEPMAP_KERNELS_RANDOM_WALK_H_
#define DEEPMAP_KERNELS_RANDOM_WALK_H_

#include <vector>

#include "graph/dataset.h"
#include "graph/graph.h"
#include "kernels/kernel_matrix.h"

namespace deepmap::kernels {

/// Random-walk kernel configuration.
struct RandomWalkConfig {
  /// Maximum walk length (number of steps).
  int max_length = 4;
  /// Per-step decay weight lambda.
  double lambda = 0.5;
  /// Transition order: 1 reproduces the classic kernel; order h walks on
  /// the h-hop reachability structure (the paper's Section 6 extension).
  int order = 1;
};

/// Number of label-matching walks of length 0..max_length between two
/// graphs, weighted by lambda^length: the direct-product-graph computation.
double RandomWalkKernelValue(const graph::Graph& g1, const graph::Graph& g2,
                             const RandomWalkConfig& config = {});

/// Full kernel matrix over a dataset (cosine-normalized).
Matrix RandomWalkKernelMatrix(const graph::GraphDataset& dataset,
                              const RandomWalkConfig& config = {});

/// The `order`-hop neighbor structure of g: vertices u, v are adjacent in
/// the result iff their distance in g is exactly `order`. Order 1 returns a
/// copy of g (labels preserved).
graph::Graph HighOrderGraph(const graph::Graph& g, int order);

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_RANDOM_WALK_H_
