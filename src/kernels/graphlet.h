// Graphlet kernel (GK) feature maps: counts of non-isomorphic induced
// subgraphs of size k (Shervashidze et al., AISTATS 2009; the paper's Eq. 2).
//
// Graphlets are unlabeled, identified by their canonical edge mask, and
// indexed by a precomputed catalog (2/4 graphlets for k=2/3, 11 for k=4,
// 34 for k=5 — all non-isomorphic graphs, connected or not, matching the
// induced random-sampling scheme the paper uses).
//
// Both graph-level maps (Definition 2) and per-vertex maps (Definition 3,
// graphlets sampled around each vertex) are provided. Per-vertex sampling
// follows the paper's setup: for each vertex, sample `samples_per_vertex`
// graphlets of size k whose vertex set contains the vertex, grown by random
// neighborhood expansion.
#ifndef DEEPMAP_KERNELS_GRAPHLET_H_
#define DEEPMAP_KERNELS_GRAPHLET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "kernels/feature_map.h"

namespace deepmap::kernels {

/// Configuration for graphlet feature extraction.
struct GraphletConfig {
  /// Graphlet size; the paper selects from {3, 4, 5}.
  int k = 5;
  /// Random samples drawn per vertex (paper: 20 graphlets of size 5).
  int samples_per_vertex = 20;
  /// If true and k == 3, enumerate all induced size-3 subgraphs exactly
  /// instead of sampling (used by tests and small graphs).
  bool exhaustive = false;
};

/// Catalog of the non-isomorphic unlabeled graphs on k vertices. Maps a
/// canonical edge mask to a dense graphlet index.
class GraphletCatalog {
 public:
  /// Builds the catalog for size-k graphlets, 2 <= k <= 5.
  explicit GraphletCatalog(int k);

  int k() const { return k_; }

  /// Number of non-isomorphic graphlets of size k.
  int size() const { return static_cast<int>(canonical_masks_.size()); }

  /// Dense index of the graphlet isomorphic to `g` (|V(g)| must equal k).
  int IndexOf(const graph::Graph& g) const;

  /// Dense index for a canonical edge mask (must be in the catalog).
  int IndexOfCanonicalMask(uint32_t mask) const;

  /// Representative graph of graphlet `index`.
  graph::Graph Exemplar(int index) const;

 private:
  int k_;
  std::vector<uint32_t> canonical_masks_;  // sorted; index = position
};

/// Shared catalog instance for size k (catalogs are immutable).
const GraphletCatalog& GetGraphletCatalog(int k);

/// Per-vertex graphlet feature maps (Definition 3). features[v] counts the
/// graphlet types of induced subgraphs sampled around vertex v. Feature ids
/// are catalog indices.
std::vector<SparseFeatureMap> VertexGraphletFeatureMaps(
    const graph::Graph& g, const GraphletConfig& config, Rng& rng);

/// Graph-level graphlet feature map (Definition 2 / Eq. 2): the sum of the
/// per-vertex maps (Eq. 7).
SparseFeatureMap GraphletFeatureMap(const graph::Graph& g,
                                    const GraphletConfig& config, Rng& rng);

/// Exact counts of all induced size-3 subgraph types (4 features), used as a
/// test oracle for the sampling estimator.
SparseFeatureMap ExactSize3GraphletCounts(const graph::Graph& g);

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_GRAPHLET_H_
