#include "kernels/vertex_feature_map.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace deepmap::kernels {

std::string FeatureMapKindName(FeatureMapKind kind) {
  switch (kind) {
    case FeatureMapKind::kGraphlet:
      return "GK";
    case FeatureMapKind::kShortestPath:
      return "SP";
    case FeatureMapKind::kWlSubtree:
      return "WL";
    case FeatureMapKind::kTreePp:
      return "TREEPP";
  }
  return "?";
}

DatasetVertexFeatures::DatasetVertexFeatures(
    std::vector<std::vector<SparseFeatureMap>> features, int max_dense_dim,
    bool log_scale_dense, bool normalize_dense)
    : features_(std::move(features)), log_scale_dense_(log_scale_dense) {
  for (const auto& per_graph : features_) {
    for (const SparseFeatureMap& map : per_graph) vocabulary_.AddAll(map);
  }
  dim_ = static_cast<int>(vocabulary_.size());
  if (max_dense_dim > 0 && dim_ > max_dense_dim) {
    dim_ = max_dense_dim;
    uses_hashing_ = true;
  }
  if (dim_ == 0) dim_ = 1;  // degenerate datasets still need a column
  if (normalize_dense) {
    // Per-column inverse RMS over all vertex rows (after log scaling).
    std::vector<double> sum_squares(static_cast<size_t>(dim_), 0.0);
    int64_t num_rows = 0;
    for (size_t g = 0; g < features_.size(); ++g) {
      for (size_t v = 0; v < features_[g].size(); ++v) {
        std::vector<double> row =
            DenseRow(static_cast<int>(g), static_cast<int>(v));
        for (int c = 0; c < dim_; ++c) sum_squares[c] += row[c] * row[c];
        ++num_rows;
      }
    }
    // Soft normalization: 1/sqrt(rms_c^2 + mean_rms^2). Frequent columns are
    // scaled toward unit RMS while rare (often noisy) columns are boosted at
    // most by ~1/mean_rms, unlike a plain inverse-RMS which would blow them
    // up arbitrarily.
    double mean_square = 0.0;
    if (num_rows > 0) {
      for (int c = 0; c < dim_; ++c) mean_square += sum_squares[c];
      mean_square /= static_cast<double>(num_rows) * dim_;
    }
    column_scale_.assign(static_cast<size_t>(dim_), 0.0);
    for (int c = 0; c < dim_; ++c) {
      double square = num_rows > 0 ? sum_squares[c] / num_rows : 0.0;
      double denom = std::sqrt(square + mean_square);
      column_scale_[c] = denom > 1e-10 ? 1.0 / denom : 0.0;
    }
  }
}

const SparseFeatureMap& DatasetVertexFeatures::Get(int g, int v) const {
  DEEPMAP_CHECK_GE(g, 0);
  DEEPMAP_CHECK_LT(g, static_cast<int>(features_.size()));
  DEEPMAP_CHECK_GE(v, 0);
  DEEPMAP_CHECK_LT(v, static_cast<int>(features_[g].size()));
  return features_[g][v];
}

std::vector<double> DatasetVertexFeatures::DenseRow(int g, int v) const {
  return DensifyRow(Get(g, v));
}

std::vector<double> DatasetVertexFeatures::DensifyRow(
    const SparseFeatureMap& map) const {
  std::vector<double> dense;
  if (uses_hashing_) {
    dense = DensifyHashed(map, static_cast<size_t>(dim_));
  } else {
    dense = vocabulary_.Densify(map);
    dense.resize(static_cast<size_t>(dim_), 0.0);
  }
  if (log_scale_dense_) {
    for (double& x : dense) x = std::log1p(x);
  }
  if (!column_scale_.empty()) {
    for (int c = 0; c < dim_; ++c) dense[c] *= column_scale_[c];
  }
  return dense;
}

SparseFeatureMap DatasetVertexFeatures::GraphFeatureMap(int g) const {
  DEEPMAP_CHECK_GE(g, 0);
  DEEPMAP_CHECK_LT(g, static_cast<int>(features_.size()));
  return SumFeatureMaps(features_[g]);
}

DatasetVertexFeatures ComputeDatasetVertexFeatures(
    const graph::GraphDataset& dataset, const VertexFeatureConfig& config) {
  const size_t n = static_cast<size_t>(dataset.size());
  std::vector<std::vector<SparseFeatureMap>> features(n);
  // Per-graph extraction is independent for GK/SP/TREEPP, so those fan out
  // over ParallelFor. Graphlet sampling draws from a per-graph RNG stream
  // derived from (config.seed, graph index) instead of one generator
  // threaded through the dataset, which makes the maps order-independent
  // and identical for every thread count. WL is the exception: its
  // refinement dictionary grows across graphs in dataset order (the serve
  // preprocessor replays it in that order), so it stays sequential.
  switch (config.kind) {
    case FeatureMapKind::kGraphlet: {
      ParallelFor(n, [&](size_t g) {
        Rng rng(config.seed ^ (0x6b5ULL + g * 0x9E3779B97F4A7C15ULL));
        features[g] = VertexGraphletFeatureMaps(
            dataset.graph(static_cast<int>(g)), config.graphlet, rng);
      });
      break;
    }
    case FeatureMapKind::kShortestPath: {
      ParallelFor(n, [&](size_t g) {
        features[g] = VertexSpFeatureMaps(dataset.graph(static_cast<int>(g)),
                                          config.shortest_path);
      });
      break;
    }
    case FeatureMapKind::kWlSubtree: {
      features = VertexWlFeatureMapsForGraphs(dataset.graphs(), config.wl);
      break;
    }
    case FeatureMapKind::kTreePp: {
      ParallelFor(n, [&](size_t g) {
        features[g] = VertexTreePpFeatureMaps(
            dataset.graph(static_cast<int>(g)), config.treepp);
      });
      break;
    }
  }
  return DatasetVertexFeatures(std::move(features), config.max_dense_dim,
                               config.log_scale_dense,
                               config.normalize_dense);
}

std::vector<SparseFeatureMap> ComputeGraphFeatureMaps(
    const graph::GraphDataset& dataset, const VertexFeatureConfig& config) {
  DatasetVertexFeatures features =
      ComputeDatasetVertexFeatures(dataset, config);
  std::vector<SparseFeatureMap> graph_maps;
  graph_maps.reserve(dataset.size());
  for (int g = 0; g < dataset.size(); ++g) {
    graph_maps.push_back(features.GraphFeatureMap(g));
  }
  return graph_maps;
}

}  // namespace deepmap::kernels
