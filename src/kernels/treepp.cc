#include "kernels/treepp.h"

#include <deque>

#include "common/check.h"

namespace deepmap::kernels {
namespace {

// FNV-1a style rolling hash of (depth, label sequence). Paths are extended
// incrementally during the BFS, so each node's feature id is derived from
// its parent's hash in O(1).
constexpr FeatureId kFnvOffset = 1469598103934665603ull;
constexpr FeatureId kFnvPrime = 1099511628211ull;

FeatureId ExtendHash(FeatureId h, uint64_t value) {
  h ^= value + 0x9E3779B97F4A7C15ull;
  h *= kFnvPrime;
  return h;
}

}  // namespace

std::vector<SparseFeatureMap> VertexTreePpFeatureMaps(
    const graph::Graph& g, const TreePpConfig& config) {
  DEEPMAP_CHECK_GE(config.max_depth, 0);
  std::vector<SparseFeatureMap> features(g.NumVertices());
  std::vector<int> depth(g.NumVertices());
  std::vector<FeatureId> path_hash(g.NumVertices());
  for (graph::Vertex root = 0; root < g.NumVertices(); ++root) {
    // Two-phase construction so the result is a true isomorphism invariant:
    // (1) BFS distances fix which vertices join the depth-d tree; (2) each
    // vertex's tree path is extended from the CANONICAL parent — the
    // shortest-path predecessor with the smallest path hash — so the choice
    // does not depend on vertex ids (plain BFS would pick whichever parent
    // is dequeued first).
    std::fill(depth.begin(), depth.end(), -1);
    std::deque<graph::Vertex> queue{root};
    std::vector<graph::Vertex> order{root};
    depth[root] = 0;
    while (!queue.empty()) {
      graph::Vertex u = queue.front();
      queue.pop_front();
      if (depth[u] == config.max_depth) continue;
      for (graph::Vertex w : g.Neighbors(u)) {
        if (depth[w] < 0) {
          depth[w] = depth[u] + 1;
          queue.push_back(w);
          order.push_back(w);
        }
      }
    }
    path_hash[root] = ExtendHash(kFnvOffset,
                                 static_cast<uint64_t>(g.GetLabel(root)));
    // `order` is sorted by depth, so parents are finalized before children.
    for (graph::Vertex u : order) {
      if (u != root) {
        FeatureId best = ~FeatureId{0};
        for (graph::Vertex w : g.Neighbors(u)) {
          if (depth[w] == depth[u] - 1 && path_hash[w] < best) {
            best = path_hash[w];
          }
        }
        path_hash[u] = ExtendHash(best, static_cast<uint64_t>(g.GetLabel(u)));
      }
      // Feature id mixes the depth so length-k paths form their own block
      // (Tree++'s multi-granularity comparison).
      features[root].Add(ExtendHash(path_hash[u],
                                    static_cast<uint64_t>(depth[u])));
    }
  }
  return features;
}

SparseFeatureMap TreePpFeatureMap(const graph::Graph& g,
                                  const TreePpConfig& config) {
  return SumFeatureMaps(VertexTreePpFeatureMaps(g, config));
}

Matrix TreePpKernelMatrix(const graph::GraphDataset& dataset,
                          const TreePpConfig& config) {
  std::vector<SparseFeatureMap> maps;
  maps.reserve(dataset.size());
  for (const graph::Graph& g : dataset.graphs()) {
    maps.push_back(TreePpFeatureMap(g, config));
  }
  return GramMatrix(maps, /*normalize=*/true);
}

}  // namespace deepmap::kernels
