#include "kernels/graphlet.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "graph/isomorphism.h"

namespace deepmap::kernels {
namespace {

using graph::Graph;
using graph::Vertex;

// Grows a random connected-ish vertex set of size k containing `seed`:
// repeatedly adds a uniformly random frontier vertex; when the component is
// exhausted, falls back to a uniformly random outside vertex (yielding a
// disconnected graphlet, which the catalog covers).
std::vector<Vertex> SampleVertexSetAround(const Graph& g, Vertex seed, int k,
                                          Rng& rng) {
  std::vector<Vertex> chosen{seed};
  std::vector<bool> in_set(g.NumVertices(), false);
  in_set[seed] = true;
  while (static_cast<int>(chosen.size()) < k &&
         static_cast<int>(chosen.size()) < g.NumVertices()) {
    std::vector<Vertex> frontier;
    for (Vertex u : chosen) {
      for (Vertex w : g.Neighbors(u)) {
        if (!in_set[w]) frontier.push_back(w);
      }
    }
    Vertex next;
    if (!frontier.empty()) {
      // Duplicates in `frontier` bias selection toward vertices with more
      // edges into the current set, mimicking neighborhood expansion.
      next = frontier[rng.Index(frontier.size())];
    } else {
      std::vector<Vertex> outside;
      for (Vertex w = 0; w < g.NumVertices(); ++w) {
        if (!in_set[w]) outside.push_back(w);
      }
      next = outside[rng.Index(outside.size())];
    }
    in_set[next] = true;
    chosen.push_back(next);
  }
  return chosen;
}

// Canonical mask of the induced subgraph on `vertices`, padded with isolated
// vertices up to size k when the graph has fewer than k vertices.
uint32_t CanonicalMaskOfInduced(const Graph& g,
                                const std::vector<Vertex>& vertices, int k) {
  Graph sub = g.InducedSubgraph(vertices);
  while (sub.NumVertices() < k) sub.AddVertex();
  for (Vertex v = 0; v < sub.NumVertices(); ++v) sub.SetLabel(v, 0);
  return graph::CanonicalEdgeMask(sub);
}

}  // namespace

GraphletCatalog::GraphletCatalog(int k) : k_(k) {
  DEEPMAP_CHECK_GE(k, 2);
  DEEPMAP_CHECK_LE(k, 5);
  std::set<uint32_t> masks;
  const uint32_t num_pairs = static_cast<uint32_t>(k * (k - 1) / 2);
  for (uint32_t mask = 0; mask < (uint32_t{1} << num_pairs); ++mask) {
    masks.insert(graph::CanonicalEdgeMask(graph::GraphFromEdgeMask(k, mask)));
  }
  canonical_masks_.assign(masks.begin(), masks.end());
}

int GraphletCatalog::IndexOf(const graph::Graph& g) const {
  DEEPMAP_CHECK_EQ(g.NumVertices(), k_);
  return IndexOfCanonicalMask(graph::CanonicalEdgeMask(g));
}

int GraphletCatalog::IndexOfCanonicalMask(uint32_t mask) const {
  auto it = std::lower_bound(canonical_masks_.begin(), canonical_masks_.end(),
                             mask);
  DEEPMAP_CHECK(it != canonical_masks_.end() && *it == mask);
  return static_cast<int>(it - canonical_masks_.begin());
}

graph::Graph GraphletCatalog::Exemplar(int index) const {
  DEEPMAP_CHECK_GE(index, 0);
  DEEPMAP_CHECK_LT(index, size());
  return graph::GraphFromEdgeMask(k_, canonical_masks_[index]);
}

const GraphletCatalog& GetGraphletCatalog(int k) {
  DEEPMAP_CHECK_GE(k, 2);
  DEEPMAP_CHECK_LE(k, 5);
  // Never-destroyed singletons (static storage must be trivially
  // destructible; the catalog is immutable after construction).
  static const GraphletCatalog* catalogs[6] = {nullptr};
  if (catalogs[k] == nullptr) catalogs[k] = new GraphletCatalog(k);
  return *catalogs[k];
}

std::vector<SparseFeatureMap> VertexGraphletFeatureMaps(
    const graph::Graph& g, const GraphletConfig& config, Rng& rng) {
  const GraphletCatalog& catalog = GetGraphletCatalog(config.k);
  std::vector<SparseFeatureMap> features(g.NumVertices());
  if (config.exhaustive) {
    DEEPMAP_CHECK_EQ(config.k, 3);
    // Enumerate every induced size-3 subgraph; credit all three vertices.
    for (Vertex a = 0; a < g.NumVertices(); ++a) {
      for (Vertex b = a + 1; b < g.NumVertices(); ++b) {
        for (Vertex c = b + 1; c < g.NumVertices(); ++c) {
          uint32_t mask = CanonicalMaskOfInduced(g, {a, b, c}, 3);
          FeatureId id =
              static_cast<FeatureId>(catalog.IndexOfCanonicalMask(mask));
          features[a].Add(id);
          features[b].Add(id);
          features[c].Add(id);
        }
      }
    }
    return features;
  }
  for (Vertex v = 0; v < g.NumVertices(); ++v) {
    for (int s = 0; s < config.samples_per_vertex; ++s) {
      auto vertices = SampleVertexSetAround(g, v, config.k, rng);
      uint32_t mask = CanonicalMaskOfInduced(g, vertices, config.k);
      features[v].Add(
          static_cast<FeatureId>(catalog.IndexOfCanonicalMask(mask)));
    }
  }
  return features;
}

SparseFeatureMap GraphletFeatureMap(const graph::Graph& g,
                                    const GraphletConfig& config, Rng& rng) {
  return SumFeatureMaps(VertexGraphletFeatureMaps(g, config, rng));
}

SparseFeatureMap ExactSize3GraphletCounts(const graph::Graph& g) {
  const GraphletCatalog& catalog = GetGraphletCatalog(3);
  SparseFeatureMap counts;
  for (Vertex a = 0; a < g.NumVertices(); ++a) {
    for (Vertex b = a + 1; b < g.NumVertices(); ++b) {
      for (Vertex c = b + 1; c < g.NumVertices(); ++c) {
        uint32_t mask = CanonicalMaskOfInduced(g, {a, b, c}, 3);
        counts.Add(static_cast<FeatureId>(catalog.IndexOfCanonicalMask(mask)));
      }
    }
  }
  return counts;
}

}  // namespace deepmap::kernels
