// Unified vertex-feature-map computation over a dataset — the input that
// DEEPMAP's CNN (and the Table 4 GNN variants) consume.
//
// Selects one of the three substructure families (graphlet / shortest-path /
// WL subtree), computes per-vertex sparse maps for every graph with shared
// state where needed (WL dictionary), and builds the dataset vocabulary that
// defines the dense feature dimension m.
#ifndef DEEPMAP_KERNELS_VERTEX_FEATURE_MAP_H_
#define DEEPMAP_KERNELS_VERTEX_FEATURE_MAP_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"
#include "kernels/feature_map.h"
#include "kernels/graphlet.h"
#include "kernels/shortest_path.h"
#include "kernels/treepp.h"
#include "kernels/wl.h"

namespace deepmap::kernels {

/// Which substructure family backs the feature maps.
enum class FeatureMapKind {
  kGraphlet,
  kShortestPath,
  kWlSubtree,
  /// Tree++ path patterns (extension; the paper's reference [8]).
  kTreePp,
};

/// Short human-readable name ("GK", "SP", "WL", "TREEPP").
std::string FeatureMapKindName(FeatureMapKind kind);

/// Configuration bundle for ComputeDatasetVertexFeatures.
struct VertexFeatureConfig {
  FeatureMapKind kind = FeatureMapKind::kWlSubtree;
  GraphletConfig graphlet;
  ShortestPathConfig shortest_path;
  WlConfig wl;
  TreePpConfig treepp;
  /// If > 0 and the vocabulary exceeds it, densification uses modulo feature
  /// hashing to this dimension instead of the full vocabulary.
  int max_dense_dim = 0;
  /// Apply log1p to counts when densifying (stabilizes CNN training on
  /// heavy-tailed substructure counts; sparse kernel computations are
  /// unaffected).
  bool log_scale_dense = true;
  /// Scale each dense column by its inverse RMS over all vertices of the
  /// dataset. Zero entries stay zero, so dummy-padding invariance is
  /// preserved; this equalizes gradient scales across rare/frequent
  /// substructures and is required for SP features to train in reasonable
  /// time.
  bool normalize_dense = true;
  /// Seed for graphlet sampling.
  uint64_t seed = 42;
};

/// Vertex feature maps for a whole dataset plus the densification scheme.
class DatasetVertexFeatures {
 public:
  DatasetVertexFeatures(std::vector<std::vector<SparseFeatureMap>> features,
                        int max_dense_dim, bool log_scale_dense = true,
                        bool normalize_dense = true);

  /// Sparse map of vertex v in graph g.
  const SparseFeatureMap& Get(int g, int v) const;

  /// Per-graph vector of per-vertex maps.
  const std::vector<std::vector<SparseFeatureMap>>& all() const {
    return features_;
  }

  /// Dense feature dimension m (vocabulary size, or the hash dimension when
  /// hashing is active).
  int dim() const { return dim_; }

  /// Number of distinct substructures observed across the dataset.
  size_t vocabulary_size() const { return vocabulary_.size(); }

  bool uses_hashing() const { return uses_hashing_; }

  /// Dense vector of length dim() for vertex v of graph g.
  std::vector<double> DenseRow(int g, int v) const;

  /// Densifies an arbitrary sparse map with this dataset's scheme: training
  /// vocabulary (or feature hashing), log scaling, and the training-time
  /// column scales. Ids unseen at training time are dropped (or hashed).
  /// This is what serving-time preprocessing uses for request graphs.
  std::vector<double> DensifyRow(const SparseFeatureMap& map) const;

  /// Graph-level feature map of graph g (Eq. 7 sum over vertices).
  SparseFeatureMap GraphFeatureMap(int g) const;

 private:
  std::vector<std::vector<SparseFeatureMap>> features_;
  Vocabulary vocabulary_;
  int dim_ = 0;
  bool uses_hashing_ = false;
  bool log_scale_dense_ = true;
  /// Per-column inverse-RMS factors (empty when normalization is off).
  std::vector<double> column_scale_;
};

/// Computes per-vertex feature maps for every graph in `dataset`.
DatasetVertexFeatures ComputeDatasetVertexFeatures(
    const graph::GraphDataset& dataset, const VertexFeatureConfig& config);

/// Graph-level feature maps for every graph (used by the kernel baselines).
std::vector<SparseFeatureMap> ComputeGraphFeatureMaps(
    const graph::GraphDataset& dataset, const VertexFeatureConfig& config);

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_VERTEX_FEATURE_MAP_H_
