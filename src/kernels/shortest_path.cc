#include "kernels/shortest_path.h"

#include <algorithm>

#include "common/check.h"
#include "graph/algorithms.h"

namespace deepmap::kernels {

FeatureId PackSpTriplet(graph::Label a, graph::Label b, int length) {
  DEEPMAP_CHECK_GE(a, 0);
  DEEPMAP_CHECK_GE(b, 0);
  DEEPMAP_CHECK_GE(length, 1);
  graph::Label lo = std::min(a, b);
  graph::Label hi = std::max(a, b);
  DEEPMAP_CHECK_LT(lo, 1 << 24);
  DEEPMAP_CHECK_LT(hi, 1 << 24);
  DEEPMAP_CHECK_LT(length, 1 << 16);
  return (static_cast<FeatureId>(lo) << 40) |
         (static_cast<FeatureId>(hi) << 16) | static_cast<FeatureId>(length);
}

std::vector<SparseFeatureMap> VertexSpFeatureMaps(
    const graph::Graph& g, const ShortestPathConfig& config) {
  std::vector<SparseFeatureMap> features(g.NumVertices());
  for (graph::Vertex s = 0; s < g.NumVertices(); ++s) {
    const std::vector<int> dist = graph::BfsDistances(g, s);
    for (graph::Vertex t = 0; t < g.NumVertices(); ++t) {
      if (t == s || dist[t] == graph::kUnreachable) continue;
      if (config.max_length > 0 && dist[t] > config.max_length) continue;
      features[s].Add(PackSpTriplet(g.GetLabel(s), g.GetLabel(t), dist[t]));
    }
  }
  return features;
}

SparseFeatureMap SpFeatureMap(const graph::Graph& g,
                              const ShortestPathConfig& config) {
  return SumFeatureMaps(VertexSpFeatureMaps(g, config));
}

}  // namespace deepmap::kernels
