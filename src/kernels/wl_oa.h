// Weisfeiler-Lehman Optimal Assignment kernel (Kriege, Giscard & Wilson,
// NeurIPS 2016 — the paper's OA reference [21]).
//
// Instead of summing all pairwise substructure matches (R-convolution),
// OA kernels find the optimal 1:1 assignment between the vertices of two
// graphs under a hierarchy-induced vertex similarity. For the WL hierarchy
// the optimal assignment has a closed form: the histogram intersection of
// per-iteration color counts,
//   K(G1, G2) = sum_{h=0..H} sum_{colors c} min(count_1^h(c), count_2^h(c)).
#ifndef DEEPMAP_KERNELS_WL_OA_H_
#define DEEPMAP_KERNELS_WL_OA_H_

#include "graph/dataset.h"
#include "kernels/feature_map.h"
#include "kernels/kernel_matrix.h"
#include "kernels/wl.h"

namespace deepmap::kernels {

/// Histogram intersection sum_f min(a(f), b(f)) over the union of features.
double HistogramIntersection(const SparseFeatureMap& a,
                             const SparseFeatureMap& b);

/// WL-OA kernel matrix over the dataset (cosine-normalized). `config`
/// controls the number of WL refinement iterations.
Matrix WlOptimalAssignmentKernelMatrix(const graph::GraphDataset& dataset,
                                       const WlConfig& config = {});

}  // namespace deepmap::kernels

#endif  // DEEPMAP_KERNELS_WL_OA_H_
